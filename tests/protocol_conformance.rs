//! Protocol-conformance integration tests: every vendor personality in
//! the fleet must behave as a STARTS-1.0 source.

use starts::corpus::{generate_corpus, CorpusConfig};
use starts::index::Document;
use starts::proto::conformance::{check_metadata, MBASIC1_ATTRS};
use starts::proto::query::{parse_filter, parse_ranking, print_filter, print_ranking};
use starts::proto::{Query, QueryResults};
use starts::soif::{parse, write_object, ParseMode};
use starts::source::{vendors, Source};

fn fleet_sources() -> Vec<Source> {
    let corpus = generate_corpus(&CorpusConfig {
        n_sources: 1,
        docs_per_source: 30,
        seed: 77,
        ..CorpusConfig::default()
    });
    vendors::fleet()
        .into_iter()
        .map(|cfg| Source::build(cfg, &corpus.sources[0].docs))
        .collect()
}

#[test]
fn every_vendor_exports_conformant_metadata() {
    for source in fleet_sources() {
        let violations = check_metadata(source.metadata());
        assert!(violations.is_empty(), "{}: {:?}", source.id(), violations);
        // And the metadata object round-trips through SOIF.
        let bytes = write_object(&source.metadata().to_soif());
        let objs = parse(&bytes, ParseMode::Strict).unwrap();
        assert_eq!(objs.len(), 1);
        // Every required MBasic-1 attribute has some representation.
        let text = String::from_utf8(bytes).unwrap();
        for (attr, required, _) in MBASIC1_ATTRS {
            if *required {
                // Attribute names in SOIF use either CamelCase or the
                // lowercase-hyphen form for the GILS-inherited ones.
                let lower = attr
                    .chars()
                    .flat_map(|c| {
                        if c.is_ascii_uppercase() {
                            vec!['-', c.to_ascii_lowercase()]
                        } else {
                            vec![c]
                        }
                    })
                    .collect::<String>();
                let lower = lower.trim_start_matches('-').to_string();
                assert!(
                    text.contains(&format!("{attr}{{")) || text.contains(&format!("{lower}{{")),
                    "{}: required attribute {attr} missing from @SMetaAttributes",
                    source.id()
                );
            }
        }
    }
}

#[test]
fn every_vendor_answers_with_actual_query() {
    let query = Query {
        filter: Some(parse_filter(r#"((author "Author") and (title stem "databases"))"#).unwrap()),
        ranking: Some(parse_ranking(r#"list((body-of-text "w0001"))"#).unwrap()),
        ..Query::default()
    };
    for source in fleet_sources() {
        let results = source.execute(&query);
        // The actual query must itself be valid STARTS syntax.
        if let Some(f) = &results.actual_filter {
            let printed = print_filter(f);
            assert!(parse_filter(&printed).is_ok(), "{}: {printed}", source.id());
        }
        if let Some(r) = &results.actual_ranking {
            let printed = print_ranking(r);
            assert!(
                parse_ranking(&printed).is_ok(),
                "{}: {printed}",
                source.id()
            );
        }
        // Capability consistency: filter-only sources never report a
        // ranking expression and vice versa.
        let parts = source.metadata().query_parts_supported;
        if !parts.supports_ranking() {
            assert!(results.actual_ranking.is_none(), "{}", source.id());
        }
        if !parts.supports_filter() {
            assert!(results.actual_filter.is_none(), "{}", source.id());
        }
        // The whole result stream survives the wire.
        let bytes = results.to_soif_stream();
        let back = QueryResults::from_soif_stream(&bytes).unwrap();
        assert_eq!(back, results, "{}", source.id());
    }
}

#[test]
fn linkage_always_returned() {
    // §4.1.2: the linkage (URL) of the documents "is always returned".
    let query = Query {
        ranking: Some(parse_ranking(r#"list((body-of-text "w0001"))"#).unwrap()),
        ..Query::default()
    };
    for source in fleet_sources() {
        let results = source.execute(&query);
        for d in &results.documents {
            assert!(
                d.linkage().is_some(),
                "{}: document without linkage",
                source.id()
            );
        }
    }
}

#[test]
fn content_summaries_are_honest() {
    // Whatever the summary's flags claim must match the engine: if it
    // says words are stemmed, looking up a stem must work; document
    // frequencies must never exceed NumDocs.
    for source in fleet_sources() {
        let summary = source.content_summary();
        assert_eq!(summary.num_docs, source.num_docs(), "{}", source.id());
        for section in &summary.sections {
            for t in &section.terms {
                if let Some(df) = t.doc_freq {
                    assert!(
                        df <= summary.num_docs,
                        "{}: df {} > NumDocs {}",
                        source.id(),
                        df,
                        summary.num_docs
                    );
                }
                if let (Some(tp), Some(df)) = (t.total_postings, t.doc_freq) {
                    assert!(
                        tp >= u64::from(df),
                        "{}: postings {} < df {}",
                        source.id(),
                        tp,
                        df
                    );
                }
            }
        }
    }
}

#[test]
fn summary_df_matches_actual_result_counts() {
    // The content summary is the metasearcher's crystal ball: a word's
    // exported df must equal the number of documents a filter query on
    // that word actually returns (for a source whose summary matches its
    // index pipeline).
    let corpus = generate_corpus(&CorpusConfig {
        n_sources: 1,
        docs_per_source: 40,
        seed: 31,
        ..CorpusConfig::default()
    });
    let source = Source::build(vendors::acme("A"), &corpus.sources[0].docs);
    let summary = source.content_summary();
    for word in ["w0001", "w0002", "w0003", "t0x001"] {
        let df = summary.df(Some("body-of-text"), word);
        let query = Query {
            filter: Some(parse_filter(&format!(r#"(body-of-text "{word}")"#)).unwrap()),
            ..Query::default()
        };
        let results = source.execute(&query);
        assert_eq!(
            results.documents.len() as u32,
            df,
            "summary df vs live result for {word:?}"
        );
    }
}

#[test]
fn document_text_field_supports_relevance_feedback_shape() {
    // The Document-text field exists to pass whole documents in queries
    // (§4.1.1). Sources that do not support it must drop such terms and
    // say so via the actual query.
    let source = Source::build(
        vendors::acme("A"),
        &[Document::new()
            .field("title", "alpha")
            .field("body-of-text", "alpha beta gamma")
            .field("linkage", "http://x/1")],
    );
    let q = Query {
        filter: Some(
            parse_filter(r#"((document-text "whole doc text here") or (title "alpha"))"#).unwrap(),
        ),
        ..Query::default()
    };
    let results = source.execute(&q);
    let actual = print_filter(results.actual_filter.as_ref().unwrap());
    assert_eq!(actual, r#"(title "alpha")"#);
    assert_eq!(results.documents.len(), 1);
}
