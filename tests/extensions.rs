//! End-to-end tests of the two STARTS-new Basic-1 fields (§4.1.1):
//! relevance feedback through `Document-text` and native-query
//! pass-through via `Free-form-text`.

use starts::index::Document;
use starts::proto::query::{parse_filter, parse_ranking};
use starts::proto::{Field, LString, QTerm, Query, RankExpr, WeightedTerm};
use starts::source::{vendors, Source};

fn library() -> Vec<Document> {
    vec![
        Document::new()
            .field("title", "Distributed Database Replication")
            .field(
                "body-of-text",
                "replication of databases across distributed sites with consistency \
                 protocols and commit coordination",
            )
            .field("linkage", "lib://db-replication"),
        Document::new()
            .field("title", "Query Optimization Survey")
            .field(
                "body-of-text",
                "databases optimize queries with cost models and plan enumeration",
            )
            .field("linkage", "lib://query-opt"),
        Document::new()
            .field("title", "Bird Migration Patterns")
            .field(
                "body-of-text",
                "seasonal migration of birds across continents and their navigation",
            )
            .field("linkage", "lib://birds"),
    ]
}

#[test]
fn document_text_relevance_feedback_finds_similar_documents() {
    // A user liked some (external) document about distributed databases;
    // the metasearcher passes its whole text via Document-text.
    let source = Source::build(vendors::okapi("Okapi"), &library());
    let liked_document = "we study databases replication in distributed systems \
                          where databases coordinate commit decisions across sites";
    let term = QTerm {
        field: Some(Field::DocumentText),
        modifiers: vec![],
        value: LString::plain(liked_document),
    };
    let query = Query {
        ranking: Some(RankExpr::Term(WeightedTerm::plain(term))),
        ..Query::default()
    };
    let results = source.execute(&query);
    assert!(!results.documents.is_empty(), "feedback found nothing");
    // The most similar document leads. (Okapi has no stop list, so a
    // shared function word like "across" may still pull in the bird
    // paper — but only at the bottom of the rank.)
    assert_eq!(results.documents[0].linkage(), Some("lib://db-replication"));
    if let Some(pos) = results
        .documents
        .iter()
        .position(|d| d.linkage() == Some("lib://birds"))
    {
        assert_eq!(
            pos,
            results.documents.len() - 1,
            "off-topic document must rank last"
        );
    }
}

#[test]
fn document_text_dropped_at_sources_without_support() {
    // Acme does not declare Document-text: the term vanishes and the
    // actual query says so.
    let source = Source::build(vendors::acme("Acme"), &library());
    let query = Query {
        ranking: Some(
            parse_ranking(r#"list((document-text "databases replication text"))"#).unwrap(),
        ),
        ..Query::default()
    };
    let results = source.execute(&query);
    assert!(results.actual_ranking.is_none());
    assert!(results.documents.is_empty());
}

#[test]
fn free_form_text_executes_native_pqf() {
    // An informed metasearcher sends Okapi a native PQF query through
    // Free-form-text (§4.1.1: "informed metasearchers could use the
    // sources' richer native query languages").
    let source = Source::build(vendors::okapi("Okapi"), &library());
    let query = Query {
        filter: Some(
            parse_filter(
                r#"(free-form-text "@and @attr 1=1010 databases @attr 1=1010 replication")"#,
            )
            .unwrap(),
        ),
        ..Query::default()
    };
    let results = source.execute(&query);
    assert_eq!(results.documents.len(), 1);
    assert_eq!(results.documents[0].linkage(), Some("lib://db-replication"));
    // The actual query echoes the free-form term (the source executed
    // it, natively).
    let actual = results.actual_filter.as_ref().unwrap();
    assert_eq!(actual.terms()[0].effective_field(), Field::FreeFormText);
}

#[test]
fn malformed_free_form_text_returns_empty_not_error() {
    // No error channel in STARTS: garbage native queries yield empty
    // results, not failures.
    let source = Source::build(vendors::okapi("Okapi"), &library());
    let query = Query {
        filter: Some(parse_filter(r#"(free-form-text "not pqf at all (((")"#).unwrap()),
        ..Query::default()
    };
    let results = source.execute(&query);
    assert!(results.documents.is_empty());
}

#[test]
fn metadata_advertises_the_extension_fields() {
    let okapi = Source::build(vendors::okapi("Okapi"), &[]);
    assert!(okapi.metadata().supports_field(&Field::DocumentText));
    assert!(okapi.metadata().supports_field(&Field::FreeFormText));
    let acme = Source::build(vendors::acme("Acme"), &[]);
    assert!(!acme.metadata().supports_field(&Field::DocumentText));
    assert!(!acme.metadata().supports_field(&Field::FreeFormText));
}
