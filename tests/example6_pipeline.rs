//! The paper's Examples 6–8 as one live pipeline: the Example 6 query
//! executed against a source holding the two Stanford documents, with
//! the answer specification (score threshold, result cap, answer
//! fields) enforced end to end.

use starts::index::Document;
use starts::proto::query::{parse_filter, parse_ranking};
use starts::proto::{AnswerSpec, Field, Query};
use starts::source::{Source, SourceConfig};

fn stanford_library() -> Vec<Document> {
    vec![
        // The Example 8 document.
        Document::new()
            .field(
                "title",
                "A Comparison Between Deductive and Object-Oriented Database Systems",
            )
            .field("author", "Jeffrey D. Ullman")
            .field(
                "body-of-text",
                "databases compared: deductive databases versus object-oriented \
                 databases with distributed evaluation",
            )
            .field("linkage", "http://www-db.stanford.edu/~ullman/pub/dood.ps"),
        // The Example 9 document.
        Document::new()
            .field(
                "title",
                "Database Research: Achievements and Opportunities into the 21st. Century",
            )
            .field("author", "Avi Silberschatz, Mike Stonebraker, Jeff Ullman")
            .field(
                "body-of-text",
                "distributed databases research agenda: databases opportunities and \
                 distributed databases achievements",
            )
            .field("linkage", "http://elib.stanford.edu/lagunita.ps"),
        // An Ullman paper whose title does not stem-match "databases".
        Document::new()
            .field("title", "Introduction to Automata Theory")
            .field("author", "John Hopcroft, Jeffrey Ullman")
            .field("body-of-text", "automata languages and computation")
            .field("linkage", "http://example.org/automata.ps"),
        // A databases paper by someone else.
        Document::new()
            .field("title", "Database System Implementation")
            .field("author", "Hector Garcia-Molina")
            .field("body-of-text", "implementing databases from storage up")
            .field("linkage", "http://example.org/dsi.ps"),
    ]
}

fn example6(min_score: f64, max_docs: usize) -> Query {
    Query {
        filter: Some(parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap()),
        ranking: Some(
            parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#)
                .unwrap(),
        ),
        answer: AnswerSpec {
            fields: vec![Field::Title, Field::Author],
            min_doc_score: min_score,
            max_documents: max_docs,
            ..AnswerSpec::default()
        },
        ..Query::default()
    }
}

#[test]
fn filter_selects_only_ullman_database_titles() {
    let source = Source::build(SourceConfig::new("Source-1"), &stanford_library());
    let results = source.execute(&example6(0.0, 10));
    let urls: Vec<&str> = results
        .documents
        .iter()
        .filter_map(|d| d.linkage())
        .collect();
    // Automata (title mismatch) and Garcia-Molina (author mismatch) are
    // excluded by the filter; both remaining docs are Ullman + database*.
    assert_eq!(urls.len(), 2);
    assert!(urls.contains(&"http://www-db.stanford.edu/~ullman/pub/dood.ps"));
    assert!(urls.contains(&"http://elib.stanford.edu/lagunita.ps"));
}

#[test]
fn ranking_orders_by_the_ranking_expression() {
    let source = Source::build(SourceConfig::new("Source-1"), &stanford_library());
    let results = source.execute(&example6(0.0, 10));
    // The lagunita doc mentions "distributed" 3× and "databases" 3×; it
    // must outrank the dood doc (0× / 3×).
    assert_eq!(
        results.documents[0].linkage(),
        Some("http://elib.stanford.edu/lagunita.ps")
    );
    let s0 = results.documents[0].raw_score.unwrap();
    let s1 = results.documents[1].raw_score.unwrap();
    assert!(s0 > s1);
}

#[test]
fn min_document_score_threshold_applies() {
    let source = Source::build(SourceConfig::new("Source-1"), &stanford_library());
    let all = source.execute(&example6(0.0, 10));
    let top_score = all.documents[0].raw_score.unwrap();
    let second_score = all.documents[1].raw_score.unwrap();
    // A threshold between the two scores keeps exactly the top document
    // (Example 6's "only documents with a score … of at least 0.5").
    let threshold = (top_score + second_score) / 2.0;
    let filtered = source.execute(&example6(threshold, 10));
    assert_eq!(filtered.documents.len(), 1);
    assert_eq!(
        filtered.documents[0].linkage(),
        Some("http://elib.stanford.edu/lagunita.ps")
    );
    // A threshold above everything empties the result.
    let none = source.execute(&example6(top_score + 1.0, 10));
    assert!(none.documents.is_empty());
}

#[test]
fn max_number_documents_caps_the_result() {
    let source = Source::build(SourceConfig::new("Source-1"), &stanford_library());
    let capped = source.execute(&example6(0.0, 1));
    assert_eq!(capped.documents.len(), 1);
    // The cap keeps the best-scoring document.
    assert_eq!(
        capped.documents[0].linkage(),
        Some("http://elib.stanford.edu/lagunita.ps")
    );
}

#[test]
fn answer_fields_and_term_stats_shape() {
    let source = Source::build(SourceConfig::new("Source-1"), &stanford_library());
    let results = source.execute(&example6(0.0, 10));
    for d in &results.documents {
        // Linkage always returned, plus the requested title and author.
        assert!(d.linkage().is_some());
        assert!(d.field(&Field::Title).is_some());
        assert!(d.field(&Field::Author).is_some());
        // One TermStats entry per ranking term, with df consistent
        // across documents (df is a collection statistic).
        assert_eq!(d.term_stats.len(), 2);
    }
    let df_first: Vec<u32> = results.documents[0]
        .term_stats
        .iter()
        .map(|t| t.document_frequency)
        .collect();
    let df_second: Vec<u32> = results.documents[1]
        .term_stats
        .iter()
        .map(|t| t.document_frequency)
        .collect();
    assert_eq!(df_first, df_second);
}
