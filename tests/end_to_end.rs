//! End-to-end integration: the full stack (corpus → sources → network →
//! metasearcher) exercised together, with protocol-level invariants
//! checked along the way.

use starts::corpus::{generate_corpus, generate_workload, CorpusConfig, WorkloadConfig};
use starts::meta::catalog::Catalog;
use starts::meta::eval::{mean, recall_at_k, selection_recall};
use starts::meta::merge::{Merger, RawScoreMerge, SourceResult, TfMerge};
use starts::meta::metasearcher::{MetaConfig, Metasearcher};
use starts::meta::select::{BySize, GGlossSum, Selector};
use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts::source::{vendors, Source, SourceConfig};

fn small_corpus() -> starts::corpus::GeneratedCorpus {
    generate_corpus(&CorpusConfig {
        n_sources: 6,
        docs_per_source: 40,
        n_topics: 3,
        background_vocab: 400,
        topic_vocab: 60,
        doc_len: (20, 60),
        topic_skew: 0.4,
        bilingual_fraction: 0.0,
        seed: 1234,
    })
}

fn wire_corpus(net: &SimNet, corpus: &starts::corpus::GeneratedCorpus) -> Catalog {
    for s in &corpus.sources {
        wire_source(
            net,
            Source::build(SourceConfig::new(&s.id), &s.docs),
            LinkProfile::default(),
        );
    }
    let client = StartsClient::new(net);
    let mut catalog = Catalog::default();
    for s in &corpus.sources {
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", s.id.to_lowercase()),
                LinkProfile::default(),
                false,
            )
            .unwrap();
    }
    catalog
}

#[test]
fn gloss_selection_beats_by_size() {
    let corpus = small_corpus();
    let net = SimNet::new();
    let catalog = wire_corpus(&net, &corpus);
    let workload = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 25,
            ..WorkloadConfig::default()
        },
    );
    let mut gloss_cov = Vec::new();
    let mut size_cov = Vec::new();
    for gq in &workload.queries {
        let terms_owned = Metasearcher::selection_terms(&gq.query);
        let terms: Vec<(Option<&str>, &str)> = terms_owned
            .iter()
            .map(|(f, t)| (f.as_deref(), t.as_str()))
            .collect();
        for (selector, acc) in [
            (&GGlossSum as &dyn Selector, &mut gloss_cov),
            (&BySize, &mut size_cov),
        ] {
            let selected: Vec<usize> = selector
                .rank(&catalog, &terms)
                .into_iter()
                .take(2)
                .map(|(i, _)| i)
                .collect();
            acc.push(selection_recall(&selected, &gq.relevant_by_source));
        }
    }
    let gloss = mean(&gloss_cov);
    let size = mean(&size_cov);
    assert!(
        gloss > size + 0.2,
        "GlOSS ({gloss:.3}) should clearly beat size-only selection ({size:.3})"
    );
    assert!(gloss > 0.8, "GlOSS coverage too low: {gloss:.3}");
}

#[test]
fn metasearch_recall_improves_with_more_sources() {
    let corpus = small_corpus();
    let net = SimNet::new();
    let workload = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 15,
            ..WorkloadConfig::default()
        },
    );
    let mut prev = -1.0;
    for k in [1usize, 3, 6] {
        let catalog = wire_corpus(&net, &corpus);
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: k,
                max_results: 50,
                ..MetaConfig::default()
            },
        );
        let mut recalls = Vec::new();
        for gq in &workload.queries {
            let resp = meta.search(&gq.query);
            let ranked: Vec<String> = resp.merged.iter().map(|d| d.linkage.clone()).collect();
            recalls.push(recall_at_k(&ranked, &gq.relevant, 50));
        }
        let r = mean(&recalls);
        assert!(
            r >= prev - 0.02,
            "recall should not degrade with more sources: k={k}, {r:.3} < {prev:.3}"
        );
        prev = r;
    }
    assert!(
        prev > 0.5,
        "contacting all sources should find most: {prev:.3}"
    );
}

#[test]
fn heterogeneous_fleet_scores_stay_in_declared_ranges() {
    // Protocol invariant: every raw score a source returns lies inside
    // its exported ScoreRange.
    let net = SimNet::new();
    let corpus = small_corpus();
    for (i, cfg) in vendors::fleet().into_iter().enumerate() {
        wire_source(
            &net,
            Source::build(cfg, &corpus.sources[i % corpus.sources.len()].docs),
            LinkProfile::default(),
        );
    }
    let client = StartsClient::new(&net);
    let query = starts::proto::Query {
        ranking: Some(
            starts::proto::query::parse_ranking(r#"list((body-of-text "w0001"))"#).unwrap(),
        ),
        ..starts::proto::Query::default()
    };
    for id in ["acme-src", "bolt-src", "okapi-src", "rankonly-src"] {
        let metadata = client
            .fetch_metadata(&format!("starts://{id}/metadata"))
            .unwrap();
        let results = client
            .query(&format!("starts://{id}/query"), &query)
            .unwrap();
        let (lo, hi) = metadata.score_range;
        for d in &results.documents {
            if let Some(s) = d.raw_score {
                assert!(
                    s >= lo - 1e-9 && s <= hi + 1e-9,
                    "{id}: score {s} outside declared range {lo}..{hi}"
                );
            }
        }
    }
}

#[test]
fn merging_with_statistics_beats_raw_scores() {
    // Two personalities with incompatible scales index DIFFERENT topical
    // slices; ground truth says which documents are best. TermStats
    // merging must beat raw-score merging on average precision.
    let corpus = small_corpus();
    let net = SimNet::new();
    // Same documents but heterogeneous vendors per source.
    let mut configs = vec![
        vendors::acme("Gen-0"),
        vendors::bolt("Gen-1"),
        vendors::okapi("Gen-2"),
        vendors::acme("Gen-3"),
        vendors::bolt("Gen-4"),
        vendors::okapi("Gen-5"),
    ];
    for (cfg, s) in configs.drain(..).zip(&corpus.sources) {
        let mut cfg = cfg;
        cfg.id = s.id.clone();
        cfg.name = s.id.clone();
        cfg.base_url = format!("starts://{}", s.id.to_lowercase());
        wire_source(&net, Source::build(cfg, &s.docs), LinkProfile::default());
    }
    let client = StartsClient::new(&net);
    // Query BACKGROUND vocabulary words: every source holds them, so the
    // Vendor-K sources (Gen-1, Gen-4) always answer. Their documents are
    // no better than anyone else's — yet raw-score merging puts them
    // first because their top score is pinned at 1000 (§3.2).
    let mut raw_captures = Vec::new();
    let mut tf_captures = Vec::new();
    for word in ["w0003", "w0005", "w0008", "w0012", "w0002"] {
        let query = starts::proto::Query {
            ranking: Some(
                starts::proto::query::parse_ranking(&format!(r#"list((body-of-text "{word}"))"#))
                    .unwrap(),
            ),
            ..starts::proto::Query::default()
        };
        let mut inputs = Vec::new();
        for s in &corpus.sources {
            let metadata = client
                .fetch_metadata(&format!("starts://{}/metadata", s.id.to_lowercase()))
                .unwrap();
            let results = client
                .query(&format!("starts://{}/query", s.id.to_lowercase()), &query)
                .unwrap();
            inputs.push(SourceResult {
                metadata,
                results,
                source_weight: 1.0,
            });
        }
        let bolt_answered = inputs.iter().any(|i| {
            (i.metadata.source_id == "Gen-1" || i.metadata.source_id == "Gen-4")
                && !i.results.documents.is_empty()
        });
        if !bolt_answered {
            continue;
        }
        let capture = |merged: Vec<starts::meta::MergedDoc>| -> f64 {
            let top: Vec<_> = merged.into_iter().take(5).collect();
            if top.is_empty() {
                return 0.0;
            }
            let bolt = top
                .iter()
                .filter(|d| d.sources.iter().any(|s| s == "Gen-1" || s == "Gen-4"))
                .count();
            bolt as f64 / top.len() as f64
        };
        raw_captures.push(capture(RawScoreMerge.merge(&inputs)));
        tf_captures.push(capture(TfMerge.merge(&inputs)));
    }
    assert!(
        !raw_captures.is_empty(),
        "no query reached the Vendor-K sources"
    );
    let raw_capture = mean(&raw_captures);
    let tf_capture = mean(&tf_captures);
    // Fair share of the top-5 for 2 of 6 equal sources is ~1/3.
    assert!(
        raw_capture > 0.8,
        "raw merging should let the 1000-scale vendor capture the top ranks: {raw_capture:.3}"
    );
    assert!(
        tf_capture < raw_capture - 0.3,
        "Example 9 re-ranking should break scale capture: raw {raw_capture:.3} vs tf {tf_capture:.3}"
    );
}

#[test]
fn transport_is_stateless_and_repeatable() {
    let corpus = small_corpus();
    let net = SimNet::new();
    wire_corpus(&net, &corpus);
    let client = StartsClient::new(&net);
    let gq = &generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0];
    let url = "starts://gen-0/query";
    let a = client.query(url, &gq.query).unwrap();
    let b = client.query(url, &gq.query).unwrap();
    assert_eq!(a, b, "identical stateless requests must agree");
}
