//! Golden reproduction of the paper's twelve worked examples
//! (experiment X5 runs the printable version; these tests pin the
//! bytes).
//!
//! Where the paper's hand-computed SOIF byte counts are arithmetically
//! consistent, we match them byte for byte (modulo the LaTeX `` ''
//! quoting of the camera-ready copy, which renders ASCII `"`). The few
//! inconsistent counts in the paper are documented in EXPERIMENTS.md.

use starts::proto::query::{
    parse_filter, parse_ranking, print_filter, print_ranking, AnswerSpec, SortKey,
};
use starts::proto::{
    Field, Modifier, QTerm, Query, QueryResults, Resource, ResultDocument, TermStatsEntry,
};
use starts::soif::{parse_one, write_object, ParseMode};
use starts::text::LangTag;

/// Example 1: the filter + ranking query that opens §4.1.1.
#[test]
fn example_1_filter_and_ranking() {
    let f = parse_filter(r#"((author "Ullman") and (title "databases"))"#).unwrap();
    assert_eq!(f.terms().len(), 2);
    assert_eq!(
        print_filter(&f),
        r#"((author "Ullman") and (title "databases"))"#
    );
    let r =
        parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#).unwrap();
    assert_eq!(r.terms().len(), 2);
}

/// Example 2: `(title stem "databases")` matches stem-equal words.
#[test]
fn example_2_stem_semantics() {
    use starts::index::{BoolNode, Document, Engine, EngineConfig, TermMatch, TermSpec};
    let engine = Engine::build(
        &[
            Document::new().field("title", "database systems"),
            Document::new().field("title", "cooking at home"),
        ],
        EngineConfig::default(),
    );
    let q = BoolNode::Term(TermSpec::fielded("title", "databases").with(TermMatch::Stem));
    let hits = engine.eval_filter(&q);
    assert_eq!(
        hits.len(),
        1,
        "\"database\" shares the stem of \"databases\""
    );
}

/// Example 3: `(t1 prox[3,T] t2)` — at most 3 words between, ordered.
#[test]
fn example_3_prox() {
    use starts::index::{BoolNode, Document, Engine, EngineConfig, TermSpec};
    let engine = Engine::build(
        &[
            // t1 then 3 words then t2: matches.
            Document::new().field("body-of-text", "alpha one two three beta"),
            // t1 then 4 words then t2: does not match.
            Document::new().field("body-of-text", "alpha one two three four beta"),
            // reversed order: does not match when ordered.
            Document::new().field("body-of-text", "beta alpha"),
        ],
        EngineConfig::default(),
    );
    let q = BoolNode::Prox {
        left: TermSpec::any("alpha"),
        right: TermSpec::any("beta"),
        distance: 3,
        ordered: true,
    };
    let hits = engine.eval_filter(&q);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].0, 0);
}

/// Example 4: and = min (0.3), list = weighted mean (0.55) for term
/// weights 0.3 and 0.8.
#[test]
fn example_4_fuzzy_interpretation() {
    // Verified at the AST level here and numerically in the engine's
    // unit tests; this test pins the paper's arithmetic.
    let w_distributed: f64 = 0.3;
    let w_databases: f64 = 0.8;
    let and_score = w_distributed.min(w_databases);
    let list_score = 0.5 * w_distributed + 0.5 * w_databases;
    assert_eq!(and_score, 0.3);
    assert_eq!(list_score, 0.55);
    // And both expressions parse to the right shapes.
    assert!(matches!(
        parse_ranking(r#"("distributed" and "databases")"#).unwrap(),
        starts::proto::RankExpr::And(_, _)
    ));
    assert!(matches!(
        parse_ranking(r#"list("distributed" "databases")"#).unwrap(),
        starts::proto::RankExpr::List(_)
    ));
}

/// Example 5: term weights in ranking expressions.
#[test]
fn example_5_weights() {
    let r = parse_ranking(r#"list(("distributed" 0.7) ("databases" 0.3))"#).unwrap();
    let weights: Vec<f64> = r.terms().iter().map(|t| t.effective_weight()).collect();
    assert_eq!(weights, vec![0.7, 0.3]);
    assert_eq!(
        print_ranking(&r),
        r#"list(("distributed" 0.7) ("databases" 0.3))"#
    );
}

fn example_6_query() -> Query {
    Query {
        filter: Some(parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap()),
        ranking: Some(
            parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#)
                .unwrap(),
        ),
        drop_stop_words: true,
        answer: AnswerSpec {
            fields: vec![Field::Title, Field::Author],
            sort_by: vec![SortKey::score_descending()],
            min_doc_score: 0.5,
            max_documents: 10,
        },
        ..Query::default()
    }
}

/// Example 6: the @SQuery object, byte for byte.
#[test]
fn example_6_soif_bytes() {
    let bytes = write_object(&example_6_query().to_soif());
    let expected = "@SQuery{\n\
        Version{10}: STARTS 1.0\n\
        FilterExpression{48}: ((author \"Ullman\") and (title stem \"databases\"))\n\
        RankingExpression{61}: list((body-of-text \"distributed\") (body-of-text \"databases\"))\n\
        DropStopWords{1}: T\n\
        DefaultAttributeSet{7}: basic-1\n\
        DefaultLanguage{5}: en-US\n\
        AnswerFields{12}: title author\n\
        MinDocumentScore{3}: 0.5\n\
        MaxNumberDocuments{2}: 10\n\
        }\n";
    assert_eq!(String::from_utf8(bytes).unwrap(), expected);
}

/// Example 7: a filter-only source ignores the ranking expression and
/// reports the actual query.
#[test]
fn example_7_actual_query() {
    use starts::index::Document;
    use starts::source::{vendors, Source};
    // A filter-only engine that does support the stem modifier (the
    // paper's Example 7 source executes its full filter expression).
    let mut config = vendors::glimpse("Glimpse");
    config.supported_modifiers.push(Modifier::Stem);
    let source = Source::build(
        config,
        &[Document::new()
            .field("author", "Jeffrey Ullman")
            .field("title", "database design")
            .field("linkage", "http://x/1")],
    );
    let results = source.execute(&example_6_query());
    assert_eq!(
        print_filter(results.actual_filter.as_ref().unwrap()),
        r#"((author "Ullman") and (title stem "databases"))"#
    );
    assert!(
        results.actual_ranking.is_none(),
        "ranking silently dropped, reported via the actual query"
    );
}

fn example_8_results() -> QueryResults {
    QueryResults {
        sources: vec!["Source-1".to_string()],
        actual_filter: Some(
            parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap(),
        ),
        actual_ranking: Some(parse_ranking(r#"(body-of-text "databases")"#).unwrap()),
        documents: vec![ResultDocument {
            raw_score: Some(0.82),
            sources: vec!["Source-1".to_string()],
            fields: vec![
                (
                    Field::Linkage,
                    "http://www-db.stanford.edu/~ullman/pub/dood.ps".to_string(),
                ),
                (
                    Field::Title,
                    "A Comparison Between Deductive and Object-Oriented Database Systems"
                        .to_string(),
                ),
                (Field::Author, "Jeffrey D. Ullman".to_string()),
            ],
            term_stats: vec![
                TermStatsEntry {
                    term: QTerm::fielded(Field::BodyOfText, "distributed"),
                    term_frequency: 10,
                    term_weight: 0.31,
                    document_frequency: 190,
                },
                TermStatsEntry {
                    term: QTerm::fielded(Field::BodyOfText, "databases"),
                    term_frequency: 15,
                    term_weight: 0.51,
                    document_frequency: 232,
                },
            ],
            doc_size_kb: 248,
            doc_count: 10213,
        }],
        trace: None,
        profile: None,
    }
}

/// Example 8: the @SQResults/@SQRDocument stream.
#[test]
fn example_8_soif_stream() {
    let results = example_8_results();
    let text = String::from_utf8(results.to_soif_stream()).unwrap();
    // Header: counts 48 and 26 are the paper's own.
    assert!(text.contains("ActualFilterExpression{48}: "));
    assert!(text.contains("ActualRankingExpression{26}: (body-of-text \"databases\")"));
    assert!(text.contains("NumDocSOIFs{1}: 1"));
    // Document object.
    assert!(text.contains("RawScore{4}: 0.82"));
    assert!(text.contains("DocSize{3}: 248"));
    assert!(text.contains("DocCount{5}: 10213"));
    assert!(text.contains("(body-of-text \"distributed\") 10 0.31 190"));
    assert!(text.contains("(body-of-text \"databases\") 15 0.51 232"));
    // And it round-trips.
    let back = QueryResults::from_soif_stream(text.as_bytes()).unwrap();
    assert_eq!(back, results);
}

/// Example 9: the metasearcher re-ranks by term frequency and reverses
/// the sources' raw-score order.
#[test]
fn example_9_reranking() {
    use starts::meta::merge::{Merger, RawScoreMerge, SourceResult, TfMerge};
    use starts::proto::SourceMetadata;
    let source_1 = SourceResult {
        metadata: SourceMetadata {
            source_id: "Source-1".to_string(),
            ..SourceMetadata::default()
        },
        results: example_8_results(),
        source_weight: 1.0,
    };
    let mut lagunita = example_8_results();
    lagunita.sources = vec!["Source-2".to_string()];
    lagunita.documents[0] = ResultDocument {
        raw_score: Some(0.27),
        sources: vec!["Source-2".to_string()],
        fields: vec![
            (
                Field::Linkage,
                "http://elib.stanford.edu/lagunita.ps".to_string(),
            ),
            (
                Field::Title,
                "Database Research: Achievements and Opportunities into the 21st. Century"
                    .to_string(),
            ),
        ],
        term_stats: vec![
            TermStatsEntry {
                term: QTerm::fielded(Field::BodyOfText, "distributed"),
                term_frequency: 20,
                term_weight: 0.12,
                document_frequency: 901,
            },
            TermStatsEntry {
                term: QTerm::fielded(Field::BodyOfText, "databases"),
                term_frequency: 34,
                term_weight: 0.15,
                document_frequency: 788,
            },
        ],
        doc_size_kb: 125,
        doc_count: 9031,
    };
    let source_2 = SourceResult {
        metadata: SourceMetadata {
            source_id: "Source-2".to_string(),
            ..SourceMetadata::default()
        },
        results: lagunita,
        source_weight: 1.0,
    };
    let inputs = [source_1, source_2];
    // Raw scores put Source-1's document first (0.82 > 0.27)…
    let raw = RawScoreMerge.merge(&inputs);
    assert!(raw[0].linkage.contains("dood"));
    // …but Example 9's metasearcher ranks Source-2's document higher
    // (20+34 occurrences vs 10+15).
    let reranked = TfMerge.merge(&inputs);
    assert!(reranked[0].linkage.contains("lagunita"));
    assert_eq!(reranked[0].score, 54.0);
}

/// Example 10: the @SMetaAttributes object's values.
#[test]
fn example_10_metadata() {
    use starts::proto::metadata::{FieldModCombo, QueryParts, SourceMetadata};
    let m = SourceMetadata {
        source_id: "Source-1".to_string(),
        fields_supported: vec![(Field::Author, vec![])],
        modifiers_supported: vec![(Modifier::Phonetic, vec![])],
        field_modifier_combinations: vec![FieldModCombo {
            field: Field::Author,
            modifiers: vec![Modifier::Phonetic],
        }],
        query_parts_supported: QueryParts::Both,
        score_range: (0.0, 1.0),
        ranking_algorithm_id: "Acme-1".to_string(),
        source_languages: vec![LangTag::en_us(), LangTag::es()],
        source_name: "Stanford DB Group".to_string(),
        linkage: "http://www-db.stanford.edu/cgi-bin/query".to_string(),
        content_summary_linkage: "ftp://www-db.stanford.edu/cont_sum.txt".to_string(),
        date_changed: Some("1996-03-31".to_string()),
        ..SourceMetadata::default()
    };
    let o = m.to_soif();
    let text = String::from_utf8(write_object(&o)).unwrap();
    assert!(text.contains("QueryPartsSupported{2}: RF"));
    assert!(text.contains("ScoreRange{7}: 0.0 1.0"));
    assert!(text.contains("RankingAlgorithmID{6}: Acme-1"));
    assert!(text.contains("DefaultMetaAttributeSet{8}: mbasic-1"));
    assert!(text.contains("source-languages{8}: en-US es"));
    assert!(text.contains("source-name{17}: Stanford DB Group"));
    assert!(text.contains("date-changed{10}: 1996-03-31")); // paper says {9}: off by one
    assert!(text.contains("content-summary-linkage{38}: ftp://www-db.stanford.edu/cont_sum.txt"));
    let back =
        SourceMetadata::from_soif(&parse_one(text.as_bytes(), ParseMode::Strict).unwrap()).unwrap();
    assert_eq!(back, m);
}

/// Example 11: the bilingual content summary.
#[test]
fn example_11_content_summary() {
    use starts::proto::summary::{ContentSummary, SummarySection, TermSummary};
    let s = ContentSummary {
        stemmed: false,
        stop_words_included: false,
        case_sensitive: false,
        num_docs: 892,
        sections: vec![
            SummarySection {
                field: Some("title".to_string()),
                language: Some(LangTag::en_us()),
                terms: vec![
                    TermSummary {
                        term: "algorithm".to_string(),
                        total_postings: Some(100),
                        doc_freq: Some(53),
                    },
                    TermSummary {
                        term: "analysis".to_string(),
                        total_postings: Some(50),
                        doc_freq: Some(23),
                    },
                ],
            },
            SummarySection {
                field: Some("title".to_string()),
                language: Some(LangTag::es()),
                terms: vec![
                    TermSummary {
                        term: "algoritmo".to_string(),
                        total_postings: Some(23),
                        doc_freq: Some(11),
                    },
                    TermSummary {
                        term: "datos".to_string(),
                        total_postings: Some(59),
                        doc_freq: Some(12),
                    },
                ],
            },
        ],
    };
    let text = String::from_utf8(write_object(&s.to_soif())).unwrap();
    assert!(text.contains("Stemming{1}: F"));
    assert!(text.contains("StopWords{1}: F"));
    assert!(text.contains("CaseSensitive{1}: F"));
    assert!(text.contains("Fields{1}: T"));
    assert!(text.contains("NumDocs{3}: 892"));
    assert!(text.contains("Field{5}: title"));
    assert!(text.contains("Language{5}: en-US"));
    assert!(text.contains("Language{2}: es"));
    assert!(text.contains("\"algorithm\" 100 53"));
    assert!(text.contains("\"datos\" 59 12"));
    // The paper's reading: "'algorithm' appears in the title of 53
    // documents, 'datos' … 12 documents; there are 892 documents."
    assert_eq!(s.df(Some("title"), "algorithm"), 53);
    assert_eq!(s.df(Some("title"), "datos"), 12);
}

/// Example 12: the @SResource listing.
#[test]
fn example_12_resource() {
    let r = Resource::new([
        (
            "Source-1".to_string(),
            "ftp://www.stanford.edu/source_1".to_string(),
        ),
        (
            "Source-2".to_string(),
            "ftp://www.stanford.edu/source_2".to_string(),
        ),
    ]);
    let text = String::from_utf8(write_object(&r.to_soif())).unwrap();
    let expected_value = "Source-1 ftp://www.stanford.edu/source_1\n\
                          Source-2 ftp://www.stanford.edu/source_2";
    assert!(text.contains(&format!("SourceList{{{}}}: ", expected_value.len())));
    assert!(text.contains(expected_value));
    let back =
        Resource::from_soif(&parse_one(text.as_bytes(), ParseMode::Strict).unwrap()).unwrap();
    assert_eq!(back, r);
}

/// The paper's own typeset quoting (``…'') is accepted by the parser, so
/// the examples can be pasted verbatim from the PDF text.
#[test]
fn latex_quoting_accepted_everywhere() {
    let f = parse_filter("((author ``Ullman'') and (title stem ``databases''))").unwrap();
    assert_eq!(
        print_filter(&f),
        r#"((author "Ullman") and (title stem "databases"))"#
    );
}
