//! Acceptance tests for the concurrent serving layer (`starts-serve`):
//! singleflight dedup of identical concurrent queries, bit-identical
//! cached responses with per-source generation invalidation,
//! deadline-bounded partial results that are a prefix-consistent merge
//! of the finished sources, hedged dispatch racing a replica against a
//! slow primary, LIFO load shedding under overload, and panic isolation
//! in the shared dispatch pool.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use starts::index::Document;
use starts::meta::catalog::Catalog;
use starts::meta::merge::{Merger, NormalizedMerge};
use starts::meta::metasearcher::{MetaConfig, Metasearcher};
use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts::proto::{query::parse_ranking, Query};
use starts::serve::{HedgeConfig, ServeConfig, ServeError, Served, Server, SourceStatus};
use starts::source::{Source, SourceConfig};

fn docs(words: &[&str], n: usize, tag: &str) -> Vec<Document> {
    (0..n)
        .map(|i| {
            let body = format!(
                "{} {} {} filler{} text",
                words[i % words.len()],
                words[(i + 1) % words.len()],
                words[0],
                i
            );
            Document::new()
                .field("title", format!("{tag} doc {i}"))
                .field("body-of-text", body)
                .field("linkage", format!("http://{tag}/{i}"))
        })
        .collect()
}

fn wire(net: &SimNet, id: &str, words: &[&str], latency_ms: u32) {
    wire_source(
        net,
        Source::build(SourceConfig::new(id), &docs(words, 12, &id.to_lowercase())),
        LinkProfile {
            latency_ms,
            cost_per_query: 0.0,
        },
    );
}

fn discover(net: &SimNet, ids: &[&str]) -> Catalog {
    let client = StartsClient::new(net);
    let mut catalog = Catalog::default();
    for id in ids {
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", id.to_lowercase()),
                LinkProfile::default(),
                false,
            )
            .unwrap();
    }
    catalog
}

fn ranked(terms: &str) -> Query {
    Query {
        ranking: Some(parse_ranking(terms).unwrap()),
        ..Query::default()
    }
}

fn hedge_off() -> HedgeConfig {
    HedgeConfig {
        enabled: false,
        ..HedgeConfig::default()
    }
}

#[test]
fn singleflight_collapses_identical_concurrent_queries_into_one_wave() {
    const CLIENTS: usize = 8;
    let net = Arc::new(SimNet::new());
    wire(&net, "DB", &["databases", "queries"], 100);
    wire(&net, "Food", &["cooking", "recipes"], 100);
    let catalog = discover(&net, &["DB", "Food"]);
    net.registry().reset();
    // Pace the simulation so the wave takes real time (~50ms): every
    // client enqueues while the leader's dispatch is in flight.
    net.set_pacing(500);
    let server = Server::new(
        Arc::clone(&net),
        catalog,
        MetaConfig::default(),
        ServeConfig {
            query_workers: CLIENTS,
            hedge: hedge_off(),
            ..ServeConfig::default()
        },
    );

    let query = ranked(r#"list((body-of-text "text"))"#);
    let barrier = Barrier::new(CLIENTS);
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let (server, query, barrier) = (&server, &query, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    server.search(query).expect("served")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    net.set_pacing(0);

    // Exactly one wave executed; everyone else coalesced onto it.
    let executed = outcomes
        .iter()
        .filter(|o| o.via == Served::Executed)
        .count();
    let coalesced = outcomes
        .iter()
        .filter(|o| o.via == Served::Coalesced)
        .count();
    assert_eq!((executed, coalesced), (1, CLIENTS - 1));
    // All M responses share the leader's response verbatim.
    let leader = &outcomes[0].response;
    for o in &outcomes {
        assert!(Arc::ptr_eq(&o.response, leader));
        assert!(!o.response.merged.is_empty());
        assert!(!o.response.partial);
    }
    // One dispatch per source total — not one per client.
    let snap = net.registry().snapshot();
    for source in ["DB", "Food"] {
        let h = snap
            .histogram("meta.source_latency_ms", &[("source", source)])
            .expect("source latency histogram");
        assert_eq!(h.count, 1, "{source} dispatched more than once");
    }
    assert_eq!(snap.counter("serve.singleflight.leader", &[]), 1);
    assert_eq!(
        snap.counter("serve.singleflight.coalesced", &[]),
        (CLIENTS - 1) as u64
    );
    assert_eq!(snap.counter("serve.requests", &[]), CLIENTS as u64);
}

#[test]
fn cached_responses_are_shared_verbatim_and_stale_per_source() {
    let net = Arc::new(SimNet::new());
    wire(&net, "DB", &["databases", "queries"], 10);
    wire(&net, "Food", &["cooking", "recipes"], 10);
    wire(&net, "Stars", &["galaxies", "orbits"], 10);
    let catalog = discover(&net, &["DB", "Food", "Stars"]);
    net.registry().reset();
    let server = Server::new(
        Arc::clone(&net),
        catalog,
        MetaConfig {
            max_sources: 2,
            ..MetaConfig::default()
        },
        ServeConfig {
            query_workers: 1,
            hedge: hedge_off(),
            ..ServeConfig::default()
        },
    );

    let query = ranked(r#"list((body-of-text "databases"))"#);
    let first = server.search(&query).unwrap();
    assert_eq!(first.via, Served::Executed);
    assert!(!first.response.selected.contains(&"Stars".to_string()));

    // Bit-identical: the cache hands back the very same response.
    let second = server.search(&query).unwrap();
    assert_eq!(second.via, Served::CacheHit);
    assert!(Arc::ptr_eq(&first.response, &second.response));

    // Staling a source the response never consulted keeps it servable…
    server.invalidate_source("Stars");
    assert_eq!(server.search(&query).unwrap().via, Served::CacheHit);
    // …staling a consulted source forces a fresh wave.
    server.invalidate_source(&first.response.selected[0]);
    let refreshed = server.search(&query).unwrap();
    assert_eq!(refreshed.via, Served::Executed);
    assert!(!Arc::ptr_eq(&first.response, &refreshed.response));

    let snap = net.registry().snapshot();
    assert_eq!(snap.counter("serve.cache.hits", &[]), 2);
    assert_eq!(snap.counter("serve.cache.misses", &[]), 2);
}

#[test]
fn deadline_expiry_returns_prefix_consistent_partial_results() {
    let net = Arc::new(SimNet::new());
    wire(&net, "Fast", &["databases", "queries"], 10);
    wire(&net, "Slow", &["cooking", "recipes"], 400);
    let catalog = discover(&net, &["Fast", "Slow"]);
    net.registry().reset();
    // 400 simulated ms at 500µs/ms = 200ms wall for the slow source;
    // the 60ms deadline expires long before it answers.
    net.set_pacing(500);
    let config = MetaConfig::default();
    let health = Arc::clone(&config.health);
    let server = Server::new(
        Arc::clone(&net),
        catalog,
        config,
        ServeConfig {
            query_workers: 1,
            deadline_ms: 60,
            cache_ttl: Duration::ZERO,
            hedge: hedge_off(),
            ..ServeConfig::default()
        },
    );

    let outcome = server
        .search(&ranked(r#"list((body-of-text "text"))"#))
        .unwrap();
    net.set_pacing(0);
    let resp = &outcome.response;
    assert!(resp.partial, "deadline should have expired");
    let status: HashMap<&str, SourceStatus> = resp
        .completeness
        .iter()
        .map(|c| (c.source.as_str(), c.status))
        .collect();
    assert_eq!(status["Fast"], SourceStatus::Complete);
    assert_eq!(status["Slow"], SourceStatus::TimedOut);

    // Prefix-consistent: the partial merge is exactly the merge of the
    // finished sources — nothing from the straggler leaked in.
    assert_eq!(resp.per_source.len(), 1);
    assert!(resp.merged.iter().all(|d| d.sources == ["Fast"]));
    let (direct, _) = NormalizedMerge.merge_top_k(&resp.per_source, 20);
    assert_eq!(
        resp.merged.iter().map(|d| &d.linkage).collect::<Vec<_>>(),
        direct.iter().map(|d| &d.linkage).collect::<Vec<_>>()
    );

    // The straggler was cancelled, not failed: its health is untouched
    // and the cancellation is accounted separately.
    assert!(health.health("Slow").is_none());
    let snap = net.registry().snapshot();
    assert_eq!(snap.counter("serve.partial", &[]), 1);
    assert_eq!(
        snap.counter("meta.dispatch.cancelled", &[("source", "Slow")]),
        1
    );
    assert_eq!(
        snap.counter("meta.dispatch.failures", &[("source", "Slow")]),
        0
    );
}

#[test]
fn hedged_dispatch_races_a_replica_and_cancels_the_loser() {
    let net = Arc::new(SimNet::new());
    // Primary endpoint is pathologically slow; a replica of the same
    // corpus sits behind a fast link.
    wire(&net, "DB", &["databases", "queries"], 2_000);
    wire(&net, "DB2", &["databases", "queries"], 5);
    let catalog = discover(&net, &["DB"]);
    net.registry().reset();
    net.set_pacing(200); // primary: 400ms wall, replica: 1ms wall
    let server = Server::new(
        Arc::clone(&net),
        catalog,
        MetaConfig {
            max_sources: 1,
            ..MetaConfig::default()
        },
        ServeConfig {
            query_workers: 1,
            hedge: HedgeConfig {
                enabled: true,
                factor: 3.0,
                min_delay_ms: 10, // 2ms wall at this pacing
            },
            replicas: HashMap::from([("DB".to_string(), "starts://db2/query".to_string())]),
            ..ServeConfig::default()
        },
    );

    let outcome = server
        .search(&ranked(r#"list((body-of-text "databases"))"#))
        .unwrap();
    net.set_pacing(0);
    let resp = &outcome.response;
    // The replica's answer arrived long before the primary: the query
    // is complete, served by the hedge.
    assert!(!resp.partial);
    assert!(!resp.merged.is_empty());
    assert_eq!(resp.completeness[0].status, SourceStatus::Complete);

    let snap = net.registry().snapshot();
    assert_eq!(snap.counter("serve.hedge.launched", &[("source", "DB")]), 1);
    assert_eq!(snap.counter("serve.hedge.wins", &[("source", "DB")]), 1);
    // The losing primary was cancelled — no health penalty for DB.
    assert_eq!(
        snap.counter("meta.dispatch.cancelled", &[("source", "DB")]),
        1
    );
    assert_eq!(
        snap.counter("meta.dispatch.failures", &[("source", "DB")]),
        0
    );
    // The hedge attempt is visible as a span under the dispatch stage.
    let hedge_spans = snap
        .histogram(
            "span.duration_us",
            &[("span", "serve.query/dispatch/hedge")],
        )
        .expect("hedge span recorded");
    assert_eq!(hedge_spans.count, 1);
}

#[test]
fn overload_sheds_the_oldest_waiter_and_answers_the_rest() {
    const CLIENTS: usize = 6;
    let net = Arc::new(SimNet::new());
    wire(&net, "DB", &["databases", "queries"], 100);
    let catalog = discover(&net, &["DB"]);
    net.registry().reset();
    net.set_pacing(400); // each wave ~40ms wall
    let server = Server::new(
        Arc::clone(&net),
        catalog,
        MetaConfig {
            max_sources: 1,
            ..MetaConfig::default()
        },
        ServeConfig {
            query_workers: 1,
            queue_capacity: 2,
            cache_ttl: Duration::ZERO,
            hedge: hedge_off(),
            ..ServeConfig::default()
        },
    );

    // Six *distinct* queries at once (no singleflight): one executes,
    // two wait, the overflow sheds the oldest waiters.
    let barrier = Barrier::new(CLIENTS);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let (server, barrier) = (&server, &barrier);
                scope.spawn(move || {
                    let query = ranked(&format!(r#"list((body-of-text "filler{i}"))"#));
                    barrier.wait();
                    server.search(&query)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    net.set_pacing(0);

    let served = results.iter().filter(|r| r.is_ok()).count();
    let shed = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Shed)))
        .count();
    assert_eq!(served + shed, CLIENTS, "every caller got an answer");
    assert!(served >= 1, "at least the running query completes");
    assert!(shed >= 1, "overload must shed");
    let snap = net.registry().snapshot();
    assert_eq!(snap.counter("serve.shed", &[]), shed as u64);
}

#[test]
fn pool_isolates_panicking_endpoints_and_survives() {
    let net = Arc::new(SimNet::new());
    wire(&net, "DB", &["databases", "queries"], 10);
    wire(&net, "Food", &["cooking", "recipes"], 10);
    let catalog = discover(&net, &["DB", "Food"]);
    let url = catalog.entry("Food").unwrap().query_url().to_string();
    net.register(
        url,
        LinkProfile::default(),
        Arc::new(|_req: &[u8]| -> Vec<u8> { panic!("endpoint blew up") }),
    );
    net.registry().reset();
    let server = Server::new(
        Arc::clone(&net),
        catalog,
        MetaConfig::default(),
        ServeConfig {
            query_workers: 1,
            cache_ttl: Duration::ZERO,
            hedge: hedge_off(),
            ..ServeConfig::default()
        },
    );

    let query = ranked(r#"list((body-of-text "text"))"#);
    let first = server.search(&query).unwrap();
    let status: HashMap<&str, SourceStatus> = first
        .response
        .completeness
        .iter()
        .map(|c| (c.source.as_str(), c.status))
        .collect();
    assert_eq!(status["Food"], SourceStatus::Failed);
    assert_eq!(status["DB"], SourceStatus::Complete);
    assert!(!first.response.merged.is_empty());
    assert!(!first.response.partial, "failure is not a timeout");

    // The dispatch pool survived the panic: a second query still runs.
    let second = server.search(&query).unwrap();
    assert_eq!(second.via, Served::Executed);
    let snap = net.registry().snapshot();
    assert_eq!(
        snap.counter("meta.dispatch.panics", &[("source", "Food")]),
        2
    );
}

#[test]
fn pooled_wave_matches_the_scoped_metasearcher_and_ships_stock_slos() {
    let net = Arc::new(SimNet::new());
    wire(&net, "DB", &["databases", "queries"], 10);
    wire(&net, "Food", &["cooking", "recipes"], 10);
    wire(&net, "Stars", &["galaxies", "orbits"], 10);
    let query = ranked(r#"list((body-of-text "text"))"#);

    let scoped = Metasearcher::new(
        &net,
        discover(&net, &["DB", "Food", "Stars"]),
        MetaConfig::default(),
    )
    .search(&query);
    let server = Server::new(
        Arc::clone(&net),
        discover(&net, &["DB", "Food", "Stars"]),
        MetaConfig::default(),
        ServeConfig {
            query_workers: 1,
            hedge: hedge_off(),
            ..ServeConfig::default()
        },
    );
    let pooled = server.search(&query).unwrap();

    // Same stages, same strategies → the same merged ranking.
    assert_eq!(
        scoped.merged.iter().map(|d| &d.linkage).collect::<Vec<_>>(),
        pooled
            .response
            .merged
            .iter()
            .map(|d| &d.linkage)
            .collect::<Vec<_>>()
    );
    assert_eq!(scoped.selected, pooled.response.selected);
    // The pooled profile keeps the stage-containment invariant.
    assert!(pooled.response.profile.is_consistent());
    assert!(pooled
        .response
        .profile
        .root
        .children
        .iter()
        .any(|s| s.name == "dispatch" && !s.children.is_empty()));

    // Serving metrics land on the shared registry, and the stock SLO
    // catalog covers the serving layer.
    let snap = net.registry().snapshot();
    assert!(snap.counter("serve.requests", &[]) >= 1);
    assert!(snap
        .histogram("serve.latency_us", &[])
        .is_some_and(|h| h.count >= 1));
    let slos = starts::obs::monitor::default_slos();
    for name in ["serve-p99", "serve-shed-rate"] {
        assert!(
            slos.iter().any(|s| s.name == name),
            "missing stock SLO {name}"
        );
    }
}
