//! Acceptance test for the observability layer: one end-to-end
//! `Metasearcher::search` over the simulated network must produce a
//! metrics snapshot carrying select/adapt/dispatch/merge phase timings,
//! per-source latency histograms, and cost counters — and that snapshot
//! must export as Prometheus text and as a SOIF `@SStats` object that
//! `starts_soif::parse` reads back losslessly.

use starts::corpus::{generate_corpus, generate_workload, CorpusConfig, WorkloadConfig};
use starts::meta::catalog::Catalog;
use starts::meta::metasearcher::{MetaConfig, Metasearcher};
use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts::obs::export;
use starts::source::{Source, SourceConfig};

const N_SOURCES: usize = 4;

/// Wire a small corpus with per-source link profiles (one slow, one
/// priced) and return the discovered catalog.
fn searcher(net: &SimNet) -> (Metasearcher<'_>, starts::corpus::GeneratedCorpus) {
    let corpus = generate_corpus(&CorpusConfig {
        n_sources: N_SOURCES,
        docs_per_source: 30,
        n_topics: 2,
        background_vocab: 300,
        topic_vocab: 50,
        doc_len: (20, 50),
        topic_skew: 0.4,
        bilingual_fraction: 0.0,
        seed: 99,
    });
    let mut catalog = Catalog::default();
    let client = StartsClient::new(net);
    for (i, s) in corpus.sources.iter().enumerate() {
        let profile = LinkProfile {
            latency_ms: 20 * (i as u32 + 1),
            cost_per_query: if i == 0 { 1.5 } else { 0.0 },
        };
        wire_source(
            net,
            Source::build(SourceConfig::new(&s.id), &s.docs),
            profile,
        );
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", s.id.to_lowercase()),
                profile,
                false,
            )
            .unwrap();
    }
    let meta = Metasearcher::new(
        net,
        catalog,
        MetaConfig {
            max_sources: N_SOURCES,
            max_results: 30,
            ..MetaConfig::default()
        },
    );
    (meta, corpus)
}

#[test]
fn search_snapshot_has_phases_latencies_and_costs_and_exports() {
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let query = &generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query;

    // Discovery traffic is accounting too; drop it so the assertions
    // below see exactly one search.
    net.registry().reset();
    let resp = meta.search(query);
    assert!(!resp.merged.is_empty(), "the query should find documents");

    let snap = net.registry().snapshot();

    // 1. Phase timings: every pipeline phase closed a span whose
    //    duration went into the span.duration_us family.
    for phase in ["select", "adapt", "dispatch", "merge"] {
        let path = format!("meta.search/{phase}");
        let h = snap
            .histogram("span.duration_us", &[("span", &path)])
            .unwrap_or_else(|| panic!("missing phase timing for {path}"));
        assert_eq!(h.count, 1, "{path} should have closed exactly once");
    }
    assert_eq!(
        snap.histogram("span.duration_us", &[("span", "meta.search")])
            .expect("root span timing")
            .count,
        1
    );

    // 2. Per-source latency histograms: one observation per contacted
    //    source, equal to the link's simulated round-trip.
    assert_eq!(resp.stats.requests, N_SOURCES as u64);
    for (i, s) in corpus.sources.iter().enumerate() {
        let h = snap
            .histogram("meta.source_latency_ms", &[("source", &s.id)])
            .unwrap_or_else(|| panic!("missing latency histogram for {}", s.id));
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 20 * (i as u64 + 1));
    }

    // 3. Cost counters: the priced link's tariff shows up in the
    //    network gauge, the aggregate gauge, and the returned stats.
    let query_url = format!("starts://{}/query", corpus.sources[0].id.to_lowercase());
    assert!((snap.gauge("net.cost", &[("url", &query_url)]) - 1.5).abs() < 1e-9);
    assert!((snap.gauge("meta.query_cost", &[]) - 1.5).abs() < 1e-9);
    assert!((resp.stats.total_cost - 1.5).abs() < 1e-9);
    assert_eq!(snap.counter("meta.searches", &[]), 1);
    assert!(snap.counter("meta.merge.candidates", &[]) >= resp.merged.len() as u64);

    // 4a. Prometheus text export mentions the key families.
    let text = export::prometheus(&snap);
    for needle in [
        "# TYPE meta_searches counter",
        "meta_source_latency_ms{",
        "quantile=\"0.95\"",
        "span_duration_us",
        "net_cost{",
    ] {
        assert!(text.contains(needle), "prometheus dump missing {needle:?}");
    }

    // 4b. SOIF export: @SStats through the real parser, losslessly.
    let bytes = starts::soif::write_object(&export::to_soif(&snap));
    let objects = starts::soif::parse(&bytes, starts::soif::ParseMode::Strict).unwrap();
    assert_eq!(objects.len(), 1);
    assert_eq!(objects[0].template, export::SSTATS_TEMPLATE);
    let back = export::snapshot_from_soif(&objects[0]).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn metasearch_produces_one_trace_tree_spanning_the_wire() {
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let query = &generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query;

    net.registry().reset();
    let resp = meta.search(query);
    assert!(resp.query_id.starts_with("q-"), "search assigns a query id");

    // One stitched tree per query: a single meta.search root with the
    // pipeline phases under it.
    let tree = meta.trace_tree(&resp.query_id);
    assert_eq!(
        tree.roots.len(),
        1,
        "one root per query:\n{}",
        tree.render()
    );
    let root = &tree.roots[0];
    assert_eq!(root.event.name, "meta.search");
    for phase in ["select", "adapt", "dispatch", "merge"] {
        assert!(root.find(phase).is_some(), "missing {phase} under root");
    }

    // The dispatch span fans out one worker per contacted source, and
    // each worker's subtree crosses the wire: the host-side
    // source.execute span (with its rewrite/translate/execute phases)
    // parents under the client-side dispatch chain.
    let dispatch = root.find("dispatch").expect("dispatch node");
    let workers: Vec<_> = dispatch
        .children
        .iter()
        .filter(|c| c.event.name == "source")
        .collect();
    assert_eq!(workers.len(), N_SOURCES, "one worker per source");
    for worker in &workers {
        let execute = worker
            .find("source.execute")
            .expect("host-side span stitched under the client-side worker");
        assert_eq!(
            execute.event.path,
            "meta.search/dispatch/source/source.execute"
        );
        for phase in ["rewrite", "translate", "execute"] {
            assert!(execute.find(phase).is_some(), "missing host phase {phase}");
        }
    }

    // The critical path runs from the root through the slowest worker.
    let path = tree.critical_path();
    assert!(!path.is_empty());
    assert_eq!(path[0].name, "meta.search");
    let summary = tree.critical_path_summary();
    assert!(summary.contains("meta.search"), "summary: {summary}");

    // The health board saw every source succeed, and its gauges ride
    // the ordinary exporters.
    let snap = net.registry().snapshot();
    for s in &corpus.sources {
        let h = meta.config.health.health(&s.id).expect("health entry");
        assert_eq!(h.samples, 1);
        assert!((h.availability - 1.0).abs() < 1e-9);
        assert!(snap.gauge("health.score", &[("source", &s.id)]) > 0.0);
    }

    // The host serves its registry as @SStats on <base>/stats.
    let client = StartsClient::new(&net);
    let url = format!("starts://{}/stats", corpus.sources[0].id.to_lowercase());
    let stats = client.fetch_stats(&url).unwrap();
    assert!(stats.counter("source.queries", &[("source", &corpus.sources[0].id)]) >= 1);
}

#[test]
fn sharded_source_records_fanout_span_and_shard_metrics() {
    use starts::index::Document;
    use starts::proto::{query::parse_ranking, Query};

    let net = SimNet::new();
    let mut cfg = SourceConfig::new("Sharded");
    cfg.engine.shards = 2;
    let docs: Vec<Document> = (0..10)
        .map(|i| {
            Document::new()
                .field("body-of-text", format!("databases shard doc {i}"))
                .field("linkage", format!("http://x/{i}"))
        })
        .collect();
    let source = Source::build(cfg, &docs);
    assert_eq!(source.engine().shard_count(), 2);
    let url = wire_source(&net, source, LinkProfile::default());

    let q = Query {
        ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
        ..Query::default()
    };
    net.request(&url, &starts::soif::write_object(&q.to_soif()))
        .unwrap();

    // The shard counters land in the host registry, labeled by source
    // and shard count, with one latency observation per shard.
    let snap = net.registry().snapshot();
    assert_eq!(
        snap.counter(
            "engine.shard.searches",
            &[("source", "Sharded"), ("shards", "2")]
        ),
        1
    );
    let h = snap
        .histogram("engine.shard.latency_us", &[("source", "Sharded")])
        .expect("per-shard latency histogram");
    assert_eq!(h.count, 2, "one observation per shard");

    // The fan-out span nests under the execute phase of the host-side
    // query span.
    assert!(
        net.registry()
            .recent_spans()
            .iter()
            .any(|e| e.path == "source.execute/execute/engine.shard.fanout"),
        "fan-out span missing from the trace"
    );

    // Both exporters carry the shard families.
    let text = export::prometheus(&snap);
    assert!(text.contains("engine_shard_searches"));
    assert!(text.contains("engine_shard_latency_us"));
    let bytes = starts::soif::write_object(&export::to_soif(&snap));
    let obj = &starts::soif::parse(&bytes, starts::soif::ParseMode::Strict).unwrap()[0];
    assert_eq!(export::snapshot_from_soif(obj).unwrap(), snap);

    // A single-shard source searches inline: no fan-out span.
    let mut cfg1 = SourceConfig::new("Mono");
    cfg1.engine.shards = 1;
    let mono = Source::build(cfg1, &docs);
    let url1 = wire_source(&net, mono, LinkProfile::default());
    net.registry().reset();
    net.request(&url1, &starts::soif::write_object(&q.to_soif()))
        .unwrap();
    assert!(net
        .registry()
        .recent_spans()
        .iter()
        .all(|e| e.name != "engine.shard.fanout"));
    let snap = net.registry().snapshot();
    assert_eq!(
        snap.counter(
            "engine.shard.searches",
            &[("source", "Mono"), ("shards", "1")]
        ),
        1,
        "shard.searches counts even without a fan-out"
    );
}

#[test]
fn prune_metrics_flow_through_stats_and_prometheus() {
    use starts::index::{Document, PruneMode};
    use starts::proto::{query::parse_ranking, Query};

    // A corpus built so pruning deterministically engages under the
    // Plain-1 (raw-tf) ranker: doc 0 scores (3+1)/2 = 2 and fills the
    // k=1 heap first, after which every alpha-only doc's upper bound
    // (≈ 1/2) sits strictly below the threshold and is skipped.
    let docs: Vec<Document> = std::iter::once("omega omega omega alpha")
        .chain(std::iter::repeat_n("alpha", 9))
        .enumerate()
        .map(|(i, body)| {
            Document::new()
                .field("body-of-text", body)
                .field("linkage", format!("http://x/{i}"))
        })
        .collect();
    let q = Query {
        ranking: Some(
            parse_ranking(r#"list((body-of-text "alpha") (body-of-text "omega"))"#).unwrap(),
        ),
        answer: starts::proto::AnswerSpec {
            max_documents: 1,
            ..starts::proto::AnswerSpec::default()
        },
        ..Query::default()
    };

    let net = SimNet::new();
    let mut cfg = SourceConfig::new("Pruned");
    cfg.engine.ranking_id = "Plain-1".to_string();
    cfg.engine.shards = 2;
    let url = wire_source(&net, Source::build(cfg, &docs), LinkProfile::default());
    let resp = net
        .request(&url, &starts::soif::write_object(&q.to_soif()))
        .unwrap();
    let results = starts::proto::QueryResults::from_soif_stream(&resp.bytes).unwrap();
    assert_eq!(results.documents.len(), 1);
    assert_eq!(results.documents[0].linkage(), Some("http://x/0"));

    // The host registry carries the prune counters and the per-query
    // pruned-fraction gauge, labeled by source.
    let snap = net.registry().snapshot();
    let labels = [("source", "Pruned")];
    let skipped = snap.counter("engine.prune.skipped_docs", &labels);
    assert!(skipped > 0, "pruning should have skipped alpha-only docs");
    assert!(snap.counter("engine.prune.skipped_leaves", &labels) >= skipped);
    assert!(snap.counter("engine.prune.threshold_updates", &labels) >= 1);
    let fraction = snap.gauge("engine.prune.fraction", &labels);
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "pruned fraction should be a proper fraction, got {fraction}"
    );

    // Both exporters carry the prune families: Prometheus text …
    let text = export::prometheus(&snap);
    for needle in [
        "engine_prune_skipped_docs",
        "engine_prune_skipped_leaves",
        "engine_prune_threshold_updates",
        "engine_prune_fraction",
    ] {
        assert!(text.contains(needle), "prometheus dump missing {needle:?}");
    }
    // … and the SOIF @SStats object, losslessly.
    let bytes = starts::soif::write_object(&export::to_soif(&snap));
    let obj = &starts::soif::parse(&bytes, starts::soif::ParseMode::Strict).unwrap()[0];
    assert_eq!(export::snapshot_from_soif(obj).unwrap(), snap);

    // The escape hatch: the same corpus and query with pruning off
    // returns the identical document and skips nothing.
    let mut off = SourceConfig::new("Unpruned");
    off.engine.ranking_id = "Plain-1".to_string();
    off.engine.shards = 2;
    off.engine.prune = PruneMode::Off;
    let url_off = wire_source(&net, Source::build(off, &docs), LinkProfile::default());
    let resp_off = net
        .request(&url_off, &starts::soif::write_object(&q.to_soif()))
        .unwrap();
    let results_off = starts::proto::QueryResults::from_soif_stream(&resp_off.bytes).unwrap();
    // (Full document equality can't hold — each result names its own
    // source — so compare the identity and the bit-exact score.)
    assert_eq!(results_off.documents.len(), results.documents.len());
    assert_eq!(results_off.documents[0].linkage(), Some("http://x/0"));
    assert_eq!(
        results_off.documents[0].raw_score,
        results.documents[0].raw_score
    );
    let snap = net.registry().snapshot();
    assert_eq!(
        snap.counter("engine.prune.skipped_docs", &[("source", "Unpruned")]),
        0,
        "PruneMode::Off must never skip"
    );
}

#[test]
fn trace_unaware_exchanges_still_answer() {
    // §4.3 backward compatibility: a query carrying no XTraceContext —
    // or a garbage one — is answered exactly as before.
    let net = SimNet::new();
    let (_meta, corpus) = searcher(&net);
    let query = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query
        .clone();
    let url = format!("starts://{}/query", corpus.sources[0].id.to_lowercase());

    // Untraced baseline.
    let plain = net
        .request(&url, &starts::soif::write_object(&query.to_soif()))
        .unwrap();
    let baseline = starts::proto::QueryResults::from_soif_stream(&plain.bytes).unwrap();
    assert!(baseline.trace.is_none());

    // Same query with a malformed trace attribute: ignored, not fatal.
    let mut obj = query.to_soif();
    obj.push_str("XTraceContext", "not a valid context at all");
    let resp = net
        .request(&url, &starts::soif::write_object(&obj))
        .unwrap();
    let results = starts::proto::QueryResults::from_soif_stream(&resp.bytes).unwrap();
    assert_eq!(results.documents.len(), baseline.documents.len());
    assert!(results.trace.is_none(), "garbage context degrades to None");
}

#[test]
fn repeated_searches_accumulate_per_source_histograms() {
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let workload = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 5,
            ..WorkloadConfig::default()
        },
    );
    net.registry().reset();
    for gq in &workload.queries {
        meta.search(&gq.query);
    }
    let snap = net.registry().snapshot();
    assert_eq!(snap.counter("meta.searches", &[]), 5);
    for s in &corpus.sources {
        let h = snap
            .histogram("meta.source_latency_ms", &[("source", &s.id)])
            .expect("per-source histogram");
        assert_eq!(h.count, 5, "{} contacted once per search", s.id);
    }
    // The span ring holds 5 closings of each phase.
    let dispatches = net
        .registry()
        .recent_spans()
        .into_iter()
        .filter(|e| e.path == "meta.search/dispatch")
        .count();
    assert_eq!(dispatches, 5);
}
