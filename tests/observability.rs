//! Acceptance test for the observability layer: one end-to-end
//! `Metasearcher::search` over the simulated network must produce a
//! metrics snapshot carrying select/adapt/dispatch/merge phase timings,
//! per-source latency histograms, and cost counters — and that snapshot
//! must export as Prometheus text and as a SOIF `@SStats` object that
//! `starts_soif::parse` reads back losslessly.

use starts::corpus::{generate_corpus, generate_workload, CorpusConfig, WorkloadConfig};
use starts::meta::catalog::Catalog;
use starts::meta::metasearcher::{MetaConfig, Metasearcher};
use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts::obs::export;
use starts::source::{Source, SourceConfig};

const N_SOURCES: usize = 4;

/// Wire a small corpus with per-source link profiles (one slow, one
/// priced) and return the discovered catalog.
fn searcher(net: &SimNet) -> (Metasearcher<'_>, starts::corpus::GeneratedCorpus) {
    let corpus = generate_corpus(&CorpusConfig {
        n_sources: N_SOURCES,
        docs_per_source: 30,
        n_topics: 2,
        background_vocab: 300,
        topic_vocab: 50,
        doc_len: (20, 50),
        topic_skew: 0.4,
        bilingual_fraction: 0.0,
        seed: 99,
    });
    let mut catalog = Catalog::default();
    let client = StartsClient::new(net);
    for (i, s) in corpus.sources.iter().enumerate() {
        let profile = LinkProfile {
            latency_ms: 20 * (i as u32 + 1),
            cost_per_query: if i == 0 { 1.5 } else { 0.0 },
        };
        wire_source(
            net,
            Source::build(SourceConfig::new(&s.id), &s.docs),
            profile,
        );
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", s.id.to_lowercase()),
                profile,
                false,
            )
            .unwrap();
    }
    let meta = Metasearcher::new(
        net,
        catalog,
        MetaConfig {
            max_sources: N_SOURCES,
            max_results: 30,
            ..MetaConfig::default()
        },
    );
    (meta, corpus)
}

#[test]
fn search_snapshot_has_phases_latencies_and_costs_and_exports() {
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let query = &generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query;

    // Discovery traffic is accounting too; drop it so the assertions
    // below see exactly one search.
    net.registry().reset();
    let resp = meta.search(query);
    assert!(!resp.merged.is_empty(), "the query should find documents");

    let snap = net.registry().snapshot();

    // 1. Phase timings: every pipeline phase closed a span whose
    //    duration went into the span.duration_us family.
    for phase in ["select", "adapt", "dispatch", "merge"] {
        let path = format!("meta.search/{phase}");
        let h = snap
            .histogram("span.duration_us", &[("span", &path)])
            .unwrap_or_else(|| panic!("missing phase timing for {path}"));
        assert_eq!(h.count, 1, "{path} should have closed exactly once");
    }
    assert_eq!(
        snap.histogram("span.duration_us", &[("span", "meta.search")])
            .expect("root span timing")
            .count,
        1
    );

    // 2. Per-source latency histograms: one observation per contacted
    //    source, equal to the link's simulated round-trip.
    assert_eq!(resp.stats.requests, N_SOURCES as u64);
    for (i, s) in corpus.sources.iter().enumerate() {
        let h = snap
            .histogram("meta.source_latency_ms", &[("source", &s.id)])
            .unwrap_or_else(|| panic!("missing latency histogram for {}", s.id));
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 20 * (i as u64 + 1));
    }

    // 3. Cost counters: the priced link's tariff shows up in the
    //    network gauge, the aggregate gauge, and the returned stats.
    let query_url = format!("starts://{}/query", corpus.sources[0].id.to_lowercase());
    assert!((snap.gauge("net.cost", &[("url", &query_url)]) - 1.5).abs() < 1e-9);
    assert!((snap.gauge("meta.query_cost", &[]) - 1.5).abs() < 1e-9);
    assert!((resp.stats.total_cost - 1.5).abs() < 1e-9);
    assert_eq!(snap.counter("meta.searches", &[]), 1);
    assert!(snap.counter("meta.merge.candidates", &[]) >= resp.merged.len() as u64);

    // 4a. Prometheus text export mentions the key families.
    let text = export::prometheus(&snap);
    for needle in [
        "# TYPE meta_searches counter",
        "meta_source_latency_ms{",
        "quantile=\"0.95\"",
        "span_duration_us",
        "net_cost{",
    ] {
        assert!(text.contains(needle), "prometheus dump missing {needle:?}");
    }

    // 4b. SOIF export: @SStats through the real parser, losslessly.
    let bytes = starts::soif::write_object(&export::to_soif(&snap));
    let objects = starts::soif::parse(&bytes, starts::soif::ParseMode::Strict).unwrap();
    assert_eq!(objects.len(), 1);
    assert_eq!(objects[0].template, export::SSTATS_TEMPLATE);
    let back = export::snapshot_from_soif(&objects[0]).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn repeated_searches_accumulate_per_source_histograms() {
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let workload = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 5,
            ..WorkloadConfig::default()
        },
    );
    net.registry().reset();
    for gq in &workload.queries {
        meta.search(&gq.query);
    }
    let snap = net.registry().snapshot();
    assert_eq!(snap.counter("meta.searches", &[]), 5);
    for s in &corpus.sources {
        let h = snap
            .histogram("meta.source_latency_ms", &[("source", &s.id)])
            .expect("per-source histogram");
        assert_eq!(h.count, 5, "{} contacted once per search", s.id);
    }
    // The span ring holds 5 closings of each phase.
    let dispatches = net
        .registry()
        .recent_spans()
        .into_iter()
        .filter(|e| e.path == "meta.search/dispatch")
        .count();
    assert_eq!(dispatches, 5);
}
