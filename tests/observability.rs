//! Acceptance test for the observability layer: one end-to-end
//! `Metasearcher::search` over the simulated network must produce a
//! metrics snapshot carrying select/adapt/dispatch/merge phase timings,
//! per-source latency histograms, and cost counters — and that snapshot
//! must export as Prometheus text and as a SOIF `@SStats` object that
//! `starts_soif::parse` reads back losslessly.

use starts::corpus::{generate_corpus, generate_workload, CorpusConfig, WorkloadConfig};
use starts::meta::catalog::Catalog;
use starts::meta::metasearcher::{MetaConfig, Metasearcher};
use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts::obs::export;
use starts::source::{Source, SourceConfig};

const N_SOURCES: usize = 4;

/// Wire a small corpus with per-source link profiles (one slow, one
/// priced) and return the discovered catalog.
fn searcher(net: &SimNet) -> (Metasearcher<'_>, starts::corpus::GeneratedCorpus) {
    let corpus = generate_corpus(&CorpusConfig {
        n_sources: N_SOURCES,
        docs_per_source: 30,
        n_topics: 2,
        background_vocab: 300,
        topic_vocab: 50,
        doc_len: (20, 50),
        topic_skew: 0.4,
        bilingual_fraction: 0.0,
        seed: 99,
    });
    let mut catalog = Catalog::default();
    let client = StartsClient::new(net);
    for (i, s) in corpus.sources.iter().enumerate() {
        let profile = LinkProfile {
            latency_ms: 20 * (i as u32 + 1),
            cost_per_query: if i == 0 { 1.5 } else { 0.0 },
        };
        wire_source(
            net,
            Source::build(SourceConfig::new(&s.id), &s.docs),
            profile,
        );
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", s.id.to_lowercase()),
                profile,
                false,
            )
            .unwrap();
    }
    let meta = Metasearcher::new(
        net,
        catalog,
        MetaConfig {
            max_sources: N_SOURCES,
            max_results: 30,
            ..MetaConfig::default()
        },
    );
    (meta, corpus)
}

#[test]
fn search_snapshot_has_phases_latencies_and_costs_and_exports() {
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let query = &generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query;

    // Discovery traffic is accounting too; drop it so the assertions
    // below see exactly one search.
    net.registry().reset();
    let resp = meta.search(query);
    assert!(!resp.merged.is_empty(), "the query should find documents");

    let snap = net.registry().snapshot();

    // 1. Phase timings: every pipeline phase closed a span whose
    //    duration went into the span.duration_us family.
    for phase in ["select", "adapt", "dispatch", "merge"] {
        let path = format!("meta.search/{phase}");
        let h = snap
            .histogram("span.duration_us", &[("span", &path)])
            .unwrap_or_else(|| panic!("missing phase timing for {path}"));
        assert_eq!(h.count, 1, "{path} should have closed exactly once");
    }
    assert_eq!(
        snap.histogram("span.duration_us", &[("span", "meta.search")])
            .expect("root span timing")
            .count,
        1
    );

    // 2. Per-source latency histograms: one observation per contacted
    //    source, equal to the link's simulated round-trip.
    assert_eq!(resp.stats.requests, N_SOURCES as u64);
    for (i, s) in corpus.sources.iter().enumerate() {
        let h = snap
            .histogram("meta.source_latency_ms", &[("source", &s.id)])
            .unwrap_or_else(|| panic!("missing latency histogram for {}", s.id));
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 20 * (i as u64 + 1));
    }

    // 3. Cost counters: the priced link's tariff shows up in the
    //    network gauge, the aggregate gauge, and the returned stats.
    let query_url = format!("starts://{}/query", corpus.sources[0].id.to_lowercase());
    assert!((snap.gauge("net.cost", &[("url", &query_url)]) - 1.5).abs() < 1e-9);
    assert!((snap.gauge("meta.query_cost", &[]) - 1.5).abs() < 1e-9);
    assert!((resp.stats.total_cost - 1.5).abs() < 1e-9);
    assert_eq!(snap.counter("meta.searches", &[]), 1);
    assert!(snap.counter("meta.merge.candidates", &[]) >= resp.merged.len() as u64);

    // 4a. Prometheus text export mentions the key families.
    let text = export::prometheus(&snap);
    for needle in [
        "# TYPE meta_searches counter",
        "meta_source_latency_ms{",
        "quantile=\"0.95\"",
        "span_duration_us",
        "net_cost{",
    ] {
        assert!(text.contains(needle), "prometheus dump missing {needle:?}");
    }

    // 4b. SOIF export: @SStats through the real parser, losslessly.
    let bytes = starts::soif::write_object(&export::to_soif(&snap));
    let objects = starts::soif::parse(&bytes, starts::soif::ParseMode::Strict).unwrap();
    assert_eq!(objects.len(), 1);
    assert_eq!(objects[0].template, export::SSTATS_TEMPLATE);
    let back = export::snapshot_from_soif(&objects[0]).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn metasearch_produces_one_trace_tree_spanning_the_wire() {
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let query = &generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query;

    net.registry().reset();
    let resp = meta.search(query);
    assert!(resp.query_id.starts_with("q-"), "search assigns a query id");

    // One stitched tree per query: a single meta.search root with the
    // pipeline phases under it.
    let tree = meta.trace_tree(&resp.query_id);
    assert_eq!(
        tree.roots.len(),
        1,
        "one root per query:\n{}",
        tree.render()
    );
    let root = &tree.roots[0];
    assert_eq!(root.event.name, "meta.search");
    for phase in ["select", "adapt", "dispatch", "merge"] {
        assert!(root.find(phase).is_some(), "missing {phase} under root");
    }

    // The dispatch span fans out one worker per contacted source, and
    // each worker's subtree crosses the wire: the host-side
    // source.execute span (with its rewrite/translate/execute phases)
    // parents under the client-side dispatch chain.
    let dispatch = root.find("dispatch").expect("dispatch node");
    let workers: Vec<_> = dispatch
        .children
        .iter()
        .filter(|c| c.event.name == "source")
        .collect();
    assert_eq!(workers.len(), N_SOURCES, "one worker per source");
    for worker in &workers {
        let execute = worker
            .find("source.execute")
            .expect("host-side span stitched under the client-side worker");
        assert_eq!(
            execute.event.path,
            "meta.search/dispatch/source/source.execute"
        );
        for phase in ["rewrite", "translate", "execute"] {
            assert!(execute.find(phase).is_some(), "missing host phase {phase}");
        }
    }

    // The critical path runs from the root through the slowest worker.
    let path = tree.critical_path();
    assert!(!path.is_empty());
    assert_eq!(path[0].name, "meta.search");
    let summary = tree.critical_path_summary();
    assert!(summary.contains("meta.search"), "summary: {summary}");

    // The health board saw every source succeed, and its gauges ride
    // the ordinary exporters.
    let snap = net.registry().snapshot();
    for s in &corpus.sources {
        let h = meta.config.health.health(&s.id).expect("health entry");
        assert_eq!(h.samples, 1);
        assert!((h.availability - 1.0).abs() < 1e-9);
        assert!(snap.gauge("health.score", &[("source", &s.id)]) > 0.0);
    }

    // The host serves its registry as @SStats on <base>/stats.
    let client = StartsClient::new(&net);
    let url = format!("starts://{}/stats", corpus.sources[0].id.to_lowercase());
    let stats = client.fetch_stats(&url).unwrap();
    assert!(stats.counter("source.queries", &[("source", &corpus.sources[0].id)]) >= 1);
}

#[test]
fn sharded_source_records_fanout_span_and_shard_metrics() {
    use starts::index::Document;
    use starts::proto::{query::parse_ranking, Query};

    let net = SimNet::new();
    let mut cfg = SourceConfig::new("Sharded");
    cfg.engine.shards = 2;
    // The test observes per-shard metrics, so it needs a physically
    // 2-shard layout regardless of the machine's core count.
    cfg.engine.shard_policy = starts::index::ShardPolicy::Exact;
    let docs: Vec<Document> = (0..10)
        .map(|i| {
            Document::new()
                .field("body-of-text", format!("databases shard doc {i}"))
                .field("linkage", format!("http://x/{i}"))
        })
        .collect();
    let source = Source::build(cfg, &docs);
    assert_eq!(source.engine().shard_count(), 2);
    let url = wire_source(&net, source, LinkProfile::default());

    let q = Query {
        ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
        ..Query::default()
    };
    net.request(&url, &starts::soif::write_object(&q.to_soif()))
        .unwrap();

    // The shard counters land in the host registry, labeled by source
    // and shard count, with one latency observation per shard.
    let snap = net.registry().snapshot();
    assert_eq!(
        snap.counter(
            "engine.shard.searches",
            &[("source", "Sharded"), ("shards", "2")]
        ),
        1
    );
    let h = snap
        .histogram("engine.shard.latency_us", &[("source", "Sharded")])
        .expect("per-shard latency histogram");
    assert_eq!(h.count, 2, "one observation per shard");

    // The fan-out span nests under the execute phase of the host-side
    // query span.
    assert!(
        net.registry()
            .recent_spans()
            .iter()
            .any(|e| e.path == "source.execute/execute/engine.shard.fanout"),
        "fan-out span missing from the trace"
    );

    // Both exporters carry the shard families.
    let text = export::prometheus(&snap);
    assert!(text.contains("engine_shard_searches"));
    assert!(text.contains("engine_shard_latency_us"));
    let bytes = starts::soif::write_object(&export::to_soif(&snap));
    let obj = &starts::soif::parse(&bytes, starts::soif::ParseMode::Strict).unwrap()[0];
    assert_eq!(export::snapshot_from_soif(obj).unwrap(), snap);

    // A single-shard source searches inline: no fan-out span.
    let mut cfg1 = SourceConfig::new("Mono");
    cfg1.engine.shards = 1;
    let mono = Source::build(cfg1, &docs);
    let url1 = wire_source(&net, mono, LinkProfile::default());
    net.registry().reset();
    net.request(&url1, &starts::soif::write_object(&q.to_soif()))
        .unwrap();
    assert!(net
        .registry()
        .recent_spans()
        .iter()
        .all(|e| e.name != "engine.shard.fanout"));
    let snap = net.registry().snapshot();
    assert_eq!(
        snap.counter(
            "engine.shard.searches",
            &[("source", "Mono"), ("shards", "1")]
        ),
        1,
        "shard.searches counts even without a fan-out"
    );
}

#[test]
fn prune_metrics_flow_through_stats_and_prometheus() {
    use starts::index::{Document, PruneMode};
    use starts::proto::{query::parse_ranking, Query};

    // A corpus built so pruning deterministically engages under the
    // Plain-1 (raw-tf) ranker: doc 0 scores (3+1)/2 = 2 and fills the
    // k=1 heap first, after which every alpha-only doc's upper bound
    // (≈ 1/2) sits strictly below the threshold and is skipped.
    let docs: Vec<Document> = std::iter::once("omega omega omega alpha")
        .chain(std::iter::repeat_n("alpha", 9))
        .enumerate()
        .map(|(i, body)| {
            Document::new()
                .field("body-of-text", body)
                .field("linkage", format!("http://x/{i}"))
        })
        .collect();
    let q = Query {
        ranking: Some(
            parse_ranking(r#"list((body-of-text "alpha") (body-of-text "omega"))"#).unwrap(),
        ),
        answer: starts::proto::AnswerSpec {
            max_documents: 1,
            ..starts::proto::AnswerSpec::default()
        },
        ..Query::default()
    };

    let net = SimNet::new();
    let mut cfg = SourceConfig::new("Pruned");
    cfg.engine.ranking_id = "Plain-1".to_string();
    cfg.engine.shards = 2;
    let url = wire_source(&net, Source::build(cfg, &docs), LinkProfile::default());
    let resp = net
        .request(&url, &starts::soif::write_object(&q.to_soif()))
        .unwrap();
    let results = starts::proto::QueryResults::from_soif_stream(&resp.bytes).unwrap();
    assert_eq!(results.documents.len(), 1);
    assert_eq!(results.documents[0].linkage(), Some("http://x/0"));

    // The host registry carries the prune counters and the per-query
    // pruned-fraction gauge, labeled by source.
    let snap = net.registry().snapshot();
    let labels = [("source", "Pruned")];
    let skipped = snap.counter("engine.prune.skipped_docs", &labels);
    assert!(skipped > 0, "pruning should have skipped alpha-only docs");
    assert!(snap.counter("engine.prune.skipped_leaves", &labels) >= skipped);
    assert!(snap.counter("engine.prune.threshold_updates", &labels) >= 1);
    let fraction = snap.gauge("engine.prune.fraction", &labels);
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "pruned fraction should be a proper fraction, got {fraction}"
    );

    // Both exporters carry the prune families: Prometheus text …
    let text = export::prometheus(&snap);
    for needle in [
        "engine_prune_skipped_docs",
        "engine_prune_skipped_leaves",
        "engine_prune_threshold_updates",
        "engine_prune_fraction",
    ] {
        assert!(text.contains(needle), "prometheus dump missing {needle:?}");
    }
    // … and the SOIF @SStats object, losslessly.
    let bytes = starts::soif::write_object(&export::to_soif(&snap));
    let obj = &starts::soif::parse(&bytes, starts::soif::ParseMode::Strict).unwrap()[0];
    assert_eq!(export::snapshot_from_soif(obj).unwrap(), snap);

    // The escape hatch: the same corpus and query with pruning off
    // returns the identical document and skips nothing.
    let mut off = SourceConfig::new("Unpruned");
    off.engine.ranking_id = "Plain-1".to_string();
    off.engine.shards = 2;
    off.engine.prune = PruneMode::Off;
    let url_off = wire_source(&net, Source::build(off, &docs), LinkProfile::default());
    let resp_off = net
        .request(&url_off, &starts::soif::write_object(&q.to_soif()))
        .unwrap();
    let results_off = starts::proto::QueryResults::from_soif_stream(&resp_off.bytes).unwrap();
    // (Full document equality can't hold — each result names its own
    // source — so compare the identity and the bit-exact score.)
    assert_eq!(results_off.documents.len(), results.documents.len());
    assert_eq!(results_off.documents[0].linkage(), Some("http://x/0"));
    assert_eq!(
        results_off.documents[0].raw_score,
        results.documents[0].raw_score
    );
    let snap = net.registry().snapshot();
    assert_eq!(
        snap.counter("engine.prune.skipped_docs", &[("source", "Unpruned")]),
        0,
        "PruneMode::Off must never skip"
    );
}

#[test]
fn trace_unaware_exchanges_still_answer() {
    // §4.3 backward compatibility: a query carrying no XTraceContext —
    // or a garbage one — is answered exactly as before.
    let net = SimNet::new();
    let (_meta, corpus) = searcher(&net);
    let query = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query
        .clone();
    let url = format!("starts://{}/query", corpus.sources[0].id.to_lowercase());

    // Untraced baseline.
    let plain = net
        .request(&url, &starts::soif::write_object(&query.to_soif()))
        .unwrap();
    let baseline = starts::proto::QueryResults::from_soif_stream(&plain.bytes).unwrap();
    assert!(baseline.trace.is_none());

    // Same query with a malformed trace attribute: ignored, not fatal.
    let mut obj = query.to_soif();
    obj.push_str("XTraceContext", "not a valid context at all");
    let resp = net
        .request(&url, &starts::soif::write_object(&obj))
        .unwrap();
    let results = starts::proto::QueryResults::from_soif_stream(&resp.bytes).unwrap();
    assert_eq!(results.documents.len(), baseline.documents.len());
    assert!(results.trace.is_none(), "garbage context degrades to None");
}

#[test]
fn federated_search_returns_a_consistent_query_profile() {
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let query = &generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query;

    let resp = meta.search(query);
    let profile = &resp.profile;
    assert_eq!(profile.query_id, resp.query_id);
    assert_eq!(profile.root.name, "meta.search");

    // Stage costs sum consistently with their parents: every child
    // interval (including the host-side subtrees grafted in from the
    // wire) nests inside its parent's.
    assert!(profile.is_consistent(), "profile:\n{}", profile.render());

    // Client stages in pipeline order.
    let stages: Vec<&str> = profile
        .root
        .children
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(stages, ["select", "adapt", "dispatch", "merge"]);
    let select = profile.find("select").unwrap();
    let adapt = profile.find("adapt").unwrap();
    let dispatch = profile.find("dispatch").unwrap();
    let merge = profile.find("merge").unwrap();
    assert!(select.end_us() <= adapt.start_us, "phases run in order");
    assert!(adapt.end_us() <= dispatch.start_us);
    assert!(dispatch.end_us() <= merge.start_us);

    // The dispatch fan-out carries one worker stage per source, each
    // with the host's own XQueryProfile grafted under it: the §4.3
    // extension attribute crossed the wire and came back.
    let workers: Vec<_> = dispatch
        .children
        .iter()
        .filter(|c| c.name == "source")
        .collect();
    assert_eq!(workers.len(), N_SOURCES, "one worker per source");
    for worker in &workers {
        assert!(worker.meta_value("source").is_some());
        let host = worker
            .find("source.execute")
            .expect("host profile grafted under the client worker stage");
        for phase in ["rewrite", "translate", "execute"] {
            assert!(host.find(phase).is_some(), "missing host stage {phase}");
        }
        let execute = host.find("execute").unwrap();
        assert!(execute.meta_value("candidates").is_some());
        assert!(execute.find("search").is_some());
    }

    // The profile round-trips through its own wire encoding, and the
    // critical path starts at the root.
    let encoded = profile.encode();
    assert_eq!(
        starts::proto::QueryProfile::decode(&encoded).as_ref(),
        Some(profile)
    );
    assert_eq!(profile.critical_path()[0].name, "meta.search");

    // The flight recorder saw the query and its gauges rode the
    // registry exporters.
    assert_eq!(meta.config.recorder.recorded(), 1);
    let snap = net.registry().snapshot();
    assert!(snap.gauge("recorder.queries", &[]) >= 1.0);
    assert!(snap.gauge("recorder.last_total_us", &[]) > 0.0);
}

#[test]
fn query_profile_extension_is_backward_compatible() {
    // §4.3: trace-unaware exchanges carry no XQueryProfile bytes at
    // all, and a garbage XQueryProfile degrades to None, not an error.
    let net = SimNet::new();
    let (_meta, corpus) = searcher(&net);
    let query = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query
        .clone();
    let url = format!("starts://{}/query", corpus.sources[0].id.to_lowercase());

    // An untraced query produces a byte stream with no profile
    // attribute anywhere — byte-identical to the pre-profile protocol.
    let resp = net
        .request(&url, &starts::soif::write_object(&query.to_soif()))
        .unwrap();
    let text = String::from_utf8(resp.bytes.clone()).unwrap();
    assert!(
        !text.contains("XQueryProfile"),
        "untraced results must not grow a profile attribute"
    );
    let results = starts::proto::QueryResults::from_soif_stream(&resp.bytes).unwrap();
    assert!(results.profile.is_none());

    // A traced query *does* carry one, and it decodes.
    let mut traced = query.clone();
    traced.trace = Some(starts::proto::TraceContext {
        query_id: "q-test".to_string(),
        parent_path: "meta.search/dispatch/source".to_string(),
        parent_span_id: 7,
    });
    let resp = net
        .request(&url, &starts::soif::write_object(&traced.to_soif()))
        .unwrap();
    let results = starts::proto::QueryResults::from_soif_stream(&resp.bytes).unwrap();
    let profile = results.profile.expect("traced results carry a profile");
    assert_eq!(profile.query_id, "q-test");
    assert_eq!(profile.root.name, "source.execute");
    assert!(profile.is_consistent());

    // Garbage in the attribute position is ignored on decode.
    let mut header = starts::proto::QueryResults::default().header_soif();
    header.push_str("XQueryProfile", "not a profile \x01 at all");
    let bytes = starts::soif::write_object(&header);
    let results = starts::proto::QueryResults::from_soif_stream(&bytes).unwrap();
    assert!(results.profile.is_none(), "garbage degrades to None");
}

#[test]
fn slow_source_lands_in_the_flight_recorder_slow_log() {
    use std::sync::Arc;
    use std::time::Duration;

    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 3,
            ..WorkloadConfig::default()
        },
    )
    .queries;

    // A stable path (CI uploads it as an artifact when the test job
    // fails), cleared at the start of each run rather than the end so
    // a failing run leaves its evidence behind.
    let slow_log = std::path::PathBuf::from("target/slow_queries.jsonl");
    let _ = std::fs::remove_file(&slow_log);
    // A generous absolute budget: the simulated links only *account*
    // latency, so a healthy in-process search finishes in well under
    // 100ms of wall clock.
    meta.config.recorder.set_budget_us(100_000);
    meta.config.recorder.set_slow_log(&slow_log);

    let fast = meta.search(&queries[0].query);
    assert!(fast.profile.total_us() < 100_000, "healthy query is fast");
    assert_eq!(meta.config.recorder.slow_seen(), 0);

    // Degrade one source: replace its query endpoint with a handler
    // that stalls for real wall-clock time before answering.
    let source_id = corpus.sources[1].id.clone();
    let url = format!("starts://{}/query", source_id.to_lowercase());
    let slow_source = Arc::new(Source::build(
        SourceConfig::new(&source_id),
        &corpus.sources[1].docs,
    ));
    let obs = Arc::clone(net.registry());
    net.register(
        url,
        LinkProfile {
            latency_ms: 40,
            cost_per_query: 0.0,
        },
        Arc::new(move |request: &[u8]| {
            std::thread::sleep(Duration::from_millis(150));
            let parsed = starts::soif::parse_one(request, starts::soif::ParseMode::Lenient)
                .ok()
                .and_then(|o| starts::proto::Query::from_soif(&o).ok());
            match parsed {
                Some(q) => slow_source.execute_traced(&q, Some(&obs)).to_soif_stream(),
                None => starts::proto::QueryResults::default().to_soif_stream(),
            }
        }),
    );

    let slow = meta.search(&queries[1].query);
    assert!(slow.profile.total_us() >= 150_000, "the stall dominates");
    assert_eq!(meta.config.recorder.slow_seen(), 1);

    // The capture is drainable and blames the stalled source: the
    // critical path runs through its dispatch worker.
    let captured = meta.config.recorder.drain_slow();
    assert_eq!(captured.len(), 1);
    assert_eq!(captured[0].query_id, slow.query_id);
    let path = captured[0].critical_path_summary();
    assert!(path.contains("source"), "critical path: {path}");

    // The slow-log file carries one JSON line for the capture, naming
    // the query and its total cost.
    let logged = std::fs::read_to_string(&slow_log).expect("slow log written");
    let lines: Vec<&str> = logged.lines().collect();
    assert_eq!(lines.len(), 1);
    assert!(lines[0].contains(&slow.query_id));
    assert!(lines[0].contains("\"total_us\""));
    assert!(lines[0].contains("\"critical_path\""));

    // The recorder's gauges (including the slow count) are on the
    // shared registry, so any /stats endpoint sharing it serves them.
    let snap = net.registry().snapshot();
    assert!(snap.gauge("recorder.slow_queries", &[]) >= 1.0);
}

#[test]
fn trace_trees_rebuild_from_partial_jsonl_dumps() {
    // The flight-recorder workflow writes spans as JSONL; a crashed or
    // still-writing process leaves a truncated tail. Reconstruction
    // must keep every complete line and stay a rooted tree.
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let query = &generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .queries[0]
        .query;
    net.registry().reset();
    let resp = meta.search(query);

    let events = net.registry().recent_spans();
    let mut buf = Vec::new();
    starts::obs::trace::write_jsonl(&events, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();

    // Intact dump round-trips.
    let back = starts::obs::trace::read_jsonl(&text);
    assert_eq!(back.len(), events.len());
    let tree = starts::obs::TraceTree::build(&resp.query_id, &back);
    assert_eq!(tree.roots.len(), 1);
    assert_eq!(tree.roots[0].event.name, "meta.search");

    // Truncate mid-line and inject garbage: the damaged lines drop,
    // the rest still reconstructs.
    let cut = text.len() - 27;
    let damaged = format!("not json\n{}", &text[..cut]);
    let partial = starts::obs::trace::read_jsonl(&damaged);
    assert_eq!(partial.len(), events.len() - 1);
    let tree = starts::obs::TraceTree::build(&resp.query_id, &partial);
    assert!(!tree.is_empty(), "partial dump still yields a tree");
}

#[test]
fn alert_lifecycle_walks_pending_firing_resolved_end_to_end() {
    use std::sync::Arc;

    use starts::meta::select::{GGlossSum, HealthAware};
    use starts::obs::monitor::{
        AnomalyConfig, Aspect, ManualClock, Monitor, MonitorConfig, SloOp, SloSpec, StoreConfig,
    };
    use starts::obs::{AlertState, HealthBoard};

    let corpus = generate_corpus(&CorpusConfig {
        n_sources: N_SOURCES,
        docs_per_source: 30,
        n_topics: 2,
        background_vocab: 300,
        topic_vocab: 50,
        doc_len: (20, 50),
        topic_skew: 0.4,
        bilingual_fraction: 0.0,
        seed: 99,
    });
    let victim = corpus.sources[1].id.clone();

    // Deterministic time: one simulated second per search.
    let clock = Arc::new(ManualClock::new(0));
    let board = Arc::new(HealthBoard::with_clock(4, 60_000, clock.clone()));
    let alerts_log = std::path::PathBuf::from("target/alerts_e2e.jsonl");
    let _ = std::fs::remove_file(&alerts_log);
    let monitor = Arc::new(Monitor::new(MonitorConfig {
        store: StoreConfig {
            step_ms: 1_000,
            retention: 128,
        },
        slos: vec![SloSpec {
            short_window: 2,
            long_window: 4,
            for_ms: 2_000,
            ..SloSpec::new(
                "source-error-rate",
                "health.error_rate",
                &[("source", "*")],
                Aspect::Value,
                SloOp::Lt,
                0.01,
            )
        }],
        // SLO lifecycle only: no anomaly detector in this test.
        anomaly: AnomalyConfig {
            metrics: vec![],
            ..AnomalyConfig::default()
        },
        clock: clock.clone(),
        log_path: Some(alerts_log.clone()),
        events_kept: 64,
    }));

    // The monitor goes into the net *before* wiring, so every source's
    // `<base>/alerts` endpoint serves it.
    let net = SimNet::new();
    net.set_monitor(Arc::clone(&monitor));
    let mut catalog = Catalog::default();
    let client = StartsClient::new(&net);
    for s in &corpus.sources {
        wire_source(
            &net,
            Source::build(SourceConfig::new(&s.id), &s.docs),
            LinkProfile::default(),
        );
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", s.id.to_lowercase()),
                LinkProfile::default(),
                false,
            )
            .unwrap();
    }
    let meta = Metasearcher::new(
        &net,
        catalog,
        MetaConfig {
            selector: Box::new(HealthAware::with_monitor(
                GGlossSum,
                Arc::clone(&board),
                Arc::clone(&monitor),
            )),
            max_sources: N_SOURCES,
            max_results: 30,
            health: Arc::clone(&board),
            ..MetaConfig::default()
        },
    );

    // Background words occur in every source, so every source scores
    // positive goodness and selection order reflects health alone.
    let query = {
        use starts::proto::query::ast::{QTerm, RankExpr};
        use starts::proto::{AnswerSpec, Field, Query};
        Query {
            ranking: Some(RankExpr::list_of(
                corpus.background[..2]
                    .iter()
                    .map(|t| QTerm::fielded(Field::BodyOfText, t.clone())),
            )),
            answer: AnswerSpec {
                fields: vec![Field::Title],
                max_documents: 10,
                ..AnswerSpec::default()
            },
            ..Query::default()
        }
    };
    let search = || {
        clock.advance(1_000);
        meta.search(&query)
    };

    // Phase 1 — healthy: the monitor samples but never makes a sound.
    for _ in 0..5 {
        search();
    }
    assert_eq!(monitor.events_total(), 0, "healthy run must stay silent");
    assert!(monitor.firing().is_empty());
    let snap = net.registry().snapshot();
    assert_eq!(snap.gauge("alerts.firing", &[]), 0.0);
    assert_eq!(
        snap.gauge(
            "slo.breaching",
            &[("slo", "source-error-rate"), ("source", &victim)]
        ),
        0.0
    );
    assert!(
        !alerts_log.exists() || std::fs::read_to_string(&alerts_log).unwrap().is_empty(),
        "no alert events logged while healthy"
    );

    // Phase 2 — degrade the victim: its query endpoint answers garbage.
    net.register(
        format!("starts://{}/query", victim.to_lowercase()),
        LinkProfile::default(),
        Arc::new(|_: &[u8]| b"HTTP/1.0 500 Internal Server Error".to_vec()),
    );
    search(); // first bad sample: breach begins -> pending
    let pending: Vec<_> = monitor
        .alerts()
        .into_iter()
        .filter(|a| a.state == AlertState::Pending)
        .collect();
    assert_eq!(pending.len(), 1, "one pending alert after the first breach");
    assert_eq!(pending[0].source.as_deref(), Some(&*victim));
    assert!(!monitor.is_source_firing(&victim), "for-duration holds it");

    search(); // breach persists (1s elapsed of the 2s for-duration)
    search(); // 2s elapsed: pending -> firing
    assert!(
        monitor.is_source_firing(&victim),
        "alert fires after for_ms"
    );

    // While firing, the selector hard-demotes the victim to the probe
    // floor: it ranks last (but is still probed, so it can recover).
    let resp = search();
    assert_eq!(resp.selected.len(), N_SOURCES);
    assert_eq!(
        resp.selected.last().map(String::as_str),
        Some(&*victim),
        "firing source is demoted to the bottom of the selection order"
    );

    // The firing alert is visible everywhere at once:
    // (a) over the wire, from any host's <base>/alerts endpoint;
    let fetched = client
        .fetch_alerts(&format!(
            "starts://{}/alerts",
            corpus.sources[0].id.to_lowercase()
        ))
        .expect("fetch_alerts");
    let firing = fetched.firing();
    assert_eq!(firing.len(), 1);
    assert_eq!(firing[0].source.as_deref(), Some(&*victim));
    assert!(
        fetched.events.iter().any(|e| e.state == AlertState::Firing),
        "the snapshot carries the transition history"
    );

    // (b) in the structured alerts.jsonl log;
    let logged = std::fs::read_to_string(&alerts_log).expect("alerts.jsonl written");
    assert!(logged.lines().any(|l| l.contains("\"pending\"")));
    assert!(logged.lines().any(|l| l.contains("\"firing\"")));
    assert!(logged.contains(&format!("\"source\":\"{victim}\"")));

    // (c) through all three registry exporters.
    let snap = net.registry().snapshot();
    assert!(snap.gauge("alerts.firing", &[]) >= 1.0);
    assert_eq!(
        snap.gauge(
            "slo.breaching",
            &[("slo", "source-error-rate"), ("source", &victim)]
        ),
        1.0
    );
    let text = export::prometheus(&snap);
    assert!(text.contains("alerts_firing"));
    assert!(text.contains("slo_breaching"));
    let json = export::json(&snap);
    assert!(json.contains("alerts.firing"));
    let obj = export::to_soif(&snap);
    let back = export::snapshot_from_soif(&obj).unwrap();
    assert!(back.gauge("alerts.firing", &[]) >= 1.0);

    // Phase 3 — re-wire the victim healthy; the probes it kept
    // receiving drain the health window and the alert resolves.
    wire_source(
        &net,
        Source::build(SourceConfig::new(&victim), &corpus.sources[1].docs),
        LinkProfile::default(),
    );
    for _ in 0..10 {
        search();
    }
    assert!(monitor.firing().is_empty(), "alert resolves after recovery");
    assert!(!monitor.is_source_firing(&victim));

    // The event history tells the whole story, in order, all about the
    // one victim.
    let events = monitor.recent_events();
    let states: Vec<AlertState> = events.iter().map(|e| e.state).collect();
    assert_eq!(
        states,
        [
            AlertState::Pending,
            AlertState::Firing,
            AlertState::Resolved
        ]
    );
    assert!(events.iter().all(|e| e.source.as_deref() == Some(&*victim)));
    let logged = std::fs::read_to_string(&alerts_log).unwrap();
    assert!(logged.lines().any(|l| l.contains("\"resolved\"")));

    // And the wire view agrees: nothing firing anywhere.
    let fetched = client
        .fetch_alerts(&format!(
            "starts://{}/alerts",
            corpus.sources[0].id.to_lowercase()
        ))
        .unwrap();
    assert!(fetched.firing().is_empty());
    assert_eq!(net.registry().snapshot().gauge("alerts.firing", &[]), 0.0);
}

#[test]
fn repeated_searches_accumulate_per_source_histograms() {
    let net = SimNet::new();
    let (meta, corpus) = searcher(&net);
    let workload = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 5,
            ..WorkloadConfig::default()
        },
    );
    net.registry().reset();
    for gq in &workload.queries {
        meta.search(&gq.query);
    }
    let snap = net.registry().snapshot();
    assert_eq!(snap.counter("meta.searches", &[]), 5);
    for s in &corpus.sources {
        let h = snap
            .histogram("meta.source_latency_ms", &[("source", &s.id)])
            .expect("per-source histogram");
        assert_eq!(h.count, 5, "{} contacted once per search", s.id);
    }
    // The span ring holds 5 closings of each phase.
    let dispatches = net
        .registry()
        .recent_spans()
        .into_iter()
        .filter(|e| e.path == "meta.search/dispatch")
        .count();
    assert_eq!(dispatches, 5);
}
