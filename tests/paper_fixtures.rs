//! Parsing the paper's SOIF examples *as printed* — including the
//! camera-ready copy's off-by-one byte counts — through the lenient
//! parser. A metasearcher of 1997 interoperating with a source whose
//! counts drifted would have needed exactly this resilience.

use starts::proto::summary::ContentSummary;
use starts::proto::{Query, SourceMetadata};
use starts::soif::{parse_one, ParseMode};

/// Example 10's `@SMetaAttributes`, transcribed from the paper with its
/// printed byte counts (17 for a 16-byte value, 39 for 38, 9 for 10 —
/// all wrong) and plain-quote rendering.
const EXAMPLE_10_AS_PRINTED: &str = "@SMetaAttributes{\n\
Version{10}: STARTS 1.0\n\
SourceID{8}: Source-1\n\
FieldsSupported{17}: [basic-1 author]\n\
ModifiersSupported{19}: {basic-1 phonetics}\n\
FieldModifierCombinations{39}: ([basic-1 author] {basic-1 phonetics})\n\
QueryPartsSupported{2}: RF\n\
ScoreRange{7}: 0.0 1.0\n\
RankingAlgorithmID{6}: Acme-1\n\
DefaultMetaAttributeSet{8}: mbasic-1\n\
source-languages{8}: en-US es\n\
source-name{17}: Stanford DB Group\n\
linkage{40}: http://www-db.stanford.edu/cgi-bin/query\n\
content-summary-linkage{38}: ftp://www-db.stanford.edu/cont_sum.txt\n\
date-changed{9}: 1996-03-31\n\
}\n";

#[test]
fn example_10_as_printed_needs_lenient_mode() {
    // Strict parsing must reject the wrong counts…
    assert!(parse_one(EXAMPLE_10_AS_PRINTED.as_bytes(), ParseMode::Strict).is_err());
    // …lenient parsing recovers every value.
    let obj = parse_one(EXAMPLE_10_AS_PRINTED.as_bytes(), ParseMode::Lenient).unwrap();
    let m = SourceMetadata::from_soif(&obj).unwrap();
    assert_eq!(m.source_id, "Source-1");
    assert_eq!(m.ranking_algorithm_id, "Acme-1");
    assert_eq!(m.score_range, (0.0, 1.0));
    assert!(m.query_parts_supported.supports_filter());
    assert!(m.query_parts_supported.supports_ranking());
    assert_eq!(m.source_name, "Stanford DB Group");
    assert_eq!(m.linkage, "http://www-db.stanford.edu/cgi-bin/query");
    assert_eq!(
        m.content_summary_linkage,
        "ftp://www-db.stanford.edu/cont_sum.txt"
    );
    assert_eq!(m.date_changed.as_deref(), Some("1996-03-31"));
    assert_eq!(m.source_languages.len(), 2);
    assert_eq!(m.fields_supported.len(), 1);
    assert_eq!(m.modifiers_supported.len(), 1);
    assert_eq!(m.field_modifier_combinations.len(), 1);
}

/// Example 11's `@SContentSummary` as printed (counts here are
/// consistent apart from the elided term list).
const EXAMPLE_11_AS_PRINTED: &str = "@SContentSummary{\n\
Version{10}: STARTS 1.0\n\
Stemming{1}: F\n\
StopWords{1}: F\n\
CaseSensitive{1}: F\n\
Fields{1}: T\n\
NumDocs{3}: 892\n\
Field{5}: title\n\
Language{5}: en-US\n\
TermDocFreq{40}: \"algorithm\" 100 53\n\"analysis\" 50 23\n\
Field{5}: title\n\
Language{2}: es\n\
TermDocFreq{38}: \"algoritmo\" 23 11\n\"datos\" 59 12\n\
}\n";

#[test]
fn example_11_as_printed_parses() {
    let obj = parse_one(EXAMPLE_11_AS_PRINTED.as_bytes(), ParseMode::Lenient).unwrap();
    let s = ContentSummary::from_soif(&obj).unwrap();
    assert_eq!(s.num_docs, 892);
    assert!(!s.stemmed);
    assert!(!s.stop_words_included);
    assert_eq!(s.sections.len(), 2);
    assert_eq!(s.df(Some("title"), "algorithm"), 53);
    assert_eq!(s.df(Some("title"), "datos"), 12);
    let t = s.lookup(Some("title"), "algoritmo").unwrap();
    assert_eq!(t.total_postings, Some(23));
}

/// A query object typed by hand with sloppy counts still decodes in
/// lenient mode — the "be liberal in what you accept" posture a 1997
/// metasearcher needed.
#[test]
fn hand_typed_query_with_bad_counts() {
    let text = "@SQuery{\n\
        Version{10}: STARTS 1.0\n\
        FilterExpression{999}: (author \"Ullman\")\n\
        MaxNumberDocuments{2}: 10\n\
        }\n";
    let obj = parse_one(text.as_bytes(), ParseMode::Lenient).unwrap();
    let q = Query::from_soif(&obj).unwrap();
    assert!(q.filter.is_some());
    assert_eq!(q.answer.max_documents, 10);
}
