//! Multi-language support end to end (§4.1.1's l-strings and the
//! bilingual Source-1 of Examples 10–11).

use starts::corpus::{generate_corpus, CorpusConfig};
use starts::index::Document;
use starts::proto::query::ast::{QTerm, RankExpr};
use starts::proto::query::parse_filter;
use starts::proto::{Field, LString, Query};
use starts::source::{Source, SourceConfig};
use starts::text::LangTag;

/// The paper's bilingual source: American English and Spanish documents.
fn bilingual_source() -> Source {
    let docs = vec![
        Document::new()
            .field_lang("title", "algorithm analysis", LangTag::en_us())
            .field_lang(
                "body-of-text",
                "analysis of algorithm behavior in databases",
                LangTag::en_us(),
            )
            .field("linkage", "http://x/en-1"),
        Document::new()
            .field_lang("title", "algoritmo de datos", LangTag::es())
            .field_lang(
                "body-of-text",
                "un algoritmo para datos distribuidos",
                LangTag::es(),
            )
            .field("linkage", "http://x/es-1"),
    ];
    let mut cfg = SourceConfig::new("Source-1");
    cfg.languages = vec![LangTag::en_us(), LangTag::es()];
    Source::build(cfg, &docs)
}

#[test]
fn metadata_exports_both_languages() {
    let s = bilingual_source();
    let m = s.metadata();
    assert_eq!(m.source_languages, vec![LangTag::en_us(), LangTag::es()]);
    // One tokenizer id per language, as in Example 10's TokenizerIDList.
    assert_eq!(m.tokenizer_id_list.len(), 2);
    // The per-field languages surface in the content summary's sections
    // (Example 11's `Language{5}: en-US` / `Language{2}: es` headers).
    let summary = s.content_summary();
    let title_langs: Vec<&LangTag> = summary
        .sections
        .iter()
        .filter(|sec| sec.field.as_deref() == Some("title"))
        .filter_map(|sec| sec.language.as_ref())
        .collect();
    assert!(!title_langs.is_empty());
}

#[test]
fn content_summary_sections_by_language() {
    // Example 11's shape: per-field sections with Spanish and English
    // words, each carrying statistics.
    let s = bilingual_source();
    let summary = s.content_summary();
    assert_eq!(summary.num_docs, 2);
    assert_eq!(summary.df(Some("title"), "algorithm"), 1);
    assert_eq!(summary.df(Some("title"), "algoritmo"), 1);
    assert_eq!(summary.df(Some("body-of-text"), "datos"), 1);
}

#[test]
fn spanish_lstring_queries_match_spanish_documents() {
    let s = bilingual_source();
    let term = QTerm {
        field: Some(Field::BodyOfText),
        modifiers: vec![],
        value: LString::tagged(LangTag::es(), "datos"),
    };
    let q = Query {
        ranking: Some(RankExpr::term(term)),
        ..Query::default()
    };
    let results = s.execute(&q);
    assert_eq!(results.documents.len(), 1);
    assert_eq!(results.documents[0].linkage(), Some("http://x/es-1"));
}

#[test]
fn monolingual_source_drops_foreign_terms() {
    // An en-US-only source receiving `[es "datos"]` drops the term and
    // reports it via the actual query.
    let docs = vec![Document::new()
        .field("body-of-text", "plain english text about datos even")
        .field("linkage", "http://x/en")];
    let mut cfg = SourceConfig::new("Mono");
    cfg.languages = vec![LangTag::en_us()];
    let s = Source::build(cfg, &docs);
    let q = Query {
        filter: Some(
            parse_filter(r#"((body-of-text [es "datos"]) or (body-of-text "english"))"#).unwrap(),
        ),
        ..Query::default()
    };
    let results = s.execute(&q);
    let actual = results.actual_filter.as_ref().unwrap();
    assert_eq!(actual.terms().len(), 1, "the Spanish term must be dropped");
    assert_eq!(actual.terms()[0].value.text, "english");
}

#[test]
fn bilingual_generated_corpus_round_trips() {
    // The corpus generator's bilingual sources produce tagged documents
    // that survive indexing, summarization and SOIF.
    let corpus = generate_corpus(&CorpusConfig {
        n_sources: 2,
        docs_per_source: 10,
        bilingual_fraction: 0.6,
        seed: 777,
        ..CorpusConfig::default()
    });
    let bilingual = corpus.sources.iter().find(|s| s.bilingual).unwrap();
    let mut cfg = SourceConfig::new(&bilingual.id);
    cfg.languages = vec![LangTag::en_us(), LangTag::es()];
    let source = Source::build(cfg, &bilingual.docs);
    let summary = source.content_summary();
    let bytes = starts::soif::write_object(&summary.to_soif());
    let back = starts::proto::summary::ContentSummary::from_soif(
        &starts::soif::parse_one(&bytes, starts::soif::ParseMode::Strict).unwrap(),
    )
    .unwrap();
    assert_eq!(back, summary);
    // Spanish vocabulary is present in the summary.
    assert!(summary
        .sections
        .iter()
        .any(|sec| sec.terms.iter().any(|t| t.term.starts_with("es"))));
}
