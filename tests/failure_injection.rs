//! Failure-injection tests: the metasearcher must degrade gracefully
//! when sources misbehave — STARTS has no error channel, so robustness
//! lives entirely on the client side.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use starts::index::Document;
use starts::meta::catalog::Catalog;
use starts::meta::metasearcher::{MetaConfig, Metasearcher};
use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts::proto::query::parse_ranking;
use starts::proto::Query;
use starts::source::{Source, SourceConfig};

fn good_source(net: &SimNet, id: &str, word: &str) -> String {
    let docs = vec![Document::new()
        .field("title", format!("{id} document"))
        .field("body-of-text", format!("{word} text content here"))
        .field("linkage", format!("http://{id}/doc"))];
    wire_source(
        net,
        Source::build(SourceConfig::new(id), &docs),
        LinkProfile::default(),
    )
}

fn discover(net: &SimNet, ids: &[&str]) -> Catalog {
    let client = StartsClient::new(net);
    let mut catalog = Catalog::default();
    for id in ids {
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", id.to_lowercase()),
                LinkProfile::default(),
                false,
            )
            .unwrap();
    }
    catalog
}

#[test]
fn garbage_responding_source_is_skipped_not_fatal() {
    let net = SimNet::new();
    good_source(&net, "Good", "shared");
    good_source(&net, "Bad", "shared");
    let mut catalog = discover(&net, &["Good", "Bad"]);
    // After discovery, the Bad source starts answering queries with
    // garbage bytes (a crashed CGI, a proxy error page, …).
    net.register(
        "starts://bad/query",
        LinkProfile::default(),
        Arc::new(|_: &[u8]| b"HTTP/1.0 500 Internal Server Error".to_vec()),
    );
    catalog.entries.reverse(); // make Bad the first-ranked entry
    let meta = Metasearcher::new(
        &net,
        catalog,
        MetaConfig {
            max_sources: 2,
            ..MetaConfig::default()
        },
    );
    let resp = meta.search(&Query {
        ranking: Some(parse_ranking(r#"list((body-of-text "shared"))"#).unwrap()),
        ..Query::default()
    });
    // Both sources were selected, but only the good one contributed.
    assert_eq!(resp.selected.len(), 2);
    assert_eq!(resp.per_source.len(), 1);
    assert_eq!(resp.merged.len(), 1);
    assert_eq!(resp.merged[0].linkage, "http://Good/doc");
}

#[test]
fn vanished_source_is_skipped_not_fatal() {
    let net = SimNet::new();
    good_source(&net, "Alive", "topic");
    let mut catalog = discover(&net, &["Alive"]);
    // A second source was discovered earlier but its endpoint is gone
    // (the catalog is stale — §3.4's crawl is periodic, not live).
    let mut ghost = catalog.entries[0].clone();
    ghost.id = "Ghost".to_string();
    ghost.metadata.source_id = "Ghost".to_string();
    ghost.metadata.linkage = "starts://ghost/query".to_string();
    catalog.entries.push(ghost);
    let meta = Metasearcher::new(
        &net,
        catalog,
        MetaConfig {
            max_sources: 2,
            ..MetaConfig::default()
        },
    );
    let resp = meta.search(&Query {
        ranking: Some(parse_ranking(r#"list((body-of-text "topic"))"#).unwrap()),
        ..Query::default()
    });
    assert_eq!(resp.per_source.len(), 1, "ghost must be skipped");
    assert!(!resp.merged.is_empty());
}

#[test]
fn half_garbled_result_stream_is_rejected_whole() {
    // A source that truncates its result stream mid-object: the client
    // treats the response as unusable (no partial-trust parsing of
    // protocol objects) and continues with other sources.
    let net = SimNet::new();
    good_source(&net, "Whole", "word");
    let truncated = {
        let docs = vec![Document::new()
            .field("body-of-text", "word word word")
            .field("linkage", "http://trunc/doc")];
        let source = Source::build(SourceConfig::new("Trunc"), &docs);
        let q = Query {
            ranking: Some(parse_ranking(r#"list((body-of-text "word"))"#).unwrap()),
            ..Query::default()
        };
        let mut bytes = source.execute(&q).to_soif_stream();
        bytes.truncate(bytes.len() / 2);
        bytes
    };
    // Wire Trunc's metadata endpoints from a healthy twin, then override
    // its query endpoint with the truncating responder.
    good_source(&net, "Trunc", "word");
    net.register(
        "starts://trunc/query",
        LinkProfile::default(),
        Arc::new(move |_: &[u8]| truncated.clone()),
    );
    let catalog = discover(&net, &["Whole", "Trunc"]);
    let meta = Metasearcher::new(
        &net,
        catalog,
        MetaConfig {
            max_sources: 2,
            ..MetaConfig::default()
        },
    );
    let resp = meta.search(&Query {
        ranking: Some(parse_ranking(r#"list((body-of-text "word"))"#).unwrap()),
        ..Query::default()
    });
    assert_eq!(resp.per_source.len(), 1);
    assert_eq!(resp.merged[0].sources, vec!["Whole".to_string()]);
}

#[test]
fn slow_source_does_not_block_accounting() {
    // Latency accounting: the wave is as slow as its slowest member, but
    // the response still arrives (the simulator never hangs).
    let net = SimNet::new();
    good_source(&net, "Fast", "xyz");
    good_source(&net, "Slow", "xyz");
    let mut catalog = discover(&net, &["Fast", "Slow"]);
    catalog.entries[1].link = LinkProfile {
        latency_ms: 5000,
        cost_per_query: 0.0,
    };
    let meta = Metasearcher::new(
        &net,
        catalog,
        MetaConfig {
            max_sources: 2,
            ..MetaConfig::default()
        },
    );
    let resp = meta.search(&Query {
        ranking: Some(parse_ranking(r#"list((body-of-text "xyz"))"#).unwrap()),
        ..Query::default()
    });
    assert_eq!(resp.wave_latency_ms, 5000);
    assert_eq!(resp.per_source.len(), 2);
}

#[test]
fn endpoint_replacement_is_atomic_under_concurrency() {
    // Re-registering an endpoint while requests fly must never produce a
    // torn response: every reply is entirely old or entirely new.
    let net = Arc::new(SimNet::new());
    net.register(
        "u",
        LinkProfile::default(),
        Arc::new(|_: &[u8]| vec![b'A'; 64]),
    );
    let flips = Arc::new(AtomicU32::new(0));
    std::thread::scope(|scope| {
        {
            let net = Arc::clone(&net);
            scope.spawn(move || {
                for i in 0..200 {
                    let byte = if i % 2 == 0 { b'B' } else { b'A' };
                    net.register(
                        "u",
                        LinkProfile::default(),
                        Arc::new(move |_: &[u8]| vec![byte; 64]),
                    );
                }
            });
        }
        for _ in 0..4 {
            let net = Arc::clone(&net);
            let flips = Arc::clone(&flips);
            scope.spawn(move || {
                for _ in 0..200 {
                    let r = net.request("u", b"x").unwrap();
                    assert_eq!(r.bytes.len(), 64);
                    let first = r.bytes[0];
                    assert!(r.bytes.iter().all(|&b| b == first), "torn response");
                    flips.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(flips.load(Ordering::Relaxed), 800);
}
