#![warn(missing_docs)]

//! **starts** — a complete Rust reproduction of *STARTS: Stanford
//! Proposal for Internet Meta-Searching* (Gravano, Chang, García-Molina,
//! Paepcke; SIGMOD 1997).
//!
//! STARTS is the protocol the Stanford Digital Library project brokered
//! between eleven search-engine vendors so that *metasearchers* could
//! perform their three tasks over heterogeneous sources:
//!
//! 1. **choose the best sources** for a query (from exported metadata
//!    and content summaries),
//! 2. **evaluate the query** at those sources (a common query language
//!    with per-source capability declarations), and
//! 3. **merge the results** (unnormalized scores plus the term/document
//!    statistics needed to re-rank without retrieving documents).
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`proto`] | `starts-proto` | the STARTS-1.0 protocol: query language, attribute sets, results, metadata, summaries, resources |
//! | [`soif`] | `starts-soif` | the Harvest SOIF wire encoding |
//! | [`text`] | `starts-text` | tokenizers, Porter stemmer, Soundex, stop lists, language tags |
//! | [`index`] | `starts-index` | the fielded positional inverted-index engine with pluggable rankers |
//! | [`source`] | `starts-source` | STARTS-conformant sources and resources |
//! | [`net`] | `starts-net` | the sessionless transport simulation |
//! | [`obs`] | `starts-obs` | spans, metrics, and the Prometheus/SOIF stats exporters |
//! | [`meta`] | `starts-meta` | the metasearcher: selection, adaptation, merging, calibration |
//! | [`serve`] | `starts-serve` | the concurrent serving layer: executor pools, singleflight, result cache, hedged dispatch, deadlines |
//! | [`corpus`] | `starts-corpus` | synthetic corpora and workloads with known relevance |
//! | [`zdsr`] | `starts-zdsr` | the Z39.50/ZDSR bridge (filter expressions ⇄ PQF) |
//!
//! # Quickstart
//!
//! ```
//! use starts::index::Document;
//! use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
//! use starts::proto::{query::parse_ranking, Query};
//! use starts::source::{Source, SourceConfig};
//!
//! // 1. Build and publish a source.
//! let docs = vec![Document::new()
//!     .field("title", "Distributed Databases")
//!     .field("body-of-text", "replication and distributed databases processing")
//!     .field("linkage", "http://example.org/paper.ps")];
//! let net = SimNet::new();
//! let url = wire_source(&net, Source::build(SourceConfig::new("Demo"), &docs),
//!                       LinkProfile::default());
//!
//! // 2. Query it over the wire.
//! let client = StartsClient::new(&net);
//! let query = Query {
//!     ranking: Some(parse_ranking(r#"list((body-of-text "databases"))"#).unwrap()),
//!     ..Query::default()
//! };
//! let results = client.query(&url, &query).unwrap();
//! assert_eq!(results.documents.len(), 1);
//! assert_eq!(results.documents[0].linkage(), Some("http://example.org/paper.ps"));
//! ```

pub use starts_corpus as corpus;
pub use starts_index as index;
pub use starts_meta as meta;
pub use starts_net as net;
pub use starts_obs as obs;
pub use starts_proto as proto;
pub use starts_serve as serve;
pub use starts_soif as soif;
pub use starts_source as source;
pub use starts_text as text;
pub use starts_zdsr as zdsr;
