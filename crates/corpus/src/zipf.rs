//! A Zipf-distributed rank sampler.
//!
//! Word frequencies in text follow Zipf's law; sampling token ranks from
//! `P(r) ∝ 1/r^s` gives the synthetic corpora realistic df/tf profiles
//! (a few very common words, a long tail), which is what makes idf-style
//! weighting — and hence the rank-merging experiments — behave as they
//! do on real text.

use rand::Rng;

/// A sampler over ranks `0..n` with `P(r) ∝ 1/(r+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights; `cumulative.last()` is the
    /// normalization constant.
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (constructor enforces n > 0).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|w| w.partial_cmp(&x).expect("finite weights"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 much more frequent than rank 99.
        assert!(counts[0] > 10 * counts[99].max(1));
        // Monotone-ish decrease over decades.
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
    }

    #[test]
    fn exponent_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.25, "not uniform: {counts:?}");
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
