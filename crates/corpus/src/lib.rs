#![warn(missing_docs)]

//! `starts-corpus` — synthetic document collections and query workloads
//! for the STARTS experiments.
//!
//! The paper evaluates nothing itself (it is an experience paper), but
//! every claim it makes about metasearch — topic-skewed collections make
//! scores incomparable (§3.2), content summaries suffice for source
//! selection (§3.3/§4.3.2), term statistics enable re-ranking (§4.2) —
//! is only testable against collections whose *relevance ground truth is
//! known*. This crate generates them:
//!
//! * Zipfian background vocabulary (natural-language-like frequency
//!   distribution);
//! * per-source **topic skew**: each source specializes in one topic,
//!   reproducing §3.2's "a source S1 specializes in computer science,
//!   the word *databases* might appear in many of its documents";
//! * optional bilingual sources (English/Spanish, like the paper's
//!   Source-1 in Examples 10–11);
//! * query workloads whose relevant-document sets are computed exactly
//!   from the generated text.

pub mod gen;
pub mod workload;
pub mod zipf;

pub use gen::{generate as generate_corpus, CorpusConfig, GeneratedCorpus, GeneratedSource};
pub use workload::{generate as generate_workload, GenQuery, Workload, WorkloadConfig};
pub use zipf::Zipf;
