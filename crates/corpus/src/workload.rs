//! Query workloads with generator-known relevance.
//!
//! A workload query draws 1–3 words from one topic's vocabulary. The
//! relevant set is computed exactly by scanning the generated text: a
//! document is relevant iff it contains **all** query words. That makes
//! recall/precision of source selection (X6) and rank-merging quality
//! (X7) measurable without human judgments.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starts_proto::query::ast::{QTerm, RankExpr};
use starts_proto::{AnswerSpec, Field, Query};

use crate::gen::GeneratedCorpus;

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub n_queries: usize,
    /// Words per query, min and max.
    pub terms_per_query: (usize, usize),
    /// Maximum documents requested per query.
    pub max_documents: usize,
    /// Seed (independent of the corpus seed).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_queries: 50,
            terms_per_query: (1, 3),
            max_documents: 20,
            seed: 271828,
        }
    }
}

/// One generated query with its ground truth.
#[derive(Debug, Clone)]
pub struct GenQuery {
    /// The STARTS query (a flat `list` ranking expression over
    /// `body-of-text`, the workload shape §4.1.1 calls "the most common
    /// way of constructing vector-space queries").
    pub query: Query,
    /// The query words.
    pub terms: Vec<String>,
    /// The topic the words came from.
    pub topic: usize,
    /// Linkage URLs of all relevant documents (contain ALL query words).
    pub relevant: HashSet<String>,
    /// Per-source count of relevant documents (`relevant_by_source[i]`
    /// is the number of relevant docs held by corpus source `i`) — the
    /// ideal "goodness" vector GlOSS-style selection tries to estimate.
    pub relevant_by_source: Vec<u32>,
}

/// A full workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The queries.
    pub queries: Vec<GenQuery>,
}

/// Generate a workload for a corpus.
pub fn generate(corpus: &GeneratedCorpus, config: &WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queries = Vec::with_capacity(config.n_queries);
    while queries.len() < config.n_queries {
        let topic = rng.gen_range(0..corpus.topics.len());
        let vocab = &corpus.topics[topic];
        let k = rng.gen_range(config.terms_per_query.0..=config.terms_per_query.1);
        // Draw k distinct words, preferring mid-rank words (rank 1..40)
        // which are discriminative but not vanishingly rare.
        let mut terms: Vec<String> = Vec::with_capacity(k);
        let hi = vocab.len().min(40);
        let mut guard = 0;
        while terms.len() < k && guard < 100 {
            guard += 1;
            let w = vocab[rng.gen_range(0..hi)].clone();
            if !terms.contains(&w) {
                terms.push(w);
            }
        }
        let (relevant, relevant_by_source) = ground_truth(corpus, &terms);
        if relevant.is_empty() {
            continue; // unanswerable queries carry no signal; redraw
        }
        let ranking = RankExpr::list_of(
            terms
                .iter()
                .map(|t| QTerm::fielded(Field::BodyOfText, t.clone())),
        );
        let query = Query {
            ranking: Some(ranking),
            answer: AnswerSpec {
                fields: vec![Field::Title],
                max_documents: config.max_documents,
                ..AnswerSpec::default()
            },
            ..Query::default()
        };
        queries.push(GenQuery {
            query,
            terms,
            topic,
            relevant,
            relevant_by_source,
        });
    }
    Workload { queries }
}

/// Compute the exact relevant set: documents whose body contains all
/// query words.
fn ground_truth(corpus: &GeneratedCorpus, terms: &[String]) -> (HashSet<String>, Vec<u32>) {
    let mut relevant = HashSet::new();
    let mut by_source = vec![0u32; corpus.sources.len()];
    for (si, source) in corpus.sources.iter().enumerate() {
        for doc in &source.docs {
            let body = doc.get("body-of-text").unwrap_or("");
            let words: HashSet<&str> = body.split_whitespace().collect();
            if terms.iter().all(|t| words.contains(t.as_str())) {
                relevant.insert(doc.get("linkage").unwrap_or("").to_string());
                by_source[si] += 1;
            }
        }
    }
    (relevant, by_source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate as gen_corpus, CorpusConfig};

    fn corpus() -> GeneratedCorpus {
        gen_corpus(&CorpusConfig {
            n_sources: 4,
            docs_per_source: 50,
            n_topics: 2,
            background_vocab: 300,
            topic_vocab: 40,
            doc_len: (20, 60),
            topic_skew: 0.5,
            bilingual_fraction: 0.0,
            seed: 5,
        })
    }

    #[test]
    fn workload_shape() {
        let c = corpus();
        let w = generate(&c, &WorkloadConfig::default());
        assert_eq!(w.queries.len(), 50);
        for q in &w.queries {
            assert!(!q.terms.is_empty() && q.terms.len() <= 3);
            assert!(!q.relevant.is_empty());
            assert!(q.query.ranking.is_some());
            assert_eq!(q.query.answer.max_documents, 20);
            // Ground truth consistency: per-source counts sum to total.
            let sum: u32 = q.relevant_by_source.iter().sum();
            assert_eq!(sum as usize, q.relevant.len());
        }
    }

    #[test]
    fn relevance_is_exact() {
        let c = corpus();
        let w = generate(&c, &WorkloadConfig::default());
        let q = &w.queries[0];
        // Check by brute force on the corpus.
        for source in &c.sources {
            for doc in &source.docs {
                let body = doc.get("body-of-text").unwrap();
                let words: HashSet<&str> = body.split_whitespace().collect();
                let is_relevant = q.terms.iter().all(|t| words.contains(t.as_str()));
                let url = doc.get("linkage").unwrap();
                assert_eq!(
                    q.relevant.contains(url),
                    is_relevant,
                    "ground truth mismatch for {url}"
                );
            }
        }
    }

    #[test]
    fn topic_queries_favor_topic_sources() {
        // Relevant documents should concentrate in sources of the query's
        // topic — the premise of source selection.
        let c = corpus();
        let w = generate(
            &c,
            &WorkloadConfig {
                n_queries: 30,
                ..WorkloadConfig::default()
            },
        );
        let mut in_topic = 0u32;
        let mut off_topic = 0u32;
        for q in &w.queries {
            for (si, count) in q.relevant_by_source.iter().enumerate() {
                if c.sources[si].topic == q.topic {
                    in_topic += count;
                } else {
                    off_topic += count;
                }
            }
        }
        assert!(
            in_topic > 10 * off_topic.max(1),
            "topic concentration too weak: {in_topic} vs {off_topic}"
        );
    }

    #[test]
    fn deterministic() {
        let c = corpus();
        let a = generate(&c, &WorkloadConfig::default());
        let b = generate(&c, &WorkloadConfig::default());
        assert_eq!(a.queries[0].terms, b.queries[0].terms);
        assert_eq!(a.queries[10].relevant, b.queries[10].relevant);
    }
}
