//! Corpus generation: topic-skewed, multi-source synthetic collections.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starts_index::Document;
use starts_text::LangTag;

use crate::zipf::Zipf;

/// Configuration of a generated multi-source corpus.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of sources.
    pub n_sources: usize,
    /// Documents per source.
    pub docs_per_source: usize,
    /// Number of distinct topics; source `i` specializes in topic
    /// `i % n_topics`.
    pub n_topics: usize,
    /// Background vocabulary size (shared across topics).
    pub background_vocab: usize,
    /// Topic vocabulary size (per topic, disjoint from background).
    pub topic_vocab: usize,
    /// Tokens per document body, min and max (uniform).
    pub doc_len: (usize, usize),
    /// Probability that a token is drawn from the source's topic
    /// vocabulary rather than the background (§3.2's specialization).
    pub topic_skew: f64,
    /// Fraction of sources that also hold Spanish documents (their even
    /// documents are generated with Spanish-ish vocabulary and tagged
    /// `es`).
    pub bilingual_fraction: f64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_sources: 10,
            docs_per_source: 100,
            n_topics: 5,
            background_vocab: 2000,
            topic_vocab: 120,
            doc_len: (30, 120),
            topic_skew: 0.35,
            bilingual_fraction: 0.0,
            seed: 4217,
        }
    }
}

/// One generated source.
#[derive(Debug, Clone)]
pub struct GeneratedSource {
    /// Source id (`Gen-0`, `Gen-1`, …).
    pub id: String,
    /// The topic this source specializes in.
    pub topic: usize,
    /// Whether this source holds Spanish documents too.
    pub bilingual: bool,
    /// The documents.
    pub docs: Vec<Document>,
}

/// A generated corpus: sources plus the vocabulary metadata needed to
/// build query workloads with known answers.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// The sources.
    pub sources: Vec<GeneratedSource>,
    /// Per-topic vocabularies (`topics[t]` is the word list of topic t).
    pub topics: Vec<Vec<String>>,
    /// The background vocabulary.
    pub background: Vec<String>,
    /// The configuration that produced this corpus.
    pub config: CorpusConfig,
}

/// The word at a background rank.
fn background_word(rank: usize) -> String {
    format!("w{rank:04}")
}

/// The word at a topic rank.
fn topic_word(topic: usize, rank: usize) -> String {
    format!("t{topic}x{rank:03}")
}

/// Spanish-ish background word (disjoint vocabulary, tagged `es`).
fn spanish_word(rank: usize) -> String {
    format!("es{rank:04}")
}

/// Generate a corpus.
pub fn generate(config: &CorpusConfig) -> GeneratedCorpus {
    assert!(config.n_topics > 0, "need at least one topic");
    assert!(config.doc_len.0 > 0 && config.doc_len.0 <= config.doc_len.1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let background_zipf = Zipf::new(config.background_vocab, 1.0);
    let topic_zipf = Zipf::new(config.topic_vocab, 0.8);
    let topics: Vec<Vec<String>> = (0..config.n_topics)
        .map(|t| (0..config.topic_vocab).map(|r| topic_word(t, r)).collect())
        .collect();
    let background: Vec<String> = (0..config.background_vocab).map(background_word).collect();

    let mut sources = Vec::with_capacity(config.n_sources);
    for s in 0..config.n_sources {
        let topic = s % config.n_topics;
        let bilingual = ((s as f64 + 0.5) / config.n_sources as f64) < config.bilingual_fraction;
        let mut docs = Vec::with_capacity(config.docs_per_source);
        for d in 0..config.docs_per_source {
            let spanish = bilingual && d % 2 == 0;
            let len = rng.gen_range(config.doc_len.0..=config.doc_len.1);
            let mut body = String::with_capacity(len * 7);
            for i in 0..len {
                if i > 0 {
                    body.push(' ');
                }
                let word = if spanish {
                    spanish_word(background_zipf.sample(&mut rng))
                } else if rng.gen_bool(config.topic_skew) {
                    topic_word(topic, topic_zipf.sample(&mut rng))
                } else {
                    background_word(background_zipf.sample(&mut rng))
                };
                body.push_str(&word);
            }
            // Title: a short sample of the same mixture.
            let title_len = rng.gen_range(2..=5);
            let mut title = String::new();
            for i in 0..title_len {
                if i > 0 {
                    title.push(' ');
                }
                let word = if spanish {
                    spanish_word(background_zipf.sample(&mut rng))
                } else if rng.gen_bool(config.topic_skew) {
                    topic_word(topic, topic_zipf.sample(&mut rng))
                } else {
                    background_word(background_zipf.sample(&mut rng))
                };
                title.push_str(&word);
            }
            let year = 1994 + rng.gen_range(0..3);
            let month = rng.gen_range(1..=12);
            let day = rng.gen_range(1..=28);
            let lang = if spanish {
                LangTag::es()
            } else {
                LangTag::en_us()
            };
            let doc = Document::new()
                .field_lang("title", title, lang.clone())
                .field("author", format!("Author {}-{}", s, d % 17))
                .field_lang("body-of-text", body, lang)
                .field("date-last-modified", format!("{year}-{month:02}-{day:02}"))
                .field("linkage", format!("gen://src-{s}/doc-{d}"));
            docs.push(doc);
        }
        sources.push(GeneratedSource {
            id: format!("Gen-{s}"),
            topic,
            bilingual,
            docs,
        });
    }
    GeneratedCorpus {
        sources,
        topics,
        background,
        config: config.clone(),
    }
}

impl GeneratedCorpus {
    /// All documents across all sources (the "single combined source"
    /// baseline a metasearcher pretends to offer).
    pub fn all_docs(&self) -> Vec<Document> {
        self.sources
            .iter()
            .flat_map(|s| s.docs.iter().cloned())
            .collect()
    }

    /// Total document count.
    pub fn total_docs(&self) -> usize {
        self.sources.iter().map(|s| s.docs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorpusConfig {
        CorpusConfig {
            n_sources: 4,
            docs_per_source: 20,
            n_topics: 2,
            background_vocab: 200,
            topic_vocab: 30,
            doc_len: (10, 30),
            topic_skew: 0.5,
            bilingual_fraction: 0.25,
            seed: 99,
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.total_docs(), b.total_docs());
        assert_eq!(
            a.sources[0].docs[0].get("body-of-text"),
            b.sources[0].docs[0].get("body-of-text")
        );
    }

    #[test]
    fn shape_matches_config() {
        let c = generate(&small());
        assert_eq!(c.sources.len(), 4);
        assert_eq!(c.total_docs(), 80);
        assert_eq!(c.topics.len(), 2);
        assert_eq!(c.sources[0].topic, 0);
        assert_eq!(c.sources[1].topic, 1);
        assert_eq!(c.sources[2].topic, 0);
        for s in &c.sources {
            for d in &s.docs {
                assert!(d.get("title").is_some());
                assert!(d.get("linkage").is_some());
                let len = d.get("body-of-text").unwrap().split(' ').count();
                assert!((10..=30).contains(&len));
            }
        }
    }

    #[test]
    fn topic_skew_shows_in_text() {
        let c = generate(&small());
        // Source 0 (topic 0) should contain topic-0 words and hardly any
        // topic-1 words.
        let text: String = c.sources[0]
            .docs
            .iter()
            .map(|d| d.get("body-of-text").unwrap())
            .collect::<Vec<_>>()
            .join(" ");
        let t0 = text.matches("t0x").count();
        let t1 = text.matches("t1x").count();
        assert!(t0 > 20, "topic words missing: {t0}");
        assert_eq!(t1, 0, "foreign topic words leaked in");
    }

    #[test]
    fn bilingual_sources_exist_and_are_tagged() {
        let c = generate(&small());
        let bilingual: Vec<&GeneratedSource> = c.sources.iter().filter(|s| s.bilingual).collect();
        assert_eq!(bilingual.len(), 1); // 25% of 4
        let s = bilingual[0];
        let spanish_docs = s
            .docs
            .iter()
            .filter(|d| d.fields().iter().any(|f| f.lang == Some(LangTag::es())))
            .count();
        assert_eq!(spanish_docs, 10); // every even doc
        let text = s.docs[0].get("body-of-text").unwrap();
        assert!(text.starts_with("es"), "spanish vocab expected: {text}");
    }

    #[test]
    fn linkage_urls_unique() {
        let c = generate(&small());
        let mut urls: Vec<&str> = c
            .sources
            .iter()
            .flat_map(|s| s.docs.iter().map(|d| d.get("linkage").unwrap()))
            .collect();
        let n = urls.len();
        urls.sort_unstable();
        urls.dedup();
        assert_eq!(urls.len(), n);
    }

    #[test]
    fn dates_are_valid_iso() {
        let c = generate(&small());
        for s in &c.sources {
            for d in &s.docs {
                let date = d.get("date-last-modified").unwrap();
                assert_eq!(date.len(), 10);
                assert!(date[..4].parse::<u32>().is_ok());
            }
        }
    }
}
