//! Snapshot exporters: Prometheus text, JSON, and a SOIF `@SStats`
//! object.
//!
//! The SOIF form keeps stats inside the protocol's own object model
//! (§2's "attribute-value pairs carried in objects"), so a metasearcher
//! can serve its own telemetry the same way sources serve
//! `@SMetaAttributes`. It round-trips: [`to_soif`] → `write_object` →
//! `starts_soif::parse` → [`snapshot_from_soif`] reproduces the
//! snapshot exactly.

use starts_soif::SoifObject;

use crate::registry::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricId, Snapshot};

/// The SOIF template name for exported stats.
pub const SSTATS_TEMPLATE: &str = "SStats";

// ---------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{}=\"{}\"",
                prom_name(k),
                v.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        })
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!(
            "{}=\"{}\"",
            prom_name(k),
            v.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        ));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Render a snapshot in the Prometheus text exposition format.
/// Histograms are rendered as summaries with `quantile` labels plus
/// `_sum`/`_count` series.
pub fn prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        if last_family != name {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_family = name.to_string();
        }
    };
    for c in &snap.counters {
        let name = prom_name(&c.id.name);
        type_line(&mut out, &name, "counter");
        out.push_str(&format!(
            "{name}{} {}\n",
            prom_labels(&c.id.labels, None),
            c.value
        ));
    }
    for g in &snap.gauges {
        let name = prom_name(&g.id.name);
        type_line(&mut out, &name, "gauge");
        out.push_str(&format!(
            "{name}{} {}\n",
            prom_labels(&g.id.labels, None),
            g.value
        ));
    }
    for h in &snap.histograms {
        let name = prom_name(&h.id.name);
        type_line(&mut out, &name, "summary");
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            out.push_str(&format!(
                "{name}{} {v}\n",
                prom_labels(&h.id.labels, Some(("quantile", q)))
            ));
        }
        out.push_str(&format!(
            "{name}_sum{} {}\n",
            prom_labels(&h.id.labels, None),
            h.sum
        ));
        out.push_str(&format!(
            "{name}_count{} {}\n",
            prom_labels(&h.id.labels, None),
            h.count
        ));
    }
    out
}

// ---------------------------------------------------------------------
// JSON (for the bench binaries' --stats-json flag)
// ---------------------------------------------------------------------

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Render a snapshot as a JSON document (no external serializer: the
/// build environment is offline, and the shape is small and fixed).
pub fn json(snap: &Snapshot) -> String {
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|c| {
            format!(
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                json_escape(&c.id.name),
                json_labels(&c.id.labels),
                c.value
            )
        })
        .collect();
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|g| {
            format!(
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                json_escape(&g.id.name),
                json_labels(&g.id.labels),
                g.value
            )
        })
        .collect();
    let histograms: Vec<String> = snap
        .histograms
        .iter()
        .map(|h| {
            format!(
                "{{\"name\":\"{}\",\"labels\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_escape(&h.id.name),
                json_labels(&h.id.labels),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            )
        })
        .collect();
    format!(
        "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(",")
    )
}

// ---------------------------------------------------------------------
// SOIF @SStats
// ---------------------------------------------------------------------

/// Encode a snapshot as an `@SStats` SOIF object: one `Counter`,
/// `Gauge`, or `Histogram` attribute per metric (SOIF allows repeated
/// attribute names; `get_all_str` reads them back in order).
pub fn to_soif(snap: &Snapshot) -> SoifObject {
    let mut obj = SoifObject::new(SSTATS_TEMPLATE);
    obj.push_str("Version", "STARTS 1.0");
    for c in &snap.counters {
        obj.push_str("Counter", format!("{} {}", c.id, c.value));
    }
    for g in &snap.gauges {
        obj.push_str("Gauge", format!("{} {}", g.id, g.value));
    }
    for h in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(upper, n)| format!("{upper}:{n}"))
            .collect();
        obj.push_str(
            "Histogram",
            format!(
                "{} count={} sum={} min={} max={} p50={} p95={} p99={} buckets={}",
                h.id,
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99,
                buckets.join(",")
            ),
        );
    }
    obj
}

/// Decode an `@SStats` object back into a snapshot.
pub fn snapshot_from_soif(obj: &SoifObject) -> Result<Snapshot, String> {
    if obj.template != SSTATS_TEMPLATE {
        return Err(format!(
            "expected @{SSTATS_TEMPLATE}, got @{}",
            obj.template
        ));
    }
    let mut snap = Snapshot::default();
    for value in obj.get_all_str("Counter") {
        let (id, rest) = parse_metric_id(value)?;
        let value = rest
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("counter {}: {e}", id.name))?;
        snap.counters.push(CounterSnapshot { id, value });
    }
    for value in obj.get_all_str("Gauge") {
        let (id, rest) = parse_metric_id(value)?;
        let value = rest
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("gauge {}: {e}", id.name))?;
        snap.gauges.push(GaugeSnapshot { id, value });
    }
    for value in obj.get_all_str("Histogram") {
        let (id, rest) = parse_metric_id(value)?;
        snap.histograms.push(parse_histogram(id, rest)?);
    }
    Ok(snap)
}

fn parse_histogram(id: MetricId, rest: &str) -> Result<HistogramSnapshot, String> {
    let mut h = HistogramSnapshot {
        id,
        count: 0,
        sum: 0,
        min: 0,
        max: 0,
        p50: 0,
        p95: 0,
        p99: 0,
        buckets: Vec::new(),
    };
    for token in rest.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("histogram {}: bad token {token:?}", h.id.name))?;
        let num = |v: &str| {
            v.parse::<u64>()
                .map_err(|e| format!("histogram {}: {key}: {e}", h.id.name))
        };
        match key {
            "count" => h.count = num(value)?,
            "sum" => h.sum = num(value)?,
            "min" => h.min = num(value)?,
            "max" => h.max = num(value)?,
            "p50" => h.p50 = num(value)?,
            "p95" => h.p95 = num(value)?,
            "p99" => h.p99 = num(value)?,
            "buckets" => {
                for pair in value.split(',').filter(|p| !p.is_empty()) {
                    let (upper, n) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("histogram {}: bad bucket {pair:?}", h.id.name))?;
                    h.buckets.push((num(upper)?, num(n)?));
                }
            }
            _ => return Err(format!("histogram {}: unknown key {key:?}", h.id.name)),
        }
    }
    Ok(h)
}

/// Parse `name` or `name{k="v",...}` off the front of a metric line;
/// returns the id and the remainder of the line.
fn parse_metric_id(line: &str) -> Result<(MetricId, &str), String> {
    let line = line.trim_start();
    let name_end = line.find(['{', ' ']).unwrap_or(line.len());
    let name = &line[..name_end];
    if name.is_empty() {
        return Err(format!("empty metric name in {line:?}"));
    }
    let rest = &line[name_end..];
    if !rest.starts_with('{') {
        return Ok((MetricId::new(name, &[]), rest));
    }
    let mut labels: Vec<(String, String)> = Vec::new();
    let bytes = rest.as_bytes();
    let mut i = 1;
    loop {
        if i >= bytes.len() {
            return Err(format!("unterminated labels in {line:?}"));
        }
        if bytes[i] == b'}' {
            i += 1;
            break;
        }
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let key = rest[key_start..i].to_string();
        i += 1; // '='
        if bytes.get(i) != Some(&b'"') {
            return Err(format!("expected quoted label value in {line:?}"));
        }
        i += 1;
        let mut value: Vec<u8> = Vec::new();
        loop {
            match bytes.get(i) {
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => {
                    let escaped = *bytes
                        .get(i + 1)
                        .ok_or_else(|| format!("dangling escape in {line:?}"))?;
                    value.push(escaped);
                    i += 2;
                }
                Some(&b) => {
                    value.push(b);
                    i += 1;
                }
                None => return Err(format!("unterminated label value in {line:?}")),
            }
        }
        let value =
            String::from_utf8(value).map_err(|_| format!("non-UTF-8 label value in {line:?}"))?;
        labels.push((key, value));
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
    let label_refs: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    Ok((MetricId::new(name, &label_refs), &rest[i..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter_with("net.requests", &[("url", "starts://db/query")])
            .add(3);
        reg.gauge_with("net.cost", &[("url", "starts://db/query")])
            .add(2.5);
        let h = reg.histogram_with("net.latency_ms", &[("url", "starts://db/query")]);
        for v in [10, 50, 300] {
            h.observe(v);
        }
        reg
    }

    #[test]
    fn prometheus_text_shape() {
        let text = prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE net_requests counter"));
        assert!(text.contains("net_requests{url=\"starts://db/query\"} 3"));
        assert!(text.contains("# TYPE net_cost gauge"));
        assert!(text.contains("# TYPE net_latency_ms summary"));
        assert!(text.contains("quantile=\"0.95\""));
        assert!(text.contains("net_latency_ms_count{url=\"starts://db/query\"} 3"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let doc = json(&sample_registry().snapshot());
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"name\":\"net.latency_ms\""));
        assert!(doc.contains("\"count\":3"));
        // Balanced braces (a cheap structural check without a parser).
        let open = doc.matches('{').count();
        let close = doc.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn soif_round_trip_exact() {
        let snap = sample_registry().snapshot();
        let bytes = starts_soif::write_object(&to_soif(&snap));
        let obj = starts_soif::parse_one(&bytes, starts_soif::ParseMode::Strict).expect("parses");
        assert_eq!(obj.template, SSTATS_TEMPLATE);
        let back = snapshot_from_soif(&obj).expect("decodes");
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        // Source ids are attacker-ish input as far as the exposition
        // format is concerned: backslashes, quotes, and newlines in a
        // label value must come out escaped, never raw.
        let reg = Registry::new();
        let hostile = "evil\\source\"with\nnewline";
        reg.counter_with("src.queries", &[("source", hostile)])
            .inc();
        reg.histogram_with("src.latency_ms", &[("source", hostile)])
            .observe(7);
        let text = prometheus(&reg.snapshot());
        assert!(
            text.contains(r#"source="evil\\source\"with\nnewline""#),
            "expected escaped label in:\n{text}"
        );
        // No line may contain a raw (unescaped) quote-break or newline
        // inside a label value: every line must end after the sample
        // value, so the line count is exactly the series count.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.ends_with(|c: char| c.is_ascii_digit()),
                "line broken by unescaped newline: {line:?}"
            );
        }
        // quantile labels on the histogram summary stay well-formed too.
        assert!(text.contains(r#"quantile="0.95""#));
    }

    #[test]
    fn metric_id_with_tricky_label_round_trips() {
        let reg = Registry::new();
        reg.counter_with("c", &[("k", r#"quote " and \ slash"#)])
            .inc();
        let snap = reg.snapshot();
        let obj = to_soif(&snap);
        let back = snapshot_from_soif(&obj).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn rejects_wrong_template() {
        let obj = SoifObject::new("SQuery");
        assert!(snapshot_from_soif(&obj).is_err());
    }
}
