//! The metric registry: a process-local table of named instruments.
//!
//! Lookup takes a `parking_lot` read lock and clones an `Arc` handle;
//! the write lock is only taken the first time a `(name, labels)` pair
//! is seen. Updates through a handle touch no lock at all.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use parking_lot::RwLock;

use crate::metrics::{Counter, Gauge, Histogram, HistogramValues};
use crate::span::{Span, SpanEvent, SpanHandle, SpanLog};

/// A metric identity: a dotted name plus label pairs (sorted by key, so
/// label order at the call site does not matter).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId {
    /// Dotted metric name, e.g. `net.latency_ms`.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Build an id, canonicalizing label order.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

impl fmt::Display for MetricId {
    /// `name` or `name{k="v",k2="v2"}`, with `\` and `"` escaped in
    /// values. This is the form the SOIF exporter parses back.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if self.labels.is_empty() {
            return Ok(());
        }
        f.write_str("{")?;
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(
                f,
                "{k}=\"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )?;
        }
        f.write_str("}")
    }
}

/// One counter in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric identity.
    pub id: MetricId,
    /// Counter value.
    pub value: u64,
}

/// One gauge in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric identity.
    pub id: MetricId,
    /// Gauge value.
    pub value: f64,
}

/// One histogram in a [`Snapshot`], with pre-computed quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric identity.
    pub id: MetricId,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    fn from_values(id: MetricId, v: &HistogramValues) -> Self {
        HistogramSnapshot {
            id,
            count: v.count,
            sum: v.sum,
            min: v.min,
            max: v.max,
            p50: v.percentile(0.50),
            p95: v.percentile(0.95),
            p99: v.percentile(0.99),
            buckets: v
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (crate::metrics::bucket_upper_bound(i), n))
                .collect(),
        }
    }
}

/// A point-in-time copy of every instrument in a registry, sorted by
/// metric id for deterministic export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value by name + labels (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let id = MetricId::new(name, labels);
        self.counters
            .iter()
            .find(|c| c.id == id)
            .map_or(0, |c| c.value)
    }

    /// Gauge value by name + labels (0 when absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        let id = MetricId::new(name, labels);
        self.gauges
            .iter()
            .find(|g| g.id == id)
            .map_or(0.0, |g| g.value)
    }

    /// Histogram by name + labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let id = MetricId::new(name, labels);
        self.histograms.iter().find(|h| h.id == id)
    }
}

/// The registry. Cheap to share (`SimNet` holds one in an `Arc`); the
/// process-wide default is [`Registry::global`].
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<MetricId, Counter>>,
    gauges: RwLock<HashMap<MetricId, Gauge>>,
    histograms: RwLock<HashMap<MetricId, Histogram>>,
    pub(crate) spans: SpanLog,
}

fn intern<M: Clone + Default>(table: &RwLock<HashMap<MetricId, M>>, id: MetricId) -> M {
    if let Some(m) = table.read().get(&id) {
        return m.clone();
    }
    table.write().entry(id).or_default().clone()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide default registry, used by the bare
    /// `span!("name")` form.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// An unlabeled counter handle.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// A labeled counter handle.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        intern(&self.counters, MetricId::new(name, labels))
    }

    /// An unlabeled gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// A labeled gauge handle.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        intern(&self.gauges, MetricId::new(name, labels))
    }

    /// An unlabeled histogram handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// A labeled histogram handle.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        intern(&self.histograms, MetricId::new(name, labels))
    }

    /// Open a span nested under this thread's current span (if any).
    pub fn span(&self, name: &str) -> Span<'_> {
        self.span_with(name, Vec::new())
    }

    /// Open a span with structured fields.
    pub fn span_with(&self, name: &str, fields: Vec<(&'static str, String)>) -> Span<'_> {
        Span::enter(self, name, None, fields)
    }

    /// Open a span under an explicit parent — the cross-thread (and
    /// cross-wire) form, for fan-out workers whose logical parent lives
    /// on the dispatching thread, or for a source whose logical parent
    /// arrived inside a query's trace-context attribute.
    pub fn span_under(
        &self,
        name: &str,
        parent: &SpanHandle,
        fields: Vec<(&'static str, String)>,
    ) -> Span<'_> {
        Span::enter(self, name, Some(parent.clone()), fields)
    }

    /// The most recent completed spans, oldest first (bounded ring).
    pub fn recent_spans(&self) -> Vec<SpanEvent> {
        self.spans.recent()
    }

    /// Copy every instrument out.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .read()
            .iter()
            .map(|(id, c)| CounterSnapshot {
                id: id.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.id.cmp(&b.id));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .read()
            .iter()
            .map(|(id, g)| GaugeSnapshot {
                id: id.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.id.cmp(&b.id));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .read()
            .iter()
            .map(|(id, h)| HistogramSnapshot::from_values(id.clone(), &h.snapshot_values()))
            .collect();
        histograms.sort_by(|a, b| a.id.cmp(&b.id));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Drop every instrument and span record (between experiment runs).
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_identity() {
        let reg = Registry::new();
        reg.counter_with("hits", &[("src", "a")]).inc();
        reg.counter_with("hits", &[("src", "a")]).inc();
        reg.counter_with("hits", &[("src", "b")]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits", &[("src", "a")]), 2);
        assert_eq!(snap.counter("hits", &[("src", "b")]), 1);
        assert_eq!(snap.counter("hits", &[]), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.counter_with("c", &[("a", "1"), ("b", "2")]).inc();
        reg.counter_with("c", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.snapshot().counter("c", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn metric_id_display_escapes_values() {
        let id = MetricId::new("m", &[("url", r#"a"b\c"#)]);
        assert_eq!(id.to_string(), r#"m{url="a\"b\\c"}"#);
        assert_eq!(MetricId::new("m", &[]).to_string(), "m");
    }

    #[test]
    fn snapshot_is_sorted_and_resettable() {
        let reg = Registry::new();
        reg.counter("z").inc();
        reg.counter("a").inc();
        reg.histogram("h").observe(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].id.name, "a");
        assert_eq!(snap.counters[1].id.name, "z");
        assert_eq!(snap.histogram("h", &[]).unwrap().count, 1);
        reg.reset();
        assert_eq!(reg.snapshot(), Snapshot::default());
    }
}
