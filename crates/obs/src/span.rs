//! Structured, nestable spans.
//!
//! A span is an RAII guard: opening one pushes its identity onto a
//! thread-local stack (so spans opened inside it become children), and
//! dropping it records the elapsed wall-clock time into the registry —
//! a `span.duration_us` histogram labeled with the full path — plus a
//! bounded ring of recent [`SpanEvent`]s for inspection.
//!
//! Every span carries a process-unique numeric id and its parent's id,
//! so a flat list of [`SpanEvent`]s reconstructs into a tree (see
//! [`crate::trace`]) even when the same path occurs many times — e.g.
//! one `meta.search/dispatch/source` per contacted source.
//!
//! Fan-out workers run on other threads, where the thread-local stack
//! is empty; they use [`crate::Registry::span_under`] with the parent's
//! [`SpanHandle`] to attach to the dispatching span explicitly. The
//! same handle, serialized into a query's trace-context attribute,
//! parents spans across the wire.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

use crate::registry::Registry;

/// How many completed spans the ring buffer keeps.
const SPAN_LOG_CAP: usize = 4096;

/// Process-wide span id allocator (0 is reserved for "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide time anchor for span start offsets, so spans recorded
/// on different threads (or different registries) are comparable.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<(String, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A span's identity: its full path plus its process-unique id. Cheap
/// to clone and `Send`, so it can cross threads (fan-out workers) or
/// the wire (a query's trace-context attribute) to parent spans opened
/// elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanHandle {
    /// Full slash-separated path, e.g. `meta.search/dispatch/source`.
    pub path: String,
    /// Process-unique span id.
    pub id: u64,
}

/// A completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Process-unique span id.
    pub id: u64,
    /// The parent span's id (0 for roots).
    pub parent_id: u64,
    /// Full slash-separated path, e.g. `meta.search/dispatch/source`.
    pub path: String,
    /// The leaf name.
    pub name: String,
    /// The parent path (empty for roots).
    pub parent: String,
    /// Start offset in microseconds since the process time anchor.
    pub start_us: u64,
    /// Elapsed wall-clock microseconds.
    pub duration_us: u64,
    /// Structured fields given at open time.
    pub fields: Vec<(&'static str, String)>,
}

impl SpanEvent {
    /// End offset (start + duration) since the process time anchor.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.duration_us)
    }

    /// First value of a structured field.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Bounded ring of recent [`SpanEvent`]s.
#[derive(Default)]
pub(crate) struct SpanLog {
    ring: Mutex<VecDeque<SpanEvent>>,
}

impl SpanLog {
    fn push(&self, ev: SpanEvent) {
        let mut ring = self.ring.lock();
        if ring.len() == SPAN_LOG_CAP {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    pub(crate) fn recent(&self) -> Vec<SpanEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    pub(crate) fn clear(&self) {
        self.ring.lock().clear();
    }
}

/// An open span; records itself on drop.
pub struct Span<'r> {
    reg: &'r Registry,
    id: u64,
    parent_id: u64,
    path: String,
    name: String,
    parent: String,
    start_us: u64,
    start: Instant,
    fields: Vec<(&'static str, String)>,
}

impl<'r> Span<'r> {
    pub(crate) fn enter(
        reg: &'r Registry,
        name: &str,
        explicit_parent: Option<SpanHandle>,
        fields: Vec<(&'static str, String)>,
    ) -> Self {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let start_us = anchor().elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let (parent, parent_id, path) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (parent, parent_id) = match explicit_parent {
                Some(h) => (h.path, h.id),
                None => stack
                    .last()
                    .map(|(p, i)| (p.clone(), *i))
                    .unwrap_or((String::new(), 0)),
            };
            let path = if parent.is_empty() {
                name.to_string()
            } else {
                format!("{parent}/{name}")
            };
            stack.push((path.clone(), id));
            (parent, parent_id, path)
        });
        Span {
            reg,
            id,
            parent_id,
            path,
            name: name.to_string(),
            parent,
            start_us,
            start: Instant::now(),
            fields,
        }
    }

    /// The span's full path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The span's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The span's identity — pass to [`Registry::span_under`] to parent
    /// spans opened on other threads (or across the wire).
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            path: self.path.clone(),
            id: self.id,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let duration_us = self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // RAII guards drop LIFO; be tolerant of manual `drop()` in
            // odd orders and only pop our own entry.
            if stack.last().map(|(_, i)| *i) == Some(self.id) {
                stack.pop();
            } else if let Some(i) = stack.iter().rposition(|(_, i)| *i == self.id) {
                stack.remove(i);
            }
        });
        self.reg
            .histogram_with("span.duration_us", &[("span", &self.path)])
            .observe(duration_us);
        self.reg.spans.push(SpanEvent {
            id: self.id,
            parent_id: self.parent_id,
            path: std::mem::take(&mut self.path),
            name: std::mem::take(&mut self.name),
            parent: std::mem::take(&mut self.parent),
            start_us: self.start_us,
            duration_us,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

/// Open a span.
///
/// * `span!("select")` — on the process-wide [`Registry::global`];
/// * `span!(reg, "dispatch", source = id)` — on an explicit registry,
///   with structured fields (each `key = value` pair is captured via
///   `ToString`).
///
/// The returned guard must be bound (`let _span = span!(...)`) — an
/// unbound `let _ = span!(...)` drops immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::Registry::global()
            .span_with($name, vec![$((stringify!($key), $value.to_string())),*])
    };
    ($reg:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        ($reg).span_with($name, vec![$((stringify!($key), $value.to_string())),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let reg = Registry::new();
        {
            let _a = reg.span("outer");
            {
                let _b = reg.span("inner");
            }
            let _c = reg.span("second");
        }
        let events = reg.recent_spans();
        let paths: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
        // Children complete before parents.
        assert_eq!(paths, vec!["outer/inner", "outer/second", "outer"]);
        assert_eq!(events[0].parent, "outer");
        assert_eq!(events[2].parent, "");
        // Parent ids link children to the root; the root has none.
        assert_eq!(events[0].parent_id, events[2].id);
        assert_eq!(events[1].parent_id, events[2].id);
        assert_eq!(events[2].parent_id, 0);
        // Start offsets respect opening order.
        assert!(events[0].start_us >= events[2].start_us);
    }

    #[test]
    fn span_durations_land_in_the_histogram() {
        let reg = Registry::new();
        {
            let _s = reg.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let h = snap
            .histogram("span.duration_us", &[("span", "work")])
            .expect("span histogram");
        assert_eq!(h.count, 1);
        assert!(h.max >= 2_000, "slept 2ms but recorded {}us", h.max);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let reg = Registry::new();
        let parent_handle = {
            let parent = reg.span("dispatch");
            let handle = parent.handle();
            std::thread::scope(|scope| {
                let reg = &reg;
                let handle = &handle;
                scope.spawn(move || {
                    let _child = reg.span_under("worker", handle, vec![("n", "1".to_string())]);
                });
            });
            handle
        };
        let events = reg.recent_spans();
        let child = events.iter().find(|e| e.name == "worker").unwrap();
        assert_eq!(child.parent, parent_handle.path);
        assert_eq!(child.parent_id, parent_handle.id);
        assert_eq!(child.path, "dispatch/worker");
    }

    #[test]
    fn span_ids_are_unique() {
        let reg = Registry::new();
        {
            let a = reg.span("a");
            let b = reg.span("b");
            assert_ne!(a.id(), b.id());
            assert_ne!(a.id(), 0);
        }
    }

    #[test]
    fn macro_forms() {
        let reg = Registry::new();
        {
            let _s = span!(&reg, "labeled", source = "DB", wave = 2);
        }
        let ev = &reg.recent_spans()[0];
        assert_eq!(ev.name, "labeled");
        assert_eq!(
            ev.fields,
            vec![("source", "DB".to_string()), ("wave", "2".to_string())]
        );
        assert_eq!(ev.field("source"), Some("DB"));
        assert_eq!(ev.field("missing"), None);
        // Global form records on the shared registry.
        let before = Registry::global().recent_spans().len();
        {
            let _s = span!("global-span");
        }
        assert!(Registry::global().recent_spans().len() > before);
    }
}
