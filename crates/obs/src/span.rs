//! Structured, nestable spans.
//!
//! A span is an RAII guard: opening one pushes its path onto a
//! thread-local stack (so spans opened inside it become children), and
//! dropping it records the elapsed wall-clock time into the registry —
//! a `span.duration_us` histogram labeled with the full path — plus a
//! bounded ring of recent [`SpanEvent`]s for inspection.
//!
//! Fan-out workers run on other threads, where the thread-local stack
//! is empty; they use [`crate::Registry::span_under`] to attach to the
//! dispatching span's path explicitly.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Instant;

use parking_lot::Mutex;

use crate::registry::Registry;

/// How many completed spans the ring buffer keeps.
const SPAN_LOG_CAP: usize = 1024;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Full slash-separated path, e.g. `meta.search/dispatch/source`.
    pub path: String,
    /// The leaf name.
    pub name: String,
    /// The parent path (empty for roots).
    pub parent: String,
    /// Elapsed wall-clock microseconds.
    pub duration_us: u64,
    /// Structured fields given at open time.
    pub fields: Vec<(&'static str, String)>,
}

/// Bounded ring of recent [`SpanEvent`]s.
#[derive(Default)]
pub(crate) struct SpanLog {
    ring: Mutex<VecDeque<SpanEvent>>,
}

impl SpanLog {
    fn push(&self, ev: SpanEvent) {
        let mut ring = self.ring.lock();
        if ring.len() == SPAN_LOG_CAP {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    pub(crate) fn recent(&self) -> Vec<SpanEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    pub(crate) fn clear(&self) {
        self.ring.lock().clear();
    }
}

/// An open span; records itself on drop.
pub struct Span<'r> {
    reg: &'r Registry,
    path: String,
    name: String,
    parent: String,
    start: Instant,
    fields: Vec<(&'static str, String)>,
}

impl<'r> Span<'r> {
    pub(crate) fn enter(
        reg: &'r Registry,
        name: &str,
        explicit_parent: Option<String>,
        fields: Vec<(&'static str, String)>,
    ) -> Self {
        let (parent, path) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = match explicit_parent {
                Some(p) => p,
                None => stack.last().cloned().unwrap_or_default(),
            };
            let path = if parent.is_empty() {
                name.to_string()
            } else {
                format!("{parent}/{name}")
            };
            stack.push(path.clone());
            (parent, path)
        });
        Span {
            reg,
            path,
            name: name.to_string(),
            parent,
            start: Instant::now(),
            fields,
        }
    }

    /// The span's full path — pass to [`Registry::span_under`] to parent
    /// spans opened on other threads.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let duration_us = self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // RAII guards drop LIFO; be tolerant of manual `drop()` in
            // odd orders and only pop our own entry.
            if stack.last() == Some(&self.path) {
                stack.pop();
            } else if let Some(i) = stack.iter().rposition(|p| p == &self.path) {
                stack.remove(i);
            }
        });
        self.reg
            .histogram_with("span.duration_us", &[("span", &self.path)])
            .observe(duration_us);
        self.reg.spans.push(SpanEvent {
            path: std::mem::take(&mut self.path),
            name: std::mem::take(&mut self.name),
            parent: std::mem::take(&mut self.parent),
            duration_us,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

/// Open a span.
///
/// * `span!("select")` — on the process-wide [`Registry::global`];
/// * `span!(reg, "dispatch", source = id)` — on an explicit registry,
///   with structured fields (each `key = value` pair is captured via
///   `ToString`).
///
/// The returned guard must be bound (`let _span = span!(...)`) — an
/// unbound `let _ = span!(...)` drops immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::Registry::global()
            .span_with($name, vec![$((stringify!($key), $value.to_string())),*])
    };
    ($reg:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        ($reg).span_with($name, vec![$((stringify!($key), $value.to_string())),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let reg = Registry::new();
        {
            let _a = reg.span("outer");
            {
                let _b = reg.span("inner");
            }
            let _c = reg.span("second");
        }
        let events = reg.recent_spans();
        let paths: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
        // Children complete before parents.
        assert_eq!(paths, vec!["outer/inner", "outer/second", "outer"]);
        assert_eq!(events[0].parent, "outer");
        assert_eq!(events[2].parent, "");
    }

    #[test]
    fn span_durations_land_in_the_histogram() {
        let reg = Registry::new();
        {
            let _s = reg.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let h = snap
            .histogram("span.duration_us", &[("span", "work")])
            .expect("span histogram");
        assert_eq!(h.count, 1);
        assert!(h.max >= 2_000, "slept 2ms but recorded {}us", h.max);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let reg = Registry::new();
        let parent_path = {
            let parent = reg.span("dispatch");
            let path = parent.path().to_string();
            std::thread::scope(|scope| {
                let reg = &reg;
                let path = &path;
                scope.spawn(move || {
                    let _child = reg.span_under("worker", path, vec![("n", "1".to_string())]);
                });
            });
            path
        };
        let events = reg.recent_spans();
        let child = events.iter().find(|e| e.name == "worker").unwrap();
        assert_eq!(child.parent, parent_path);
        assert_eq!(child.path, "dispatch/worker");
    }

    #[test]
    fn macro_forms() {
        let reg = Registry::new();
        {
            let _s = span!(&reg, "labeled", source = "DB", wave = 2);
        }
        let ev = &reg.recent_spans()[0];
        assert_eq!(ev.name, "labeled");
        assert_eq!(
            ev.fields,
            vec![("source", "DB".to_string()), ("wave", "2".to_string())]
        );
        // Global form records on the shared registry.
        let before = Registry::global().recent_spans().len();
        {
            let _s = span!("global-span");
        }
        assert!(Registry::global().recent_spans().len() > before);
    }
}
