//! Observability for the STARTS metasearch pipeline.
//!
//! The paper's metasearcher juggles per-source link profiles (§3.3),
//! query rewriting at uncooperative sources (§4.2), and a parallel
//! fan-out whose user-visible latency is the slowest link. This crate
//! makes those moving parts measurable without touching the protocol:
//!
//! * **Spans** — structured, nestable RAII timers
//!   (`span!(reg, "dispatch", source = id)`), aggregated into
//!   `span.duration_us` histograms per path and kept in a bounded ring
//!   of recent [`SpanEvent`]s;
//! * **Metrics** — lock-free [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s with p50/p95/p99 snapshots;
//! * **Exporters** — a Prometheus text dump ([`export::prometheus`]),
//!   a JSON dump ([`export::json`]), and a SOIF-native `@SStats`
//!   object ([`export::to_soif`]) that round-trips through
//!   `starts_soif::parse`;
//! * **Traces** — [`trace::TraceTree`] stitches the span ring back into
//!   per-query trees (spans carry ids and parent ids, and a
//!   [`SpanHandle`] can cross threads or the wire), with critical-path
//!   extraction and a JSONL sink;
//! * **Flight recorder** — [`FlightRecorder`] keeps the last N
//!   per-query cost profiles (`starts_proto::QueryProfile`) in a
//!   bounded ring, captures queries over a rolling p99 or an absolute
//!   budget into a JSONL slow-log, and exports `recorder.*` gauges;
//! * **Health** — a rolling per-source [`health::HealthBoard`]
//!   (availability, error rate, timeouts, latency quantiles, score)
//!   that exports as plain gauges so every exporter carries it;
//! * **Monitoring** — [`monitor::Monitor`] samples snapshots into
//!   ring-buffered time series, evaluates SLO burn rates and EWMA
//!   anomaly scores, and drives a pending → firing → resolved alert
//!   state machine with an `alerts.jsonl` event log and `alerts.*` /
//!   `slo.*` gauges.
//!
//! A [`Registry`] is cheap to share: `starts-net`'s `SimNet` owns one
//! in an `Arc` so that every test gets isolated accounting, and
//! [`Registry::global`] serves code with no registry at hand.

#![warn(missing_docs)]

pub mod export;
pub mod health;
pub mod metrics;
pub mod monitor;
pub mod profile;
pub mod registry;
pub mod span;
pub mod trace;

pub use health::{HealthBoard, SourceHealth, SourceOutcome};
pub use metrics::{Counter, Gauge, Histogram};
pub use monitor::{
    AlertState, AlertStatus, AlertsSnapshot, Clock, ManualClock, MetricStore, Monitor,
    MonitorConfig, SloSpec, SloStatus, SystemClock,
};
pub use profile::FlightRecorder;
pub use registry::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricId, Registry, Snapshot,
};
pub use span::{Span, SpanEvent, SpanHandle};
pub use trace::{TraceNode, TraceTree};
