//! Per-source health scoreboard.
//!
//! STARTS §3.3 makes choosing *which* sources to query the
//! metasearcher's core job, and real sources differ wildly in
//! availability and responsiveness. The [`HealthBoard`] keeps a rolling
//! window of recent exchange outcomes per source — success/failure,
//! simulated timeout, latency — and condenses them into an
//! availability figure, a timeout rate, latency quantiles, and a single
//! `[0, 1]` health score the selection strategy can consult (see
//! `HealthAware` in `starts-meta`).
//!
//! Outcomes carry timestamps (from a [`Clock`], so tests stay
//! deterministic): a source that stops receiving traffic does not keep
//! its last score forever — once the newest outcome is older than the
//! staleness horizon, the score decays toward the `0.5` unknown-prior,
//! and the age is exported as a `health.age_s` gauge.
//!
//! The board exports itself as plain `health.*` gauges into a
//! [`Registry`], so the existing Prometheus / JSON / `@SStats`
//! exporters — and the `<base>/stats` admin endpoint — carry health
//! for free.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::monitor::{Clock, SystemClock};
use crate::registry::Registry;

/// Default rolling-window size (outcomes kept per source).
pub const DEFAULT_WINDOW: usize = 64;

/// Default staleness horizon: a score older than this starts decaying
/// toward the unknown-prior.
pub const DEFAULT_STALE_HORIZON_MS: u64 = 300_000;

/// The neutral score of a source we know nothing current about. Stale
/// scores decay toward this, not toward 0 — silence is not failure.
const UNKNOWN_PRIOR: f64 = 0.5;

/// The outcome of one exchange with a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceOutcome {
    /// Whether the exchange produced a usable answer.
    pub ok: bool,
    /// Whether the exchange exceeded the caller's timeout budget.
    pub timed_out: bool,
    /// Observed round-trip latency in milliseconds (0 when the
    /// exchange failed before any answer).
    pub latency_ms: u64,
}

impl SourceOutcome {
    /// A successful exchange with the given latency.
    pub fn ok(latency_ms: u64) -> Self {
        SourceOutcome {
            ok: true,
            timed_out: false,
            latency_ms,
        }
    }

    /// A failed exchange (transport or protocol error).
    pub fn failed() -> Self {
        SourceOutcome {
            ok: false,
            timed_out: false,
            latency_ms: 0,
        }
    }

    /// An exchange that exceeded the timeout budget. It may still have
    /// produced an answer (`ok`), but it blew the latency contract.
    pub fn timed_out(latency_ms: u64, ok: bool) -> Self {
        SourceOutcome {
            ok,
            timed_out: true,
            latency_ms,
        }
    }
}

/// A condensed view of one source's rolling window.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceHealth {
    /// Source id.
    pub source: String,
    /// Number of outcomes in the window.
    pub samples: usize,
    /// Fraction of exchanges that succeeded (`[0, 1]`).
    pub availability: f64,
    /// Fraction of exchanges that failed (`1 - availability`).
    pub error_rate: f64,
    /// Number of timeouts in the window.
    pub timeouts: u64,
    /// Median latency over successful exchanges (ms).
    pub latency_p50_ms: u64,
    /// 95th-percentile latency over successful exchanges (ms).
    pub latency_p95_ms: u64,
    /// Seconds since the newest outcome was recorded.
    pub age_s: f64,
    /// Overall health score in `[0, 1]`; see [`HealthBoard::score`].
    /// Decayed toward `0.5` once the window is stale.
    pub score: f64,
}

#[derive(Default)]
struct Window {
    outcomes: std::collections::VecDeque<(SourceOutcome, u64)>,
}

/// Rolling per-source health, maintained by the metasearcher on every
/// exchange. Thread-safe: dispatch workers record concurrently.
pub struct HealthBoard {
    window: usize,
    stale_horizon_ms: u64,
    clock: Arc<dyn Clock>,
    sources: Mutex<HashMap<String, Window>>,
}

impl Default for HealthBoard {
    fn default() -> Self {
        HealthBoard::new(DEFAULT_WINDOW)
    }
}

impl HealthBoard {
    /// A board keeping the last `window` outcomes per source, on the
    /// wall clock with the default staleness horizon.
    pub fn new(window: usize) -> Self {
        HealthBoard::with_clock(window, DEFAULT_STALE_HORIZON_MS, Arc::new(SystemClock))
    }

    /// A board with an explicit staleness horizon and clock — the
    /// deterministic form for tests and the bench harness.
    pub fn with_clock(window: usize, stale_horizon_ms: u64, clock: Arc<dyn Clock>) -> Self {
        HealthBoard {
            window: window.max(1),
            stale_horizon_ms: stale_horizon_ms.max(1),
            clock,
            sources: Mutex::new(HashMap::new()),
        }
    }

    /// Record one exchange outcome for `source`.
    pub fn record(&self, source: &str, outcome: SourceOutcome) {
        let now = self.clock.now_ms();
        let mut sources = self.sources.lock();
        let w = sources.entry(source.to_string()).or_default();
        if w.outcomes.len() == self.window {
            w.outcomes.pop_front();
        }
        w.outcomes.push_back((outcome, now));
    }

    /// The condensed health of one source (`None` if never seen).
    pub fn health(&self, source: &str) -> Option<SourceHealth> {
        let now = self.clock.now_ms();
        let sources = self.sources.lock();
        sources
            .get(source)
            .map(|w| self.condense(source, &w.outcomes.iter().copied().collect::<Vec<_>>(), now))
    }

    /// Health for every known source, sorted by id.
    pub fn all(&self) -> Vec<SourceHealth> {
        let now = self.clock.now_ms();
        let sources = self.sources.lock();
        let mut out: Vec<SourceHealth> = sources
            .iter()
            .map(|(id, w)| self.condense(id, &w.outcomes.iter().copied().collect::<Vec<_>>(), now))
            .collect();
        out.sort_by(|a, b| a.source.cmp(&b.source));
        out
    }

    /// A single health score in `[0, 1]` for `source`: availability,
    /// discounted by the timeout rate and by slow p95 latency
    /// (`1000ms` p95 costs ~half). Unknown sources score `1.0` —
    /// untried is not unhealthy, and §3.3 wants new sources explored.
    /// Once the newest outcome is older than the staleness horizon the
    /// score decays toward `0.5`: evidence expires in both directions,
    /// so a silent source is neither trusted nor condemned forever.
    pub fn score(&self, source: &str) -> f64 {
        self.health(source).map_or(1.0, |h| h.score)
    }

    /// Export the board as `health.*` gauges (labeled by source) into a
    /// registry, so every existing exporter — Prometheus text, JSON,
    /// `@SStats` — carries the scoreboard.
    pub fn export_to(&self, reg: &Registry) {
        for h in self.all() {
            let labels = [("source", h.source.as_str())];
            reg.gauge_with("health.availability", &labels)
                .set(h.availability);
            reg.gauge_with("health.error_rate", &labels)
                .set(h.error_rate);
            reg.gauge_with("health.timeouts", &labels)
                .set(h.timeouts as f64);
            reg.gauge_with("health.latency_p50_ms", &labels)
                .set(h.latency_p50_ms as f64);
            reg.gauge_with("health.latency_p95_ms", &labels)
                .set(h.latency_p95_ms as f64);
            reg.gauge_with("health.age_s", &labels).set(h.age_s);
            reg.gauge_with("health.score", &labels).set(h.score);
            reg.gauge_with("health.samples", &labels)
                .set(h.samples as f64);
        }
    }

    /// Drop all recorded outcomes.
    pub fn reset(&self) {
        self.sources.lock().clear();
    }

    fn condense(&self, source: &str, outcomes: &[(SourceOutcome, u64)], now: u64) -> SourceHealth {
        let samples = outcomes.len();
        let ok = outcomes.iter().filter(|(o, _)| o.ok).count();
        let timeouts = outcomes.iter().filter(|(o, _)| o.timed_out).count() as u64;
        let availability = if samples == 0 {
            1.0
        } else {
            ok as f64 / samples as f64
        };
        let mut latencies: Vec<u64> = outcomes
            .iter()
            .filter(|(o, _)| o.ok)
            .map(|(o, _)| o.latency_ms)
            .collect();
        latencies.sort_unstable();
        let pick = |q: f64| -> u64 {
            if latencies.is_empty() {
                0
            } else {
                let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
                latencies[idx.min(latencies.len() - 1)]
            }
        };
        let latency_p50_ms = pick(0.50);
        let latency_p95_ms = pick(0.95);
        let timeout_rate = if samples == 0 {
            0.0
        } else {
            timeouts as f64 / samples as f64
        };
        // Availability is the dominant term; timeouts and a slow p95
        // shave the rest. A 1000ms p95 halves the latency factor.
        let latency_factor = 1000.0 / (1000.0 + latency_p95_ms as f64);
        let fresh_score =
            (availability * (1.0 - timeout_rate) * (0.5 + 0.5 * latency_factor)).clamp(0.0, 1.0);
        let newest = outcomes.iter().map(|&(_, t)| t).max().unwrap_or(now);
        let age_ms = now.saturating_sub(newest);
        // Evidence ages out: past the horizon the score slides toward
        // the unknown-prior in proportion to how stale it is (2x the
        // horizon -> halfway there is already gone).
        let score = if age_ms <= self.stale_horizon_ms {
            fresh_score
        } else {
            let keep = self.stale_horizon_ms as f64 / age_ms as f64;
            UNKNOWN_PRIOR + (fresh_score - UNKNOWN_PRIOR) * keep
        };
        SourceHealth {
            source: source.to_string(),
            samples,
            availability,
            error_rate: 1.0 - availability,
            timeouts,
            latency_p50_ms,
            latency_p95_ms,
            age_s: age_ms as f64 / 1_000.0,
            score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ManualClock;

    fn manual_board(window: usize, horizon_ms: u64) -> (Arc<ManualClock>, HealthBoard) {
        let clock = Arc::new(ManualClock::new(1_000_000));
        let board = HealthBoard::with_clock(window, horizon_ms, clock.clone());
        (clock, board)
    }

    #[test]
    fn unknown_sources_score_full() {
        let board = HealthBoard::default();
        assert_eq!(board.score("never-seen"), 1.0);
        assert!(board.health("never-seen").is_none());
        assert!(board.all().is_empty());
    }

    #[test]
    fn availability_tracks_the_window() {
        let board = HealthBoard::new(4);
        for _ in 0..4 {
            board.record("S1", SourceOutcome::failed());
        }
        assert_eq!(board.health("S1").unwrap().availability, 0.0);
        // Four successes push the failures out of the window.
        for _ in 0..4 {
            board.record("S1", SourceOutcome::ok(10));
        }
        let h = board.health("S1").unwrap();
        assert_eq!(h.availability, 1.0);
        assert_eq!(h.error_rate, 0.0);
        assert_eq!(h.samples, 4);
    }

    #[test]
    fn latency_quantiles_and_timeouts() {
        let board = HealthBoard::default();
        for ms in [10, 20, 30, 40, 400] {
            board.record("S2", SourceOutcome::ok(ms));
        }
        board.record("S2", SourceOutcome::timed_out(5_000, false));
        let h = board.health("S2").unwrap();
        assert_eq!(h.timeouts, 1);
        assert_eq!(h.latency_p50_ms, 30);
        assert_eq!(h.latency_p95_ms, 400);
        assert!(h.availability > 0.8 && h.availability < 0.9);
    }

    #[test]
    fn score_orders_healthy_above_degraded() {
        let board = HealthBoard::default();
        for _ in 0..10 {
            board.record("fast", SourceOutcome::ok(10));
            board.record("slow", SourceOutcome::ok(2_000));
            board.record("flaky", SourceOutcome::failed());
            board.record("flaky", SourceOutcome::ok(10));
        }
        let fast = board.score("fast");
        let slow = board.score("slow");
        let flaky = board.score("flaky");
        assert!(fast > slow, "fast={fast} slow={slow}");
        assert!(fast > flaky, "fast={fast} flaky={flaky}");
        assert!((0.0..=1.0).contains(&slow));
        assert!((0.0..=1.0).contains(&flaky));
    }

    #[test]
    fn stale_scores_decay_toward_the_unknown_prior() {
        let (clock, board) = manual_board(8, 10_000);
        for _ in 0..8 {
            board.record("good", SourceOutcome::ok(10));
            board.record("bad", SourceOutcome::failed());
        }
        let fresh_good = board.score("good");
        let fresh_bad = board.score("bad");
        assert!(fresh_good > 0.9);
        assert!(fresh_bad < 0.1);
        assert_eq!(board.health("good").unwrap().age_s, 0.0);

        // Within the horizon: nothing changes.
        clock.advance(10_000);
        assert_eq!(board.score("good"), fresh_good);
        assert_eq!(board.score("bad"), fresh_bad);

        // Past the horizon: both slide toward 0.5, from both sides.
        clock.advance(30_000);
        let stale_good = board.score("good");
        let stale_bad = board.score("bad");
        assert!(stale_good < fresh_good && stale_good > 0.5, "{stale_good}");
        assert!(stale_bad > fresh_bad && stale_bad < 0.5, "{stale_bad}");
        assert_eq!(board.health("good").unwrap().age_s, 40.0);

        // Far past: both approach the prior.
        clock.advance(10_000_000);
        assert!((board.score("good") - 0.5).abs() < 0.01);
        assert!((board.score("bad") - 0.5).abs() < 0.01);

        // Fresh traffic restores the un-decayed score.
        for _ in 0..8 {
            board.record("good", SourceOutcome::ok(10));
        }
        assert_eq!(board.score("good"), fresh_good);
    }

    #[test]
    fn exports_gauges_through_the_registry() {
        let (clock, board) = manual_board(DEFAULT_WINDOW, 10_000);
        board.record("S1", SourceOutcome::ok(25));
        board.record("S1", SourceOutcome::failed());
        clock.advance(2_500);
        let reg = Registry::new();
        board.export_to(&reg);
        let snap = reg.snapshot();
        assert!((snap.gauge("health.availability", &[("source", "S1")]) - 0.5).abs() < 1e-9);
        assert!((snap.gauge("health.error_rate", &[("source", "S1")]) - 0.5).abs() < 1e-9);
        assert_eq!(
            snap.gauge("health.latency_p50_ms", &[("source", "S1")]),
            25.0
        );
        assert_eq!(snap.gauge("health.samples", &[("source", "S1")]), 2.0);
        assert_eq!(snap.gauge("health.age_s", &[("source", "S1")]), 2.5);
        let score = snap.gauge("health.score", &[("source", "S1")]);
        assert!(score > 0.0 && score < 1.0, "score={score}");
        // And therefore through every exporter, e.g. @SStats.
        let obj = crate::export::to_soif(&snap);
        let back = crate::export::snapshot_from_soif(&obj).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn reset_clears_everything() {
        let board = HealthBoard::default();
        board.record("S1", SourceOutcome::ok(5));
        board.reset();
        assert!(board.all().is_empty());
    }
}
