//! Typed metric instruments: counters, gauges, and log-bucketed
//! histograms.
//!
//! Every instrument is a thin handle around an `Arc`'d atomic cell, so
//! handles can be cached by hot-path callers and updated without taking
//! any lock. The registry lock is only touched when a handle is first
//! created.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: an instantaneous `f64` that can be set or accumulated
/// (accumulation covers §3.3-style cost accrual, where the quantity is
/// fractional but only ever grows).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Replace the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `v` to the value (compare-and-swap loop; contention on a
    /// gauge is rare and short).
    pub fn add(&self, v: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i - 1]`.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index for a value (log₂ bucketing).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Largest observation seen per bucket (0 when the bucket is empty),
    /// so percentile estimates clamp to real extremes instead of bucket
    /// upper bounds.
    bucket_max: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first observation.
    min: AtomicU64,
    max: AtomicU64,
}

/// A log-bucketed histogram of non-negative integer observations
/// (latencies in ms or µs, payload sizes in bytes, result counts).
///
/// Buckets double in width, so percentile estimates are exact to within
/// a factor of two: for any quantile `q`, `true ≤ estimate ≤ 2·true`
/// (see the percentile property test).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                bucket_max: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let c = &self.core;
        let i = bucket_index(v);
        c.buckets[i].fetch_add(1, Ordering::Relaxed);
        c.bucket_max[i].fetch_max(v, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the distribution (individual loads
    /// are relaxed; concurrent observers may be off by in-flight
    /// updates, which is fine for monitoring).
    pub fn snapshot_values(&self) -> HistogramValues {
        let c = &self.core;
        let buckets: Vec<u64> = c
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let bucket_max: Vec<u64> = c
            .bucket_max
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let min = c.min.load(Ordering::Relaxed);
        HistogramValues {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if min == u64::MAX { 0 } else { min },
            max: c.max.load(Ordering::Relaxed),
            buckets,
            bucket_max,
        }
    }
}

/// The frozen numbers behind a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramValues {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts, indexed as [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Largest observation per bucket (0 for empty buckets), indexed as
    /// [`bucket_index`].
    pub bucket_max: Vec<u64>,
}

impl HistogramValues {
    /// Estimate the `q`-quantile (0 < q ≤ 1): the largest *observed*
    /// value in the bucket holding the ⌈q·count⌉-th smallest
    /// observation, clamped to the bucket's upper bound and the global
    /// observed maximum — so the estimate is a real extreme of the
    /// distribution, never an artificial power-of-two bound. Returns 0
    /// for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = bucket_upper_bound(i).min(self.max);
                // An in-flight concurrent observe can leave the per-bucket
                // max momentarily behind the count; fall back to the
                // bucket bound in that window.
                return match self.bucket_max.get(i) {
                    Some(&m) if m > 0 => m.min(upper),
                    _ => upper,
                };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Clones share the cell.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43);
    }

    #[test]
    fn gauge_sets_and_accrues() {
        let g = Gauge::default();
        g.set(2.5);
        g.add(1.25);
        assert!((g.get() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn bucket_bounds_cover_the_axis() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 100, 1023, 1024, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_basic_percentiles() {
        let h = Histogram::default();
        for v in [10u64, 20, 30, 40, 1000] {
            h.observe(v);
        }
        let s = h.snapshot_values();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1000);
        // p50 lands in the bucket of 30 ([16,31]); the bucket's observed
        // max is the exact order statistic here.
        assert_eq!(s.percentile(0.5), 30);
        // p99 lands in the last bucket, clamped to the max.
        assert_eq!(s.percentile(0.99), 1000);
    }

    #[test]
    fn percentiles_clamp_to_observed_extremes() {
        // A single repeated value: every quantile is that exact value,
        // not its bucket's power-of-two upper bound.
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(70); // bucket [64,127]
        }
        let s = h.snapshot_values();
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(s.percentile(q), 70);
        }
        // Two buckets: the p50 bucket's own max bounds the estimate.
        let h = Histogram::default();
        for v in [65u64, 100, 9000, 9000] {
            h.observe(v);
        }
        let s = h.snapshot_values();
        assert_eq!(s.percentile(0.5), 100);
        assert_eq!(s.percentile(0.99), 9000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::default().snapshot_values();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.percentile(0.5), 0);
    }
}
