//! Continuous monitoring: windowed time series, SLO burn-rate alerts,
//! and per-source anomaly detection.
//!
//! Everything the registry exports is point-in-time: counters are
//! lifetime-cumulative and gauges are "now". A metasearcher that has to
//! *decide* a source degraded (§3.4's continuous source tracking) needs
//! windows and thresholds instead. This module layers them on without
//! touching the metric pipeline:
//!
//! * a [`MetricStore`] samples registry [`Snapshot`]s into fixed-width
//!   ring buffers — counters are delta-encoded into per-second rates,
//!   gauges are sampled as-is, and histograms yield *windowed* p50/p99
//!   (from bucket-count deltas) plus an observation rate. Wall-clock
//!   timestamps come from a [`Clock`] so tests and the bench harness
//!   can run on a [`ManualClock`] and stay deterministic;
//! * [`SloSpec`]s declare objectives over those series (`meta.search
//!   p99 < 50ms`, per-source `error_rate < 1%`) evaluated with
//!   multi-window burn rates, the SRE alerting idiom: the fraction of
//!   bad samples in a short and a long window, each divided by the
//!   error budget `1 - objective`;
//! * an EWMA/z-score detector flags per-source latency and error
//!   anomalies — a sample more than `z_threshold` deviations above the
//!   exponentially-weighted mean;
//! * an alert state machine (pending → firing → resolved, with a
//!   for-duration debounce so one bad sample never pages) appends
//!   structured events to an `alerts.jsonl` log and exports `alerts.*`
//!   and `slo.*` gauges into the registry, so every existing exporter
//!   (Prometheus, JSON, `@SStats`) carries alert state for free.
//!
//! The [`Monitor`] bundles all four. `starts-net`'s `SimNet` owns one
//! and serves it at `<base>/alerts` as an `@SAlerts` object; the
//! metasearcher ticks it after every search and its `HealthAware`
//! selector hard-demotes sources with firing alerts to the probe floor.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::export::json_escape;
use crate::registry::{MetricId, Registry, Snapshot};

/// The SOIF template name for exported alert state.
pub const SALERTS_TEMPLATE: &str = "SAlerts";

// ---------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------

/// A millisecond clock. The monitor never reads time directly: tests
/// and the bench harness inject a [`ManualClock`] so ring rotation,
/// burn windows, and for-duration debounce are deterministic; everyone
/// else uses the [`SystemClock`] wall clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since the clock's epoch (Unix for the system
    /// clock, arbitrary for a manual one).
    fn now_ms(&self) -> u64;
}

/// The wall clock (Unix epoch milliseconds).
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64)
    }
}

/// A deterministic clock advanced by hand.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock starting at `start_ms`.
    pub fn new(start_ms: u64) -> Self {
        ManualClock(AtomicU64::new(start_ms))
    }

    /// Advance the clock by `ms`.
    pub fn advance(&self, ms: u64) {
        self.0.fetch_add(ms, Ordering::SeqCst);
    }

    /// Jump the clock to an absolute time.
    pub fn set(&self, ms: u64) {
        self.0.store(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------
// MetricStore: snapshots → ring-buffered series
// ---------------------------------------------------------------------

/// Which derived series of a metric a key refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Aspect {
    /// Per-second rate (counter deltas; histogram observation counts).
    Rate,
    /// The sampled value (gauges).
    Value,
    /// Windowed median from histogram bucket deltas.
    P50,
    /// Windowed 99th percentile from histogram bucket deltas.
    P99,
}

impl Aspect {
    /// Short name, used in the `@SAlerts` encoding.
    pub fn name(self) -> &'static str {
        match self {
            Aspect::Rate => "rate",
            Aspect::Value => "value",
            Aspect::P50 => "p50",
            Aspect::P99 => "p99",
        }
    }

    /// Parse a short name back into an aspect.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rate" => Some(Aspect::Rate),
            "value" => Some(Aspect::Value),
            "p50" => Some(Aspect::P50),
            "p99" => Some(Aspect::P99),
            _ => None,
        }
    }
}

/// Identity of one time series: a metric plus the derived aspect.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeriesKey {
    /// The underlying metric.
    pub id: MetricId,
    /// Which derived series of that metric.
    pub aspect: Aspect,
}

/// One sample in a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Sample timestamp (clock milliseconds).
    pub t_ms: u64,
    /// Sample value.
    pub value: f64,
}

/// Ring-buffer sizing for the [`MetricStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Minimum milliseconds between samples; ticks arriving earlier
    /// are no-ops, so callers can tick on every request.
    pub step_ms: u64,
    /// Points kept per series (the ring width).
    pub retention: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            step_ms: 1_000,
            retention: 256,
        }
    }
}

#[derive(Default)]
struct Ring {
    points: VecDeque<Point>,
}

impl Ring {
    fn push(&mut self, cap: usize, p: Point) {
        if self.points.len() == cap.max(1) {
            self.points.pop_front();
        }
        self.points.push_back(p);
    }
}

#[derive(Default)]
struct StoreInner {
    /// Timestamp of the last recorded sample.
    last_ms: Option<u64>,
    /// Whether the first (baseline) sample has been taken. Counters
    /// and histograms only emit deltas from the second sample on; a
    /// metric first seen *after* the baseline has an implicit previous
    /// value of zero (registry counters start at zero), so it emits
    /// immediately.
    primed: bool,
    prev_counters: HashMap<MetricId, u64>,
    prev_buckets: HashMap<MetricId, Vec<(u64, u64)>>,
    series: HashMap<SeriesKey, Ring>,
}

/// Samples registry snapshots into fixed-width ring-buffered series.
pub struct MetricStore {
    cfg: StoreConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<StoreInner>,
}

impl MetricStore {
    /// A store sampling on the given clock.
    pub fn new(cfg: StoreConfig, clock: Arc<dyn Clock>) -> Self {
        MetricStore {
            cfg,
            clock,
            inner: Mutex::new(StoreInner::default()),
        }
    }

    /// Sample width in milliseconds.
    pub fn step_ms(&self) -> u64 {
        self.cfg.step_ms
    }

    /// Points kept per series.
    pub fn retention(&self) -> usize {
        self.cfg.retention
    }

    /// Whether a tick right now would record a sample (a full step has
    /// elapsed, or nothing was sampled yet). Lets callers skip the
    /// snapshot cost between steps.
    pub fn due(&self) -> bool {
        let now = self.clock.now_ms();
        match self.inner.lock().last_ms {
            Some(last) => now >= last.saturating_add(self.cfg.step_ms),
            None => true,
        }
    }

    /// Record one sample from a snapshot, if a full step has elapsed.
    /// Returns the sample timestamp when one was recorded.
    ///
    /// The first tick establishes delta baselines (counters and
    /// histograms carry lifetime totals, so the first sighting cannot
    /// be turned into a rate); gauges emit from the first tick.
    pub fn tick(&self, snap: &Snapshot) -> Option<u64> {
        let mut inner = self.inner.lock();
        // Clock read under the lock: ticks serialize here, and the
        // clock is monotone, so ring timestamps never go backwards.
        let now = self.clock.now_ms();
        if let Some(last) = inner.last_ms {
            if now < last.saturating_add(self.cfg.step_ms) {
                return None;
            }
        }
        let dt_s = inner
            .last_ms
            .map(|last| (now.saturating_sub(last) as f64 / 1_000.0).max(1e-9));
        let primed = inner.primed;
        let cap = self.cfg.retention;

        for c in &snap.counters {
            let prev = inner.prev_counters.insert(c.id.clone(), c.value);
            if !primed {
                continue;
            }
            let delta = c.value.saturating_sub(prev.unwrap_or(0));
            let rate = delta as f64 / dt_s.unwrap_or(1.0);
            let key = SeriesKey {
                id: c.id.clone(),
                aspect: Aspect::Rate,
            };
            inner.series.entry(key).or_default().push(
                cap,
                Point {
                    t_ms: now,
                    value: rate,
                },
            );
        }
        for g in &snap.gauges {
            let key = SeriesKey {
                id: g.id.clone(),
                aspect: Aspect::Value,
            };
            inner.series.entry(key).or_default().push(
                cap,
                Point {
                    t_ms: now,
                    value: g.value,
                },
            );
        }
        for h in &snap.histograms {
            let prev = inner.prev_buckets.insert(h.id.clone(), h.buckets.clone());
            if !primed {
                continue;
            }
            let prev = prev.unwrap_or_default();
            let deltas = bucket_deltas(&h.buckets, &prev);
            let total: u64 = deltas.iter().map(|&(_, n)| n).sum();
            let mut put = |aspect: Aspect, value: f64| {
                let key = SeriesKey {
                    id: h.id.clone(),
                    aspect,
                };
                inner
                    .series
                    .entry(key)
                    .or_default()
                    .push(cap, Point { t_ms: now, value });
            };
            put(Aspect::Rate, total as f64 / dt_s.unwrap_or(1.0));
            if total > 0 {
                put(Aspect::P50, bucket_quantile(&deltas, total, 0.50));
                put(Aspect::P99, bucket_quantile(&deltas, total, 0.99));
            }
        }
        inner.primed = true;
        inner.last_ms = Some(now);
        Some(now)
    }

    /// The points of one series, oldest first (empty if unknown).
    pub fn series(&self, name: &str, labels: &[(&str, &str)], aspect: Aspect) -> Vec<Point> {
        let key = SeriesKey {
            id: MetricId::new(name, labels),
            aspect,
        };
        self.inner
            .lock()
            .series
            .get(&key)
            .map(|r| r.points.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The newest point of one series.
    pub fn latest(&self, name: &str, labels: &[(&str, &str)], aspect: Aspect) -> Option<Point> {
        self.series(name, labels, aspect).last().copied()
    }

    /// Every series key currently held, sorted for stable iteration.
    pub fn keys(&self) -> Vec<SeriesKey> {
        let inner = self.inner.lock();
        let mut keys: Vec<SeriesKey> = inner.series.keys().cloned().collect();
        keys.sort_by(|a, b| a.id.cmp(&b.id).then(a.aspect.cmp(&b.aspect)));
        keys
    }

    /// All series of `metric`/`aspect` whose labels include every
    /// `fixed` pair — the wildcard-expansion primitive behind
    /// per-source SLOs. Returns `(id, points)` pairs sorted by id.
    pub fn matching(
        &self,
        metric: &str,
        aspect: Aspect,
        fixed: &[(String, String)],
    ) -> Vec<(MetricId, Vec<Point>)> {
        let inner = self.inner.lock();
        let mut out: Vec<(MetricId, Vec<Point>)> = inner
            .series
            .iter()
            .filter(|(k, _)| {
                k.aspect == aspect
                    && k.id.name == metric
                    && fixed
                        .iter()
                        .all(|(fk, fv)| k.id.labels.iter().any(|(lk, lv)| lk == fk && lv == fv))
            })
            .map(|(k, r)| (k.id.clone(), r.points.iter().copied().collect()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Per-bucket observation deltas between two cumulative bucket lists,
/// keyed by bucket upper bound (the lists may differ in which buckets
/// they materialize). Sorted by upper bound.
fn bucket_deltas(current: &[(u64, u64)], prev: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let prev: HashMap<u64, u64> = prev.iter().copied().collect();
    let mut deltas: Vec<(u64, u64)> = current
        .iter()
        .map(|&(upper, n)| {
            (
                upper,
                n.saturating_sub(prev.get(&upper).copied().unwrap_or(0)),
            )
        })
        .filter(|&(_, n)| n > 0)
        .collect();
    deltas.sort_unstable();
    deltas
}

/// The q-quantile of a windowed bucket-delta distribution: the upper
/// bound of the bucket containing the ⌈q·total⌉-th observation.
fn bucket_quantile(deltas: &[(u64, u64)], total: u64, q: f64) -> f64 {
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for &(upper, n) in deltas {
        seen += n;
        if seen >= rank {
            return upper as f64;
        }
    }
    deltas.last().map_or(0.0, |&(upper, _)| upper as f64)
}

// ---------------------------------------------------------------------
// SLOs with multi-window burn rates
// ---------------------------------------------------------------------

/// The direction of an objective: the series is *good* when
/// `value op threshold` holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// Good when the value is strictly below the threshold.
    Lt,
    /// Good when the value is strictly above the threshold.
    Gt,
}

/// An objective over one stored series (or a per-source family of
/// them), evaluated with multi-window burn rates.
///
/// The burn rate of a window is `bad_fraction / (1 - objective)`: 1.0
/// means the error budget is being consumed exactly as provisioned,
/// higher means faster. The SLO *breaches* when both the short and the
/// long window burn at or above [`burn_threshold`] — the short window
/// makes alerts responsive, the long window keeps one bad sample after
/// a quiet hour from paging.
///
/// A label value of `"*"` is a wildcard: the spec expands to one
/// status (and one alert) per concrete series matching the remaining
/// labels, which is how "per-source error_rate < 1%" is written.
///
/// [`burn_threshold`]: SloSpec::burn_threshold
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Objective name (also the alert name).
    pub name: String,
    /// The metric the objective reads.
    pub metric: String,
    /// Label selector; `"*"` values expand per matching series.
    pub labels: Vec<(String, String)>,
    /// Which derived series of the metric.
    pub aspect: Aspect,
    /// Good-direction comparison.
    pub op: SloOp,
    /// The objective's threshold on the series value.
    pub threshold: f64,
    /// Target compliance in `(0, 1)`, e.g. `0.99` = 1% error budget.
    pub objective: f64,
    /// Short burn window, in samples.
    pub short_window: usize,
    /// Long burn window, in samples.
    pub long_window: usize,
    /// Both windows must burn at or above this to breach.
    pub burn_threshold: f64,
    /// How long the breach must persist before the alert fires.
    pub for_ms: u64,
}

impl SloSpec {
    /// An objective with the conventional defaults: 99% target, 5/30
    /// sample windows, burn threshold 1, 2-second for-duration.
    pub fn new(
        name: impl Into<String>,
        metric: impl Into<String>,
        labels: &[(&str, &str)],
        aspect: Aspect,
        op: SloOp,
        threshold: f64,
    ) -> Self {
        SloSpec {
            name: name.into(),
            metric: metric.into(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            aspect,
            op,
            threshold,
            objective: 0.99,
            short_window: 5,
            long_window: 30,
            burn_threshold: 1.0,
            for_ms: 2_000,
        }
    }
}

/// The evaluated state of one (possibly wildcard-expanded) objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub slo: String,
    /// The expanded `source` label, for per-source objectives.
    pub source: Option<String>,
    /// Newest sample of the underlying series.
    pub latest: Option<f64>,
    /// Burn rate over the short window.
    pub burn_short: f64,
    /// Burn rate over the long window.
    pub burn_long: f64,
    /// Whether both windows burn at or above the spec's threshold.
    pub breaching: bool,
}

fn burn_rate(points: &[Point], window: usize, spec: &SloSpec) -> f64 {
    let tail = &points[points.len().saturating_sub(window.max(1))..];
    if tail.is_empty() {
        return 0.0;
    }
    // A sample is *bad* unless the good-direction comparison holds, so
    // NaN counts against the budget rather than for it.
    let bad = tail
        .iter()
        .filter(|p| {
            let good = match spec.op {
                SloOp::Lt => p.value < spec.threshold,
                SloOp::Gt => p.value > spec.threshold,
            };
            !good
        })
        .count();
    let budget = (1.0 - spec.objective).max(1e-9);
    (bad as f64 / tail.len() as f64) / budget
}

fn evaluate_slo(store: &MetricStore, spec: &SloSpec) -> Vec<SloStatus> {
    let fixed: Vec<(String, String)> = spec
        .labels
        .iter()
        .filter(|(_, v)| v != "*")
        .cloned()
        .collect();
    let wildcard = fixed.len() != spec.labels.len();
    let families: Vec<(Option<String>, Vec<Point>)> = if wildcard {
        store
            .matching(&spec.metric, spec.aspect, &fixed)
            .into_iter()
            .map(|(id, points)| {
                let source = id
                    .labels
                    .iter()
                    .find(|(k, _)| k == "source")
                    .map(|(_, v)| v.clone());
                (source, points)
            })
            .collect()
    } else {
        let labels: Vec<(&str, &str)> = fixed
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        vec![(None, store.series(&spec.metric, &labels, spec.aspect))]
    };
    families
        .into_iter()
        .map(|(source, points)| {
            let burn_short = burn_rate(&points, spec.short_window, spec);
            let burn_long = burn_rate(&points, spec.long_window, spec);
            SloStatus {
                slo: spec.name.clone(),
                source,
                latest: points.last().map(|p| p.value),
                burn_short,
                burn_long,
                breaching: burn_short >= spec.burn_threshold && burn_long >= spec.burn_threshold,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// EWMA / z-score anomaly detection
// ---------------------------------------------------------------------

/// Configuration of the per-series anomaly detector.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// The series families to watch (metric name + aspect); every
    /// concrete labeled series of a watched family gets its own EWMA.
    pub metrics: Vec<(String, Aspect)>,
    /// EWMA smoothing factor in `(0, 1]`.
    pub alpha: f64,
    /// A sample this many deviations *above* the mean is anomalous
    /// (one-sided: latency and error rates only hurt upward).
    pub z_threshold: f64,
    /// Samples required before a series can flag at all.
    pub min_samples: usize,
    /// For-duration debounce of anomaly alerts.
    pub for_ms: u64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            metrics: vec![
                ("health.latency_p95_ms".to_string(), Aspect::Value),
                ("health.error_rate".to_string(), Aspect::Value),
            ],
            alpha: 0.3,
            z_threshold: 4.0,
            min_samples: 8,
            for_ms: 2_000,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    mean: f64,
    var: f64,
    n: usize,
    last_t: u64,
}

impl Ewma {
    /// Score the sample against the current estimate, then absorb it.
    /// Returns the one-sided z-score (0 when below the mean or during
    /// warmup). A sustained shift is gradually absorbed into the mean,
    /// so a "new normal" stops flagging — and its alert resolves —
    /// without manual intervention.
    fn observe(&mut self, alpha: f64, min_samples: usize, x: f64) -> f64 {
        let z = if self.n >= min_samples {
            let sd = self.var.max(0.0).sqrt();
            if x > self.mean {
                (x - self.mean) / sd.max(1e-9).max(self.mean.abs() * 1e-3)
            } else {
                0.0
            }
        } else {
            0.0
        };
        let diff = x - self.mean;
        let incr = alpha * diff;
        self.mean += incr;
        self.var = (1.0 - alpha) * (self.var + diff * incr);
        self.n += 1;
        z
    }
}

// ---------------------------------------------------------------------
// Alert state machine
// ---------------------------------------------------------------------

/// The lifecycle state of one alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// Condition false, nothing brewing.
    Idle,
    /// Condition true, waiting out the for-duration.
    Pending,
    /// Condition held for the for-duration.
    Firing,
    /// Condition cleared after firing.
    Resolved,
}

impl AlertState {
    /// Short name, used in events, logs, and the `@SAlerts` encoding.
    pub fn name(self) -> &'static str {
        match self {
            AlertState::Idle => "idle",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "idle" => Some(AlertState::Idle),
            "pending" => Some(AlertState::Pending),
            "firing" => Some(AlertState::Firing),
            "resolved" => Some(AlertState::Resolved),
            _ => None,
        }
    }

    fn rank(self) -> f64 {
        match self {
            AlertState::Idle => 0.0,
            AlertState::Pending => 1.0,
            AlertState::Firing => 2.0,
            AlertState::Resolved => 3.0,
        }
    }
}

/// The current state of one alert.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStatus {
    /// Alert name (the SLO name, or `anomaly:<metric>`).
    pub name: String,
    /// The source the alert is about, for per-source alerts.
    pub source: Option<String>,
    /// Current lifecycle state.
    pub state: AlertState,
    /// When the current state was entered (clock milliseconds).
    pub since_ms: u64,
    /// The observed value behind the condition (burn rate or z-score).
    pub value: f64,
    /// The threshold the value is compared against.
    pub threshold: f64,
}

/// One state transition, as appended to the `alerts.jsonl` log.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Transition timestamp (clock milliseconds).
    pub ts_ms: u64,
    /// Alert name.
    pub alert: String,
    /// The source the alert is about, if per-source.
    pub source: Option<String>,
    /// The state entered (pending, firing, or resolved).
    pub state: AlertState,
    /// Observed value at transition time.
    pub value: f64,
    /// Condition threshold.
    pub threshold: f64,
}

impl AlertEvent {
    /// The event as one JSON line (the `alerts.jsonl` format).
    pub fn to_json(&self) -> String {
        let source = match &self.source {
            Some(s) => format!(",\"source\":\"{}\"", json_escape(s)),
            None => String::new(),
        };
        format!(
            "{{\"ts_ms\":{},\"alert\":\"{}\"{source},\"state\":\"{}\",\"value\":{},\"threshold\":{}}}",
            self.ts_ms,
            json_escape(&self.alert),
            self.state.name(),
            fmt_f64(self.value),
            fmt_f64(self.threshold),
        )
    }
}

/// Render a float so it parses back (JSON has no NaN/inf literals).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// One evaluated condition feeding the state machine this tick.
struct Condition {
    name: String,
    source: Option<String>,
    active: bool,
    value: f64,
    threshold: f64,
    for_ms: u64,
}

#[derive(Debug, Clone, Copy)]
struct AlertInstance {
    state: AlertState,
    since_ms: u64,
    value: f64,
    threshold: f64,
}

// ---------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------

/// Everything a [`Monitor`] needs: sampling cadence, objectives,
/// anomaly detection, the clock, and the event log.
pub struct MonitorConfig {
    /// Ring-buffer sizing for the metric store.
    pub store: StoreConfig,
    /// The objectives to evaluate each sample.
    pub slos: Vec<SloSpec>,
    /// Anomaly-detector settings.
    pub anomaly: AnomalyConfig,
    /// Time source; inject a [`ManualClock`] for determinism.
    pub clock: Arc<dyn Clock>,
    /// Where to append structured alert events (JSON Lines), if
    /// anywhere.
    pub log_path: Option<PathBuf>,
    /// Transition events kept in memory for `/alerts` and dashboards.
    pub events_kept: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            store: StoreConfig::default(),
            slos: default_slos(),
            anomaly: AnomalyConfig::default(),
            clock: Arc::new(SystemClock),
            log_path: None,
            events_kept: 256,
        }
    }
}

/// The stock objectives: federated-search latency and per-source
/// reliability, the two §3.4 cares about.
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        // meta.search p99 < 50ms, from the windowed span histogram.
        SloSpec::new(
            "meta-search-p99",
            "span.duration_us",
            &[("span", "meta.search")],
            Aspect::P99,
            SloOp::Lt,
            50_000.0,
        ),
        // Per-source error rate < 1%, from the health board's gauges.
        SloSpec::new(
            "source-error-rate",
            "health.error_rate",
            &[("source", "*")],
            Aspect::Value,
            SloOp::Lt,
            0.01,
        ),
        // Serving-layer end-to-end p99 < 100ms, from the executor's
        // windowed latency histogram (`starts-serve`). Burns nothing on
        // nets that never serve: an absent series never breaches.
        SloSpec::new(
            "serve-p99",
            "serve.latency_us",
            &[],
            Aspect::P99,
            SloOp::Lt,
            100_000.0,
        ),
        // Admission-queue sheds should be rare: the shed rate (events
        // per second over the sampling window) staying under 1/s is the
        // stock overload objective.
        SloSpec::new(
            "serve-shed-rate",
            "serve.shed",
            &[],
            Aspect::Rate,
            SloOp::Lt,
            1.0,
        ),
    ]
}

#[derive(Default)]
struct MonitorState {
    slos: Vec<SloSpec>,
    anomaly: Option<AnomalyConfig>,
    ewma: HashMap<SeriesKey, Ewma>,
    alerts: BTreeMap<(String, Option<String>), AlertInstance>,
    events: VecDeque<AlertEvent>,
    events_kept: usize,
    events_total: u64,
    log_path: Option<PathBuf>,
    last_slo: Vec<SloStatus>,
}

/// The time-series and alerting layer: samples a registry on
/// [`tick`], evaluates SLO burn rates and anomalies, advances the
/// alert state machine, logs transitions, and exports `slo.*` /
/// `alerts.*` gauges back into the registry.
///
/// [`tick`]: Monitor::tick
pub struct Monitor {
    store: MetricStore,
    state: Mutex<MonitorState>,
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new(MonitorConfig::default())
    }
}

impl Monitor {
    /// Build a monitor from a configuration.
    pub fn new(cfg: MonitorConfig) -> Self {
        Monitor {
            store: MetricStore::new(cfg.store, cfg.clock),
            state: Mutex::new(MonitorState {
                slos: cfg.slos,
                anomaly: Some(cfg.anomaly),
                ewma: HashMap::new(),
                alerts: BTreeMap::new(),
                events: VecDeque::new(),
                events_kept: cfg.events_kept.max(1),
                events_total: 0,
                log_path: cfg.log_path,
                last_slo: Vec::new(),
            }),
        }
    }

    /// The underlying time-series store (for dashboards).
    pub fn store(&self) -> &MetricStore {
        &self.store
    }

    /// Add an objective at runtime.
    pub fn add_slo(&self, spec: SloSpec) {
        self.state.lock().slos.push(spec);
    }

    /// Point the structured event log at a file (JSON Lines, append).
    pub fn set_log(&self, path: impl Into<PathBuf>) {
        self.state.lock().log_path = Some(path.into());
    }

    /// Sample the registry and run one evaluation pass, if a full step
    /// has elapsed since the last sample. Returns whether a sample was
    /// recorded. Cheap to call on every request: between steps it is a
    /// clock read.
    pub fn tick(&self, reg: &Registry) -> bool {
        if !self.store.due() {
            return false;
        }
        let snap = reg.snapshot();
        let Some(now) = self.store.tick(&snap) else {
            return false;
        };
        self.evaluate(reg, now);
        true
    }

    fn evaluate(&self, reg: &Registry, now: u64) {
        let mut st = self.state.lock();

        // 1. Objectives → burn rates → conditions.
        let specs = st.slos.clone();
        let mut statuses: Vec<SloStatus> = Vec::new();
        let mut conditions: Vec<Condition> = Vec::new();
        for spec in &specs {
            for status in evaluate_slo(&self.store, spec) {
                conditions.push(Condition {
                    name: spec.name.clone(),
                    source: status.source.clone(),
                    active: status.breaching,
                    value: status.burn_short,
                    threshold: spec.burn_threshold,
                    for_ms: spec.for_ms,
                });
                statuses.push(status);
            }
        }

        // 2. Anomaly detection over the watched families.
        if let Some(cfg) = st.anomaly.clone() {
            for (metric, aspect) in &cfg.metrics {
                for (id, points) in self.store.matching(metric, *aspect, &[]) {
                    let key = SeriesKey {
                        id: id.clone(),
                        aspect: *aspect,
                    };
                    let ewma = st.ewma.entry(key).or_default();
                    let mut z = 0.0;
                    for p in &points {
                        if p.t_ms > ewma.last_t {
                            z = ewma.observe(cfg.alpha, cfg.min_samples, p.value);
                            ewma.last_t = p.t_ms;
                        } else if p.t_ms == ewma.last_t {
                            // z of the newest already-seen point keeps
                            // the condition level between new samples.
                        }
                    }
                    let source = id
                        .labels
                        .iter()
                        .find(|(k, _)| k == "source")
                        .map(|(_, v)| v.clone());
                    conditions.push(Condition {
                        name: format!("anomaly:{metric}"),
                        source,
                        active: z >= cfg.z_threshold,
                        value: z,
                        threshold: cfg.z_threshold,
                        for_ms: cfg.for_ms,
                    });
                }
            }
        }

        // 3. Advance the state machine, collecting transition events.
        let mut events: Vec<AlertEvent> = Vec::new();
        for c in conditions {
            let key = (c.name.clone(), c.source.clone());
            let inst = st.alerts.entry(key).or_insert(AlertInstance {
                state: AlertState::Idle,
                since_ms: now,
                value: 0.0,
                threshold: c.threshold,
            });
            inst.value = c.value;
            inst.threshold = c.threshold;
            let mut enter = |inst: &mut AlertInstance, state: AlertState, emit: bool| {
                inst.state = state;
                inst.since_ms = now;
                if emit {
                    events.push(AlertEvent {
                        ts_ms: now,
                        alert: c.name.clone(),
                        source: c.source.clone(),
                        state,
                        value: c.value,
                        threshold: c.threshold,
                    });
                }
            };
            match (inst.state, c.active) {
                (AlertState::Idle | AlertState::Resolved, true) => {
                    enter(inst, AlertState::Pending, true);
                    if c.for_ms == 0 {
                        enter(inst, AlertState::Firing, true);
                    }
                }
                (AlertState::Pending, true) if now.saturating_sub(inst.since_ms) >= c.for_ms => {
                    enter(inst, AlertState::Firing, true);
                }
                // A blip shorter than the for-duration dies silently:
                // this is the flap suppression.
                (AlertState::Pending, false) => enter(inst, AlertState::Idle, false),
                (AlertState::Firing, false) => enter(inst, AlertState::Resolved, true),
                _ => {}
            }
        }

        // 4. Log and retain the events.
        if !events.is_empty() {
            if let Some(path) = st.log_path.clone() {
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    for e in &events {
                        let _ = writeln!(f, "{}", e.to_json());
                    }
                }
            }
            st.events_total += events.len() as u64;
            for e in events {
                if st.events.len() == st.events_kept {
                    st.events.pop_front();
                }
                st.events.push_back(e);
            }
        }

        // 5. Export slo.* / alerts.* gauges so every exporter — and
        // the /stats endpoint — carries alerting state.
        for s in &statuses {
            let mut labels: Vec<(&str, &str)> = vec![("slo", s.slo.as_str())];
            if let Some(src) = &s.source {
                labels.push(("source", src.as_str()));
            }
            reg.gauge_with("slo.burn_short", &labels).set(s.burn_short);
            reg.gauge_with("slo.burn_long", &labels).set(s.burn_long);
            reg.gauge_with("slo.breaching", &labels)
                .set(if s.breaching { 1.0 } else { 0.0 });
        }
        let firing = st
            .alerts
            .values()
            .filter(|a| a.state == AlertState::Firing)
            .count();
        let pending = st
            .alerts
            .values()
            .filter(|a| a.state == AlertState::Pending)
            .count();
        reg.gauge("alerts.firing").set(firing as f64);
        reg.gauge("alerts.pending").set(pending as f64);
        reg.gauge("alerts.events").set(st.events_total as f64);
        for ((name, source), inst) in &st.alerts {
            let mut labels: Vec<(&str, &str)> = vec![("alert", name.as_str())];
            if let Some(src) = source {
                labels.push(("source", src.as_str()));
            }
            reg.gauge_with("alerts.state", &labels)
                .set(inst.state.rank());
        }

        st.last_slo = statuses;
    }

    /// The objectives' most recent evaluation.
    pub fn slo_status(&self) -> Vec<SloStatus> {
        self.state.lock().last_slo.clone()
    }

    /// Every alert's current state, sorted by (name, source).
    pub fn alerts(&self) -> Vec<AlertStatus> {
        self.state
            .lock()
            .alerts
            .iter()
            .map(|((name, source), inst)| AlertStatus {
                name: name.clone(),
                source: source.clone(),
                state: inst.state,
                since_ms: inst.since_ms,
                value: inst.value,
                threshold: inst.threshold,
            })
            .collect()
    }

    /// The alerts currently firing.
    pub fn firing(&self) -> Vec<AlertStatus> {
        self.alerts()
            .into_iter()
            .filter(|a| a.state == AlertState::Firing)
            .collect()
    }

    /// Whether any alert about `source` is firing — the signal the
    /// `HealthAware` selector uses for its hard probe-floor demotion.
    pub fn is_source_firing(&self, source: &str) -> bool {
        self.state.lock().alerts.iter().any(|((_, src), inst)| {
            inst.state == AlertState::Firing && src.as_deref() == Some(source)
        })
    }

    /// Recent transition events, oldest first.
    pub fn recent_events(&self) -> Vec<AlertEvent> {
        self.state.lock().events.iter().cloned().collect()
    }

    /// Total transition events emitted since construction.
    pub fn events_total(&self) -> u64 {
        self.state.lock().events_total
    }

    /// One human line summarizing SLO and alert state, e.g. for the
    /// quickstart example or a CLI status dump.
    pub fn summary_line(&self) -> String {
        let st = self.state.lock();
        let objectives = st.last_slo.len();
        let breaching = st.last_slo.iter().filter(|s| s.breaching).count();
        let firing = st
            .alerts
            .values()
            .filter(|a| a.state == AlertState::Firing)
            .count();
        let pending = st
            .alerts
            .values()
            .filter(|a| a.state == AlertState::Pending)
            .count();
        format!(
            "slo: {objectives} objectives, {breaching} breaching | alerts: {firing} firing, \
             {pending} pending | {} events",
            st.events_total
        )
    }

    /// A self-contained snapshot of alerting state (for `/alerts`).
    pub fn snapshot_alerts(&self) -> AlertsSnapshot {
        let st = self.state.lock();
        AlertsSnapshot {
            generated_ms: self.store.clock.now_ms(),
            slos: st.last_slo.clone(),
            alerts: st
                .alerts
                .iter()
                .map(|((name, source), inst)| AlertStatus {
                    name: name.clone(),
                    source: source.clone(),
                    state: inst.state,
                    since_ms: inst.since_ms,
                    value: inst.value,
                    threshold: inst.threshold,
                })
                .collect(),
            events: st.events.iter().cloned().collect(),
        }
    }
}

// ---------------------------------------------------------------------
// @SAlerts: alert state in the protocol's own object model
// ---------------------------------------------------------------------

/// A decoded `/alerts` payload: current alert states, the latest SLO
/// evaluation, and recent transition events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlertsSnapshot {
    /// When the snapshot was taken (clock milliseconds).
    pub generated_ms: u64,
    /// Latest SLO evaluation.
    pub slos: Vec<SloStatus>,
    /// Every alert's current state.
    pub alerts: Vec<AlertStatus>,
    /// Recent transition events, oldest first.
    pub events: Vec<AlertEvent>,
}

impl AlertsSnapshot {
    /// The alerts currently firing.
    pub fn firing(&self) -> Vec<&AlertStatus> {
        self.alerts
            .iter()
            .filter(|a| a.state == AlertState::Firing)
            .collect()
    }

    /// Encode as an `@SAlerts` SOIF object (repeated `Slo` / `Alert` /
    /// `Event` attributes, like `@SStats` repeats `Counter`).
    pub fn to_soif(&self) -> starts_soif::SoifObject {
        let mut obj = starts_soif::SoifObject::new(SALERTS_TEMPLATE);
        obj.push_str("Version", "STARTS 1.0");
        obj.push_str("Generated", self.generated_ms.to_string());
        for s in &self.slos {
            let mut line = format!("slo={}", kv_quote(&s.slo));
            if let Some(src) = &s.source {
                line.push_str(&format!(" source={}", kv_quote(src)));
            }
            line.push_str(&format!(
                " latest={} burn_short={} burn_long={} breaching={}",
                s.latest.map_or("-".to_string(), fmt_f64),
                fmt_f64(s.burn_short),
                fmt_f64(s.burn_long),
                u8::from(s.breaching),
            ));
            obj.push_str("Slo", line);
        }
        for a in &self.alerts {
            let mut line = format!("alert={}", kv_quote(&a.name));
            if let Some(src) = &a.source {
                line.push_str(&format!(" source={}", kv_quote(src)));
            }
            line.push_str(&format!(
                " state={} since={} value={} threshold={}",
                a.state.name(),
                a.since_ms,
                fmt_f64(a.value),
                fmt_f64(a.threshold),
            ));
            obj.push_str("Alert", line);
        }
        for e in &self.events {
            let mut line = format!("alert={}", kv_quote(&e.alert));
            if let Some(src) = &e.source {
                line.push_str(&format!(" source={}", kv_quote(src)));
            }
            line.push_str(&format!(
                " state={} ts={} value={} threshold={}",
                e.state.name(),
                e.ts_ms,
                fmt_f64(e.value),
                fmt_f64(e.threshold),
            ));
            obj.push_str("Event", line);
        }
        obj
    }

    /// Decode an `@SAlerts` object.
    pub fn from_soif(obj: &starts_soif::SoifObject) -> Result<AlertsSnapshot, String> {
        if obj.template != SALERTS_TEMPLATE {
            return Err(format!(
                "expected @{SALERTS_TEMPLATE}, got @{}",
                obj.template
            ));
        }
        let mut snap = AlertsSnapshot {
            generated_ms: obj
                .get_str("Generated")
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0),
            ..AlertsSnapshot::default()
        };
        for line in obj.get_all_str("Slo") {
            let kv = parse_kv(line)?;
            snap.slos.push(SloStatus {
                slo: kv_str(&kv, "slo")?,
                source: kv_opt(&kv, "source"),
                latest: match kv.iter().find(|(k, _)| k == "latest") {
                    Some((_, v)) if v != "-" => Some(kv_num(v, "latest")?),
                    _ => None,
                },
                burn_short: kv_num(&kv_str(&kv, "burn_short")?, "burn_short")?,
                burn_long: kv_num(&kv_str(&kv, "burn_long")?, "burn_long")?,
                breaching: kv_str(&kv, "breaching")? == "1",
            });
        }
        for line in obj.get_all_str("Alert") {
            let kv = parse_kv(line)?;
            snap.alerts.push(AlertStatus {
                name: kv_str(&kv, "alert")?,
                source: kv_opt(&kv, "source"),
                state: parse_state(&kv)?,
                since_ms: kv_num(&kv_str(&kv, "since")?, "since")? as u64,
                value: kv_num(&kv_str(&kv, "value")?, "value")?,
                threshold: kv_num(&kv_str(&kv, "threshold")?, "threshold")?,
            });
        }
        for line in obj.get_all_str("Event") {
            let kv = parse_kv(line)?;
            snap.events.push(AlertEvent {
                alert: kv_str(&kv, "alert")?,
                source: kv_opt(&kv, "source"),
                state: parse_state(&kv)?,
                ts_ms: kv_num(&kv_str(&kv, "ts")?, "ts")? as u64,
                value: kv_num(&kv_str(&kv, "value")?, "value")?,
                threshold: kv_num(&kv_str(&kv, "threshold")?, "threshold")?,
            });
        }
        Ok(snap)
    }
}

fn parse_state(kv: &[(String, String)]) -> Result<AlertState, String> {
    let s = kv_str(kv, "state")?;
    AlertState::parse(&s).ok_or_else(|| format!("unknown alert state {s:?}"))
}

/// Quote a kv value: bare when it has no specials, else `"..."` with
/// backslash escapes.
fn kv_quote(v: &str) -> String {
    if !v.is_empty()
        && v.chars()
            .all(|c| !c.is_whitespace() && c != '"' && c != '\\' && c != '=')
    {
        v.to_string()
    } else {
        let mut out = String::with_capacity(v.len() + 2);
        out.push('"');
        for c in v.chars() {
            match c {
                '"' | '\\' => {
                    out.push('\\');
                    out.push(c);
                }
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

/// Parse a `key=value key="quoted value"` line into pairs.
fn parse_kv(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(format!("token without '=' in {line:?}"));
        }
        let key = line[key_start..i].to_string();
        i += 1; // '='
        let value = if bytes.get(i) == Some(&b'"') {
            i += 1;
            let mut v = Vec::new();
            loop {
                match bytes.get(i) {
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(b'\\') => {
                        match bytes.get(i + 1) {
                            Some(b'n') => v.push(b'\n'),
                            Some(&c) => v.push(c),
                            None => return Err(format!("dangling escape in {line:?}")),
                        }
                        i += 2;
                    }
                    Some(&c) => {
                        v.push(c);
                        i += 1;
                    }
                    None => return Err(format!("unterminated quote in {line:?}")),
                }
            }
            String::from_utf8(v).map_err(|_| format!("non-UTF-8 value in {line:?}"))?
        } else {
            let start = i;
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            line[start..i].to_string()
        };
        out.push((key, value));
    }
    Ok(out)
}

fn kv_str(kv: &[(String, String)], key: &str) -> Result<String, String> {
    kv.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn kv_opt(kv: &[(String, String)], key: &str) -> Option<String> {
    kv.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
}

fn kv_num(v: &str, key: &str) -> Result<f64, String> {
    v.parse::<f64>().map_err(|e| format!("{key}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> (Arc<ManualClock>, Arc<dyn Clock>) {
        let c = Arc::new(ManualClock::new(1_000_000));
        (Arc::clone(&c), c.clone() as Arc<dyn Clock>)
    }

    fn store(clock: Arc<dyn Clock>, step_ms: u64, retention: usize) -> MetricStore {
        MetricStore::new(StoreConfig { step_ms, retention }, clock)
    }

    #[test]
    fn counters_delta_encode_into_rates() {
        let (clock, dynck) = manual();
        let store = store(dynck, 1_000, 16);
        let reg = Registry::new();
        let c = reg.counter("requests");
        c.add(100); // pre-baseline history must not become a rate spike
        assert!(store.tick(&reg.snapshot()).is_some());
        assert!(store.series("requests", &[], Aspect::Rate).is_empty());

        c.add(50);
        clock.advance(1_000);
        assert!(store.tick(&reg.snapshot()).is_some());
        let pts = store.series("requests", &[], Aspect::Rate);
        assert_eq!(pts.len(), 1);
        assert!((pts[0].value - 50.0).abs() < 1e-9, "{pts:?}");

        // A counter born after the baseline emits from zero at once.
        reg.counter("late").add(10);
        clock.advance(2_000);
        assert!(store.tick(&reg.snapshot()).is_some());
        let late = store.series("late", &[], Aspect::Rate);
        assert_eq!(late.len(), 1);
        assert!((late[0].value - 5.0).abs() < 1e-9, "{late:?}");
    }

    #[test]
    fn ticks_between_steps_are_no_ops() {
        let (clock, dynck) = manual();
        let store = store(dynck, 1_000, 16);
        let reg = Registry::new();
        reg.gauge("g").set(1.0);
        assert!(store.tick(&reg.snapshot()).is_some());
        clock.advance(400);
        assert!(!store.due());
        assert!(store.tick(&reg.snapshot()).is_none());
        clock.advance(600);
        assert!(store.due());
        assert!(store.tick(&reg.snapshot()).is_some());
        assert_eq!(store.series("g", &[], Aspect::Value).len(), 2);
    }

    #[test]
    fn rings_rotate_at_retention() {
        let (clock, dynck) = manual();
        let store = store(dynck, 100, 4);
        let reg = Registry::new();
        for i in 0..10 {
            reg.gauge("g").set(i as f64);
            store.tick(&reg.snapshot());
            clock.advance(100);
        }
        let pts = store.series("g", &[], Aspect::Value);
        assert_eq!(pts.len(), 4);
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![6.0, 7.0, 8.0, 9.0]);
        assert!(pts.windows(2).all(|w| w[0].t_ms < w[1].t_ms));
    }

    #[test]
    fn histograms_yield_windowed_quantiles() {
        let (clock, dynck) = manual();
        let store = store(dynck, 1_000, 16);
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [10, 10, 10] {
            h.observe(v);
        }
        store.tick(&reg.snapshot()); // baseline
                                     // A window full of 5_000s: the *windowed* p99 must reflect it
                                     // even though the lifetime histogram is still mostly 10s.
        for _ in 0..10 {
            h.observe(5_000);
        }
        clock.advance(1_000);
        store.tick(&reg.snapshot());
        let p99 = store.latest("lat", &[], Aspect::P99).unwrap().value;
        assert!(p99 >= 5_000.0, "windowed p99 {p99}");
        let rate = store.latest("lat", &[], Aspect::Rate).unwrap().value;
        assert!((rate - 10.0).abs() < 1e-9, "rate {rate}");
    }

    fn error_rate_slo(for_ms: u64) -> SloSpec {
        SloSpec {
            objective: 0.9,
            short_window: 2,
            long_window: 4,
            for_ms,
            ..SloSpec::new(
                "source-error-rate",
                "health.error_rate",
                &[("source", "*")],
                Aspect::Value,
                SloOp::Lt,
                0.01,
            )
        }
    }

    fn monitor_with(clock: Arc<dyn Clock>, slos: Vec<SloSpec>) -> Monitor {
        Monitor::new(MonitorConfig {
            store: StoreConfig {
                step_ms: 1_000,
                retention: 32,
            },
            slos,
            anomaly: AnomalyConfig {
                metrics: Vec::new(), // SLO-only in these tests
                ..AnomalyConfig::default()
            },
            clock,
            log_path: None,
            events_kept: 64,
        })
    }

    /// The pinned lifecycle: an injected degradation walks
    /// pending → firing → resolved, and a sub-for-duration blip never
    /// fires (flap suppression).
    #[test]
    fn alert_state_machine_lifecycle_and_flap_suppression() {
        let (clock, dynck) = manual();
        let monitor = monitor_with(dynck, vec![error_rate_slo(2_000)]);
        let reg = Registry::new();
        let gauge = reg.gauge_with("health.error_rate", &[("source", "S1")]);

        let step = |value: f64| {
            gauge.set(value);
            clock.advance(1_000);
            assert!(monitor.tick(&reg));
        };

        // Healthy samples: no alerts, no events.
        for _ in 0..4 {
            step(0.0);
        }
        assert!(monitor.firing().is_empty());
        assert_eq!(monitor.events_total(), 0);

        // One bad sample, then recovery: pending only, suppressed.
        step(0.5);
        let a = &monitor.alerts()[0];
        assert_eq!(a.state, AlertState::Pending);
        step(0.0);
        // Recovery needs the short window (2 samples) to clear.
        step(0.0);
        assert_eq!(monitor.alerts()[0].state, AlertState::Idle);
        let states: Vec<AlertState> = monitor.recent_events().iter().map(|e| e.state).collect();
        assert!(
            !states.contains(&AlertState::Firing),
            "a one-sample blip must not fire: {states:?}"
        );

        // Sustained degradation: pending, then firing after for_ms.
        step(0.5); // pending again
        step(0.5); // 1s pending
        step(0.5); // 2s pending -> firing
        assert_eq!(monitor.alerts()[0].state, AlertState::Firing);
        assert!(monitor.is_source_firing("S1"));
        assert!(!monitor.is_source_firing("S2"));

        // Recovery: both windows drain, then the alert resolves.
        step(0.0);
        step(0.0);
        assert_eq!(monitor.alerts()[0].state, AlertState::Resolved);
        assert!(!monitor.is_source_firing("S1"));
        let states: Vec<AlertState> = monitor.recent_events().iter().map(|e| e.state).collect();
        assert_eq!(
            states,
            vec![
                AlertState::Pending, // the suppressed blip
                AlertState::Pending,
                AlertState::Firing,
                AlertState::Resolved,
            ]
        );
    }

    #[test]
    fn firing_alerts_export_through_every_exporter() {
        let (clock, dynck) = manual();
        let monitor = monitor_with(dynck, vec![error_rate_slo(0)]);
        let reg = Registry::new();
        let gauge = reg.gauge_with("health.error_rate", &[("source", "bad")]);
        for _ in 0..3 {
            gauge.set(1.0);
            clock.advance(1_000);
            monitor.tick(&reg);
        }
        assert!(monitor.is_source_firing("bad"));
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("alerts.firing", &[]), 1.0);
        assert_eq!(
            snap.gauge(
                "alerts.state",
                &[("alert", "source-error-rate"), ("source", "bad")]
            ),
            AlertState::Firing.rank()
        );
        assert_eq!(
            snap.gauge(
                "slo.breaching",
                &[("slo", "source-error-rate"), ("source", "bad")]
            ),
            1.0
        );
        // Prometheus text, JSON, and @SStats all carry the gauges.
        let prom = crate::export::prometheus(&snap);
        assert!(prom.contains("alerts_firing 1"), "{prom}");
        let json = crate::export::json(&snap);
        assert!(json.contains("\"name\":\"alerts.firing\""), "{json}");
        let obj = crate::export::to_soif(&snap);
        let back = crate::export::snapshot_from_soif(&obj).unwrap();
        assert_eq!(back.gauge("alerts.firing", &[]), 1.0);
    }

    #[test]
    fn events_append_to_jsonl_log() {
        let (clock, dynck) = manual();
        let path =
            std::env::temp_dir().join(format!("starts_monitor_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let monitor = monitor_with(dynck, vec![error_rate_slo(0)]);
        monitor.set_log(&path);
        let reg = Registry::new();
        let gauge = reg.gauge_with("health.error_rate", &[("source", "S1")]);
        for v in [1.0, 1.0, 0.0, 0.0] {
            gauge.set(v);
            clock.advance(1_000);
            monitor.tick(&reg);
        }
        let text = std::fs::read_to_string(&path).expect("alert log written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "{lines:?}");
        assert!(lines[0].contains("\"state\":\"pending\""), "{}", lines[0]);
        assert!(lines[1].contains("\"state\":\"firing\""), "{}", lines[1]);
        assert!(
            lines.last().unwrap().contains("\"state\":\"resolved\""),
            "{text}"
        );
        for line in &lines {
            assert!(line.starts_with("{\"ts_ms\":"), "{line}");
            assert!(line.contains("\"alert\":\"source-error-rate\""), "{line}");
            assert!(line.contains("\"source\":\"S1\""), "{line}");
        }
    }

    #[test]
    fn anomaly_detector_flags_latency_shift() {
        let (clock, dynck) = manual();
        let monitor = Monitor::new(MonitorConfig {
            store: StoreConfig {
                step_ms: 1_000,
                retention: 64,
            },
            slos: Vec::new(),
            anomaly: AnomalyConfig {
                min_samples: 4,
                for_ms: 0,
                ..AnomalyConfig::default()
            },
            clock: dynck,
            log_path: None,
            events_kept: 64,
        });
        let reg = Registry::new();
        let gauge = reg.gauge_with("health.latency_p95_ms", &[("source", "S1")]);
        // A stable baseline with mild jitter…
        for v in [100.0, 102.0, 98.0, 101.0, 99.0, 100.0, 101.0, 99.0] {
            gauge.set(v);
            clock.advance(1_000);
            monitor.tick(&reg);
        }
        assert!(monitor.firing().is_empty());
        // …then a 50x spike: the z-score detector must flag it.
        gauge.set(5_000.0);
        clock.advance(1_000);
        monitor.tick(&reg);
        assert!(
            monitor.is_source_firing("S1"),
            "alerts: {:?}",
            monitor.alerts()
        );
        assert_eq!(monitor.firing()[0].name, "anomaly:health.latency_p95_ms");
    }

    #[test]
    fn salerts_round_trips_through_the_parser() {
        let snap = AlertsSnapshot {
            generated_ms: 123_456,
            slos: vec![SloStatus {
                slo: "source-error-rate".to_string(),
                source: Some("S one \"quoted\"".to_string()),
                latest: Some(0.25),
                burn_short: 2.5,
                burn_long: 1.25,
                breaching: true,
            }],
            alerts: vec![AlertStatus {
                name: "source-error-rate".to_string(),
                source: Some("S one \"quoted\"".to_string()),
                state: AlertState::Firing,
                since_ms: 120_000,
                value: 2.5,
                threshold: 1.0,
            }],
            events: vec![AlertEvent {
                ts_ms: 120_000,
                alert: "source-error-rate".to_string(),
                source: None,
                state: AlertState::Pending,
                value: 2.5,
                threshold: 1.0,
            }],
        };
        let bytes = starts_soif::write_object(&snap.to_soif());
        let obj = starts_soif::parse_one(&bytes, starts_soif::ParseMode::Strict).unwrap();
        assert_eq!(obj.template, SALERTS_TEMPLATE);
        let back = AlertsSnapshot::from_soif(&obj).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.firing().len(), 1);
    }

    #[test]
    fn salerts_rejects_wrong_template() {
        let obj = starts_soif::SoifObject::new("SQuery");
        assert!(AlertsSnapshot::from_soif(&obj).is_err());
    }

    #[test]
    fn aspect_names_round_trip() {
        for a in [Aspect::Rate, Aspect::Value, Aspect::P50, Aspect::P99] {
            assert_eq!(Aspect::parse(a.name()), Some(a));
        }
        assert_eq!(Aspect::parse("nope"), None);
    }
}
