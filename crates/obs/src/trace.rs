//! Per-query distributed traces over [`SpanEvent`]s.
//!
//! The metasearcher tags its root `meta.search` span with a
//! `trace = <query id>` field and threads the same id — plus the
//! dispatching span's [`crate::SpanHandle`] — through the `@SQuery`
//! object, so host-side `source.execute` spans parent under the
//! client-side fan-out even though they were recorded on the far side
//! of the wire. This module stitches the resulting flat span log back
//! into a per-query tree:
//!
//! * [`TraceTree::build`] — collect every span belonging to a query id
//!   (tagged directly, or reachable from a tagged span through the
//!   parent-id chain) and link them into a tree;
//! * [`TraceTree::critical_path`] — the chain of spans that actually
//!   determined the query's wall-clock latency;
//! * [`write_jsonl`] / [`dump_jsonl`] — a line-per-span JSON sink for
//!   offline analysis (every bench binary honours `--trace-jsonl`).

use std::collections::{HashMap, HashSet};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::span::SpanEvent;

/// The span field carrying the query id (`trace = q-000001`).
pub const TRACE_FIELD: &str = "trace";

/// Mint a process-unique query id for tracing (`q-000001`, …).
pub fn next_query_id() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    format!("q-{:06}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// One node of a trace tree: a completed span and its children,
/// ordered by start time.
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// The completed span.
    pub event: SpanEvent,
    /// Child spans, ordered by start time.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Number of spans in this subtree (including this one).
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(TraceNode::len).sum::<usize>()
    }

    /// Whether the subtree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Depth-first search for the first node with the given leaf name.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        if self.event.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let fields: Vec<String> = self
            .event
            .fields
            .iter()
            .filter(|(k, _)| *k != TRACE_FIELD)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.push_str(&format!(
            "{}{} {}us{}\n",
            "  ".repeat(depth),
            self.event.name,
            self.event.duration_us,
            if fields.is_empty() {
                String::new()
            } else {
                format!(" [{}]", fields.join(" "))
            }
        ));
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// A stitched per-query trace: every span that belongs to one query id,
/// linked by parent span ids.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The query id the trace was built for.
    pub query_id: String,
    /// Root spans (spans in the trace whose parent is not), ordered by
    /// start time. A healthy metasearch yields exactly one.
    pub roots: Vec<TraceNode>,
}

impl TraceTree {
    /// Stitch the spans belonging to `query_id` out of a flat span log.
    ///
    /// A span belongs if it carries `trace = query_id` itself, or if it
    /// is reachable from such a span through the parent-id chain —
    /// which is how untagged children (phase spans, `client.query`)
    /// join the tagged root, and how host-side spans that were parented
    /// across the wire join the client-side dispatch.
    pub fn build(query_id: &str, events: &[SpanEvent]) -> TraceTree {
        // Seed: directly tagged spans.
        let mut member_ids: HashSet<u64> = events
            .iter()
            .filter(|e| e.field(TRACE_FIELD) == Some(query_id))
            .map(|e| e.id)
            .collect();
        // Expand: children of members are members, transitively. Spans
        // tagged with a *different* trace id never join.
        let mut children_of: HashMap<u64, Vec<&SpanEvent>> = HashMap::new();
        for e in events {
            children_of.entry(e.parent_id).or_default().push(e);
        }
        let mut frontier: Vec<u64> = member_ids.iter().copied().collect();
        while let Some(id) = frontier.pop() {
            for child in children_of.get(&id).into_iter().flatten() {
                let foreign = child.field(TRACE_FIELD).is_some_and(|t| t != query_id);
                if !foreign && member_ids.insert(child.id) {
                    frontier.push(child.id);
                }
            }
        }
        // Link members into nodes; roots are members whose parent is
        // not a member (0, evicted from the ring, or outside the trace).
        let mut nodes: HashMap<u64, TraceNode> = events
            .iter()
            .filter(|e| member_ids.contains(&e.id))
            .map(|e| {
                (
                    e.id,
                    TraceNode {
                        event: e.clone(),
                        children: Vec::new(),
                    },
                )
            })
            .collect();
        // Attach children to parents, newest id first: ids are handed
        // out in creation order and a child is always created after its
        // parent, so parents still exist in the map when their children
        // are moved in (start_us can tie at microsecond resolution).
        let mut order: Vec<u64> = nodes.keys().copied().collect();
        order.sort_by_key(|id| std::cmp::Reverse(*id));
        for id in order {
            let parent_id = nodes[&id].event.parent_id;
            if parent_id != 0 && nodes.contains_key(&parent_id) && parent_id != id {
                let child = nodes.remove(&id).expect("node present");
                nodes
                    .get_mut(&parent_id)
                    .expect("parent present")
                    .children
                    .push(child);
            }
        }
        let mut roots: Vec<TraceNode> = nodes.into_values().collect();
        sort_recursive(&mut roots);
        TraceTree {
            query_id: query_id.to_string(),
            roots,
        }
    }

    /// Number of spans in the trace.
    pub fn len(&self) -> usize {
        self.roots.iter().map(TraceNode::len).sum()
    }

    /// Whether the trace is empty (unknown query id).
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total duration: the first root's wall-clock time.
    pub fn total_duration_us(&self) -> u64 {
        self.roots.first().map_or(0, |r| r.event.duration_us)
    }

    /// Depth-first search for the first node with the given leaf name.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// The critical path: starting from the first root, the chain of
    /// spans that determined the query's end-to-end latency. At each
    /// node the children are walked backwards from the node's end time,
    /// repeatedly taking the latest-finishing child that starts before
    /// the current cursor — the standard backward critical-path sweep.
    /// Spans are returned in chronological order, root first.
    pub fn critical_path(&self) -> Vec<&SpanEvent> {
        let mut out = Vec::new();
        if let Some(root) = self.roots.first() {
            critical_into(root, &mut out);
        }
        out
    }

    /// The critical path as `name (duration_us)` joined by ` → ` — the
    /// form benches and examples print.
    pub fn critical_path_summary(&self) -> String {
        self.critical_path()
            .iter()
            .map(|e| format!("{} ({}us)", e.name, e.duration_us))
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Render the tree as indented text (one span per line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.roots {
            r.render_into(0, &mut out);
        }
        out
    }
}

fn sort_recursive(nodes: &mut [TraceNode]) {
    nodes.sort_by_key(|n| (n.event.start_us, n.event.id));
    for n in nodes {
        sort_recursive(&mut n.children);
    }
}

fn critical_into<'a>(node: &'a TraceNode, out: &mut Vec<&'a SpanEvent>) {
    out.push(&node.event);
    let mut cursor = node.event.end_us();
    let mut remaining: Vec<&TraceNode> = node.children.iter().collect();
    let mut chain: Vec<&TraceNode> = Vec::new();
    // Sweep backwards from the node's end, taking the latest-finishing
    // child that started before the cursor. Each step removes a child,
    // so the sweep terminates.
    while let Some((idx, _)) = remaining
        .iter()
        .enumerate()
        .filter(|(_, c)| c.event.start_us <= cursor)
        .max_by_key(|(_, c)| (c.event.end_us(), c.event.id))
    {
        let chosen = remaining.swap_remove(idx);
        cursor = chosen.event.start_us;
        chain.push(chosen);
    }
    for c in chain.iter().rev() {
        critical_into(c, out);
    }
}

// ---------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------

/// Write span events as JSON Lines: one object per span with `id`,
/// `parent_id`, `path`, `name`, `start_us`, `duration_us`, and a
/// `fields` object. Events stream in log order (oldest first), so the
/// file is `tail -f`-able when written incrementally.
pub fn write_jsonl<W: Write>(events: &[SpanEvent], mut w: W) -> io::Result<()> {
    for e in events {
        let fields: Vec<String> = e
            .fields
            .iter()
            .map(|(k, v)| {
                format!(
                    "\"{}\":\"{}\"",
                    crate::export::json_escape(k),
                    crate::export::json_escape(v)
                )
            })
            .collect();
        writeln!(
            w,
            "{{\"id\":{},\"parent_id\":{},\"path\":\"{}\",\"name\":\"{}\",\"start_us\":{},\"duration_us\":{},\"fields\":{{{}}}}}",
            e.id,
            e.parent_id,
            crate::export::json_escape(&e.path),
            crate::export::json_escape(&e.name),
            e.start_us,
            e.duration_us,
            fields.join(",")
        )?;
    }
    Ok(())
}

/// [`write_jsonl`] to a file path; returns the number of events
/// written.
pub fn dump_jsonl(events: &[SpanEvent], path: &Path) -> io::Result<usize> {
    let file = std::fs::File::create(path)?;
    write_jsonl(events, io::BufWriter::new(file))?;
    Ok(events.len())
}

// ---------------------------------------------------------------------
// JSONL source
// ---------------------------------------------------------------------

/// Read span events back from the JSON Lines format [`write_jsonl`]
/// produces. Tolerant by design: sinks append incrementally (the flight
/// recorder's slow-log, `--trace-jsonl` dumps), so a crash can leave a
/// truncated or garbled final line — any line that does not parse into a
/// complete span object is skipped rather than failing the read. The
/// spans that did make it to disk reconstruct into [`TraceTree`]s as
/// usual.
pub fn read_jsonl(text: &str) -> Vec<SpanEvent> {
    text.lines().filter_map(parse_jsonl_line).collect()
}

/// Span field keys are `&'static str` (they come from call sites);
/// events read back from disk intern their keys through a process-wide
/// dedup table, so the leak is bounded by the number of *distinct* keys
/// ever read.
fn intern_field_key(key: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::OnceLock;
    static KEYS: OnceLock<parking_lot::Mutex<HashSet<&'static str>>> = OnceLock::new();
    let table = KEYS.get_or_init(|| parking_lot::Mutex::new(HashSet::new()));
    let mut table = table.lock();
    match table.get(key) {
        Some(k) => k,
        None => {
            let leaked: &'static str = Box::leak(key.to_string().into_boxed_str());
            table.insert(leaked);
            leaked
        }
    }
}

struct JsonCursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonCursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn expect(&mut self, c: u8) -> Option<()> {
        (self.next()? == c).then_some(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.i += 1;
        }
    }

    /// A quoted JSON string, unescaped.
    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Some(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = self.b.get(self.i..self.i + 4)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        self.i += 4;
                    }
                    _ => return None,
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let start = self.i - 1;
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self.b.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.i = start + len;
                }
            }
        }
    }

    /// An unsigned integer (the only number shape [`write_jsonl`] emits).
    fn number(&mut self) -> Option<u64> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse()
            .ok()
    }

    /// Skip one value of any shape — forward compatibility for keys this
    /// reader does not know.
    fn skip_value(&mut self) -> Option<()> {
        self.skip_ws();
        match self.peek()? {
            b'"' => self.string().map(|_| ()),
            b'{' | b'[' => {
                let (open, close) = if self.peek() == Some(b'{') {
                    (b'{', b'}')
                } else {
                    (b'[', b']')
                };
                self.i += 1;
                let mut depth = 1usize;
                loop {
                    match self.peek()? {
                        b'"' => {
                            self.string()?;
                        }
                        c => {
                            self.i += 1;
                            if c == open {
                                depth += 1;
                            } else if c == close {
                                depth -= 1;
                                if depth == 0 {
                                    return Some(());
                                }
                            }
                        }
                    }
                }
            }
            _ => {
                while matches!(
                    self.peek(),
                    Some(
                        b'0'..=b'9'
                            | b'-'
                            | b'+'
                            | b'.'
                            | b'e'
                            | b'E'
                            | b't'
                            | b'r'
                            | b'u'
                            | b'f'
                            | b'a'
                            | b'l'
                            | b's'
                            | b'n'
                    )
                ) {
                    self.i += 1;
                }
                Some(())
            }
        }
    }
}

fn parse_jsonl_line(line: &str) -> Option<SpanEvent> {
    let mut p = JsonCursor {
        b: line.trim().as_bytes(),
        i: 0,
    };
    p.expect(b'{')?;
    let mut ev = SpanEvent {
        id: 0,
        parent_id: 0,
        path: String::new(),
        name: String::new(),
        parent: String::new(),
        start_us: 0,
        duration_us: 0,
        fields: Vec::new(),
    };
    let (mut has_id, mut has_duration) = (false, false);
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "id" => {
                ev.id = p.number()?;
                has_id = true;
            }
            "parent_id" => ev.parent_id = p.number()?,
            "path" => ev.path = p.string()?,
            "name" => ev.name = p.string()?,
            "start_us" => ev.start_us = p.number()?,
            "duration_us" => {
                ev.duration_us = p.number()?;
                has_duration = true;
            }
            "fields" => {
                p.expect(b'{')?;
                p.skip_ws();
                if p.peek() == Some(b'}') {
                    p.i += 1;
                } else {
                    loop {
                        p.skip_ws();
                        let k = p.string()?;
                        p.skip_ws();
                        p.expect(b':')?;
                        p.skip_ws();
                        let v = p.string()?;
                        ev.fields.push((intern_field_key(&k), v));
                        p.skip_ws();
                        match p.next()? {
                            b',' => continue,
                            b'}' => break,
                            _ => return None,
                        }
                    }
                }
            }
            _ => p.skip_value()?,
        }
        p.skip_ws();
        match p.next()? {
            b',' => continue,
            b'}' => break,
            _ => return None,
        }
    }
    p.skip_ws();
    if p.peek().is_some() {
        return None; // trailing garbage after the closing brace
    }
    // `write_jsonl` does not carry the parent path explicitly; it is
    // derivable (the path minus its leaf segment).
    ev.parent = ev
        .path
        .rsplit_once('/')
        .map(|(parent, _)| parent.to_string())
        .unwrap_or_default();
    (has_id && has_duration && !ev.path.is_empty() && ev.id != 0).then_some(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    /// Simulate the metasearch shape: a tagged root, nested phases, a
    /// cross-thread worker, and a "cross-wire" child attached via a
    /// serialized handle.
    fn record_query(reg: &Registry, qid: &str) {
        let root = reg.span_with("meta.search", vec![(TRACE_FIELD, qid.to_string())]);
        let _ = root.path();
        {
            let _select = reg.span("select");
        }
        let wire_handle = {
            let dispatch = reg.span("dispatch");
            let handle = dispatch.handle();
            let wire = std::thread::scope(|scope| {
                let reg = &reg;
                let handle = handle.clone();
                scope
                    .spawn(move || {
                        let worker =
                            reg.span_under("source", &handle, vec![("source", "S1".to_string())]);
                        worker.handle()
                    })
                    .join()
                    .expect("worker thread")
            });
            wire
        };
        // The "far side of the wire": a span parented by a handle that
        // travelled inside the query object.
        {
            let _host = reg.span_under(
                "source.execute",
                &wire_handle,
                vec![(TRACE_FIELD, qid.to_string())],
            );
            let _rewrite = reg.span("rewrite");
        }
        {
            let _merge = reg.span("merge");
        }
    }

    #[test]
    fn builds_one_tree_per_query_id() {
        let reg = Registry::new();
        record_query(&reg, "q-a");
        record_query(&reg, "q-b");
        let events = reg.recent_spans();
        let tree = TraceTree::build("q-a", &events);
        assert_eq!(tree.roots.len(), 1, "{}", tree.render());
        assert_eq!(tree.roots[0].event.name, "meta.search");
        assert_eq!(tree.len(), 7);
        // The other query's spans stay out.
        let other = TraceTree::build("q-b", &events);
        assert_eq!(other.len(), 7);
        assert!(TraceTree::build("q-none", &events).is_empty());
    }

    #[test]
    fn cross_wire_spans_nest_under_the_dispatch_chain() {
        let reg = Registry::new();
        record_query(&reg, "q-x");
        let tree = TraceTree::build("q-x", &reg.recent_spans());
        let host = tree.find("source.execute").expect("host span in tree");
        assert_eq!(host.event.parent, "meta.search/dispatch/source");
        let worker = tree.find("source").expect("worker span");
        assert_eq!(worker.event.parent, "meta.search/dispatch");
        assert!(worker
            .children
            .iter()
            .any(|c| c.event.name == "source.execute"));
        // The host's own child rides along through the parent chain.
        assert!(host.children.iter().any(|c| c.event.name == "rewrite"));
    }

    #[test]
    fn critical_path_is_chronological_and_rooted() {
        let reg = Registry::new();
        record_query(&reg, "q-c");
        let tree = TraceTree::build("q-c", &reg.recent_spans());
        let cp = tree.critical_path();
        assert!(!cp.is_empty());
        assert_eq!(cp[0].name, "meta.search");
        for pair in cp.windows(2) {
            assert!(
                pair[1].start_us >= pair[0].start_us,
                "critical path out of order: {}",
                tree.critical_path_summary()
            );
        }
        // The summary names every hop.
        let summary = tree.critical_path_summary();
        assert!(summary.starts_with("meta.search ("), "{summary}");
        assert!(summary.contains(" → "), "{summary}");
    }

    #[test]
    fn orphaned_tagged_spans_become_roots() {
        // A tagged span whose parent fell out of the ring still shows up
        // rather than vanishing.
        let reg = Registry::new();
        {
            let _s = reg.span_under(
                "late",
                &crate::SpanHandle {
                    path: "gone".to_string(),
                    id: 999_999_999,
                },
                vec![(TRACE_FIELD, "q-orphan".to_string())],
            );
        }
        let tree = TraceTree::build("q-orphan", &reg.recent_spans());
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].event.name, "late");
    }

    #[test]
    fn jsonl_emits_one_object_per_span() {
        let reg = Registry::new();
        record_query(&reg, "q-j");
        let events = reg.recent_spans();
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), events.len());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"duration_us\":"), "{line}");
        }
        assert!(text.contains("\"trace\":\"q-j\""));
    }

    #[test]
    fn jsonl_round_trips_through_the_reader() {
        let reg = Registry::new();
        record_query(&reg, "q-r");
        let events = reg.recent_spans();
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let back = read_jsonl(std::str::from_utf8(&buf).unwrap());
        assert_eq!(back, events);
        // The reconstructed events stitch into the same tree.
        let tree = TraceTree::build("q-r", &back);
        assert_eq!(tree.len(), TraceTree::build("q-r", &events).len());
    }

    #[test]
    fn truncated_final_line_is_skipped_not_fatal() {
        let reg = Registry::new();
        record_query(&reg, "q-t");
        let events = reg.recent_spans();
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Simulate a crash mid-append: cut the file inside the last line.
        let cut = text.trim_end().len() - 25;
        let back = read_jsonl(&text[..cut]);
        assert_eq!(back.len(), events.len() - 1);
        assert_eq!(back, events[..events.len() - 1]);
        // The surviving spans still build a (partial but rooted) trace.
        let tree = TraceTree::build("q-t", &back);
        assert!(!tree.is_empty());
    }

    #[test]
    fn garbage_lines_are_skipped() {
        let reg = Registry::new();
        {
            let _s = reg.span_with("solo", vec![(TRACE_FIELD, "q-g".to_string())]);
        }
        let mut buf = Vec::new();
        write_jsonl(&reg.recent_spans(), &mut buf).unwrap();
        let good = String::from_utf8(buf).unwrap();
        let noisy =
            format!("not json at all\n{{\"id\":5}}\n{good}{{\"id\":7,\"path\":\"x\",trailing\n\n");
        let back = read_jsonl(&noisy);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].name, "solo");
        assert_eq!(back[0].field(TRACE_FIELD), Some("q-g"));
    }

    #[test]
    fn reader_unescapes_field_values() {
        let line = r#"{"id":3,"parent_id":0,"path":"a","name":"a","start_us":1,"duration_us":2,"fields":{"note":"line\nbreak \"quoted\" \u0007"}}"#;
        let ev = parse_jsonl_line(line).expect("parses");
        assert_eq!(ev.field("note"), Some("line\nbreak \"quoted\" \u{7}"));
        assert_eq!(ev.parent, "");
    }

    #[test]
    fn query_ids_are_unique_and_ordered() {
        let a = next_query_id();
        let b = next_query_id();
        assert_ne!(a, b);
        assert!(a.starts_with("q-"));
    }
}
