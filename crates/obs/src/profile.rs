//! The query flight recorder: per-query [`QueryProfile`] retention with
//! automatic slow-query capture.
//!
//! The metasearcher produces one [`QueryProfile`] per federated search
//! (client-side select/adapt/dispatch/merge stages, with each host's
//! `XQueryProfile` breakdown grafted under the dispatching stage). This
//! module keeps them useful after the fact:
//!
//! * a **lock-light ring** of the last N profiles ([`FlightRecorder::recent`]),
//! * **slow-query capture**: a query whose total exceeds the rolling p99
//!   of everything recorded so far (after a warmup) or an absolute
//!   budget is copied to a separate slow ring
//!   ([`FlightRecorder::drain_slow`]) and appended, one JSON object per
//!   line, to an optional slow-log file — crash-tolerant by
//!   construction, because each line is self-contained and
//!   [`crate::trace::read_jsonl`]-style readers skip torn tails,
//! * **export**: [`FlightRecorder::export_to`] publishes `recorder.*`
//!   gauges into a [`Registry`], so `/stats`, Prometheus, and JSON dumps
//!   all carry the recorder's state with no extra wiring.
//!
//! A [`profile_from_trace`] helper converts a stitched
//! [`TraceTree`] into the same [`QueryProfile`]
//! shape, so offline span dumps and wire-carried profiles feed one
//! toolchain.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use starts_proto::{QueryProfile, StageCost};

use crate::metrics::Histogram;
use crate::registry::Registry;
use crate::trace::{TraceNode, TraceTree, TRACE_FIELD};

/// Profiles kept in the main ring by default.
pub const DEFAULT_CAPACITY: usize = 256;

/// Slow profiles kept between drains.
const SLOW_CAPACITY: usize = 64;

/// Recorded queries required before the rolling-p99 trigger arms (an
/// empty distribution flags everything; a tiny one flags noise).
pub const P99_WARMUP: u64 = 32;

/// A bounded recorder of recent query profiles with slow-query capture.
///
/// `record` takes one short mutex hold per ring touched plus a few
/// relaxed atomics — cheap enough to stay always-on in the search path.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<QueryProfile>>,
    slow: Mutex<VecDeque<QueryProfile>>,
    capacity: usize,
    /// Rolling distribution of total query wall-clock, for the p99
    /// trigger (exact-extreme clamping keeps the threshold honest).
    totals: Histogram,
    /// Absolute slow budget in µs; `u64::MAX` disables it.
    budget_us: AtomicU64,
    recorded: AtomicU64,
    slow_seen: AtomicU64,
    last_total_us: AtomicU64,
    slow_log: Mutex<Option<PathBuf>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last [`DEFAULT_CAPACITY`] profiles.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// A recorder keeping the last `capacity` profiles.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY))),
            slow: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            totals: Histogram::default(),
            budget_us: AtomicU64::new(u64::MAX),
            recorded: AtomicU64::new(0),
            slow_seen: AtomicU64::new(0),
            last_total_us: AtomicU64::new(0),
            slow_log: Mutex::new(None),
        }
    }

    /// Set the absolute slow budget: any query slower than `us` is
    /// captured regardless of the rolling p99.
    pub fn set_budget_us(&self, us: u64) {
        self.budget_us.store(us, Ordering::Relaxed);
    }

    /// The absolute slow budget, or `None` when disabled.
    pub fn budget_us(&self) -> Option<u64> {
        match self.budget_us.load(Ordering::Relaxed) {
            u64::MAX => None,
            us => Some(us),
        }
    }

    /// Append captured slow queries to `path` as JSON Lines (one
    /// self-contained object per query). The file is opened per capture,
    /// so a crash can lose at most the line being written.
    pub fn set_slow_log(&self, path: impl Into<PathBuf>) {
        *self.slow_log.lock() = Some(path.into());
    }

    /// The configured slow-log path, if any.
    pub fn slow_log_path(&self) -> Option<PathBuf> {
        self.slow_log.lock().clone()
    }

    /// Record one profile. Returns `true` when the query was captured as
    /// slow (over the absolute budget, or — once [`P99_WARMUP`] queries
    /// have been seen — over the rolling p99 of all recorded totals).
    pub fn record(&self, profile: &QueryProfile) -> bool {
        let total = profile.total_us();
        let seen = self.recorded.fetch_add(1, Ordering::Relaxed);
        self.last_total_us.store(total, Ordering::Relaxed);
        // Threshold from the distribution *before* this observation, so
        // one outlier cannot raise the bar it is judged against.
        let p99 = self.totals.snapshot_values().percentile(0.99);
        self.totals.observe(total);
        let over_budget = total > self.budget_us.load(Ordering::Relaxed);
        let over_p99 = seen >= P99_WARMUP && total > p99;
        let slow = over_budget || over_p99;
        {
            let mut ring = self.ring.lock();
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(profile.clone());
        }
        if slow {
            self.slow_seen.fetch_add(1, Ordering::Relaxed);
            {
                let mut slow_ring = self.slow.lock();
                if slow_ring.len() == SLOW_CAPACITY {
                    slow_ring.pop_front();
                }
                slow_ring.push_back(profile.clone());
            }
            if let Some(path) = self.slow_log.lock().as_deref() {
                // Best-effort: a failing sink must not fail the query.
                let _ = append_slow_log(path, profile);
            }
        }
        slow
    }

    /// The retained profiles, oldest first.
    pub fn recent(&self) -> Vec<QueryProfile> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Take the captured slow profiles, clearing the slow ring.
    pub fn drain_slow(&self) -> Vec<QueryProfile> {
        self.slow.lock().drain(..).collect()
    }

    /// Total queries recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Total queries captured as slow over the recorder's lifetime.
    pub fn slow_seen(&self) -> u64 {
        self.slow_seen.load(Ordering::Relaxed)
    }

    /// Publish the recorder's state as `recorder.*` gauges, so every
    /// exporter (Prometheus, JSON, `@SStats` — and therefore `/stats`)
    /// carries it.
    pub fn export_to(&self, reg: &Registry) {
        let totals = self.totals.snapshot_values();
        reg.gauge("recorder.queries")
            .set(self.recorded.load(Ordering::Relaxed) as f64);
        reg.gauge("recorder.slow_queries")
            .set(self.slow_seen.load(Ordering::Relaxed) as f64);
        reg.gauge("recorder.last_total_us")
            .set(self.last_total_us.load(Ordering::Relaxed) as f64);
        reg.gauge("recorder.p50_us")
            .set(totals.percentile(0.50) as f64);
        reg.gauge("recorder.p99_us")
            .set(totals.percentile(0.99) as f64);
        if let Some(budget) = self.budget_us() {
            reg.gauge("recorder.budget_us").set(budget as f64);
        }
    }
}

fn append_slow_log(path: &Path, profile: &QueryProfile) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = profile_to_json(profile);
    line.push('\n');
    file.write_all(line.as_bytes())
}

/// One profile as a single-line JSON object (the slow-log format):
/// `{"query_id":…,"total_us":…,"critical_path":…,"root":{…}}` with the
/// stage tree nested under `root`.
pub fn profile_to_json(profile: &QueryProfile) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"query_id\":\"{}\",\"total_us\":{},\"critical_path\":\"{}\",\"root\":",
        crate::export::json_escape(&profile.query_id),
        profile.total_us(),
        crate::export::json_escape(&profile.critical_path_summary()),
    ));
    stage_to_json(&profile.root, &mut out);
    out.push('}');
    out
}

fn stage_to_json(stage: &StageCost, out: &mut String) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"start_us\":{},\"duration_us\":{}",
        crate::export::json_escape(&stage.name),
        stage.start_us,
        stage.duration_us
    ));
    if !stage.meta.is_empty() {
        let metas: Vec<String> = stage
            .meta
            .iter()
            .map(|(k, v)| {
                format!(
                    "\"{}\":\"{}\"",
                    crate::export::json_escape(k),
                    crate::export::json_escape(v)
                )
            })
            .collect();
        out.push_str(&format!(",\"meta\":{{{}}}", metas.join(",")));
    }
    if !stage.children.is_empty() {
        out.push_str(",\"children\":[");
        for (i, c) in stage.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            stage_to_json(c, out);
        }
        out.push(']');
    }
    out.push('}');
}

/// Convert a stitched [`TraceTree`] into a [`QueryProfile`]: the first
/// root becomes the profile root, span fields become stage metadata
/// (minus the `trace` tag), and start offsets are rebased so the root
/// starts at 0. Returns `None` for an empty tree.
pub fn profile_from_trace(tree: &TraceTree) -> Option<QueryProfile> {
    let root = tree.roots.first()?;
    let base = root.event.start_us;
    Some(QueryProfile {
        query_id: tree.query_id.clone(),
        root: node_to_stage(root, base),
    })
}

fn node_to_stage(node: &TraceNode, base: u64) -> StageCost {
    StageCost {
        name: node.event.name.clone(),
        start_us: node.event.start_us.saturating_sub(base),
        duration_us: node.event.duration_us,
        meta: node
            .event
            .fields
            .iter()
            .filter(|(k, _)| *k != TRACE_FIELD)
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        children: node
            .children
            .iter()
            .map(|c| node_to_stage(c, base))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(id: &str, total_us: u64) -> QueryProfile {
        let mut root = StageCost::new("meta.search", 0, total_us);
        root.children = vec![StageCost::new("dispatch", 0, total_us / 2)];
        QueryProfile {
            query_id: id.to_string(),
            root,
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            rec.record(&profile(&format!("q-{i}"), 100));
        }
        let recent = rec.recent();
        assert_eq!(recent.len(), 3);
        let ids: Vec<&str> = recent.iter().map(|p| p.query_id.as_str()).collect();
        assert_eq!(ids, ["q-2", "q-3", "q-4"]);
        assert_eq!(rec.recorded(), 5);
    }

    #[test]
    fn absolute_budget_captures_slow_queries() {
        let rec = FlightRecorder::new();
        rec.set_budget_us(1_000);
        assert!(!rec.record(&profile("q-fast", 500)));
        assert!(rec.record(&profile("q-slow", 2_000)));
        assert_eq!(rec.slow_seen(), 1);
        let slow = rec.drain_slow();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].query_id, "q-slow");
        // Draining clears the slow ring but not the counters.
        assert!(rec.drain_slow().is_empty());
        assert_eq!(rec.slow_seen(), 1);
    }

    #[test]
    fn rolling_p99_arms_after_warmup() {
        let rec = FlightRecorder::new();
        // Uniform baseline: nothing is slow during or after warmup,
        // because the p99 threshold equals the observed value.
        for i in 0..40 {
            assert!(!rec.record(&profile(&format!("q-{i}"), 100)), "query {i}");
        }
        // A 100× outlier trips the trigger with no budget configured.
        assert!(rec.record(&profile("q-outlier", 10_000)));
        assert_eq!(rec.drain_slow()[0].query_id, "q-outlier");
    }

    #[test]
    fn p99_trigger_stays_quiet_during_warmup() {
        let rec = FlightRecorder::new();
        assert!(!rec.record(&profile("q-a", 100)));
        // Far over the (single-sample) p99, but the trigger is not armed.
        assert!(!rec.record(&profile("q-b", 1_000_000)));
    }

    #[test]
    fn slow_log_appends_one_json_line_per_capture() {
        let dir = std::env::temp_dir().join(format!("starts-fr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = FlightRecorder::new();
        rec.set_budget_us(1_000);
        rec.set_slow_log(&path);
        rec.record(&profile("q-ok", 10));
        rec.record(&profile("q-slow-1", 5_000));
        rec.record(&profile("q-slow-2", 9_000));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"query_id\":\"q-slow-1\""));
        assert!(lines[1].contains("\"query_id\":\"q-slow-2\""));
        assert!(lines[0].contains("\"total_us\":5000"));
        assert!(lines[0].contains("\"critical_path\":"));
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn export_publishes_recorder_gauges() {
        let rec = FlightRecorder::new();
        rec.set_budget_us(50_000);
        for i in 0..10 {
            rec.record(&profile(&format!("q-{i}"), 200));
        }
        let reg = Registry::new();
        rec.export_to(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("recorder.queries", &[]), 10.0);
        assert_eq!(snap.gauge("recorder.slow_queries", &[]), 0.0);
        assert_eq!(snap.gauge("recorder.last_total_us", &[]), 200.0);
        // Exact-extreme clamping: the p-gauges are the observed value.
        assert_eq!(snap.gauge("recorder.p50_us", &[]), 200.0);
        assert_eq!(snap.gauge("recorder.p99_us", &[]), 200.0);
        assert_eq!(snap.gauge("recorder.budget_us", &[]), 50_000.0);
    }

    #[test]
    fn trace_tree_converts_to_a_profile() {
        let reg = Registry::new();
        {
            let root = reg.span_with("meta.search", vec![(TRACE_FIELD, "q-p".to_string())]);
            let _ = root.path();
            {
                let _child = reg.span_with("dispatch", vec![("wave", "1".to_string())]);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let tree = TraceTree::build("q-p", &reg.recent_spans());
        let p = profile_from_trace(&tree).expect("non-empty tree");
        assert_eq!(p.query_id, "q-p");
        assert_eq!(p.root.name, "meta.search");
        assert_eq!(p.root.start_us, 0);
        let dispatch = p.find("dispatch").expect("child stage");
        assert!(dispatch.duration_us >= 1_000, "slept 1ms");
        assert_eq!(dispatch.meta_value("wave"), Some("1"));
        // The trace tag is stripped from stage metadata.
        assert!(p.root.meta_value(TRACE_FIELD).is_none());
        assert!(profile_from_trace(&TraceTree::build("q-none", &[])).is_none());
    }
}
