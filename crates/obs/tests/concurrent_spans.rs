//! Span nesting under concurrent dispatch: the exact shape the
//! metasearcher produces — a root span on the dispatching thread and
//! one `span_under` worker per fan-out thread — must yield correct
//! parent links and per-path duration histograms with no cross-thread
//! bleed.

use starts_obs::Registry;

const WORKERS: usize = 8;

#[test]
fn fan_out_workers_nest_under_the_dispatch_span() {
    let reg = Registry::new();
    {
        let root = reg.span("dispatch");
        let root_handle = root.handle();
        crossbeam::thread::scope(|s| {
            for i in 0..WORKERS {
                let reg = &reg;
                let parent = root_handle.clone();
                s.spawn(move |_| {
                    let worker = reg.span_under("worker", &parent, vec![("idx", i.to_string())]);
                    // A nested child on the worker thread parents to the
                    // worker via the thread-local stack, not to the
                    // dispatcher's stack.
                    let _inner = reg.span(&format!("step-{i}"));
                    assert_eq!(_inner.path(), format!("{}/step-{i}", worker.path()));
                });
            }
        })
        .unwrap();
    }

    let events = reg.recent_spans();
    // WORKERS inner spans + WORKERS worker spans + 1 root.
    assert_eq!(events.len(), 2 * WORKERS + 1);

    let root_event = events.iter().find(|e| e.name == "dispatch").unwrap();
    let workers: Vec<_> = events.iter().filter(|e| e.name == "worker").collect();
    assert_eq!(workers.len(), WORKERS);
    for w in &workers {
        assert_eq!(w.parent, "dispatch");
        assert_eq!(w.path, "dispatch/worker");
        assert_eq!(w.parent_id, root_event.id);
    }
    // Every worker carried its own field; all indices show up once.
    let mut idxs: Vec<String> = workers.iter().map(|w| w.fields[0].1.clone()).collect();
    idxs.sort();
    let expected: Vec<String> = (0..WORKERS).map(|i| i.to_string()).collect();
    let mut expected = expected;
    expected.sort();
    assert_eq!(idxs, expected);

    // Inner spans nested under their worker, not under the root.
    for i in 0..WORKERS {
        let inner = events
            .iter()
            .find(|e| e.name == format!("step-{i}"))
            .expect("inner span recorded");
        assert_eq!(inner.parent, "dispatch/worker");
    }

    // The root closed last and carries the whole tree's path.
    let root = events.iter().find(|e| e.name == "dispatch").unwrap();
    assert_eq!(root.parent, "");

    // Durations aggregated per path: one histogram per distinct path.
    let snap = reg.snapshot();
    let worker_h = snap
        .histogram("span.duration_us", &[("span", "dispatch/worker")])
        .expect("worker duration histogram");
    assert_eq!(worker_h.count, WORKERS as u64);
    let root_h = snap
        .histogram("span.duration_us", &[("span", "dispatch")])
        .expect("root duration histogram");
    assert_eq!(root_h.count, 1);
}

#[test]
fn concurrent_counters_lose_no_increments() {
    let reg = Registry::new();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    crossbeam::thread::scope(|s| {
        for _ in 0..THREADS {
            let reg = &reg;
            s.spawn(move |_| {
                // Re-interning on every increment exercises the
                // read-lock fast path under contention.
                for _ in 0..PER_THREAD {
                    reg.counter_with("hits", &[("src", "shared")]).inc();
                    reg.histogram("h").observe(1);
                }
            });
        }
    })
    .unwrap();
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("hits", &[("src", "shared")]),
        THREADS as u64 * PER_THREAD
    );
    assert_eq!(
        snap.histogram("h", &[]).unwrap().count,
        THREADS as u64 * PER_THREAD
    );
}
