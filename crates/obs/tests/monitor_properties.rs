//! Property-based tests for the monitor's metric store: ring rotation
//! keeps exactly the newest `retention` points in timestamp order, and
//! counter delta-encoding is exact even when the increments land from
//! 8 concurrent writer threads.

use std::sync::Arc;

use proptest::prelude::*;
use starts_obs::monitor::{Aspect, ManualClock, MetricStore, Point, StoreConfig};
use starts_obs::Registry;

fn store(clock: Arc<ManualClock>, step_ms: u64, retention: usize) -> MetricStore {
    MetricStore::new(StoreConfig { step_ms, retention }, clock)
}

proptest! {
    /// After any sequence of gauge samples, each ring holds exactly the
    /// newest `min(samples, retention)` points, strictly ordered by
    /// timestamp, with the values the gauge had at those instants.
    #[test]
    fn rings_keep_the_newest_points_in_order(
        values in proptest::collection::vec(-1e6f64..1e6, 1..40),
        retention in 1usize..12,
        step_ms in 1u64..5_000,
    ) {
        let clock = Arc::new(ManualClock::new(1_000_000));
        let store = store(clock.clone(), step_ms, retention);
        let reg = Registry::new();
        for &v in &values {
            reg.gauge("g").set(v);
            prop_assert!(store.tick(&reg.snapshot()).is_some());
            clock.advance(step_ms);
        }
        let pts = store.series("g", &[], Aspect::Value);
        let expected: Vec<f64> = values
            .iter()
            .copied()
            .skip(values.len().saturating_sub(retention))
            .collect();
        prop_assert_eq!(pts.len(), expected.len());
        for (p, want) in pts.iter().zip(&expected) {
            prop_assert_eq!(p.value, *want);
        }
        for w in pts.windows(2) {
            prop_assert!(w[0].t_ms < w[1].t_ms);
        }
    }

    /// Counter delta-encoding is exact: the rate points integrate back
    /// to the total counted after the baseline, for any increment
    /// schedule and step width.
    #[test]
    fn counter_deltas_integrate_back_to_the_total(
        increments in proptest::collection::vec(0u64..1_000, 1..30),
        step_ms in 1u64..5_000,
    ) {
        let clock = Arc::new(ManualClock::new(5_000_000));
        let store = store(clock.clone(), step_ms, 64);
        let reg = Registry::new();
        let c = reg.counter("events");
        c.add(17); // pre-baseline history must never appear as a rate
        prop_assert!(store.tick(&reg.snapshot()).is_some());
        for &n in &increments {
            c.add(n);
            clock.advance(step_ms);
            prop_assert!(store.tick(&reg.snapshot()).is_some());
        }
        let pts = store.series("events", &[], Aspect::Rate);
        let kept = increments.len().min(64);
        prop_assert_eq!(pts.len(), kept);
        // Each point is delta/dt; multiplying back by dt recovers the
        // per-step increment exactly (dt is the same for every step).
        let dt_s = step_ms as f64 / 1_000.0;
        let recovered: f64 = pts.iter().map(|p| p.value * dt_s).sum();
        let expected: u64 = increments[increments.len() - kept..].iter().sum();
        prop_assert!(
            (recovered - expected as f64).abs() < 1e-6 * (1.0 + expected as f64),
            "recovered {} expected {}", recovered, expected
        );
    }
}

/// Delta correctness under contention: 8 writer threads hammer one
/// counter between ticks; every increment must be attributed to
/// exactly one sample (the rates integrate to the exact total).
#[test]
fn counter_deltas_are_exact_under_8_concurrent_writers() {
    const WRITERS: usize = 8;
    const ROUNDS: usize = 20;
    const PER_ROUND: u64 = 500;

    let clock = Arc::new(ManualClock::new(1_000_000));
    let store = store(clock.clone(), 1_000, ROUNDS + 1);
    let reg = Registry::new();
    reg.counter("hits").add(0);
    assert!(store.tick(&reg.snapshot()).is_some()); // baseline

    for _ in 0..ROUNDS {
        std::thread::scope(|s| {
            for _ in 0..WRITERS {
                let c = reg.counter("hits");
                s.spawn(move || {
                    for _ in 0..PER_ROUND {
                        c.inc();
                    }
                });
            }
        });
        clock.advance(1_000);
        assert!(store.tick(&reg.snapshot()).is_some());
    }

    let pts: Vec<Point> = store.series("hits", &[], Aspect::Rate);
    assert_eq!(pts.len(), ROUNDS);
    // dt is exactly 1s per step, so rate == per-step delta.
    let total: f64 = pts.iter().map(|p| p.value).sum();
    let expected = (WRITERS as u64 * ROUNDS as u64 * PER_ROUND) as f64;
    assert_eq!(total, expected, "every increment attributed exactly once");
    // And with a synchronized schedule, each sample saw a full round.
    for p in &pts {
        assert_eq!(p.value, (WRITERS as u64 * PER_ROUND) as f64);
    }
}

/// Ring rotation under contention: 8 threads each tick their own
/// labeled gauge series through one shared store; no series loses or
/// duplicates points.
#[test]
fn rings_rotate_correctly_under_8_concurrent_writers() {
    const WRITERS: usize = 8;
    const SAMPLES: usize = 50;
    const RETENTION: usize = 16;

    let clock = Arc::new(ManualClock::new(1_000_000));
    let store = Arc::new(store(clock.clone(), 0, RETENTION));
    let reg = Arc::new(Registry::new());

    // step_ms = 0 lets every tick record, so writers can race freely.
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let store = Arc::clone(&store);
            let reg = Arc::clone(&reg);
            let clock = Arc::clone(&clock);
            s.spawn(move || {
                let id = format!("w{w}");
                for i in 0..SAMPLES {
                    reg.gauge_with("per_writer", &[("writer", &id)])
                        .set(i as f64);
                    clock.advance(1);
                    store.tick(&reg.snapshot());
                }
            });
        }
    });

    for w in 0..WRITERS {
        let id = format!("w{w}");
        let pts = store.series("per_writer", &[("writer", &id)], Aspect::Value);
        assert_eq!(pts.len(), RETENTION, "writer {w}");
        // Timestamps never go backwards, and values never decrease
        // below a later writer's earlier sample within this series.
        for pair in pts.windows(2) {
            assert!(pair[0].t_ms <= pair[1].t_ms, "writer {w}: {pts:?}");
        }
        // The newest point must reflect the final value this writer
        // set... or a later concurrent snapshot of it; either way it
        // is one of the values actually written.
        for p in &pts {
            assert!(
                p.value >= 0.0 && p.value < SAMPLES as f64,
                "writer {w}: stray value {p:?}"
            );
        }
        let last = pts.last().unwrap().value;
        assert_eq!(
            last,
            (SAMPLES - 1) as f64,
            "writer {w}: final sample must be the last value written"
        );
    }
}
