//! Property-based tests for the log-bucketed histogram: bucket
//! bookkeeping is exact, and percentile estimates bracket the true
//! order statistic within the documented factor of two.

use proptest::prelude::*;
use starts_obs::metrics::{bucket_index, bucket_upper_bound, NUM_BUCKETS};
use starts_obs::Histogram;

fn arb_observations() -> impl Strategy<Value = Vec<u64>> {
    // Mix small values (dense low buckets) with a heavy tail; cap each
    // observation so the sum can't overflow u64 across 400 of them.
    proptest::collection::vec(
        prop_oneof![Just(0u64), 0u64..16, 0u64..4096, 0u64..1_000_000_000,],
        1..400,
    )
}

/// The exact q-quantile under the histogram's own rank convention:
/// the ⌈q·n⌉-th smallest observation.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// count/sum/min/max and the per-bucket tallies match a direct
    /// computation over the raw observations.
    #[test]
    fn bookkeeping_is_exact(obs in arb_observations()) {
        let h = Histogram::default();
        for &v in &obs {
            h.observe(v);
        }
        let snap = h.snapshot_values();
        prop_assert_eq!(snap.count, obs.len() as u64);
        prop_assert_eq!(snap.sum, obs.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *obs.iter().min().unwrap());
        prop_assert_eq!(snap.max, *obs.iter().max().unwrap());
        let mut expected = vec![0u64; NUM_BUCKETS];
        for &v in &obs {
            expected[bucket_index(v)] += 1;
        }
        prop_assert_eq!(snap.buckets, expected);
    }

    /// Every observation is at most its bucket's inclusive upper bound,
    /// and above the previous bucket's (the buckets partition the axis).
    #[test]
    fn buckets_partition_the_axis(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }

    /// The documented accuracy contract: for every quantile,
    /// `true ≤ estimate ≤ 2·true` (estimate equals 0 when true is 0).
    #[test]
    fn percentiles_bracket_the_truth(
        obs in arb_observations(),
        q in prop_oneof![Just(0.5), Just(0.95), Just(0.99), 0.01f64..1.0],
    ) {
        let h = Histogram::default();
        for &v in &obs {
            h.observe(v);
        }
        let mut sorted = obs.clone();
        sorted.sort_unstable();
        let truth = exact_percentile(&sorted, q);
        let est = h.snapshot_values().percentile(q);
        prop_assert!(est >= truth, "estimate {} below true {}", est, truth);
        if truth == 0 {
            prop_assert_eq!(est, 0);
        } else {
            prop_assert!(est <= 2 * truth, "estimate {} above 2·{}", est, truth);
        }
    }

    /// Percentiles are monotone in q and never exceed the observed max.
    #[test]
    fn percentiles_are_monotone(obs in arb_observations()) {
        let h = Histogram::default();
        for &v in &obs {
            h.observe(v);
        }
        let snap = h.snapshot_values();
        let qs = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut prev = 0u64;
        for &q in &qs {
            let p = snap.percentile(q);
            prop_assert!(p >= prev, "p({}) = {} < p(prev) = {}", q, p, prev);
            prop_assert!(p <= snap.max);
            prev = p;
        }
    }
}
