//! Concurrency property: histogram snapshots taken while writers are
//! recording must stay internally consistent. A snapshot copies the
//! bucket array without stopping the world, so it may be "torn" across
//! concurrent observes — but two invariants must still hold on every
//! copy:
//!
//! * quantiles are monotone: `p50 <= p95 <= p99` (so p99 never reads
//!   below p50), because `percentile(q)` walks one fixed bucket copy;
//! * `count` never decreases between successive snapshots, because it
//!   is a single monotone atomic.

use std::sync::atomic::{AtomicBool, Ordering};

use starts_obs::Registry;

const WRITERS: usize = 8;
const OBS_PER_WRITER: usize = 20_000;
const SNAPSHOTS: usize = 200;

#[test]
fn snapshots_under_concurrent_writes_stay_consistent() {
    let reg = Registry::new();
    let done = AtomicBool::new(false);
    crossbeam::thread::scope(|s| {
        for t in 0..WRITERS {
            let reg = &reg;
            s.spawn(move |_| {
                // A deterministic spread of values across many buckets,
                // different per thread, so snapshots race against
                // observes landing all over the bucket array.
                let mut x: u64 = (t as u64 + 1) * 2_654_435_761;
                for _ in 0..OBS_PER_WRITER {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    reg.histogram("lat").observe(x % 1_000_000);
                }
            });
        }

        // The reader races with the writers, taking snapshots the
        // whole time they run.
        let reg = &reg;
        let done = &done;
        let reader = s.spawn(move |_| {
            let mut last_count = 0u64;
            let mut taken = 0usize;
            while taken < SNAPSHOTS || !done.load(Ordering::Acquire) {
                let snap = reg.snapshot();
                if let Some(h) = snap.histogram("lat", &[]) {
                    assert!(
                        h.p50 <= h.p95 && h.p95 <= h.p99,
                        "non-monotone quantiles: p50={} p95={} p99={}",
                        h.p50,
                        h.p95,
                        h.p99
                    );
                    assert!(
                        h.count >= last_count,
                        "count went backwards: {} -> {}",
                        last_count,
                        h.count
                    );
                    assert!(h.min <= h.max, "min {} > max {}", h.min, h.max);
                    last_count = h.count;
                }
                taken += 1;
            }
            taken
        });

        // Writers are joined implicitly at scope exit; wait for the
        // final count before releasing the reader, so every snapshot it
        // takes truly raced with live writes.
        loop {
            let snap = reg.snapshot();
            let count = snap.histogram("lat", &[]).map_or(0, |h| h.count);
            if count == (WRITERS * OBS_PER_WRITER) as u64 {
                break;
            }
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
        let taken = reader.join().unwrap();
        assert!(taken >= SNAPSHOTS);
    })
    .unwrap();

    // After the dust settles the totals are exact.
    let h = reg
        .snapshot()
        .histogram("lat", &[])
        .cloned()
        .expect("histogram exists");
    assert_eq!(h.count, (WRITERS * OBS_PER_WRITER) as u64);
    assert_eq!(h.buckets.iter().map(|(_, n)| n).sum::<u64>(), h.count);
}
