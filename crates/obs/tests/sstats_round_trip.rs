//! The `@SStats` exporter round-trips through the real SOIF
//! encoder/parser: a populated registry's snapshot, written with
//! `starts_soif::write_object` and read back with `starts_soif::parse`,
//! reproduces every counter, gauge, and histogram exactly.

use starts_obs::export::{snapshot_from_soif, to_soif, SSTATS_TEMPLATE};
use starts_obs::Registry;

fn populated_registry() -> Registry {
    let reg = Registry::new();
    reg.counter("meta.searches").inc();
    reg.counter_with("net.requests", &[("url", "starts://s1/query")])
        .add(42);
    // Labels exercising the value-escaping rules: quotes, backslashes,
    // braces, spaces, and non-ASCII text.
    reg.counter_with(
        "tricky",
        &[("q", r#"say "hi" \ {now}"#), ("lang", "français")],
    )
    .add(7);
    reg.gauge("meta.query_cost").set(3.25);
    reg.gauge_with("net.cost", &[("url", "starts://s2/query")])
        .add(0.125);
    let h = reg.histogram_with("meta.source_latency_ms", &[("source", "S1")]);
    for v in [0u64, 1, 3, 50, 50, 700, 1_000_000] {
        h.observe(v);
    }
    reg
}

#[test]
fn sstats_round_trips_through_real_soif() {
    let reg = populated_registry();
    let snap = reg.snapshot();

    let obj = to_soif(&snap);
    assert_eq!(obj.template, SSTATS_TEMPLATE);
    let bytes = starts_soif::write_object(&obj);

    // Through the full parser, strict mode.
    let objects = starts_soif::parse(&bytes, starts_soif::ParseMode::Strict).unwrap();
    assert_eq!(objects.len(), 1);
    let back = snapshot_from_soif(&objects[0]).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn sstats_survives_a_stream_with_other_objects() {
    // A stats object embedded in a stream next to unrelated SOIF
    // objects parses out cleanly by template name.
    let reg = populated_registry();
    let snap = reg.snapshot();
    let mut bytes = Vec::new();
    let other = starts_soif::SoifObject {
        template: "SQuery".to_string(),
        url: None,
        attrs: vec![starts_soif::SoifAttr {
            name: "Version".to_string(),
            value: b"STARTS 1.0".to_vec(),
        }],
    };
    bytes.extend_from_slice(&starts_soif::write_object(&other));
    bytes.push(b'\n');
    bytes.extend_from_slice(&starts_soif::write_object(&to_soif(&snap)));
    bytes.push(b'\n');

    let objects = starts_soif::parse(&bytes, starts_soif::ParseMode::Strict).unwrap();
    let stats = objects
        .iter()
        .find(|o| o.template == SSTATS_TEMPLATE)
        .expect("stats object present");
    assert_eq!(snapshot_from_soif(stats).unwrap(), snap);
}

#[test]
fn quantiles_survive_the_round_trip() {
    let reg = Registry::new();
    let h = reg.histogram("lat");
    for v in 1..=100u64 {
        h.observe(v);
    }
    let snap = reg.snapshot();
    let obj = to_soif(&snap);
    let bytes = starts_soif::write_object(&obj);
    let back = snapshot_from_soif(
        &starts_soif::parse_one(&bytes, starts_soif::ParseMode::Strict).unwrap(),
    )
    .unwrap();
    let hist = back.histogram("lat", &[]).unwrap();
    assert_eq!(hist.count, 100);
    assert_eq!(hist.sum, (1..=100u64).sum::<u64>());
    assert_eq!(hist.min, 1);
    assert_eq!(hist.max, 100);
    // p50 of 1..=100 is 50 exactly; the log buckets report ≤ 2× that.
    assert!(hist.p50 >= 50 && hist.p50 <= 100);
    assert!(hist.p95 >= 95 && hist.p95 <= 100);
    assert_eq!(hist.p99, 100);
}
