//! RFC 1766 language tags, as used by STARTS l-strings (Section 4.1.1).
//!
//! An l-string may qualify a query string "with its associated language and,
//! optionally, with its associated country", e.g. `[en-US "behavior"]`.
//! The qualification "follows the format described in RFC 1766": a primary
//! tag of 1–8 ASCII letters followed by zero or more subtags of 1–8 ASCII
//! letters or digits, separated by `-`. STARTS uses the common
//! `language[-COUNTRY]` shape (`en`, `en-US`, `en-GB`, `es`), and the paper
//! explicitly calls out dialect distinctions such as British vs. American
//! English.

use std::fmt;
use std::str::FromStr;

/// An RFC 1766 language tag (`en`, `en-US`, `x-klingon`, …).
///
/// Comparison is case-insensitive as mandated by RFC 1766; the canonical
/// form stores the primary tag in lowercase and two-letter country subtags
/// in uppercase (the conventional rendering the paper uses: `en-US`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LangTag {
    /// Primary language tag, lowercase (e.g. `en`).
    primary: String,
    /// Subtags in canonical case (e.g. `["US"]`).
    subtags: Vec<String>,
}

/// Errors raised when parsing an RFC 1766 tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangTagError {
    /// The tag was empty.
    Empty,
    /// A (sub)tag was empty, longer than 8 characters, or contained a
    /// character outside `[A-Za-z]` (primary) / `[A-Za-z0-9]` (subtags).
    BadSubtag(String),
}

impl fmt::Display for LangTagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangTagError::Empty => write!(f, "empty language tag"),
            LangTagError::BadSubtag(s) => write!(f, "malformed language subtag: {s:?}"),
        }
    }
}

impl std::error::Error for LangTagError {}

impl LangTag {
    /// Parse a tag, canonicalizing case.
    pub fn parse(s: &str) -> Result<Self, LangTagError> {
        if s.is_empty() {
            return Err(LangTagError::Empty);
        }
        let mut parts = s.split('-');
        let primary = parts.next().expect("split yields at least one part");
        if primary.is_empty()
            || primary.len() > 8
            || !primary.bytes().all(|b| b.is_ascii_alphabetic())
        {
            return Err(LangTagError::BadSubtag(primary.to_string()));
        }
        let mut subtags = Vec::new();
        for sub in parts {
            if sub.is_empty() || sub.len() > 8 || !sub.bytes().all(|b| b.is_ascii_alphanumeric()) {
                return Err(LangTagError::BadSubtag(sub.to_string()));
            }
            // Canonical rendering: two-letter subtags are country codes and
            // are conventionally uppercased (en-US); others lowercased.
            let canon = if sub.len() == 2 && sub.bytes().all(|b| b.is_ascii_alphabetic()) {
                sub.to_ascii_uppercase()
            } else {
                sub.to_ascii_lowercase()
            };
            subtags.push(canon);
        }
        Ok(LangTag {
            primary: primary.to_ascii_lowercase(),
            subtags,
        })
    }

    /// The primary language ("en" of "en-US").
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// The subtags ("US" of "en-US"). Usually a country, per the paper.
    pub fn subtags(&self) -> &[String] {
        &self.subtags
    }

    /// The country subtag, if the tag carries one ("US" of "en-US").
    pub fn country(&self) -> Option<&str> {
        self.subtags
            .iter()
            .find(|s| s.len() == 2 && s.bytes().all(|b| b.is_ascii_uppercase()))
            .map(String::as_str)
    }

    /// American English: the STARTS default query language.
    pub fn en_us() -> Self {
        LangTag {
            primary: "en".to_string(),
            subtags: vec!["US".to_string()],
        }
    }

    /// Plain English, no dialect.
    pub fn en() -> Self {
        LangTag {
            primary: "en".to_string(),
            subtags: Vec::new(),
        }
    }

    /// Spanish, used by the paper's bilingual Source-1 (Example 10/11).
    pub fn es() -> Self {
        LangTag {
            primary: "es".to_string(),
            subtags: Vec::new(),
        }
    }

    /// Whether `self` *matches* `other` in the RFC 1766 prefix sense:
    /// `en` matches `en-US` and `en-GB`; `en-US` matches only `en-US`.
    ///
    /// A metasearcher uses this to decide whether a source that declares
    /// `source-languages: en-US es` can serve a query term tagged `en`.
    pub fn matches(&self, other: &LangTag) -> bool {
        if self.primary != other.primary {
            return false;
        }
        if self.subtags.len() > other.subtags.len() {
            return false;
        }
        self.subtags
            .iter()
            .zip(other.subtags.iter())
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Whether two tags denote the same language, ignoring dialects
    /// (`en-US` ≈ `en-GB` ≈ `en`).
    pub fn same_language(&self, other: &LangTag) -> bool {
        self.primary == other.primary
    }
}

impl fmt::Display for LangTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.primary)?;
        for sub in &self.subtags {
            write!(f, "-{sub}")?;
        }
        Ok(())
    }
}

impl FromStr for LangTag {
    type Err = LangTagError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LangTag::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_tags() {
        let t = LangTag::parse("en").unwrap();
        assert_eq!(t.primary(), "en");
        assert!(t.subtags().is_empty());
        assert_eq!(t.to_string(), "en");
    }

    #[test]
    fn parses_language_country() {
        let t = LangTag::parse("en-US").unwrap();
        assert_eq!(t.primary(), "en");
        assert_eq!(t.country(), Some("US"));
        assert_eq!(t.to_string(), "en-US");
    }

    #[test]
    fn canonicalizes_case() {
        // RFC 1766: tags are case-insensitive.
        let a = LangTag::parse("EN-us").unwrap();
        let b = LangTag::parse("en-US").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "en-US");
    }

    #[test]
    fn long_subtags_lowercased() {
        let t = LangTag::parse("EN-Cockney").unwrap();
        assert_eq!(t.to_string(), "en-cockney");
        assert_eq!(t.country(), None);
    }

    #[test]
    fn rejects_bad_tags() {
        assert_eq!(LangTag::parse(""), Err(LangTagError::Empty));
        assert!(LangTag::parse("en-").is_err());
        assert!(LangTag::parse("-US").is_err());
        assert!(LangTag::parse("e n").is_err());
        assert!(LangTag::parse("en-US!").is_err());
        assert!(LangTag::parse("waytoolongprimary").is_err());
        assert!(LangTag::parse("en-waytoolongsub").is_err());
    }

    #[test]
    fn digits_allowed_in_subtags_only() {
        assert!(LangTag::parse("e2").is_err());
        assert!(LangTag::parse("en-1996").is_ok());
    }

    #[test]
    fn prefix_matching() {
        let en = LangTag::en();
        let en_us = LangTag::en_us();
        let en_gb = LangTag::parse("en-GB").unwrap();
        let es = LangTag::es();
        assert!(en.matches(&en_us));
        assert!(en.matches(&en_gb));
        assert!(en.matches(&en));
        assert!(!en_us.matches(&en));
        assert!(!en_us.matches(&en_gb));
        assert!(!es.matches(&en));
        assert!(en_us.same_language(&en_gb));
        assert!(!es.same_language(&en));
    }

    #[test]
    fn x_tags_parse() {
        // RFC 1766 user-defined tags.
        let t = LangTag::parse("x-klingon").unwrap();
        assert_eq!(t.primary(), "x");
        assert_eq!(t.subtags(), &["klingon".to_string()]);
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = [
            LangTag::parse("es").unwrap(),
            LangTag::parse("en-US").unwrap(),
            LangTag::parse("en").unwrap(),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
            vec!["en", "en-US", "es"]
        );
    }
}
