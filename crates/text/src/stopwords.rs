//! Stop-word lists, exported by sources via the `StopWordList` metadata
//! attribute (Section 4.3.1) and toggled per query by `DropStopWords`
//! (Section 4.1.2).
//!
//! The paper's motivating example (Section 3.1) is a query for the rock
//! group "The Who": every word is a stop word at most sources, so a
//! metasearcher must know (a) each source's list and (b) whether stop-word
//! elimination can be turned off (`TurnOffStopWords`). Different engines
//! shipped different lists, so we provide two standard lists of different
//! aggressiveness plus fully custom lists.

use std::collections::HashSet;

/// An immutable stop-word list. Membership tests are case-insensitive,
/// matching how 1990s engines applied their lists after case folding.
#[derive(Debug, Clone, Default)]
pub struct StopWordList {
    words: HashSet<String>,
}

impl StopWordList {
    /// The empty list: a source that indexes everything.
    pub fn none() -> Self {
        StopWordList::default()
    }

    /// A minimal English list (articles, conjunctions, prepositions,
    /// auxiliary verbs) of the kind conservative engines used.
    pub fn english_minimal() -> Self {
        Self::from_words(MINIMAL_ENGLISH.iter().copied())
    }

    /// An aggressive English list modeled on the classic SMART-style stop
    /// lists that aggressive web engines of the era used. Supersets the
    /// minimal list.
    pub fn english_aggressive() -> Self {
        Self::from_words(
            MINIMAL_ENGLISH
                .iter()
                .chain(EXTRA_AGGRESSIVE.iter())
                .copied(),
        )
    }

    /// A small Spanish list, for the paper's bilingual Source-1
    /// (Examples 10–11 index `en-US` and `es` documents).
    pub fn spanish() -> Self {
        Self::from_words(SPANISH.iter().copied())
    }

    /// Build a custom list.
    pub fn from_words<'a, I: IntoIterator<Item = &'a str>>(words: I) -> Self {
        StopWordList {
            words: words.into_iter().map(|w| w.to_ascii_lowercase()).collect(),
        }
    }

    /// Whether `word` is a stop word (case-insensitive).
    pub fn contains(&self, word: &str) -> bool {
        if self.words.is_empty() {
            return false;
        }
        // Fast path: most lookups are already lowercase.
        if self.words.contains(word) {
            return true;
        }
        if word.bytes().any(|b| b.is_ascii_uppercase()) {
            self.words.contains(&word.to_ascii_lowercase())
        } else {
            false
        }
    }

    /// Number of words in the list.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The words, sorted, for export in source metadata (`StopWordList`).
    pub fn export(&self) -> Vec<String> {
        let mut v: Vec<String> = self.words.iter().cloned().collect();
        v.sort();
        v
    }
}

const MINIMAL_ENGLISH: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "he",
    "in", "is", "it", "its", "of", "on", "or", "that", "the", "to", "was", "were", "which", "who",
    "will", "with",
];

const EXTRA_AGGRESSIVE: &[&str] = &[
    "about", "above", "after", "again", "all", "also", "am", "any", "because", "been", "before",
    "being", "below", "between", "both", "can", "could", "did", "do", "does", "doing", "down",
    "during", "each", "few", "further", "had", "her", "here", "hers", "him", "his", "how", "i",
    "if", "into", "just", "me", "more", "most", "my", "no", "nor", "not", "now", "off", "once",
    "only", "other", "our", "ours", "out", "over", "own", "same", "she", "should", "so", "some",
    "such", "than", "their", "theirs", "them", "then", "there", "these", "they", "this", "those",
    "through", "too", "under", "until", "up", "very", "we", "what", "when", "where", "while",
    "why", "would", "you", "your", "yours",
];

const SPANISH: &[&str] = &[
    "a", "al", "como", "con", "de", "del", "el", "en", "es", "esta", "la", "las", "lo", "los",
    "más", "no", "o", "para", "pero", "por", "que", "se", "son", "su", "un", "una", "y",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_who_problem() {
        // Section 3.1: "The Who" — both words are stop words on any
        // English list, which is exactly why STARTS exports the list and
        // the TurnOffStopWords capability.
        let list = StopWordList::english_minimal();
        assert!(list.contains("the"));
        assert!(list.contains("The"));
        assert!(list.contains("who"));
        assert!(list.contains("WHO"));
        assert!(!list.contains("tommy"));
    }

    #[test]
    fn aggressive_supersets_minimal() {
        let min = StopWordList::english_minimal();
        let agg = StopWordList::english_aggressive();
        assert!(agg.len() > min.len());
        for w in min.export() {
            assert!(agg.contains(&w), "aggressive list missing {w:?}");
        }
    }

    #[test]
    fn empty_list_matches_nothing() {
        let none = StopWordList::none();
        assert!(!none.contains("the"));
        assert!(none.is_empty());
    }

    #[test]
    fn custom_list() {
        let l = StopWordList::from_words(["Foo", "BAR"]);
        assert!(l.contains("foo"));
        assert!(l.contains("Bar"));
        assert!(!l.contains("baz"));
        assert_eq!(l.export(), vec!["bar".to_string(), "foo".to_string()]);
    }

    #[test]
    fn spanish_list() {
        let l = StopWordList::spanish();
        assert!(l.contains("el"));
        assert!(!l.contains("datos"));
    }

    #[test]
    fn export_is_sorted() {
        let l = StopWordList::english_minimal();
        let e = l.export();
        let mut sorted = e.clone();
        sorted.sort();
        assert_eq!(e, sorted);
    }
}
