//! The per-engine analysis pipeline: tokenizer → case folding → stop-word
//! elimination → stemming.
//!
//! Every simulated search engine owns one `Analyzer` per language. Its
//! configuration is exactly the set of per-source facts STARTS makes
//! sources export: the tokenizer id (`TokenizerIDList`), the stop-word
//! list (`StopWordList`, plus whether elimination can be disabled via
//! `TurnOffStopWords`), whether terms are stemmed, and whether matching is
//! case sensitive. Heterogeneous analyzers across sources reproduce the
//! Section 3.1 query-language problem in full.

use std::borrow::Cow;

use crate::casefold::CaseMode;
use crate::porter::porter_stem;
use crate::stopwords::StopWordList;
use crate::tokenize::TokenizerKind;

/// An analyzed token ready for indexing or query matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The index term (after folding/stemming).
    pub term: String,
    /// Token position within the field (0-based; counts *surviving*
    /// positions — stop words consume a position but emit no token, so
    /// proximity distances stay meaningful).
    pub position: u32,
}

/// Analyzer configuration — the source-side text pipeline.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Which tokenizer the engine uses.
    pub tokenizer: TokenizerKind,
    /// Case handling (STARTS default: insensitive).
    pub case: CaseMode,
    /// Whether index terms are Porter-stemmed.
    pub stem: bool,
    /// The engine's stop-word list.
    pub stop_words: StopWordList,
    /// Whether the engine honours `DropStopWords: F` (the
    /// `TurnOffStopWords` metadata attribute). Engines that cannot turn
    /// off elimination drop stop words unconditionally.
    pub can_disable_stop_words: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            tokenizer: TokenizerKind::AlnumRuns,
            case: CaseMode::Insensitive,
            stem: false,
            stop_words: StopWordList::english_minimal(),
            can_disable_stop_words: true,
        }
    }
}

/// A configured analysis pipeline.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalyzerConfig,
}

impl Analyzer {
    /// Build an analyzer from its configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        Analyzer { config }
    }

    /// The configuration (exported in source metadata).
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Analyze a field's text for **indexing**: stop words are eliminated
    /// (their positions are preserved as gaps), folding and stemming
    /// applied per configuration.
    pub fn analyze(&self, text: &str) -> Vec<Token> {
        self.run(text, true)
    }

    /// Analyze **query** text. `drop_stop_words` comes from the query's
    /// `DropStopWords` property (Section 4.1.2); it is honoured only when
    /// the engine supports turning elimination off.
    pub fn analyze_query(&self, text: &str, drop_stop_words: bool) -> Vec<Token> {
        let drop = if self.config.can_disable_stop_words {
            drop_stop_words
        } else {
            true
        };
        self.run(text, drop)
    }

    /// Normalize a single already-tokenized term (fold + stem). Used when
    /// matching protocol-level query terms that arrive pre-tokenized.
    pub fn normalize_term(&self, term: &str) -> String {
        self.normalize_term_cow(term).into_owned()
    }

    /// Like [`Analyzer::normalize_term`], but borrows the input when no
    /// rewriting is needed (already-folded term, no stemming).
    pub fn normalize_term_cow<'t>(&self, term: &'t str) -> Cow<'t, str> {
        let folded = self.config.case.apply_cow(term);
        if self.config.stem {
            Cow::Owned(porter_stem(&folded))
        } else {
            folded
        }
    }

    /// Analyze a field's text for **indexing** without allocating a
    /// `String` per token: each surviving token is a `Cow` borrowing the
    /// input text whenever folding and stemming leave it unchanged.
    /// Equivalent to [`Analyzer::analyze`] term-for-term.
    pub fn analyze_borrowed<'t>(&self, text: &'t str) -> Vec<(Cow<'t, str>, u32)> {
        let spans = self.config.tokenizer.token_spans(text);
        let mut out = Vec::with_capacity(spans.len());
        for (pos, (start, end)) in spans.into_iter().enumerate() {
            let raw = &text[start..end];
            if self.config.stop_words.contains(raw) {
                continue; // position consumed, token dropped
            }
            out.push((self.normalize_term_cow(raw), pos as u32));
        }
        out
    }

    /// Whether the analyzer would eliminate this word as a stop word.
    pub fn is_stop_word(&self, word: &str) -> bool {
        self.config.stop_words.contains(word)
    }

    fn run(&self, text: &str, drop_stop_words: bool) -> Vec<Token> {
        let raw = self.config.tokenizer.tokenize(text);
        let mut out = Vec::with_capacity(raw.len());
        for (pos, tok) in raw.into_iter().enumerate() {
            if drop_stop_words && self.config.stop_words.contains(&tok.text) {
                continue; // position consumed, token dropped
            }
            out.push(Token {
                term: self.normalize_term(&tok.text),
                position: pos as u32,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(a: &Analyzer, text: &str) -> Vec<String> {
        a.analyze(text).into_iter().map(|t| t.term).collect()
    }

    #[test]
    fn default_pipeline_folds_and_stops() {
        let a = Analyzer::default();
        assert_eq!(
            terms(&a, "The Distributed Systems"),
            vec!["distributed", "systems"]
        );
    }

    #[test]
    fn stemming_pipeline() {
        let a = Analyzer::new(AnalyzerConfig {
            stem: true,
            ..AnalyzerConfig::default()
        });
        assert_eq!(terms(&a, "databases database"), vec!["databas", "databas"]);
    }

    #[test]
    fn positions_skip_stop_words_but_count_them() {
        // "the who of rock" -> "who" would be dropped too on the minimal
        // list; use words where only some drop.
        let a = Analyzer::default();
        let toks = a.analyze("the quick and the dead");
        // Tokens: quick(pos 1), dead(pos 4). Gaps preserved so prox
        // distances computed over positions reflect the original text.
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].term, "quick");
        assert_eq!(toks[0].position, 1);
        assert_eq!(toks[1].term, "dead");
        assert_eq!(toks[1].position, 4);
    }

    #[test]
    fn query_can_keep_stop_words_if_engine_allows() {
        let a = Analyzer::default();
        let kept: Vec<_> = a
            .analyze_query("The Who", false)
            .into_iter()
            .map(|t| t.term)
            .collect();
        assert_eq!(kept, vec!["the", "who"]);
        let dropped = a.analyze_query("The Who", true);
        assert!(dropped.is_empty());
    }

    #[test]
    fn engine_that_cannot_disable_always_drops() {
        let a = Analyzer::new(AnalyzerConfig {
            can_disable_stop_words: false,
            ..AnalyzerConfig::default()
        });
        // Even with DropStopWords=F the engine eliminates them — the
        // metasearcher learns this from TurnOffStopWords metadata.
        assert!(a.analyze_query("The Who", false).is_empty());
    }

    #[test]
    fn case_sensitive_engine() {
        let a = Analyzer::new(AnalyzerConfig {
            case: CaseMode::Sensitive,
            stop_words: StopWordList::none(),
            ..AnalyzerConfig::default()
        });
        assert_eq!(terms(&a, "The Who"), vec!["The", "Who"]);
    }

    #[test]
    fn analyze_borrowed_matches_analyze() {
        for config in [
            AnalyzerConfig::default(),
            AnalyzerConfig {
                stem: true,
                ..AnalyzerConfig::default()
            },
            AnalyzerConfig {
                case: CaseMode::Sensitive,
                stop_words: StopWordList::none(),
                ..AnalyzerConfig::default()
            },
        ] {
            let a = Analyzer::new(config);
            for text in ["The Quick and the Dead", "Título de DATOS z39.50", ""] {
                let owned = a.analyze(text);
                let borrowed = a.analyze_borrowed(text);
                assert_eq!(owned.len(), borrowed.len());
                for (tok, (term, pos)) in owned.iter().zip(&borrowed) {
                    assert_eq!(tok.term, term.as_ref());
                    assert_eq!(tok.position, *pos);
                }
            }
        }
    }

    #[test]
    fn borrowed_path_borrows_when_possible() {
        let a = Analyzer::default();
        let out = a.analyze_borrowed("quick brown");
        assert!(out
            .iter()
            .all(|(t, _)| matches!(t, std::borrow::Cow::Borrowed(_))));
    }

    #[test]
    fn normalize_single_term() {
        let a = Analyzer::new(AnalyzerConfig {
            stem: true,
            ..AnalyzerConfig::default()
        });
        assert_eq!(a.normalize_term("Databases"), "databas");
    }
}
