//! The Porter stemming algorithm (Porter, 1980), implemented from scratch.
//!
//! STARTS exposes stemming through the optional `Stem` modifier
//! (Section 4.1.1, Example 2: `(title stem "databases")` matches a title
//! containing "database"). The paper's running examples rely on exactly the
//! behaviour Porter produces: *databases* → *databas* ← *database*, so a
//! stemmed query on "databases" retrieves "database" documents.
//!
//! The implementation follows the original paper's five-step definition,
//! including the m-measure, `*S`/`*v*`/`*d`/`*o` conditions, and the
//! complete rule tables. It operates on ASCII letters; non-ASCII input is
//! returned unchanged (sources index such terms verbatim, which mirrors how
//! 1990s engines treated non-English text — and why STARTS lets sources
//! advertise per-language modifier support).

/// Stem a single word with the Porter algorithm.
///
/// The input is lowercased before stemming. Words shorter than three
/// characters are returned (lowercased) unchanged, per Porter's guidance.
pub fn porter_stem(word: &str) -> String {
    let lower = word.to_ascii_lowercase();
    if lower.len() <= 2 || !lower.bytes().all(|b| b.is_ascii_alphabetic()) {
        return lower;
    }
    let mut s = Stemmer {
        b: lower.into_bytes(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    String::from_utf8(s.b).expect("stemmer operates on ASCII")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Is b[i] a consonant, in Porter's sense ('y' is a consonant when it
    /// follows a vowel or starts the word)?
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Porter's measure m of the prefix b[..end]: the number of VC
    /// sequences in the [C](VC)^m[V] decomposition.
    fn measure(&self, end: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip initial consonant run.
        while i < end && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // Skip vowel run.
            while i < end && !self.is_consonant(i) {
                i += 1;
            }
            if i >= end {
                return m;
            }
            // Skip consonant run: one full VC sequence seen.
            while i < end && self.is_consonant(i) {
                i += 1;
            }
            m += 1;
        }
    }

    /// Does the prefix b[..end] contain a vowel?
    fn has_vowel(&self, end: usize) -> bool {
        (0..end).any(|i| !self.is_consonant(i))
    }

    /// Does the prefix b[..end] end with a double consonant?
    fn ends_double_consonant(&self, end: usize) -> bool {
        end >= 2 && self.b[end - 1] == self.b[end - 2] && self.is_consonant(end - 1)
    }

    /// *o condition: the prefix ends cvc where the final c is not w, x or y.
    fn ends_cvc(&self, end: usize) -> bool {
        if end < 3 {
            return false;
        }
        let (i, j, k) = (end - 3, end - 2, end - 1);
        self.is_consonant(i)
            && !self.is_consonant(j)
            && self.is_consonant(k)
            && !matches!(self.b[k], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &[u8]) -> bool {
        self.b.len() >= suffix.len() && &self.b[self.b.len() - suffix.len()..] == suffix
    }

    /// If the word ends with `suffix` and the measure of the stem is > `m`,
    /// replace the suffix with `rep` and return true.
    fn replace_if_m_gt(&mut self, suffix: &[u8], rep: &[u8], m: usize) -> bool {
        if self.ends_with(suffix) {
            let stem_len = self.b.len() - suffix.len();
            if self.measure(stem_len) > m {
                self.b.truncate(stem_len);
                self.b.extend_from_slice(rep);
            }
            // Rule matched (whether or not it fired); stop rule scanning.
            return true;
        }
        false
    }

    fn step1a(&mut self) {
        if self.ends_with(b"sses") {
            self.b.truncate(self.b.len() - 2); // sses -> ss
        } else if self.ends_with(b"ies") {
            self.b.truncate(self.b.len() - 2); // ies -> i
        } else if self.ends_with(b"ss") {
            // ss -> ss: no change.
        } else if self.ends_with(b"s") {
            self.b.truncate(self.b.len() - 1); // s -> ""
        }
    }

    fn step1b(&mut self) {
        if self.ends_with(b"eed") {
            let stem_len = self.b.len() - 3;
            if self.measure(stem_len) > 0 {
                self.b.truncate(self.b.len() - 1); // eed -> ee
            }
            return;
        }
        let fired = if self.ends_with(b"ed") {
            let stem_len = self.b.len() - 2;
            if self.has_vowel(stem_len) {
                self.b.truncate(stem_len);
                true
            } else {
                false
            }
        } else if self.ends_with(b"ing") {
            let stem_len = self.b.len() - 3;
            if self.has_vowel(stem_len) {
                self.b.truncate(stem_len);
                true
            } else {
                false
            }
        } else {
            false
        };
        if fired {
            // Clean-up sub-rules.
            if self.ends_with(b"at") || self.ends_with(b"bl") || self.ends_with(b"iz") {
                self.b.push(b'e'); // at->ate, bl->ble, iz->ize
            } else if self.ends_double_consonant(self.b.len())
                && !matches!(self.b[self.b.len() - 1], b'l' | b's' | b'z')
            {
                self.b.truncate(self.b.len() - 1); // single letter
            } else if self.measure(self.b.len()) == 1 && self.ends_cvc(self.b.len()) {
                self.b.push(b'e'); // (m=1 and *o) -> E
            }
        }
    }

    fn step1c(&mut self) {
        // (*v*) Y -> I
        if self.ends_with(b"y") && self.has_vowel(self.b.len() - 1) {
            let n = self.b.len();
            self.b[n - 1] = b'i';
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"ational", b"ate"),
            (b"tional", b"tion"),
            (b"enci", b"ence"),
            (b"anci", b"ance"),
            (b"izer", b"ize"),
            (b"bli", b"ble"), // Porter's published revision of abli->able
            (b"alli", b"al"),
            (b"entli", b"ent"),
            (b"eli", b"e"),
            (b"ousli", b"ous"),
            (b"ization", b"ize"),
            (b"ation", b"ate"),
            (b"ator", b"ate"),
            (b"alism", b"al"),
            (b"iveness", b"ive"),
            (b"fulness", b"ful"),
            (b"ousness", b"ous"),
            (b"aliti", b"al"),
            (b"iviti", b"ive"),
            (b"biliti", b"ble"),
            (b"logi", b"log"), // Porter's published addition
        ];
        for (suffix, rep) in RULES {
            if self.replace_if_m_gt(suffix, rep, 0) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"icate", b"ic"),
            (b"ative", b""),
            (b"alize", b"al"),
            (b"iciti", b"ic"),
            (b"ical", b"ic"),
            (b"ful", b""),
            (b"ness", b""),
        ];
        for (suffix, rep) in RULES {
            if self.replace_if_m_gt(suffix, rep, 0) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        // "ion" requires the stem to end in s or t. No other step-4 suffix
        // can co-terminate with an "ion"-ending word, so longest-match
        // semantics mean the step ends here whether or not the rule fires.
        if self.ends_with(b"ion") {
            let stem_len = self.b.len() - 3;
            if stem_len >= 1
                && matches!(self.b[stem_len - 1], b's' | b't')
                && self.measure(stem_len) > 1
            {
                self.b.truncate(stem_len);
            }
            return;
        }
        // Plain rules, pre-sorted longest-first so "ous" wins over "ou".
        const RULES: &[&[u8]] = &[
            b"ement", b"ance", b"ence", b"able", b"ible", b"ment", b"ant", b"ent", b"ism", b"ate",
            b"iti", b"ous", b"ive", b"ize", b"al", b"er", b"ic", b"ou",
        ];
        for suffix in RULES {
            if self.ends_with(suffix) {
                let stem_len = self.b.len() - suffix.len();
                if self.measure(stem_len) > 1 {
                    self.b.truncate(stem_len);
                }
                return;
            }
        }
    }

    fn step5a(&mut self) {
        if self.ends_with(b"e") {
            let stem_len = self.b.len() - 1;
            let m = self.measure(stem_len);
            if m > 1 || (m == 1 && !self.ends_cvc(stem_len)) {
                self.b.truncate(stem_len);
            }
        }
    }

    fn step5b(&mut self) {
        // (m > 1 and *d and *L) -> single letter
        if self.measure(self.b.len()) > 1
            && self.ends_double_consonant(self.b.len())
            && self.b[self.b.len() - 1] == b'l'
        {
            self.b.truncate(self.b.len() - 1);
        }
    }
}

/// Whether two words share a Porter stem. This is the predicate the `Stem`
/// modifier induces: Example 2's `(title stem "databases")` matches a
/// document whose title contains "database".
pub fn same_stem(a: &str, b: &str) -> bool {
    porter_stem(a) == porter_stem(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic vectors from Porter's paper and the reference vocabulary.
    #[test]
    fn canonical_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(porter_stem(input), want, "stem({input:?})");
        }
    }

    /// The paper's own motivating pair (Section 3.1 / Example 2).
    #[test]
    fn databases_and_database_conflate() {
        assert_eq!(porter_stem("databases"), "databas");
        assert_eq!(porter_stem("database"), "databas");
        assert!(same_stem("databases", "database"));
        // Section 3.1: stemming makes "systems" retrieve "system".
        assert!(same_stem("systems", "system"));
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("BE"), "be");
    }

    #[test]
    fn non_alphabetic_untouched() {
        assert_eq!(porter_stem("z39.50"), "z39.50");
        assert_eq!(porter_stem("año"), "año");
    }

    #[test]
    fn stems_never_grow_and_stay_lowercase() {
        for w in [
            "distributed",
            "databases",
            "systems",
            "searching",
            "retrieval",
            "merging",
            "ranking",
            "generalizing",
            "effectiveness",
            "Stanford",
            "metasearcher",
        ] {
            let s = porter_stem(w);
            assert!(s.len() <= w.len(), "stem grew: {w:?} -> {s:?}");
            assert!(!s.is_empty(), "stem emptied: {w:?}");
            assert_eq!(s, s.to_ascii_lowercase(), "stem not lowercase: {s:?}");
        }
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(porter_stem("Databases"), porter_stem("databases"));
        assert_eq!(porter_stem("DISTRIBUTED"), porter_stem("distributed"));
    }
}
