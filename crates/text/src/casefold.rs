//! Case folding, behind the STARTS `Case-sensitive` modifier.
//!
//! Section 4.1.1 lists `Case-sensitive` among the optional modifiers, with
//! default "Case insensitive": unless a query term carries the modifier,
//! sources match it regardless of case. Content summaries likewise declare
//! whether their word lists are case sensitive (`CaseSensitive` in
//! Example 11). We fold with Unicode simple lowercasing, which handles the
//! paper's bilingual (English/Spanish) sources — `Título` folds to
//! `título` — without attempting full locale tailoring.

use std::borrow::Cow;

/// How a source treats character case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CaseMode {
    /// Fold case at index and query time (the STARTS default).
    #[default]
    Insensitive,
    /// Preserve case exactly.
    Sensitive,
}

impl CaseMode {
    /// Apply this mode to a term: identity when sensitive, lowercase fold
    /// when insensitive.
    pub fn apply(self, term: &str) -> String {
        self.apply_cow(term).into_owned()
    }

    /// Like [`CaseMode::apply`], but borrows when the term is already in
    /// folded form — the indexing hot path, where most tokens are
    /// lowercase ASCII and need no copy at all.
    pub fn apply_cow(self, term: &str) -> Cow<'_, str> {
        match self {
            CaseMode::Sensitive => Cow::Borrowed(term),
            CaseMode::Insensitive => fold_case_cow(term),
        }
    }

    /// Whether two terms are equal under this mode.
    pub fn eq(self, a: &str, b: &str) -> bool {
        match self {
            CaseMode::Sensitive => a == b,
            CaseMode::Insensitive => {
                // Avoid allocating when both are ASCII.
                if a.is_ascii() && b.is_ascii() {
                    a.eq_ignore_ascii_case(b)
                } else {
                    fold_case(a) == fold_case(b)
                }
            }
        }
    }
}

/// Unicode simple lowercase fold.
pub fn fold_case(s: &str) -> String {
    fold_case_cow(s).into_owned()
}

/// Unicode simple lowercase fold that borrows the input when it is
/// already folded (all-ASCII with no uppercase), which is the common
/// case for indexed text.
pub fn fold_case_cow(s: &str) -> Cow<'_, str> {
    if s.bytes().all(|b| b.is_ascii() && !b.is_ascii_uppercase()) {
        return Cow::Borrowed(s);
    }
    Cow::Owned(s.chars().flat_map(char::to_lowercase).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_ascii() {
        assert_eq!(fold_case("Databases"), "databases");
        assert_eq!(fold_case("ULLMAN"), "ullman");
        assert_eq!(fold_case("already-lower"), "already-lower");
    }

    #[test]
    fn folds_spanish() {
        assert_eq!(fold_case("Título"), "título");
        assert_eq!(fold_case("ALGORITMO"), "algoritmo");
    }

    #[test]
    fn modes() {
        assert!(CaseMode::Insensitive.eq("The", "the"));
        assert!(!CaseMode::Sensitive.eq("The", "the"));
        assert!(CaseMode::Sensitive.eq("the", "the"));
        assert_eq!(CaseMode::Insensitive.apply("Who"), "who");
        assert_eq!(CaseMode::Sensitive.apply("Who"), "Who");
    }

    #[test]
    fn non_ascii_insensitive_eq() {
        assert!(CaseMode::Insensitive.eq("Título", "título"));
        assert!(!CaseMode::Sensitive.eq("Título", "título"));
    }

    #[test]
    fn default_is_insensitive() {
        // The STARTS default per Section 4.1.1's modifier table.
        assert_eq!(CaseMode::default(), CaseMode::Insensitive);
    }
}
