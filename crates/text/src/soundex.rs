//! Soundex phonetic coding, backing the STARTS `Phonetic` modifier.
//!
//! Section 4.1.1 lists `Phonetic` among the optional modifiers with default
//! "No soundex"; a source that advertises it (Example 10 declares
//! `ModifiersSupported: {basic-1 phonetics}`) matches terms by sound rather
//! than spelling. We implement the classic American Soundex used by the
//! engines of the era: first letter kept, remaining consonants mapped to
//! digit classes, adjacent duplicates collapsed, `h`/`w` transparent,
//! vowels separating, padded/truncated to four characters.

/// Compute the 4-character American Soundex code of `word`.
///
/// Returns `None` when the word does not start with an ASCII letter (such
/// terms have no phonetic interpretation and sources fall back to exact
/// matching).
pub fn soundex(word: &str) -> Option<String> {
    let mut chars = word.chars().filter(|c| c.is_ascii_alphabetic());
    let first = chars.next()?;
    let mut code = String::with_capacity(4);
    code.push(first.to_ascii_uppercase());
    let mut last_digit = digit_class(first);
    for c in chars {
        match digit_class(c) {
            Some(d) => {
                if last_digit != Some(d) {
                    code.push((b'0' + d) as char);
                    if code.len() == 4 {
                        return Some(code);
                    }
                }
                last_digit = Some(d);
            }
            None => {
                // 'h' and 'w' are transparent: they do not reset the
                // last-digit state. Vowels do.
                if !matches!(c.to_ascii_lowercase(), 'h' | 'w') {
                    last_digit = None;
                }
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

/// Whether two words sound alike under Soundex — the predicate induced by
/// the `Phonetic` modifier on a query term.
pub fn sounds_like(a: &str, b: &str) -> bool {
    match (soundex(a), soundex(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

fn digit_class(c: char) -> Option<u8> {
    match c.to_ascii_lowercase() {
        'b' | 'f' | 'p' | 'v' => Some(1),
        'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => Some(2),
        'd' | 't' => Some(3),
        'l' => Some(4),
        'm' | 'n' => Some(5),
        'r' => Some(6),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_vectors() {
        // The canonical examples from the Soundex specification (US
        // National Archives) plus common test names.
        let cases = [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
            ("Honeyman", "H555"),
            ("Washington", "W252"),
            ("Lee", "L000"),
            ("Gutierrez", "G362"),
            ("Jackson", "J250"),
            ("Euler", "E460"),
            ("Gauss", "G200"),
            ("Hilbert", "H416"),
            ("Knuth", "K530"),
            ("Lloyd", "L300"),
            ("Lukasiewicz", "L222"),
        ];
        for (name, want) in cases {
            assert_eq!(soundex(name).as_deref(), Some(want), "soundex({name:?})");
        }
    }

    #[test]
    fn author_matching_use_case() {
        // The metasearch use case: a phonetic query for an author name
        // should match spelling variants (Example 10's source supports
        // phonetics on the Author field).
        assert!(sounds_like("Ullman", "Ulman"));
        assert!(sounds_like("Gravano", "Gravanno"));
        assert!(!sounds_like("Ullman", "Garcia"));
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(soundex("ULLMAN"), soundex("ullman"));
    }

    #[test]
    fn hw_transparent_vowels_separate() {
        // 'h' between same-class consonants: collapsed (Ashcraft: s,c same
        // class separated by h → one digit).
        assert_eq!(soundex("Ashcraft").unwrap(), "A261");
        // vowel between same-class consonants: not collapsed (Tymczak has
        // c,z separated by a vowel → both coded... actually z follows c
        // directly; the k after a is the second 2).
        assert_eq!(soundex("Tymczak").unwrap(), "T522");
    }

    #[test]
    fn first_letter_same_class_collapsed() {
        // Pfister: P then f (same class 1) → f is suppressed.
        assert_eq!(soundex("Pfister").unwrap(), "P236");
    }

    #[test]
    fn non_alphabetic() {
        assert_eq!(soundex("42"), None);
        assert_eq!(soundex(""), None);
        // Leading digits are skipped entirely: no alphabetic start.
        assert_eq!(soundex("3M").as_deref(), Some("M000"));
    }

    #[test]
    fn short_words_padded() {
        assert_eq!(soundex("a").unwrap(), "A000");
        assert_eq!(soundex("at").unwrap(), "A300");
    }
}
