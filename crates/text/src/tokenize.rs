//! Tokenizers, named per the STARTS `TokenizerIDList` metadata attribute.
//!
//! Section 4.3.1 recounts the controversy: exporting separator characters
//! or token regexes was "not general enough … and deemed too complicated",
//! so STARTS settled on sources simply *naming* their tokenizers (e.g.
//! `(Acme-1 en-US) (Acme-2 es)`), and metasearchers learning a tokenizer's
//! behaviour once, by probing any source that uses it and examining the
//! actual query returned with the results (Section 4.2).
//!
//! The paper's concrete example is whether a query on "Z39.50" should be
//! one term or the two terms "Z39" and "50" — which depends on whether `.`
//! is a separator. We therefore provide tokenizers that genuinely disagree
//! on that input, and a registry mapping well-known ids to behaviours.

use std::fmt;
use std::str::FromStr;

/// A raw token: its text and the character position (token index) in the
/// field it came from. Positions feed the positional index behind the
/// `prox` operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawToken {
    /// The token text, exactly as it appeared (no folding or stemming —
    /// those are analyzer stages).
    pub text: String,
    /// Byte offset of the token start in the input.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

/// A tokenizer identifier as exported in `TokenizerIDList` metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenizerId(pub String);

impl fmt::Display for TokenizerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for TokenizerId {
    type Err = std::convert::Infallible;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(TokenizerId(s.to_string()))
    }
}

/// The tokenization behaviours implemented by the simulated engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenizerKind {
    /// Split on Unicode whitespace only. "Z39.50" is ONE token; so is
    /// "systems," (trailing punctuation kept) — the crudest engines did
    /// this.
    Whitespace,
    /// A token is a maximal run of alphanumeric characters. "Z39.50" is
    /// TWO tokens ("Z39", "50"); `.` and `-` are separators. This is the
    /// registry's `Acme-1`.
    AlnumRuns,
    /// Like `AlnumRuns`, but `.`, `-`, `'` joining two alphanumerics stay
    /// inside the token: "Z39.50" is ONE token, "state-of-the-art" is one
    /// token, but a sentence-final period is a separator. This is
    /// `Acme-2`.
    WordJoiners,
}

impl TokenizerKind {
    /// The conventional registry id for this behaviour.
    pub fn id(self) -> TokenizerId {
        TokenizerId(
            match self {
                TokenizerKind::Whitespace => "Plain-1",
                TokenizerKind::AlnumRuns => "Acme-1",
                TokenizerKind::WordJoiners => "Acme-2",
            }
            .to_string(),
        )
    }

    /// Tokenize `text` into raw tokens.
    pub fn tokenize(self, text: &str) -> Vec<RawToken> {
        self.token_spans(text)
            .into_iter()
            .map(|(start, end)| RawToken {
                text: text[start..end].to_string(),
                start,
                end,
            })
            .collect()
    }

    /// The byte spans of the tokens, without copying any token text —
    /// the indexing hot path borrows `&text[start..end]` instead of
    /// allocating one `String` per token.
    pub fn token_spans(self, text: &str) -> Vec<(usize, usize)> {
        match self {
            TokenizerKind::Whitespace => spans_whitespace(text),
            TokenizerKind::AlnumRuns => spans_alnum(text),
            TokenizerKind::WordJoiners => spans_joiners(text),
        }
    }
}

/// Resolve a registry id to a behaviour. Unknown ids resolve to `None`:
/// the metasearcher must then probe the source, exactly as Section 4.3.1
/// prescribes for unfamiliar tokenizers.
pub fn tokenizer_by_id(id: &TokenizerId) -> Option<TokenizerKind> {
    match id.0.as_str() {
        "Plain-1" => Some(TokenizerKind::Whitespace),
        "Acme-1" => Some(TokenizerKind::AlnumRuns),
        "Acme-2" => Some(TokenizerKind::WordJoiners),
        _ => None,
    }
}

/// Object-safe tokenizer interface, for engines configured at runtime.
pub trait Tokenizer: Send + Sync {
    /// The id exported in `TokenizerIDList`.
    fn id(&self) -> TokenizerId;
    /// Tokenize one field's text.
    fn tokenize(&self, text: &str) -> Vec<RawToken>;
}

impl Tokenizer for TokenizerKind {
    fn id(&self) -> TokenizerId {
        TokenizerKind::id(*self)
    }
    fn tokenize(&self, text: &str) -> Vec<RawToken> {
        TokenizerKind::tokenize(*self, text)
    }
}

fn spans_whitespace(text: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in text.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s, i));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s, text.len()));
    }
    out
}

fn spans_alnum(text: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in text.char_indices() {
        if c.is_alphanumeric() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push((s, i));
        }
    }
    if let Some(s) = start {
        out.push((s, text.len()));
    }
    out
}

fn spans_joiners(text: &str) -> Vec<(usize, usize)> {
    // A joiner (. - ') is part of a token iff both neighbours are
    // alphanumeric.
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let is_joiner = |c: char| matches!(c, '.' | '-' | '\'');
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (idx, &(i, c)) in chars.iter().enumerate() {
        let in_token = if c.is_alphanumeric() {
            true
        } else if is_joiner(c) {
            let prev_ok = idx > 0 && chars[idx - 1].1.is_alphanumeric();
            let next_ok = idx + 1 < chars.len() && chars[idx + 1].1.is_alphanumeric();
            prev_ok && next_ok
        } else {
            false
        };
        if in_token {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push((s, i));
        }
    }
    if let Some(s) = start {
        out.push((s, text.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(kind: TokenizerKind, input: &str) -> Vec<String> {
        kind.tokenize(input).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn z3950_is_the_paper_litmus_test() {
        // Section 4.3.1: "a query on Z39.50 should include this term as
        // is, or should instead contain two terms, namely Z39 and 50".
        assert_eq!(texts(TokenizerKind::AlnumRuns, "Z39.50"), vec!["Z39", "50"]);
        assert_eq!(texts(TokenizerKind::WordJoiners, "Z39.50"), vec!["Z39.50"]);
        assert_eq!(texts(TokenizerKind::Whitespace, "Z39.50"), vec!["Z39.50"]);
    }

    #[test]
    fn whitespace_keeps_punctuation() {
        assert_eq!(
            texts(TokenizerKind::Whitespace, "distributed systems,"),
            vec!["distributed", "systems,"]
        );
    }

    #[test]
    fn alnum_strips_punctuation() {
        assert_eq!(
            texts(TokenizerKind::AlnumRuns, "distributed systems,"),
            vec!["distributed", "systems"]
        );
        assert_eq!(
            texts(TokenizerKind::AlnumRuns, "state-of-the-art"),
            vec!["state", "of", "the", "art"]
        );
    }

    #[test]
    fn joiners_keep_internal_punctuation_only() {
        assert_eq!(
            texts(TokenizerKind::WordJoiners, "state-of-the-art."),
            vec!["state-of-the-art"]
        );
        assert_eq!(
            texts(TokenizerKind::WordJoiners, "end. Next"),
            vec!["end", "Next"]
        );
        assert_eq!(
            texts(TokenizerKind::WordJoiners, "O'Reilly's book"),
            vec!["O'Reilly's", "book"]
        );
    }

    #[test]
    fn unicode_words() {
        assert_eq!(
            texts(TokenizerKind::AlnumRuns, "búsqueda de datos"),
            vec!["búsqueda", "de", "datos"]
        );
    }

    #[test]
    fn offsets_are_correct() {
        let toks = TokenizerKind::AlnumRuns.tokenize("ab, cd");
        assert_eq!(toks.len(), 2);
        assert_eq!((toks[0].start, toks[0].end), (0, 2));
        assert_eq!((toks[1].start, toks[1].end), (4, 6));
        assert_eq!(&"ab, cd"[toks[1].start..toks[1].end], "cd");
    }

    #[test]
    fn empty_and_all_separator_inputs() {
        for kind in [
            TokenizerKind::Whitespace,
            TokenizerKind::AlnumRuns,
            TokenizerKind::WordJoiners,
        ] {
            assert!(kind.tokenize("").is_empty());
            assert!(kind.tokenize("   ").is_empty());
        }
        assert!(TokenizerKind::AlnumRuns.tokenize("... --- ...").is_empty());
    }

    #[test]
    fn registry_round_trip() {
        for kind in [
            TokenizerKind::Whitespace,
            TokenizerKind::AlnumRuns,
            TokenizerKind::WordJoiners,
        ] {
            assert_eq!(tokenizer_by_id(&kind.id()), Some(kind));
        }
        assert_eq!(tokenizer_by_id(&TokenizerId("Unknown-9".to_string())), None);
    }

    #[test]
    fn trailing_joiner_not_included() {
        assert_eq!(texts(TokenizerKind::WordJoiners, "end."), vec!["end"]);
        assert_eq!(texts(TokenizerKind::WordJoiners, ".start"), vec!["start"]);
    }
}
