//! Thesaurus expansion, behind the STARTS `Thesaurus` modifier.
//!
//! `Thesaurus` is one of the *new* modifiers the STARTS group added beyond
//! the Z39.50 relation attributes (Section 4.1.1, default "No thesaurus
//! expansion"). A source that supports it expands a query term to its
//! synonym class before matching. Real engines shipped hand-curated domain
//! thesauri; we model a thesaurus as symmetric synonym rings, with a small
//! built-in computer-science ring set that matches the paper's running
//! vocabulary.

use std::collections::HashMap;

/// A thesaurus: a set of synonym rings. Lookup is case-insensitive.
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    /// word -> ring id
    ring_of: HashMap<String, usize>,
    /// ring id -> members (lowercase, insertion order)
    rings: Vec<Vec<String>>,
}

impl Thesaurus {
    /// An empty thesaurus (expansion is the identity).
    pub fn empty() -> Self {
        Thesaurus::default()
    }

    /// A small computer-science thesaurus covering the paper's running
    /// vocabulary, so examples and experiments can exercise the modifier.
    pub fn computer_science() -> Self {
        let mut t = Thesaurus::default();
        t.add_ring(["database", "databases", "dbms"]);
        t.add_ring(["distributed", "decentralized", "federated"]);
        t.add_ring(["search", "retrieval", "querying"]);
        t.add_ring(["metasearcher", "metacrawler", "broker"]);
        t.add_ring(["rank", "ranking", "scoring"]);
        t.add_ring(["internet", "web", "www"]);
        t.add_ring(["protocol", "standard", "specification"]);
        t
    }

    /// Add a synonym ring. Words already present are merged into the new
    /// ring's class (rings are unioned).
    pub fn add_ring<'a, I: IntoIterator<Item = &'a str>>(&mut self, words: I) {
        let words: Vec<String> = words.into_iter().map(|w| w.to_ascii_lowercase()).collect();
        if words.is_empty() {
            return;
        }
        // If any word already belongs to a ring, merge into that ring.
        let existing = words.iter().find_map(|w| self.ring_of.get(w).copied());
        let rid = match existing {
            Some(rid) => rid,
            None => {
                self.rings.push(Vec::new());
                self.rings.len() - 1
            }
        };
        for w in words {
            if let Some(&old) = self.ring_of.get(&w) {
                if old == rid {
                    continue;
                }
                // Merge the old ring into rid.
                let moved = std::mem::take(&mut self.rings[old]);
                for m in moved {
                    self.ring_of.insert(m.clone(), rid);
                    if !self.rings[rid].contains(&m) {
                        self.rings[rid].push(m);
                    }
                }
            } else {
                self.ring_of.insert(w.clone(), rid);
                if !self.rings[rid].contains(&w) {
                    self.rings[rid].push(w);
                }
            }
        }
    }

    /// Expand a term to its synonym class (including itself). Terms not in
    /// the thesaurus expand to themselves only.
    pub fn expand(&self, term: &str) -> Vec<String> {
        let key = term.to_ascii_lowercase();
        match self.ring_of.get(&key) {
            Some(&rid) => self.rings[rid].clone(),
            None => vec![key],
        }
    }

    /// Whether two terms are synonyms (share a ring, or are equal).
    pub fn synonyms(&self, a: &str, b: &str) -> bool {
        let (a, b) = (a.to_ascii_lowercase(), b.to_ascii_lowercase());
        if a == b {
            return true;
        }
        match (self.ring_of.get(&a), self.ring_of.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of rings.
    pub fn ring_count(&self) -> usize {
        self.rings.iter().filter(|r| !r.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_includes_self_and_synonyms() {
        let t = Thesaurus::computer_science();
        let e = t.expand("database");
        assert!(e.contains(&"database".to_string()));
        assert!(e.contains(&"dbms".to_string()));
    }

    #[test]
    fn unknown_terms_expand_to_self() {
        let t = Thesaurus::computer_science();
        assert_eq!(t.expand("ullman"), vec!["ullman".to_string()]);
    }

    #[test]
    fn case_insensitive_lookup() {
        let t = Thesaurus::computer_science();
        assert!(t.synonyms("Database", "DBMS"));
    }

    #[test]
    fn empty_is_identity() {
        let t = Thesaurus::empty();
        assert_eq!(t.expand("anything"), vec!["anything".to_string()]);
        assert!(t.synonyms("x", "x"));
        assert!(!t.synonyms("x", "y"));
    }

    #[test]
    fn ring_merge() {
        let mut t = Thesaurus::empty();
        t.add_ring(["a", "b"]);
        t.add_ring(["c", "d"]);
        assert!(!t.synonyms("a", "c"));
        assert_eq!(t.ring_count(), 2);
        // Bridging ring merges the two classes.
        t.add_ring(["b", "c"]);
        assert!(t.synonyms("a", "d"));
        assert_eq!(t.ring_count(), 1);
    }

    #[test]
    fn symmetric() {
        let t = Thesaurus::computer_science();
        assert_eq!(t.synonyms("web", "internet"), t.synonyms("internet", "web"));
    }
}
