#![warn(missing_docs)]

//! Text-processing substrate for the STARTS reproduction.
//!
//! STARTS (Gravano et al., SIGMOD 1997) assumes that every *source* sits on
//! top of a text search engine with its own — usually proprietary — text
//! pipeline: a tokenizer (named via the `TokenizerIDList` metadata
//! attribute), a stemming algorithm (the `Stem` modifier), a phonetic
//! algorithm (the `Phonetic` modifier, conventionally Soundex), a stop-word
//! list (exported via `StopWordList`), case folding (the `Case-sensitive`
//! modifier), and a thesaurus (the `Thesaurus` modifier).
//!
//! This crate implements all of those building blocks from scratch, plus
//! RFC 1766 language tags (the `[en-US "behavior"]` l-string qualifiers of
//! Section 4.1.1). Deliberately, *several* variants of each component are
//! provided so that simulated sources can be heterogeneous — which is the
//! entire reason metasearching is hard and STARTS exists.

pub mod analyzer;
pub mod casefold;
pub mod lang;
pub mod porter;
pub mod soundex;
pub mod stopwords;
pub mod thesaurus;
pub mod tokenize;

pub use analyzer::{Analyzer, AnalyzerConfig, Token};
pub use casefold::{fold_case, CaseMode};
pub use lang::{LangTag, LangTagError};
pub use porter::porter_stem;
pub use soundex::soundex;
pub use stopwords::StopWordList;
pub use thesaurus::Thesaurus;
pub use tokenize::{tokenizer_by_id, Tokenizer, TokenizerId, TokenizerKind};
