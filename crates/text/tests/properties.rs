//! Property-based tests for the text substrate.

use proptest::prelude::*;
use starts_text::tokenize::RawToken;
use starts_text::{
    fold_case, porter_stem, soundex, Analyzer, AnalyzerConfig, CaseMode, LangTag, StopWordList,
    TokenizerKind,
};

proptest! {
    /// Porter never panics and never grows a word.
    #[test]
    fn porter_total_and_shrinking(w in "[a-zA-Z]{0,24}") {
        let s = porter_stem(&w);
        prop_assert!(s.len() <= w.len().max(2));
        // Output is pure lowercase ASCII letters for alphabetic input.
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    /// Porter on arbitrary UTF-8 never panics; non-alphabetic input is
    /// returned lowercased verbatim.
    #[test]
    fn porter_total_on_any_input(w in "\\PC{0,32}") {
        let _ = porter_stem(&w);
    }

    /// Soundex codes are always 1 letter + 3 digits.
    #[test]
    fn soundex_shape(w in "[a-zA-Z]{1,24}") {
        let code = soundex(&w).expect("alphabetic input has a code");
        prop_assert_eq!(code.len(), 4);
        let bytes = code.as_bytes();
        prop_assert!(bytes[0].is_ascii_uppercase());
        prop_assert!(bytes[1..].iter().all(|b| b.is_ascii_digit()));
    }

    /// Soundex is invariant under case.
    #[test]
    fn soundex_case_invariant(w in "[a-zA-Z]{1,24}") {
        prop_assert_eq!(soundex(&w), soundex(&w.to_ascii_uppercase()));
    }

    /// Case folding is idempotent.
    #[test]
    fn fold_idempotent(s in "\\PC{0,48}") {
        let once = fold_case(&s);
        prop_assert_eq!(fold_case(&once), once);
    }

    /// Tokenizers cover the input: every token's span reproduces its text,
    /// tokens are in order and non-overlapping.
    #[test]
    fn tokenizer_spans_consistent(s in "\\PC{0,64}") {
        for kind in [TokenizerKind::Whitespace, TokenizerKind::AlnumRuns, TokenizerKind::WordJoiners] {
            let toks: Vec<RawToken> = kind.tokenize(&s);
            let mut last_end = 0usize;
            for t in &toks {
                prop_assert!(t.start >= last_end, "{kind:?} overlap in {s:?}");
                prop_assert!(t.end > t.start);
                prop_assert_eq!(&s[t.start..t.end], t.text.as_str());
                last_end = t.end;
            }
        }
    }

    /// AlnumRuns tokens never contain separators.
    #[test]
    fn alnum_tokens_are_alnum(s in "\\PC{0,64}") {
        for t in TokenizerKind::AlnumRuns.tokenize(&s) {
            prop_assert!(t.text.chars().all(char::is_alphanumeric));
        }
    }

    /// Analyzer output positions are strictly increasing.
    #[test]
    fn analyzer_positions_increase(s in "[a-zA-Z ]{0,80}") {
        let a = Analyzer::default();
        let toks = a.analyze(&s);
        for pair in toks.windows(2) {
            prop_assert!(pair[0].position < pair[1].position);
        }
    }

    /// Valid language tags round-trip through Display/parse.
    #[test]
    fn langtag_roundtrip(primary in "[a-zA-Z]{1,8}", sub in proptest::option::of("[a-zA-Z0-9]{1,8}")) {
        let tag = match &sub {
            Some(s) => format!("{primary}-{s}"),
            None => primary.clone(),
        };
        let parsed = LangTag::parse(&tag).expect("constructed tag is valid");
        let reparsed = LangTag::parse(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Stop-word membership is case-invariant.
    #[test]
    fn stopwords_case_invariant(w in "[a-zA-Z]{1,12}") {
        let l = StopWordList::english_aggressive();
        prop_assert_eq!(l.contains(&w), l.contains(&w.to_ascii_uppercase()));
    }
}

#[test]
fn case_sensitive_analyzer_preserves_exact_terms() {
    let a = Analyzer::new(AnalyzerConfig {
        case: CaseMode::Sensitive,
        stop_words: StopWordList::none(),
        stem: false,
        ..AnalyzerConfig::default()
    });
    let toks = a.analyze("MiXeD CaSe");
    let terms: Vec<_> = toks.into_iter().map(|t| t.term).collect();
    assert_eq!(terms, vec!["MiXeD", "CaSe"]);
}
