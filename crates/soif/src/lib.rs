#![warn(missing_docs)]

//! Harvest SOIF — the Summary Object Interchange Format — used by STARTS
//! as its illustrative wire encoding.
//!
//! Section 4 of the paper: "SOIF objects are typed, ASCII-based encodings
//! for structured objects"; STARTS queries, results, metadata, content
//! summaries and resource descriptions are all delivered as SOIF objects
//! (`@SQuery`, `@SQResults`, `@SQRDocument`, `@SMetaAttributes`,
//! `@SContentSummary`, `@SResource`). Example 6 explains the framing:
//! "The number in brackets after each SOIF attribute … is the number of
//! bytes of the value for that attribute, to facilitate parsing."
//!
//! The format, as used by the paper:
//!
//! ```text
//! @TemplateType{ optional-url
//! AttributeName{byte-count}: value-bytes
//! ...
//! }
//! ```
//!
//! * Attribute order is significant and names may repeat (Example 11's
//!   content summary repeats `Field`/`Language`/`TermDocFreq` per
//!   field–language section), so objects store an ordered attribute list.
//! * Values are raw bytes of exactly the declared length and may contain
//!   newlines (Example 8's multi-line `TermStats`).
//! * The encoder always produces exact byte counts. The paper's hand-made
//!   examples contain a few off-by-one counts (documented in
//!   EXPERIMENTS.md); [`ParseMode::Lenient`] recovers from such counts by
//!   resynchronizing on the next attribute or object delimiter.

pub mod object;
pub mod parse;
pub mod write;

pub use object::{SoifAttr, SoifObject};
pub use parse::{parse, parse_one, ParseError, ParseMode, SoifReader};
pub use write::{write_object, write_object_into, write_stream, write_stream_into};

/// STARTS protocol version string carried by every object (Example 6).
pub const STARTS_VERSION: &str = "STARTS 1.0";

/// The `Version` attribute name present on every STARTS SOIF object.
pub const VERSION_ATTR: &str = "Version";

#[cfg(test)]
mod round_trip_tests {
    use super::*;

    #[test]
    fn build_encode_parse_round_trip() {
        let mut obj = SoifObject::new("SQuery");
        obj.push_str(VERSION_ATTR, STARTS_VERSION);
        obj.push_str("FilterExpression", "(author \"Ullman\")");
        obj.push_str("DropStopWords", "T");
        let bytes = write_object(&obj);
        let parsed = parse_one(&bytes, ParseMode::Strict).unwrap();
        assert_eq!(parsed, obj);
    }

    #[test]
    fn version_helper_matches_paper() {
        // Version{10}: STARTS 1.0  — the 10 is the byte length.
        assert_eq!(STARTS_VERSION.len(), 10);
    }
}
