//! SOIF serialization with exact byte counts.

use crate::object::SoifObject;

/// Serialize one object to its wire form:
///
/// ```text
/// @Template{ url
/// Name{len}: value
/// }
/// ```
///
/// The byte count in braces is exactly `value.len()`; a single space
/// separates the colon from the value (as in every example in the paper),
/// and a newline terminates each attribute. Multi-line values are embedded
/// verbatim — the count makes them parseable.
pub fn write_object(obj: &SoifObject) -> Vec<u8> {
    let mut out = Vec::new();
    write_object_into(obj, &mut out);
    out
}

/// Append the wire form of `obj` to `out` — the allocation-free entry
/// point for hot paths that encode many objects per exchange and reuse
/// one buffer. [`write_object`] is a convenience wrapper around this.
pub fn write_object_into(obj: &SoifObject, out: &mut Vec<u8>) {
    let mut cap = obj.template.len() + 8;
    for a in &obj.attrs {
        cap += a.name.len() + a.value.len() + 16;
    }
    out.reserve(cap);
    out.push(b'@');
    out.extend_from_slice(obj.template.as_bytes());
    out.push(b'{');
    if let Some(url) = &obj.url {
        out.push(b' ');
        out.extend_from_slice(url.as_bytes());
    }
    out.push(b'\n');
    for a in &obj.attrs {
        out.extend_from_slice(a.name.as_bytes());
        out.push(b'{');
        push_decimal(a.value.len(), out);
        out.extend_from_slice(b"}: ");
        out.extend_from_slice(&a.value);
        out.push(b'\n');
    }
    out.extend_from_slice(b"}\n");
}

/// Append the decimal digits of `n` without going through a `String`.
fn push_decimal(n: usize, out: &mut Vec<u8>) {
    // usize is at most 20 decimal digits; fill a stack buffer backwards.
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// Serialize a stream of objects, separated by a blank line (the layout
/// Examples 8–9 use between `@SQResults` and its `@SQRDocument`s).
pub fn write_stream(objects: &[SoifObject]) -> Vec<u8> {
    let mut out = Vec::new();
    write_stream_into(objects, &mut out);
    out
}

/// Append a blank-line-separated stream of objects to `out` (the
/// buffer-reuse counterpart of [`write_stream`]).
pub fn write_stream_into(objects: &[SoifObject], out: &mut Vec<u8>) {
    for (i, obj) in objects.iter().enumerate() {
        if i > 0 {
            out.push(b'\n');
        }
        write_object_into(obj, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_encoding() {
        let mut o = SoifObject::new("SQuery");
        o.push_str("Version", "STARTS 1.0");
        o.push_str("DropStopWords", "T");
        let got = String::from_utf8(write_object(&o)).unwrap();
        assert_eq!(
            got,
            "@SQuery{\nVersion{10}: STARTS 1.0\nDropStopWords{1}: T\n}\n"
        );
    }

    #[test]
    fn multi_line_value_embedded_verbatim() {
        let mut o = SoifObject::new("SQRDocument");
        o.push_str("TermStats", "line one\nline two");
        let got = String::from_utf8(write_object(&o)).unwrap();
        assert_eq!(got, "@SQRDocument{\nTermStats{17}: line one\nline two\n}\n");
    }

    #[test]
    fn url_slot() {
        let mut o = SoifObject::new("FILE");
        o.url = Some("http://example.org/doc".to_string());
        let got = String::from_utf8(write_object(&o)).unwrap();
        assert!(got.starts_with("@FILE{ http://example.org/doc\n"));
    }

    #[test]
    fn empty_value() {
        let mut o = SoifObject::new("SQuery");
        o.push_str("RankingExpression", "");
        let got = String::from_utf8(write_object(&o)).unwrap();
        assert!(got.contains("RankingExpression{0}: \n"));
    }

    #[test]
    fn into_variant_appends_without_touching_prefix() {
        let mut o = SoifObject::new("SQuery");
        o.push_str("Version", "STARTS 1.0");
        let mut buf = b"prefix".to_vec();
        write_object_into(&o, &mut buf);
        assert!(buf.starts_with(b"prefix@SQuery{"));
        assert_eq!(&buf[6..], write_object(&o).as_slice());
    }

    #[test]
    fn decimal_lengths_match_to_string() {
        for n in [0usize, 1, 9, 10, 42, 999, 1000, usize::MAX] {
            let mut out = Vec::new();
            push_decimal(n, &mut out);
            assert_eq!(out, n.to_string().into_bytes());
        }
    }

    #[test]
    fn stream_layout() {
        let a = SoifObject::new("SQResults");
        let b = SoifObject::new("SQRDocument");
        let got = String::from_utf8(write_stream(&[a, b])).unwrap();
        assert_eq!(got, "@SQResults{\n}\n\n@SQRDocument{\n}\n");
    }
}
