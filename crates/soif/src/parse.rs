//! SOIF parsing: strict byte-counted parsing plus a lenient mode that
//! recovers from the hand-computed (occasionally wrong) byte counts found
//! in the paper's printed examples.

use std::fmt;

use crate::object::{SoifAttr, SoifObject};

/// How strictly to trust declared byte counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseMode {
    /// Trust counts exactly; any framing violation is an error.
    #[default]
    Strict,
    /// Use the count, but if the byte after the value is not a newline
    /// (i.e. the count was wrong), re-scan the value line-by-line until a
    /// line that looks like the next attribute header or the closing `}`.
    Lenient,
}

/// Parse errors, with byte offsets into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Expected `@Template{`, found something else.
    ExpectedObjectStart {
        /// Byte offset of the violation.
        offset: usize,
    },
    /// Attribute header was malformed (missing `{`, `}`, `:` …).
    BadAttributeHeader {
        /// Byte offset of the violation.
        offset: usize,
    },
    /// Declared byte count is not a number.
    BadByteCount {
        /// Byte offset of the violation.
        offset: usize,
    },
    /// Input ended inside an object or value.
    UnexpectedEof {
        /// Byte offset where input ran out.
        offset: usize,
    },
    /// Value did not end at a newline where strict mode demanded one.
    CountMismatch {
        /// Byte offset where the value should have ended.
        offset: usize,
        /// The attribute whose count was wrong.
        attr: String,
    },
    /// Template or attribute name is not valid UTF-8 / contains bad chars.
    BadName {
        /// Byte offset of the name.
        offset: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::ExpectedObjectStart { offset } => {
                write!(f, "expected '@Template{{' at byte {offset}")
            }
            ParseError::BadAttributeHeader { offset } => {
                write!(f, "malformed attribute header at byte {offset}")
            }
            ParseError::BadByteCount { offset } => {
                write!(f, "malformed byte count at byte {offset}")
            }
            ParseError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            ParseError::CountMismatch { offset, attr } => write!(
                f,
                "byte count of attribute {attr:?} does not end at a line boundary (byte {offset})"
            ),
            ParseError::BadName { offset } => write!(f, "invalid name at byte {offset}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse exactly one object; trailing input after it is an error only if
/// it is not whitespace.
pub fn parse_one(input: &[u8], mode: ParseMode) -> Result<SoifObject, ParseError> {
    let mut reader = SoifReader::new(input, mode);
    let obj = reader
        .next_object()?
        .ok_or(ParseError::UnexpectedEof { offset: 0 })?;
    reader.skip_ws();
    if !reader.at_end() {
        return Err(ParseError::ExpectedObjectStart {
            offset: reader.pos(),
        });
    }
    Ok(obj)
}

/// Parse a stream of objects (e.g. `@SQResults` followed by
/// `@SQRDocument`s).
pub fn parse(input: &[u8], mode: ParseMode) -> Result<Vec<SoifObject>, ParseError> {
    let mut reader = SoifReader::new(input, mode);
    let mut out = Vec::new();
    while let Some(obj) = reader.next_object()? {
        out.push(obj);
    }
    Ok(out)
}

/// Incremental object reader over a byte buffer.
pub struct SoifReader<'a> {
    input: &'a [u8],
    pos: usize,
    mode: ParseMode,
}

impl<'a> SoifReader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a [u8], mode: ParseMode) -> Self {
        SoifReader {
            input,
            pos: 0,
            mode,
        }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether all input has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Skip ASCII whitespace between objects.
    pub fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Read the next object, or `None` at (whitespace-padded) end of input.
    pub fn next_object(&mut self) -> Result<Option<SoifObject>, ParseError> {
        self.skip_ws();
        if self.at_end() {
            return Ok(None);
        }
        if self.input[self.pos] != b'@' {
            return Err(ParseError::ExpectedObjectStart { offset: self.pos });
        }
        self.pos += 1;
        let template = self.read_name(b'{')?;
        // '{' consumed by read_name. Optional " url" up to newline.
        let mut url = None;
        let line_end = self.find(b'\n')?;
        if line_end > self.pos {
            let raw = &self.input[self.pos..line_end];
            let raw = trim_ascii(raw);
            if !raw.is_empty() {
                url = Some(
                    std::str::from_utf8(raw)
                        .map_err(|_| ParseError::BadName { offset: self.pos })?
                        .to_string(),
                );
            }
        }
        self.pos = line_end + 1;
        let mut attrs = Vec::new();
        loop {
            self.skip_blank_lines();
            if self.at_end() {
                return Err(ParseError::UnexpectedEof { offset: self.pos });
            }
            if self.input[self.pos] == b'}' {
                self.pos += 1;
                // consume the rest of the line if present
                if self.pos < self.input.len() && self.input[self.pos] == b'\n' {
                    self.pos += 1;
                }
                break;
            }
            attrs.push(self.read_attribute()?);
        }
        Ok(Some(SoifObject {
            template,
            url,
            attrs,
        }))
    }

    fn skip_blank_lines(&mut self) {
        while self.pos < self.input.len()
            && (self.input[self.pos] == b'\n' || self.input[self.pos] == b'\r')
        {
            self.pos += 1;
        }
    }

    fn find(&self, byte: u8) -> Result<usize, ParseError> {
        self.input[self.pos..]
            .iter()
            .position(|&b| b == byte)
            .map(|i| self.pos + i)
            .ok_or(ParseError::UnexpectedEof {
                offset: self.input.len(),
            })
    }

    /// Read a name terminated by `stop` (consuming the terminator).
    fn read_name(&mut self, stop: u8) -> Result<String, ParseError> {
        let start = self.pos;
        while self.pos < self.input.len() {
            let b = self.input[self.pos];
            if b == stop {
                let name = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| ParseError::BadName { offset: start })?;
                if name.is_empty() || name.bytes().any(|b| b.is_ascii_whitespace()) {
                    return Err(ParseError::BadName { offset: start });
                }
                self.pos += 1;
                return Ok(name.to_string());
            }
            if b == b'\n' {
                return Err(ParseError::BadAttributeHeader { offset: start });
            }
            self.pos += 1;
        }
        Err(ParseError::UnexpectedEof { offset: self.pos })
    }

    fn read_attribute(&mut self) -> Result<SoifAttr, ParseError> {
        let header_start = self.pos;
        let name = self.read_name(b'{')?;
        // Byte count.
        let count_start = self.pos;
        let close = self.find(b'}')?;
        let count: usize = std::str::from_utf8(&self.input[count_start..close])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseError::BadByteCount {
                offset: count_start,
            })?;
        self.pos = close + 1;
        // Expect ':' then optional single space/tab.
        if self.pos >= self.input.len() || self.input[self.pos] != b':' {
            return Err(ParseError::BadAttributeHeader {
                offset: header_start,
            });
        }
        self.pos += 1;
        if self.pos < self.input.len()
            && (self.input[self.pos] == b' ' || self.input[self.pos] == b'\t')
        {
            self.pos += 1;
        }
        // Read exactly `count` bytes.
        let in_bounds = self.pos + count <= self.input.len();
        if !in_bounds && self.mode == ParseMode::Strict {
            return Err(ParseError::UnexpectedEof {
                offset: self.input.len(),
            });
        }
        let value_end = self.pos + count;
        let ends_cleanly = in_bounds
            && (value_end == self.input.len()
                || self.input[value_end] == b'\n'
                || self.input[value_end] == b'\r');
        if ends_cleanly {
            let value = self.input[self.pos..value_end].to_vec();
            self.pos = value_end;
            if self.pos < self.input.len() && self.input[self.pos] == b'\r' {
                self.pos += 1;
            }
            if self.pos < self.input.len() && self.input[self.pos] == b'\n' {
                self.pos += 1;
            }
            return Ok(SoifAttr { name, value });
        }
        match self.mode {
            ParseMode::Strict => Err(ParseError::CountMismatch {
                offset: value_end,
                attr: name,
            }),
            ParseMode::Lenient => {
                // The count was wrong (the paper's examples contain such).
                // Resynchronize: take lines until one starts a plausible
                // attribute header (`Name{digits}:`) or closes the object.
                let mut end = self.pos;
                loop {
                    let line_end = self.input[end..]
                        .iter()
                        .position(|&b| b == b'\n')
                        .map(|i| end + i)
                        .unwrap_or(self.input.len());
                    let next_line_start = (line_end + 1).min(self.input.len());
                    if next_line_start >= self.input.len() {
                        end = line_end;
                        break;
                    }
                    let rest = &self.input[next_line_start..];
                    if rest.starts_with(b"}") || looks_like_attr_header(rest) {
                        end = line_end;
                        break;
                    }
                    end = next_line_start;
                }
                let value = self.input[self.pos..end].to_vec();
                self.pos = (end + 1).min(self.input.len());
                Ok(SoifAttr { name, value })
            }
        }
    }
}

fn trim_ascii(mut b: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = b {
        if first.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = b {
        if last.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    b
}

/// Heuristic: does this line start with `Name{digits}:`?
fn looks_like_attr_header(line: &[u8]) -> bool {
    let Some(open) = line.iter().position(|&b| b == b'{') else {
        return false;
    };
    if open == 0 || line[..open].iter().any(|b| b.is_ascii_whitespace()) {
        return false;
    }
    let rest = &line[open + 1..];
    let Some(close) = rest.iter().position(|&b| b == b'}') else {
        return false;
    };
    if close == 0 || !rest[..close].iter().all(|b| b.is_ascii_digit()) {
        return false;
    }
    rest.get(close + 1) == Some(&b':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::write_object;

    #[test]
    fn parses_example6_shape() {
        let text = "@SQuery{\n\
            Version{10}: STARTS 1.0\n\
            FilterExpression{48}: ((author \"Ullman\") and (title stem \"databases\"))\n\
            DropStopWords{1}: T\n\
            MaxNumberDocuments{2}: 10\n\
            }\n";
        let obj = parse_one(text.as_bytes(), ParseMode::Strict).unwrap();
        assert_eq!(obj.template, "SQuery");
        assert_eq!(obj.get_str("Version"), Some("STARTS 1.0"));
        assert_eq!(
            obj.get_str("FilterExpression"),
            Some("((author \"Ullman\") and (title stem \"databases\"))")
        );
        assert_eq!(obj.get_str("MaxNumberDocuments"), Some("10"));
    }

    #[test]
    fn multi_line_value_via_count() {
        let value =
            "(body-of-text \"distributed\") 10 0.31 190\n(body-of-text \"databases\") 15 0.51 232";
        let text = format!(
            "@SQRDocument{{\nTermStats{{{}}}: {}\n}}\n",
            value.len(),
            value
        );
        let obj = parse_one(text.as_bytes(), ParseMode::Strict).unwrap();
        assert_eq!(obj.get_str("TermStats"), Some(value));
    }

    #[test]
    fn stream_of_objects() {
        let text = "@SQResults{\nNumDocSOIFs{1}: 1\n}\n\n@SQRDocument{\nRawScore{4}: 0.82\n}\n";
        let objs = parse(text.as_bytes(), ParseMode::Strict).unwrap();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0].template, "SQResults");
        assert_eq!(objs[1].template, "SQRDocument");
    }

    #[test]
    fn strict_rejects_wrong_count() {
        // Count says 5 but the value is 4 bytes then newline.
        let text = "@SQuery{\nDropStopWords{5}: T\nMaxNumberDocuments{2}: 10\n}\n";
        let err = parse_one(text.as_bytes(), ParseMode::Strict).unwrap_err();
        assert!(matches!(
            err,
            ParseError::CountMismatch { .. } | ParseError::BadAttributeHeader { .. }
        ));
    }

    #[test]
    fn lenient_recovers_from_wrong_count() {
        // The paper's Example 10 declares FieldsSupported{17} for a
        // 16-byte value. Lenient mode should recover the real value.
        let text = "@SMetaAttributes{\n\
            FieldsSupported{17}: [basic-1 author]\n\
            QueryPartsSupported{2}: RF\n\
            }\n";
        let obj = parse_one(text.as_bytes(), ParseMode::Lenient).unwrap();
        assert_eq!(obj.get_str("FieldsSupported"), Some("[basic-1 author]"));
        assert_eq!(obj.get_str("QueryPartsSupported"), Some("RF"));
    }

    #[test]
    fn lenient_wrong_count_multiline() {
        // Wrong count over a multi-line value: resync must stop at the
        // next plausible header, keeping both lines of the value.
        let text = "@SQRDocument{\n\
            TermStats{999}: line one\nline two\n\
            DocSize{3}: 248\n\
            }\n";
        let obj = parse_one(text.as_bytes(), ParseMode::Lenient).unwrap();
        assert_eq!(obj.get_str("TermStats"), Some("line one\nline two"));
        assert_eq!(obj.get_str("DocSize"), Some("248"));
    }

    #[test]
    fn eof_inside_object() {
        let text = "@SQuery{\nVersion{10}: STARTS 1.0\n";
        let err = parse_one(text.as_bytes(), ParseMode::Strict).unwrap_err();
        assert!(matches!(err, ParseError::UnexpectedEof { .. }));
    }

    #[test]
    fn garbage_input() {
        assert!(matches!(
            parse_one(b"not soif", ParseMode::Strict),
            Err(ParseError::ExpectedObjectStart { .. })
        ));
        assert!(parse(b"", ParseMode::Strict).unwrap().is_empty());
        assert!(parse(b"   \n\n ", ParseMode::Strict).unwrap().is_empty());
    }

    #[test]
    fn empty_object() {
        let objs = parse(b"@SResource{\n}\n", ParseMode::Strict).unwrap();
        assert_eq!(objs.len(), 1);
        assert!(objs[0].is_empty());
    }

    #[test]
    fn url_slot_round_trip() {
        let mut o = SoifObject::new("FILE");
        o.url = Some("http://example.org/a".to_string());
        o.push_str("x", "y");
        let enc = write_object(&o);
        let back = parse_one(&enc, ParseMode::Strict).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn crlf_tolerated_after_value() {
        let text = "@SQuery{\r\nDropStopWords{1}: T\r\n}\r\n";
        let obj = parse_one(text.as_bytes(), ParseMode::Strict).unwrap();
        assert_eq!(obj.get_str("DropStopWords"), Some("T"));
    }

    #[test]
    fn value_with_trailing_byte_noise_rejected_strict() {
        let text = "@SQuery{\nDropStopWords{1}: TX\n}\n";
        assert!(parse_one(text.as_bytes(), ParseMode::Strict).is_err());
    }

    #[test]
    fn zero_length_value() {
        let text = "@SQuery{\nRankingExpression{0}: \n}\n";
        let obj = parse_one(text.as_bytes(), ParseMode::Strict).unwrap();
        assert_eq!(obj.get_str("RankingExpression"), Some(""));
    }
}
