//! The in-memory SOIF object model.

use std::fmt;

/// One attribute: a name and a raw byte value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoifAttr {
    /// Attribute name (e.g. `FilterExpression`). SOIF names are ASCII and
    /// contain no `{`, `}`, `:` or whitespace.
    pub name: String,
    /// Raw value bytes. STARTS values are UTF-8 text, but SOIF itself is
    /// byte-counted and permits arbitrary bytes.
    pub value: Vec<u8>,
}

/// A SOIF object: a template type, an optional URL (Harvest's object
/// identity slot, unused by the paper's STARTS examples), and an ordered —
/// possibly repeating — attribute list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SoifObject {
    /// Template type without the leading `@` (e.g. `SQuery`).
    pub template: String,
    /// Harvest puts an object URL after `{`; STARTS objects leave it empty.
    pub url: Option<String>,
    /// Ordered attribute list.
    pub attrs: Vec<SoifAttr>,
}

impl SoifObject {
    /// Create an empty object of the given template type.
    pub fn new(template: impl Into<String>) -> Self {
        SoifObject {
            template: template.into(),
            url: None,
            attrs: Vec::new(),
        }
    }

    /// Append a string-valued attribute.
    pub fn push_str(&mut self, name: impl Into<String>, value: impl AsRef<str>) -> &mut Self {
        self.attrs.push(SoifAttr {
            name: name.into(),
            value: value.as_ref().as_bytes().to_vec(),
        });
        self
    }

    /// Append a raw-bytes attribute.
    pub fn push_bytes(&mut self, name: impl Into<String>, value: Vec<u8>) -> &mut Self {
        self.attrs.push(SoifAttr {
            name: name.into(),
            value,
        });
        self
    }

    /// First value for `name`, as UTF-8 text. SOIF attribute names are
    /// matched case-insensitively (the paper itself mixes `Linkage` and
    /// `linkage`).
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get_bytes(name)
            .and_then(|b| std::str::from_utf8(b).ok())
    }

    /// First value for `name`, raw.
    pub fn get_bytes(&self, name: &str) -> Option<&[u8]> {
        self.attrs
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
            .map(|a| a.value.as_slice())
    }

    /// All values for `name` (repeated attributes), as UTF-8 text.
    /// Non-UTF-8 values are skipped.
    pub fn get_all_str<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.attrs
            .iter()
            .filter(move |a| a.name.eq_ignore_ascii_case(name))
            .filter_map(|a| std::str::from_utf8(&a.value).ok())
    }

    /// Whether the object has an attribute named `name`.
    pub fn has(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Number of attributes (counting repeats).
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the object has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes in order, for section-style iteration (Example 11's
    /// repeated `Field`/`Language`/`TermDocFreq` groups).
    pub fn iter(&self) -> impl Iterator<Item = &SoifAttr> {
        self.attrs.iter()
    }
}

impl fmt::Display for SoifObject {
    /// Display renders the exact wire encoding (lossy only if values are
    /// not UTF-8).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = crate::write::write_object(self);
        f.write_str(&String::from_utf8_lossy(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_repeated_attributes() {
        let mut o = SoifObject::new("SContentSummary");
        o.push_str("Field", "title");
        o.push_str("Language", "en-US");
        o.push_str("TermDocFreq", "\"algorithm\" 100 53");
        o.push_str("Field", "title");
        o.push_str("Language", "es");
        o.push_str("TermDocFreq", "\"algoritmo\" 23 11");
        assert_eq!(o.get_all_str("Field").count(), 2);
        assert_eq!(o.get_str("Language"), Some("en-US"));
        let langs: Vec<_> = o.get_all_str("Language").collect();
        assert_eq!(langs, vec!["en-US", "es"]);
    }

    #[test]
    fn case_insensitive_lookup() {
        let mut o = SoifObject::new("SQRDocument");
        o.push_str("linkage", "http://x/");
        assert_eq!(o.get_str("Linkage"), Some("http://x/"));
        assert!(o.has("LINKAGE"));
    }

    #[test]
    fn missing_attribute() {
        let o = SoifObject::new("SQuery");
        assert_eq!(o.get_str("Nope"), None);
        assert!(!o.has("Nope"));
        assert!(o.is_empty());
    }
}
