//! Property-based tests: SOIF encode/parse is a lossless round trip for
//! arbitrary objects, including repeated names, empty values, newlines and
//! raw bytes in values.

use proptest::prelude::*;
use starts_soif::{parse, parse_one, write_object, ParseMode, SoifAttr, SoifObject};

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,24}"
}

fn arb_value() -> impl Strategy<Value = Vec<u8>> {
    // Arbitrary bytes including newlines (the byte count must carry them).
    proptest::collection::vec(any::<u8>(), 0..200)
}

fn arb_object() -> impl Strategy<Value = SoifObject> {
    (
        arb_name(),
        proptest::option::of("[!-~]{1,40}"),
        proptest::collection::vec((arb_name(), arb_value()), 0..12),
    )
        .prop_map(|(template, url, attrs)| SoifObject {
            template,
            url,
            attrs: attrs
                .into_iter()
                .map(|(name, value)| SoifAttr { name, value })
                .collect(),
        })
}

proptest! {
    #[test]
    fn encode_parse_round_trip(obj in arb_object()) {
        let bytes = write_object(&obj);
        let back = parse_one(&bytes, ParseMode::Strict).expect("own encoding parses");
        prop_assert_eq!(back, obj);
    }

    #[test]
    fn stream_round_trip(objs in proptest::collection::vec(arb_object(), 0..5)) {
        let mut bytes = Vec::new();
        for o in &objs {
            bytes.extend_from_slice(&write_object(o));
            bytes.push(b'\n');
        }
        let back = parse(&bytes, ParseMode::Strict).expect("stream parses");
        prop_assert_eq!(back, objs);
    }

    /// The parser never panics on arbitrary input (it may error).
    #[test]
    fn parser_total(junk in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = parse(&junk, ParseMode::Strict);
        let _ = parse(&junk, ParseMode::Lenient);
    }

    /// Lenient mode parses everything strict mode parses, identically.
    #[test]
    fn lenient_extends_strict(obj in arb_object()) {
        let bytes = write_object(&obj);
        let strict = parse_one(&bytes, ParseMode::Strict).unwrap();
        let lenient = parse_one(&bytes, ParseMode::Lenient).unwrap();
        prop_assert_eq!(strict, lenient);
    }
}
