//! Attribute mappings: Basic-1 fields to Bib-1/GILS *use* attributes
//! (type 1), modifiers to *relation* (type 2) and *truncation* (type 5)
//! attributes.
//!
//! §4.1.1: "Our fields correspond to the Z39.50/GILS 'use attributes'"
//! and "our modifiers correspond to the Z39.50 'relation attributes'."
//! The numeric values below are the registered Bib-1 values where one
//! exists; GILS-registered values are used for the linkage family, and
//! the two STARTS-new fields (Document-text, Free-form-text) have no
//! Z39.50 equivalent — queries using them cannot cross the bridge, which
//! is faithful: ZDSR was a *simple* profile.

use starts_proto::attrs::CmpOp;
use starts_proto::{Field, Modifier};

/// Bib-1/GILS use-attribute value for a Basic-1 field, or `None` when
/// the field has no Z39.50 registration.
pub fn use_attr(field: &Field) -> Option<u32> {
    Some(match field {
        Field::Title => 4,                    // Bib-1 Title
        Field::Author => 1003,                // Bib-1 Author
        Field::BodyOfText => 1010,            // Bib-1 Body of text
        Field::DateLastModified => 1012,      // Bib-1 Date/time last modified
        Field::Any => 1016,                   // Bib-1 Any
        Field::Linkage => 2021,               // GILS Linkage
        Field::LinkageType => 2022,           // GILS Linkage type
        Field::CrossReferenceLinkage => 2024, // GILS Cross-reference linkage
        Field::Languages => 54,               // Bib-1 Code--language
        Field::DocumentText | Field::FreeFormText | Field::Other(_) => return None,
    })
}

/// The Basic-1 field for a use-attribute value (inverse of [`use_attr`]).
pub fn use_attr_to_field(value: u32) -> Option<Field> {
    Some(match value {
        4 => Field::Title,
        1003 => Field::Author,
        1010 => Field::BodyOfText,
        1012 => Field::DateLastModified,
        1016 => Field::Any,
        2021 => Field::Linkage,
        2022 => Field::LinkageType,
        2024 => Field::CrossReferenceLinkage,
        54 => Field::Languages,
        _ => return None,
    })
}

/// Relation-attribute value (type 2) for a modifier, or `None` for
/// truncation modifiers (those are type 5) and unregistered ones.
pub fn relation_attr(modifier: &Modifier) -> Option<u32> {
    Some(match modifier {
        Modifier::Cmp(CmpOp::Lt) => 1,
        Modifier::Cmp(CmpOp::Le) => 2,
        Modifier::Cmp(CmpOp::Eq) => 3,
        Modifier::Cmp(CmpOp::Ge) => 4,
        Modifier::Cmp(CmpOp::Gt) => 5,
        Modifier::Cmp(CmpOp::Ne) => 6,
        Modifier::Phonetic => 100,  // Bib-1 relation: phonetic
        Modifier::Stem => 101,      // Bib-1 relation: stem
        Modifier::Thesaurus => 102, // Bib-1 relation: relevance (closest)
        _ => return None,
    })
}

/// The modifier for a relation-attribute value.
pub fn relation_to_modifier(value: u32) -> Option<Modifier> {
    Some(match value {
        1 => Modifier::Cmp(CmpOp::Lt),
        2 => Modifier::Cmp(CmpOp::Le),
        3 => Modifier::Cmp(CmpOp::Eq),
        4 => Modifier::Cmp(CmpOp::Ge),
        5 => Modifier::Cmp(CmpOp::Gt),
        6 => Modifier::Cmp(CmpOp::Ne),
        100 => Modifier::Phonetic,
        101 => Modifier::Stem,
        102 => Modifier::Thesaurus,
        _ => return None,
    })
}

/// Truncation-attribute value (type 5) for a modifier.
pub fn truncation_attr(modifier: &Modifier) -> Option<u32> {
    Some(match modifier {
        Modifier::RightTruncation => 1,
        Modifier::LeftTruncation => 2,
        _ => return None,
    })
}

/// The modifier for a truncation-attribute value.
pub fn truncation_to_modifier(value: u32) -> Option<Modifier> {
    Some(match value {
        1 => Modifier::RightTruncation,
        2 => Modifier::LeftTruncation,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn use_attr_round_trip() {
        for field in [
            Field::Title,
            Field::Author,
            Field::BodyOfText,
            Field::DateLastModified,
            Field::Any,
            Field::Linkage,
            Field::LinkageType,
            Field::CrossReferenceLinkage,
            Field::Languages,
        ] {
            let v = use_attr(&field).expect("registered");
            assert_eq!(use_attr_to_field(v), Some(field));
        }
    }

    #[test]
    fn starts_new_fields_have_no_mapping() {
        // Document-text and Free-form-text are STARTS inventions.
        assert_eq!(use_attr(&Field::DocumentText), None);
        assert_eq!(use_attr(&Field::FreeFormText), None);
        assert_eq!(use_attr(&Field::Other("abstract".to_string())), None);
    }

    #[test]
    fn relation_round_trip() {
        for m in [
            Modifier::Cmp(CmpOp::Lt),
            Modifier::Cmp(CmpOp::Le),
            Modifier::Cmp(CmpOp::Eq),
            Modifier::Cmp(CmpOp::Ge),
            Modifier::Cmp(CmpOp::Gt),
            Modifier::Cmp(CmpOp::Ne),
            Modifier::Phonetic,
            Modifier::Stem,
        ] {
            let v = relation_attr(&m).expect("registered");
            assert_eq!(relation_to_modifier(v), Some(m));
        }
    }

    #[test]
    fn truncation_round_trip() {
        assert_eq!(truncation_attr(&Modifier::RightTruncation), Some(1));
        assert_eq!(truncation_attr(&Modifier::LeftTruncation), Some(2));
        assert_eq!(truncation_to_modifier(1), Some(Modifier::RightTruncation));
        assert_eq!(truncation_attr(&Modifier::Stem), None);
    }
}
