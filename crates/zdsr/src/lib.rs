#![warn(missing_docs)]

//! `starts-zdsr` — the ZDSR bridge: STARTS filter expressions ⇄ Z39.50
//! type-101 RPN, rendered in PQF (Prefix Query Format).
//!
//! §2: "the Z39.50 community is designing a profile of their Z39.50-1995
//! standard based on STARTS. (This profile was originally called
//! ZSTARTS, but has since changed its name to ZDSR, for Z39.50 Profile
//! for Simple Distributed Search and Ranked Retrieval.)" And §4.1.1:
//! "our complex filter expressions are based on a simple subset of the
//! type-101 queries of the Z39.50-1995 standard", with the Basic-1
//! fields corresponding to Bib-1/GILS *use* attributes and the modifiers
//! to *relation* attributes.
//!
//! This crate realizes that correspondence concretely: a lossless
//! mapping between STARTS filter expressions and RPN queries written in
//! PQF, the Z39.50 community's standard textual form:
//!
//! ```text
//! ((author "Ullman") and (title stem "databases"))
//!   ⇕
//! @and @attr 1=1003 "Ullman" @attr 1=4 @attr 2=101 "databases"
//! ```

pub mod attrs;
pub mod pqf;

pub use attrs::{relation_attr, truncation_attr, use_attr, use_attr_to_field};
pub use pqf::{from_pqf, to_pqf, ZdsrError};
