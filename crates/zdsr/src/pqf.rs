//! PQF (Prefix Query Format) encoding of the type-101 RPN mapping.
//!
//! Grammar (the subset ZDSR needs):
//!
//! ```text
//! query   := node
//! node    := '@and' node node
//!          | '@or' node node
//!          | '@not' node node            -- RPN and-not
//!          | '@prox' excl dist order rel which unit node node
//!          | apt
//! apt     := ('@attr' TYPE '=' VALUE)* term
//! term    := "quoted string" | bareword
//! ```
//!
//! `@not` in RPN is binary (and-not) — matching STARTS exactly, which
//! has no unary negation either. `@prox` parameters follow YAZ
//! conventions: exclusion=0, distance=words-between+1, ordered 1|0,
//! relation 2 (<=), known unit code `k`, unit 2 (word).

use std::fmt;

use starts_proto::query::{FilterExpr, ProxSpec, QTerm};
use starts_proto::{Field, LString, Modifier};

use crate::attrs::{
    relation_attr, relation_to_modifier, truncation_attr, truncation_to_modifier, use_attr,
    use_attr_to_field,
};

/// Errors crossing the ZDSR bridge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZdsrError {
    /// The field has no Z39.50 use attribute (Document-text,
    /// Free-form-text, or a non-registered set).
    UnmappableField(String),
    /// A modifier without a relation/truncation registration.
    UnmappableModifier(String),
    /// Language-tagged l-strings do not cross the bridge (type-101 terms
    /// are plain).
    UnsupportedLString,
    /// PQF syntax error.
    Syntax(String),
}

impl fmt::Display for ZdsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZdsrError::UnmappableField(name) => {
                write!(f, "field {name:?} has no Z39.50 use attribute")
            }
            ZdsrError::UnmappableModifier(name) => {
                write!(f, "modifier {name:?} has no Z39.50 attribute")
            }
            ZdsrError::UnsupportedLString => {
                write!(f, "language-qualified l-strings cannot cross ZDSR")
            }
            ZdsrError::Syntax(m) => write!(f, "PQF syntax error: {m}"),
        }
    }
}

impl std::error::Error for ZdsrError {}

/// Encode a STARTS filter expression as PQF.
pub fn to_pqf(expr: &FilterExpr) -> Result<String, ZdsrError> {
    let mut out = String::new();
    encode(expr, &mut out)?;
    Ok(out)
}

fn encode(expr: &FilterExpr, out: &mut String) -> Result<(), ZdsrError> {
    match expr {
        FilterExpr::Term(t) => encode_apt(t, out),
        FilterExpr::And(a, b) => encode_binary("@and", a, b, out),
        FilterExpr::Or(a, b) => encode_binary("@or", a, b, out),
        FilterExpr::AndNot(a, b) => encode_binary("@not", a, b, out),
        FilterExpr::Prox(l, spec, r) => {
            // exclusion=0 distance ordered relation=2 known=k unit=2
            out.push_str(&format!(
                "@prox 0 {} {} 2 k 2 ",
                spec.distance + 1,
                if spec.ordered { 1 } else { 0 }
            ));
            encode_apt(l, out)?;
            out.push(' ');
            encode_apt(r, out)
        }
    }
}

fn encode_binary(
    op: &str,
    a: &FilterExpr,
    b: &FilterExpr,
    out: &mut String,
) -> Result<(), ZdsrError> {
    out.push_str(op);
    out.push(' ');
    encode(a, out)?;
    out.push(' ');
    encode(b, out)
}

fn encode_apt(t: &QTerm, out: &mut String) -> Result<(), ZdsrError> {
    if t.value.lang.is_some() {
        return Err(ZdsrError::UnsupportedLString);
    }
    let field = t.effective_field();
    let use_value =
        use_attr(&field).ok_or_else(|| ZdsrError::UnmappableField(field.name().to_string()))?;
    // Emit the use attribute even for Any (Bib-1 1016): the effective
    // query is then explicit and self-contained on the Z39.50 side.
    out.push_str(&format!("@attr 1={use_value} "));
    for m in &t.modifiers {
        if let Some(rel) = relation_attr(m) {
            out.push_str(&format!("@attr 2={rel} "));
        } else if let Some(tr) = truncation_attr(m) {
            out.push_str(&format!("@attr 5={tr} "));
        } else if matches!(m, Modifier::CaseSensitive) {
            // Bib-1 has no case attribute; ZDSR drops it (documented
            // lossy case) — but we error to keep the bridge honest.
            return Err(ZdsrError::UnmappableModifier(m.name().to_string()));
        } else {
            return Err(ZdsrError::UnmappableModifier(m.name().to_string()));
        }
    }
    out.push('"');
    for c in t.value.text.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    Ok(())
}

/// Maximum RPN nesting depth (prefix operators recurse; a hostile
/// `@and @and @and …` chain must not exhaust the stack).
const MAX_DEPTH: usize = 128;

/// Decode a PQF query back into a STARTS filter expression.
pub fn from_pqf(input: &str) -> Result<FilterExpr, ZdsrError> {
    let tokens = tokenize(input)?;
    let mut pos = 0;
    let expr = parse_node(&tokens, &mut pos, 0)?;
    if pos != tokens.len() {
        return Err(ZdsrError::Syntax("trailing tokens".to_string()));
    }
    Ok(expr)
}

#[derive(Debug, PartialEq)]
enum Tok {
    Word(String),
    Quoted(String),
}

fn tokenize(input: &str) -> Result<Vec<Tok>, ZdsrError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(ZdsrError::Syntax("unterminated string".to_string()));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            s.push(bytes[i + 1] as char);
                            i += 2;
                        }
                        _ => {
                            let c = input[i..].chars().next().expect("in bounds");
                            s.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                out.push(Tok::Quoted(s));
            }
            _ => {
                let start = i;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                out.push(Tok::Word(input[start..i].to_string()));
            }
        }
    }
    Ok(out)
}

fn parse_node(tokens: &[Tok], pos: &mut usize, depth: usize) -> Result<FilterExpr, ZdsrError> {
    if depth > MAX_DEPTH {
        return Err(ZdsrError::Syntax(format!(
            "query nesting exceeds {MAX_DEPTH} levels"
        )));
    }
    match tokens.get(*pos) {
        Some(Tok::Word(w)) if w == "@and" || w == "@or" || w == "@not" => {
            let op = w.clone();
            *pos += 1;
            let a = parse_node(tokens, pos, depth + 1)?;
            let b = parse_node(tokens, pos, depth + 1)?;
            Ok(match op.as_str() {
                "@and" => FilterExpr::and(a, b),
                "@or" => FilterExpr::or(a, b),
                _ => FilterExpr::and_not(a, b),
            })
        }
        Some(Tok::Word(w)) if w == "@prox" => {
            *pos += 1;
            let mut nums = Vec::new();
            for _ in 0..6 {
                let Some(Tok::Word(n)) = tokens.get(*pos) else {
                    return Err(ZdsrError::Syntax("truncated @prox".to_string()));
                };
                nums.push(n.clone());
                *pos += 1;
            }
            let distance: u32 = nums[1]
                .parse()
                .map_err(|_| ZdsrError::Syntax("bad prox distance".to_string()))?;
            let ordered = nums[2] == "1";
            let FilterExpr::Term(l) = parse_node(tokens, pos, depth + 1)? else {
                return Err(ZdsrError::Syntax("prox operand must be an APT".to_string()));
            };
            let FilterExpr::Term(r) = parse_node(tokens, pos, depth + 1)? else {
                return Err(ZdsrError::Syntax("prox operand must be an APT".to_string()));
            };
            Ok(FilterExpr::Prox(
                l,
                ProxSpec {
                    distance: distance.saturating_sub(1),
                    ordered,
                },
                r,
            ))
        }
        Some(_) => parse_apt(tokens, pos),
        None => Err(ZdsrError::Syntax("unexpected end of query".to_string())),
    }
}

fn parse_apt(tokens: &[Tok], pos: &mut usize) -> Result<FilterExpr, ZdsrError> {
    let mut field: Option<Field> = None;
    let mut modifiers: Vec<Modifier> = Vec::new();
    loop {
        match tokens.get(*pos) {
            Some(Tok::Word(w)) if w == "@attr" => {
                *pos += 1;
                let Some(Tok::Word(spec)) = tokens.get(*pos) else {
                    return Err(ZdsrError::Syntax("missing attribute spec".to_string()));
                };
                *pos += 1;
                let (ty, val) = spec
                    .split_once('=')
                    .ok_or_else(|| ZdsrError::Syntax(format!("bad attribute {spec:?}")))?;
                let ty: u32 = ty
                    .parse()
                    .map_err(|_| ZdsrError::Syntax("bad attribute type".to_string()))?;
                let val: u32 = val
                    .parse()
                    .map_err(|_| ZdsrError::Syntax("bad attribute value".to_string()))?;
                match ty {
                    1 => {
                        field = Some(use_attr_to_field(val).ok_or_else(|| {
                            ZdsrError::Syntax(format!("unknown use attribute {val}"))
                        })?)
                    }
                    2 => {
                        // Relation 3 (=) is the default; only record
                        // non-default relations as modifiers.
                        if val != 3 {
                            modifiers.push(relation_to_modifier(val).ok_or_else(|| {
                                ZdsrError::Syntax(format!("unknown relation {val}"))
                            })?);
                        } else {
                            modifiers.push(Modifier::Cmp(starts_proto::attrs::CmpOp::Eq));
                        }
                    }
                    5 => {
                        modifiers.push(truncation_to_modifier(val).ok_or_else(|| {
                            ZdsrError::Syntax(format!("unknown truncation {val}"))
                        })?)
                    }
                    _ => {
                        return Err(ZdsrError::Syntax(format!(
                            "unsupported attribute type {ty}"
                        )))
                    }
                }
            }
            Some(Tok::Quoted(s)) => {
                let term = QTerm {
                    field: match field {
                        Some(Field::Any) | None => None,
                        other => other,
                    },
                    modifiers,
                    value: LString::plain(s.clone()),
                };
                *pos += 1;
                return Ok(FilterExpr::Term(term));
            }
            Some(Tok::Word(w)) if !w.starts_with('@') => {
                let term = QTerm {
                    field: match field {
                        Some(Field::Any) | None => None,
                        other => other,
                    },
                    modifiers,
                    value: LString::plain(w.clone()),
                };
                *pos += 1;
                return Ok(FilterExpr::Term(term));
            }
            other => {
                return Err(ZdsrError::Syntax(format!(
                    "expected term or @attr, found {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_proto::query::{parse_filter, print_filter};

    #[test]
    fn example1_filter_to_pqf() {
        let f = parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap();
        let pqf = to_pqf(&f).unwrap();
        assert_eq!(
            pqf,
            r#"@and @attr 1=1003 "Ullman" @attr 1=4 @attr 2=101 "databases""#
        );
    }

    #[test]
    fn pqf_round_trip() {
        for src in [
            r#"(author "Ullman")"#,
            r#"((author "Ullman") and (title stem "databases"))"#,
            r#"((title "a") or ((author "b") and-not (body-of-text "c")))"#,
            r#"("x" prox[3,T] "y")"#,
            r#"(date-last-modified > "1996-08-01")"#,
            r#"(title right-truncation "data")"#,
        ] {
            let f = parse_filter(src).unwrap();
            let pqf = to_pqf(&f).unwrap();
            let back = from_pqf(&pqf).unwrap_or_else(|e| panic!("{pqf}: {e}"));
            assert_eq!(
                print_filter(&back),
                print_filter(&f),
                "round trip through {pqf:?}"
            );
        }
    }

    #[test]
    fn prox_parameters() {
        let f = parse_filter(r#"("x" prox[3,T] "y")"#).unwrap();
        let pqf = to_pqf(&f).unwrap();
        // distance = words-between + 1 per YAZ convention.
        assert!(pqf.starts_with("@prox 0 4 1 2 k 2 "), "{pqf}");
        let back = from_pqf(&pqf).unwrap();
        let FilterExpr::Prox(_, spec, _) = back else {
            panic!()
        };
        assert_eq!(spec.distance, 3);
        assert!(spec.ordered);
    }

    #[test]
    fn unmappable_constructs_error() {
        let f = parse_filter(r#"(document-text "whole doc here")"#).unwrap();
        assert!(matches!(to_pqf(&f), Err(ZdsrError::UnmappableField(_))));
        let f = parse_filter(r#"(title case-sensitive "Unix")"#).unwrap();
        assert!(matches!(to_pqf(&f), Err(ZdsrError::UnmappableModifier(_))));
        let f = parse_filter(r#"(title [es "datos"])"#).unwrap();
        assert_eq!(to_pqf(&f), Err(ZdsrError::UnsupportedLString));
    }

    #[test]
    fn any_field_maps_to_1016() {
        let f = parse_filter(r#""databases""#).unwrap();
        let pqf = to_pqf(&f).unwrap();
        assert_eq!(pqf, r#"@attr 1=1016 "databases""#);
        let back = from_pqf(&pqf).unwrap();
        let FilterExpr::Term(t) = back else { panic!() };
        assert_eq!(t.field, None); // Any is the default; stays implicit
    }

    #[test]
    fn bareword_terms_accepted() {
        let f = from_pqf("@and @attr 1=4 databases @attr 1=1003 ullman").unwrap();
        assert_eq!(f.terms().len(), 2);
        assert_eq!(f.terms()[0].value.text, "databases");
    }

    #[test]
    fn pqf_syntax_errors() {
        assert!(from_pqf("").is_err());
        assert!(from_pqf("@and @attr 1=4 \"a\"").is_err()); // missing operand
        assert!(from_pqf("@attr 1=4").is_err()); // no term
        assert!(from_pqf("@attr nonsense \"a\"").is_err());
        assert!(from_pqf("@attr 1=99999 \"a\"").is_err());
        assert!(from_pqf("@prox 0 1 \"a\" \"b\"").is_err());
        assert!(from_pqf("\"a\" trailing").is_err());
        assert!(from_pqf("\"unterminated").is_err());
    }

    #[test]
    fn hostile_rpn_nesting_rejected() {
        let mut q = "@and ".repeat(100_000);
        q.push_str("\"a\" ");
        q.push_str(&"\"b\" ".repeat(100_000));
        let err = from_pqf(&q).unwrap_err();
        assert!(matches!(err, ZdsrError::Syntax(_)));
    }

    #[test]
    fn escaped_quotes_in_terms() {
        let f = parse_filter(r#"(title "say \"hi\"")"#).unwrap();
        let pqf = to_pqf(&f).unwrap();
        let back = from_pqf(&pqf).unwrap();
        assert_eq!(back.terms()[0].value.text, r#"say "hi""#);
    }
}
