#![warn(missing_docs)]

//! `starts-net` — a sessionless, stateless transport simulation.
//!
//! §4: "all communication with the sources is sessionless in our
//! protocol, and the sources are stateless." What transport to use
//! "generated some heated debate during the STARTS workshop", and the
//! protocol deliberately fixes only the information exchanged, not the
//! carrier. This crate therefore provides an in-process carrier with the
//! observable properties that matter for the metasearch experiments:
//!
//! * every request is a self-contained byte payload → byte response
//!   (statelessness is enforced *by construction*: there is no
//!   connection or session type to hold);
//! * each endpoint URL has a **link profile** — simulated latency and a
//!   per-query monetary cost — modelling §3.3's "some of these sources
//!   might charge for their use; some of the sources might have large
//!   response times";
//! * global and per-URL accounting of requests, simulated latency and
//!   cost, which the source-selection experiments (X6) read out;
//! * a `starts-obs` [`sim::SimNet::registry`] per network: every
//!   request records counters (`net.requests`, `net.bytes_*`),
//!   latency/size histograms, and per-link cost accrual, and every
//!   typed client operation opens a span.
//!
//! [`client::StartsClient`] layers typed STARTS operations (fetch
//! metadata, fetch summary, query) over the byte transport, and
//! [`host::wire_source`]/[`host::wire_resource`] publish sources built
//! with `starts-source` at their advertised URLs.

pub mod client;
pub mod host;
pub mod sim;

pub use client::StartsClient;
pub use sim::{CancelToken, Exchange, LinkProfile, NetError, NetStats, Response, SimNet};
