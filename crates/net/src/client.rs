//! A typed STARTS client over the byte transport.

use std::fmt;

use starts_proto::summary::ContentSummary;
use starts_proto::{ProtoError, Query, QueryResults, Resource, SourceMetadata};

use crate::host::decode_sample;
use crate::sim::{CancelToken, Exchange, NetError, SimNet};

/// Client-side errors: transport or protocol decoding.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Net(NetError),
    /// The response did not decode as the expected STARTS object.
    Proto(ProtoError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Net(e) => write!(f, "transport: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl ClientError {
    /// Whether this error is a mid-flight cancellation (a hedge won the
    /// race, or the caller's deadline expired) rather than a real
    /// transport or protocol failure. Cancellations should not count
    /// against a source's health.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ClientError::Net(NetError::Cancelled(_)))
    }
}

impl std::error::Error for ClientError {}

impl From<NetError> for ClientError {
    fn from(e: NetError) -> Self {
        ClientError::Net(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<starts_soif::ParseError> for ClientError {
    fn from(e: starts_soif::ParseError) -> Self {
        ClientError::Proto(ProtoError::Soif(e))
    }
}

thread_local! {
    /// Request-encoding scratch, reused across exchanges so a query
    /// burst allocates one buffer per thread, not one per query. Taken
    /// out of the cell for the duration of an exchange (and put back
    /// afterwards), so re-entrant use degrades to a fresh allocation,
    /// never a panic. Thread-local rather than a client field so the
    /// client stays `Sync` for the metasearcher's dispatch fan-out.
    static ENCODE_BUF: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// A metasearcher's view of the network: typed STARTS operations.
pub struct StartsClient<'a> {
    net: &'a SimNet,
}

impl<'a> StartsClient<'a> {
    /// Wrap a network.
    pub fn new(net: &'a SimNet) -> Self {
        StartsClient { net }
    }

    /// The underlying network (for accounting).
    pub fn net(&self) -> &SimNet {
        self.net
    }

    /// The network's metric registry — the same registry host-side
    /// handlers record into, so client-side instrumentation (e.g. the
    /// metasearcher's catalog cache) lands in one scoreboard.
    pub fn registry(&self) -> &starts_obs::Registry {
        self.net.registry()
    }

    /// Fetch a resource descriptor (§4.3.3): the periodic
    /// "extract the list of sources from the resources" task.
    pub fn fetch_resource(&self, url: &str) -> Result<Resource, ClientError> {
        let _span = self.op_span("client.fetch_resource", url);
        let resp = self.net.request(url, b"")?;
        let obj = starts_soif::parse_one(&resp.bytes, starts_soif::ParseMode::Strict)?;
        Ok(Resource::from_soif(&obj)?)
    }

    /// Fetch a source's metadata attributes (§4.3.1).
    pub fn fetch_metadata(&self, url: &str) -> Result<SourceMetadata, ClientError> {
        let _span = self.op_span("client.fetch_metadata", url);
        let resp = self.net.request(url, b"")?;
        let obj = starts_soif::parse_one(&resp.bytes, starts_soif::ParseMode::Strict)?;
        Ok(SourceMetadata::from_soif(&obj)?)
    }

    /// Fetch a source's content summary (§4.3.2).
    pub fn fetch_summary(&self, url: &str) -> Result<ContentSummary, ClientError> {
        let _span = self.op_span("client.fetch_summary", url);
        let resp = self.net.request(url, b"")?;
        let obj = starts_soif::parse_one(&resp.bytes, starts_soif::ParseMode::Strict)?;
        Ok(ContentSummary::from_soif(&obj)?)
    }

    /// Fetch a source's sample-database results (§4.2).
    pub fn fetch_sample_results(
        &self,
        url: &str,
    ) -> Result<Vec<(Query, QueryResults)>, ClientError> {
        let _span = self.op_span("client.fetch_sample_results", url);
        let resp = self.net.request(url, b"")?;
        Ok(decode_sample(&resp.bytes)?)
    }

    /// Fetch a host's `<base>/stats` admin endpoint: an `@SStats`
    /// snapshot of the host-side registry, decoded losslessly.
    pub fn fetch_stats(&self, url: &str) -> Result<starts_obs::Snapshot, ClientError> {
        let _span = self.op_span("client.fetch_stats", url);
        let resp = self.net.request(url, b"")?;
        let obj = starts_soif::parse_one(&resp.bytes, starts_soif::ParseMode::Strict)?;
        starts_obs::export::snapshot_from_soif(&obj)
            .map_err(|e| ClientError::Proto(ProtoError::invalid("SStats", e)))
    }

    /// Fetch a host's `<base>/alerts` admin endpoint and decode the
    /// `@SAlerts` object: current alert states, the latest SLO
    /// evaluation, and recent transition events.
    pub fn fetch_alerts(&self, url: &str) -> Result<starts_obs::AlertsSnapshot, ClientError> {
        let _span = self.op_span("client.fetch_alerts", url);
        let resp = self.net.request(url, b"")?;
        let obj = starts_soif::parse_one(&resp.bytes, starts_soif::ParseMode::Strict)?;
        starts_obs::AlertsSnapshot::from_soif(&obj)
            .map_err(|e| ClientError::Proto(ProtoError::invalid("SAlerts", e)))
    }

    /// Submit a query to a source's query URL.
    pub fn query(&self, url: &str, query: &Query) -> Result<QueryResults, ClientError> {
        self.query_with_exchange(url, query).map(|(r, _)| r)
    }

    /// Submit a query and keep the exchange accounting (simulated
    /// latency, cost, bytes) alongside the decoded results.
    pub fn query_with_exchange(
        &self,
        url: &str,
        query: &Query,
    ) -> Result<(QueryResults, Exchange), ClientError> {
        self.query_cancellable(url, query, None)
    }

    /// Submit a query that a [`CancelToken`] can abort mid-flight: the
    /// hedged-dispatch primitive. Cancellation surfaces as
    /// `ClientError::Net(NetError::Cancelled)` — see
    /// [`ClientError::is_cancelled`].
    pub fn query_cancellable(
        &self,
        url: &str,
        query: &Query,
        cancel: Option<&CancelToken>,
    ) -> Result<(QueryResults, Exchange), ClientError> {
        let _span = self.op_span("client.query", url);
        let mut req = ENCODE_BUF.take();
        req.clear();
        starts_soif::write_object_into(&query.to_soif(), &mut req);
        let result = self.net.request_cancellable(url, &req, cancel);
        let req_len = req.len();
        ENCODE_BUF.replace(req);
        let resp = result?;
        let exchange = Exchange::of(&resp, req_len);
        Ok((QueryResults::from_soif_stream(&resp.bytes)?, exchange))
    }

    fn op_span(&self, op: &str, url: &str) -> starts_obs::Span<'_> {
        self.net
            .registry()
            .span_with(op, vec![("url", url.to_string())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{wire_resource, wire_source};
    use crate::sim::LinkProfile;
    use starts_index::Document;
    use starts_proto::query::parse_ranking;
    use starts_source::{ResourceHost, Source, SourceConfig};

    fn wire_demo_net() -> SimNet {
        let net = SimNet::new();
        let source = Source::build(
            SourceConfig::new("Demo"),
            &[Document::new()
                .field("title", "Metasearch Notes")
                .field("body-of-text", "ranking and merging databases results")
                .field("linkage", "http://x/notes")],
        );
        wire_source(&net, source, LinkProfile::default());
        let r1 = Source::build(SourceConfig::new("M1"), &[]);
        let r2 = Source::build(SourceConfig::new("M2"), &[]);
        wire_resource(
            &net,
            ResourceHost::new(vec![r1, r2]),
            "starts://res",
            LinkProfile::default(),
        );
        net
    }

    #[test]
    fn typed_round_trips() {
        let net = wire_demo_net();
        let client = StartsClient::new(&net);
        let meta = client.fetch_metadata("starts://demo/metadata").unwrap();
        assert_eq!(meta.source_id, "Demo");
        let summary = client
            .fetch_summary("starts://demo/content-summary")
            .unwrap();
        assert_eq!(summary.num_docs, 1);
        let samples = client
            .fetch_sample_results("starts://demo/sample-results")
            .unwrap();
        assert_eq!(samples.len(), 4);
        let resource = client.fetch_resource("starts://res").unwrap();
        assert_eq!(resource.source_ids().count(), 2);
        let q = Query {
            ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
            ..Query::default()
        };
        let results = client.query("starts://demo/query", &q).unwrap();
        assert_eq!(results.documents.len(), 1);
    }

    #[test]
    fn fetch_stats_round_trips_the_host_registry() {
        let net = wire_demo_net();
        let client = StartsClient::new(&net);
        let q = Query {
            ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
            ..Query::default()
        };
        client.query("starts://demo/query", &q).unwrap();
        let snap = client.fetch_stats("starts://demo/stats").unwrap();
        assert_eq!(snap.counter("source.queries", &[("source", "Demo")]), 1);
    }

    #[test]
    fn fetch_alerts_decodes_the_monitor_state() {
        let net = wire_demo_net();
        let client = StartsClient::new(&net);
        let alerts = client.fetch_alerts("starts://demo/alerts").unwrap();
        assert!(alerts.firing().is_empty());
        assert!(alerts.events.is_empty());
    }

    #[test]
    fn unknown_url_is_a_net_error() {
        let net = SimNet::new();
        let client = StartsClient::new(&net);
        assert!(matches!(
            client.fetch_metadata("starts://ghost/metadata"),
            Err(ClientError::Net(NetError::UnknownUrl(_)))
        ));
    }

    #[test]
    fn accounting_visible_through_client() {
        let net = wire_demo_net();
        let client = StartsClient::new(&net);
        client.fetch_metadata("starts://demo/metadata").unwrap();
        client
            .fetch_summary("starts://demo/content-summary")
            .unwrap();
        assert_eq!(client.net().stats().requests, 2);
    }
}
