//! Publishing sources and resources on the simulated network.
//!
//! Each source serves the four URLs its metadata advertises:
//!
//! * `<base>/query` — POST an `@SQuery`, receive an `@SQResults` stream;
//! * `<base>/metadata` — receive the `@SMetaAttributes` object;
//! * `<base>/content-summary` — receive the `@SContentSummary` object;
//! * `<base>/sample-results` — receive the sample queries and their
//!   results, as alternating `@SQuery` / `@SQResults`-stream sections;
//! * `<base>/stats` — an admin endpoint returning the host's metric
//!   registry as an `@SStats` object (a §4.3-style extension: stats
//!   served in the protocol's own object model);
//! * `<base>/alerts` — an admin endpoint returning the network
//!   monitor's SLO and alert state as an `@SAlerts` object.
//!
//! A resource additionally serves `<resource-url>` → `@SResource`.
//! Queries submitted to a member's `/query` URL honour the query's
//! `AdditionalSources` by fanning out inside the resource (Figure 1).

use std::sync::Arc;

use starts_proto::{Query, QueryResults};
use starts_source::{ResourceHost, Source};

use crate::sim::{LinkProfile, SimNet};

/// Serve an error-free empty result for malformed queries — STARTS has
/// no error channel (§4), so a source's only options are "execute what
/// you can" or "return nothing".
fn empty_results(source_id: &str) -> Vec<u8> {
    QueryResults {
        sources: vec![source_id.to_string()],
        ..QueryResults::default()
    }
    .to_soif_stream()
}

fn parse_query(request: &[u8]) -> Option<Query> {
    let obj = starts_soif::parse_one(request, starts_soif::ParseMode::Lenient).ok()?;
    Query::from_soif(&obj).ok()
}

/// Publish one stand-alone source. Returns the query URL.
pub fn wire_source(net: &SimNet, source: Source, profile: LinkProfile) -> String {
    let base = source.config().base_url.clone();
    let query_url = source.config().query_url();
    let source = Arc::new(source);

    let metadata_bytes = starts_soif::write_object(&source.metadata().to_soif());
    net.register(
        format!("{base}/metadata"),
        profile,
        Arc::new(move |_: &[u8]| metadata_bytes.clone()),
    );

    let summary_bytes = starts_soif::write_object(&source.content_summary().to_soif());
    net.register(
        format!("{base}/content-summary"),
        profile,
        Arc::new(move |_: &[u8]| summary_bytes.clone()),
    );

    let sample_bytes = encode_sample(&source.sample_results());
    net.register(
        format!("{base}/sample-results"),
        profile,
        Arc::new(move |_: &[u8]| sample_bytes.clone()),
    );

    wire_stats(net, &base, profile);
    wire_alerts(net, &base, profile);

    {
        let source = Arc::clone(&source);
        let obs = Arc::clone(net.registry());
        net.register(
            query_url.clone(),
            profile,
            Arc::new(move |request: &[u8]| match parse_query(request) {
                Some(q) => source.execute_traced(&q, Some(&obs)).to_soif_stream(),
                None => empty_results(source.id()),
            }),
        );
    }
    query_url
}

/// Publish a whole resource: every member source's endpoints (with
/// resource-level fan-out on the query endpoints) plus the resource
/// descriptor at `resource_url`.
pub fn wire_resource(
    net: &SimNet,
    host: ResourceHost,
    resource_url: impl Into<String>,
    profile: LinkProfile,
) {
    let descriptor_bytes = starts_soif::write_object(&host.descriptor().to_soif());
    net.register(
        resource_url.into(),
        profile,
        Arc::new(move |_: &[u8]| descriptor_bytes.clone()),
    );
    let host = Arc::new(host);
    // Per-member static endpoints, then fan-out-capable query endpoints.
    for source in host.sources() {
        let base = source.config().base_url.clone();
        let metadata_bytes = starts_soif::write_object(&source.metadata().to_soif());
        net.register(
            format!("{base}/metadata"),
            profile,
            Arc::new(move |_: &[u8]| metadata_bytes.clone()),
        );
        let summary_bytes = starts_soif::write_object(&source.content_summary().to_soif());
        net.register(
            format!("{base}/content-summary"),
            profile,
            Arc::new(move |_: &[u8]| summary_bytes.clone()),
        );
        let sample_bytes = encode_sample(&source.sample_results());
        net.register(
            format!("{base}/sample-results"),
            profile,
            Arc::new(move |_: &[u8]| sample_bytes.clone()),
        );
        wire_stats(net, &base, profile);
        wire_alerts(net, &base, profile);
    }
    for source in host.sources() {
        let id = source.id().to_string();
        let url = source.config().query_url();
        let host = Arc::clone(&host);
        let obs = Arc::clone(net.registry());
        net.register(
            url,
            profile,
            Arc::new(move |request: &[u8]| match parse_query(request) {
                Some(q) => host
                    .execute_at_traced(&id, &q, Some(&obs))
                    .map(|r| r.to_soif_stream())
                    .unwrap_or_else(|| empty_results(&id)),
                None => empty_results(&id),
            }),
        );
    }
}

/// Register `<base>/stats`: a point-in-time `@SStats` snapshot of the
/// host's registry, taken at request time so repeated polls see fresh
/// numbers. Admin traffic rides the same link profile as the data
/// endpoints.
fn wire_stats(net: &SimNet, base: &str, profile: LinkProfile) {
    let obs = Arc::clone(net.registry());
    net.register(
        format!("{base}/stats"),
        profile,
        Arc::new(move |_: &[u8]| {
            starts_soif::write_object(&starts_obs::export::to_soif(&obs.snapshot()))
        }),
    );
}

/// Register `<base>/alerts`: the network monitor's current SLO and
/// alert state as an `@SAlerts` object, snapshotted at request time.
/// The monitor is captured at wiring time — install a custom one with
/// `SimNet::set_monitor` *before* wiring hosts.
fn wire_alerts(net: &SimNet, base: &str, profile: LinkProfile) {
    let monitor = net.monitor();
    net.register(
        format!("{base}/alerts"),
        profile,
        Arc::new(move |_: &[u8]| starts_soif::write_object(&monitor.snapshot_alerts().to_soif())),
    );
}

/// Encode sample results: alternating `@SQuery` and result streams.
/// Everything is appended to one output buffer — no per-object
/// intermediate allocations.
pub fn encode_sample(samples: &[(Query, QueryResults)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (q, r) in samples {
        starts_soif::write_object_into(&q.to_soif(), &mut out);
        out.push(b'\n');
        r.to_soif_stream_into(&mut out);
        out.push(b'\n');
    }
    out
}

/// Decode a sample-results payload.
pub fn decode_sample(bytes: &[u8]) -> Result<Vec<(Query, QueryResults)>, starts_proto::ProtoError> {
    let objects = starts_soif::parse(bytes, starts_soif::ParseMode::Strict)?;
    let mut out: Vec<(Query, QueryResults)> = Vec::new();
    for obj in objects {
        match obj.template.as_str() {
            "SQuery" => out.push((Query::from_soif(&obj)?, QueryResults::default())),
            "SQResults" => {
                if let Some(last) = out.last_mut() {
                    last.1 = QueryResults::from_header(&obj)?;
                }
            }
            "SQRDocument" => {
                if let Some(last) = out.last_mut() {
                    last.1
                        .documents
                        .push(starts_proto::ResultDocument::from_soif(&obj)?);
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_index::Document;
    use starts_proto::query::parse_ranking;
    use starts_source::SourceConfig;

    fn docs() -> Vec<Document> {
        vec![Document::new()
            .field("title", "Networked Retrieval")
            .field("body-of-text", "metasearch over databases")
            .field("linkage", "http://x/1")]
    }

    #[test]
    fn wired_source_serves_all_endpoints() {
        let net = SimNet::new();
        let source = Source::build(SourceConfig::new("S"), &docs());
        let query_url = wire_source(&net, source, LinkProfile::default());
        assert_eq!(query_url, "starts://s/query");
        for path in [
            "metadata",
            "content-summary",
            "sample-results",
            "query",
            "stats",
            "alerts",
        ] {
            assert!(net.knows(&format!("starts://s/{path}")), "{path} missing");
        }
        // Metadata parses.
        let r = net.request("starts://s/metadata", b"").unwrap();
        let obj = starts_soif::parse_one(&r.bytes, starts_soif::ParseMode::Strict).unwrap();
        let m = starts_proto::SourceMetadata::from_soif(&obj).unwrap();
        assert_eq!(m.source_id, "S");
    }

    #[test]
    fn query_over_the_wire() {
        let net = SimNet::new();
        let source = Source::build(SourceConfig::new("S"), &docs());
        let url = wire_source(&net, source, LinkProfile::default());
        let q = Query {
            ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
            ..Query::default()
        };
        let req = starts_soif::write_object(&q.to_soif());
        let resp = net.request(&url, &req).unwrap();
        let results = QueryResults::from_soif_stream(&resp.bytes).unwrap();
        assert_eq!(results.documents.len(), 1);
        assert_eq!(results.documents[0].linkage(), Some("http://x/1"));
    }

    #[test]
    fn stats_endpoint_serves_parseable_sstats() {
        let net = SimNet::new();
        let source = Source::build(SourceConfig::new("S"), &docs());
        let url = wire_source(&net, source, LinkProfile::default());
        // Generate some host-side accounting first.
        let q = Query {
            ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
            ..Query::default()
        };
        net.request(&url, &starts_soif::write_object(&q.to_soif()))
            .unwrap();
        let resp = net.request("starts://s/stats", b"").unwrap();
        let obj = starts_soif::parse_one(&resp.bytes, starts_soif::ParseMode::Strict).unwrap();
        assert_eq!(obj.template, starts_obs::export::SSTATS_TEMPLATE);
        let snap = starts_obs::export::snapshot_from_soif(&obj).unwrap();
        assert_eq!(snap.counter("source.queries", &[("source", "S")]), 1);
    }

    #[test]
    fn alerts_endpoint_serves_parseable_salerts() {
        let net = SimNet::new();
        let source = Source::build(SourceConfig::new("S"), &docs());
        wire_source(&net, source, LinkProfile::default());
        let resp = net.request("starts://s/alerts", b"").unwrap();
        let obj = starts_soif::parse_one(&resp.bytes, starts_soif::ParseMode::Strict).unwrap();
        assert_eq!(obj.template, starts_obs::monitor::SALERTS_TEMPLATE);
        let snap = starts_obs::AlertsSnapshot::from_soif(&obj).unwrap();
        // A freshly wired net has nothing firing.
        assert!(snap.firing().is_empty());
    }

    #[test]
    fn malformed_query_gets_empty_results_not_an_error() {
        let net = SimNet::new();
        let source = Source::build(SourceConfig::new("S"), &docs());
        let url = wire_source(&net, source, LinkProfile::default());
        let resp = net.request(&url, b"this is not soif").unwrap();
        let results = QueryResults::from_soif_stream(&resp.bytes).unwrap();
        assert!(results.documents.is_empty());
    }

    #[test]
    fn sample_round_trip() {
        let samples = starts_source::sample::sample_results(&SourceConfig::new("S"));
        let bytes = encode_sample(&samples);
        let back = decode_sample(&bytes).unwrap();
        assert_eq!(back.len(), samples.len());
        for ((q1, r1), (q2, r2)) in samples.iter().zip(&back) {
            assert_eq!(q1, q2);
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn wired_resource_fans_out() {
        let net = SimNet::new();
        let s1 = Source::build(
            SourceConfig::new("R1"),
            &[Document::new()
                .field("body-of-text", "databases one")
                .field("linkage", "http://x/a")],
        );
        let s2 = Source::build(
            SourceConfig::new("R2"),
            &[Document::new()
                .field("body-of-text", "databases two")
                .field("linkage", "http://x/b")],
        );
        wire_resource(
            &net,
            ResourceHost::new(vec![s1, s2]),
            "starts://dialog",
            LinkProfile::default(),
        );
        // The descriptor is served.
        let r = net.request("starts://dialog", b"").unwrap();
        let obj = starts_soif::parse_one(&r.bytes, starts_soif::ParseMode::Strict).unwrap();
        let desc = starts_proto::Resource::from_soif(&obj).unwrap();
        assert_eq!(desc.source_ids().count(), 2);
        // One query to R1 naming R2 reaches both members.
        let q = Query {
            ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
            additional_sources: vec!["R2".to_string()],
            ..Query::default()
        };
        let req = starts_soif::write_object(&q.to_soif());
        let resp = net.request("starts://r1/query", &req).unwrap();
        let results = QueryResults::from_soif_stream(&resp.bytes).unwrap();
        assert_eq!(results.documents.len(), 2);
        assert_eq!(results.sources.len(), 2);
    }
}
