//! The byte-level transport simulator.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use starts_obs::{Monitor, Registry};

/// A request handler bound to a URL. Handlers must be stateless with
/// respect to the transport: they see only the request bytes.
pub trait Endpoint: Send + Sync {
    /// Handle one self-contained request.
    fn handle(&self, request: &[u8]) -> Vec<u8>;
}

impl<F> Endpoint for F
where
    F: Fn(&[u8]) -> Vec<u8> + Send + Sync,
{
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// The link profile of an endpoint: §3.3's cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Simulated round-trip latency in milliseconds.
    pub latency_ms: u32,
    /// Monetary cost charged per query (0 for free sources).
    pub cost_per_query: f64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile {
            latency_ms: 50,
            cost_per_query: 0.0,
        }
    }
}

/// One completed exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Response payload.
    pub bytes: Vec<u8>,
    /// Simulated latency incurred.
    pub latency_ms: u32,
    /// Cost charged.
    pub cost: f64,
}

/// Per-exchange accounting, independent of the payload: what one
/// request cost in simulated time, money, and bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Exchange {
    /// Simulated latency incurred.
    pub latency_ms: u32,
    /// Cost charged.
    pub cost: f64,
    /// Request payload size.
    pub bytes_sent: u64,
    /// Response payload size.
    pub bytes_received: u64,
}

impl Exchange {
    /// Accounting for one response to a request of `request_bytes`.
    pub fn of(response: &Response, request_bytes: usize) -> Self {
        Exchange {
            latency_ms: response.latency_ms,
            cost: response.cost,
            bytes_sent: request_bytes as u64,
            bytes_received: response.bytes.len() as u64,
        }
    }
}

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No endpoint is registered at the URL.
    UnknownUrl(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownUrl(u) => write!(f, "no endpoint at {u:?}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Total requests served.
    pub requests: u64,
    /// Sum of simulated latencies (serialized view; parallel fan-out
    /// latency is the max per wave, which callers compute themselves).
    pub total_latency_ms: u64,
    /// Total cost charged.
    pub total_cost: f64,
    /// Total bytes sent in requests.
    pub bytes_sent: u64,
    /// Total bytes received in responses.
    pub bytes_received: u64,
}

struct Registered {
    profile: LinkProfile,
    endpoint: Arc<dyn Endpoint>,
}

/// The simulated network: a URL → endpoint table with accounting.
#[derive(Default)]
pub struct SimNet {
    endpoints: RwLock<HashMap<String, Registered>>,
    stats: RwLock<NetStats>,
    per_url: RwLock<HashMap<String, NetStats>>,
    obs: Arc<Registry>,
    monitor: RwLock<Arc<Monitor>>,
}

impl SimNet {
    /// An empty network with its own metric registry.
    pub fn new() -> Self {
        SimNet::default()
    }

    /// An empty network recording into a shared registry.
    pub fn with_registry(obs: Arc<Registry>) -> Self {
        SimNet {
            obs,
            ..SimNet::default()
        }
    }

    /// The network's metric registry. Everything wired onto this net
    /// (sources via `wire_source`, metasearchers) records here, so a
    /// test gets isolated accounting per `SimNet`.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The network's monitor: the time-series/alerting layer over this
    /// net's registry. Metasearchers tick it after each search; hosts
    /// serve its state on `<base>/alerts`.
    pub fn monitor(&self) -> Arc<Monitor> {
        Arc::clone(&self.monitor.read())
    }

    /// Replace the monitor (e.g. to inject a deterministic clock or
    /// custom SLOs). Call *before* wiring hosts — `<base>/alerts`
    /// endpoints capture the monitor at wiring time.
    pub fn set_monitor(&self, monitor: Arc<Monitor>) {
        *self.monitor.write() = monitor;
    }

    /// Register (or replace) an endpoint at a URL.
    pub fn register(
        &self,
        url: impl Into<String>,
        profile: LinkProfile,
        endpoint: Arc<dyn Endpoint>,
    ) {
        self.endpoints
            .write()
            .insert(url.into(), Registered { profile, endpoint });
    }

    /// Whether a URL is served.
    pub fn knows(&self, url: &str) -> bool {
        self.endpoints.read().contains_key(url)
    }

    /// Issue a sessionless request.
    pub fn request(&self, url: &str, body: &[u8]) -> Result<Response, NetError> {
        // Clone the handler out so long-running handlers do not hold the
        // table lock (requests may fan out from multiple threads).
        let (endpoint, profile) = {
            let table = self.endpoints.read();
            let Some(reg) = table.get(url) else {
                self.obs.counter_with("net.errors", &[("url", url)]).inc();
                return Err(NetError::UnknownUrl(url.to_string()));
            };
            (Arc::clone(&reg.endpoint), reg.profile)
        };
        let bytes = endpoint.handle(body);
        let response = Response {
            latency_ms: profile.latency_ms,
            cost: profile.cost_per_query,
            bytes,
        };
        let record = |s: &mut NetStats| {
            s.requests += 1;
            s.total_latency_ms += u64::from(response.latency_ms);
            s.total_cost += response.cost;
            s.bytes_sent += body.len() as u64;
            s.bytes_received += response.bytes.len() as u64;
        };
        record(&mut self.stats.write());
        record(self.per_url.write().entry(url.to_string()).or_default());
        let labels = [("url", url)];
        self.obs.counter_with("net.requests", &labels).inc();
        self.obs
            .counter_with("net.bytes_sent", &labels)
            .add(body.len() as u64);
        self.obs
            .counter_with("net.bytes_received", &labels)
            .add(response.bytes.len() as u64);
        self.obs
            .histogram_with("net.latency_ms", &labels)
            .observe(u64::from(response.latency_ms));
        self.obs
            .histogram_with("net.response_bytes", &labels)
            .observe(response.bytes.len() as u64);
        // §3.3 cost accrual per link: fractional, so a gauge.
        self.obs.gauge_with("net.cost", &labels).add(response.cost);
        Ok(response)
    }

    /// Global statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.stats.read().clone()
    }

    /// Statistics for one URL.
    pub fn url_stats(&self, url: &str) -> NetStats {
        self.per_url.read().get(url).cloned().unwrap_or_default()
    }

    /// Reset all accounting (between experiment runs).
    pub fn reset_stats(&self) {
        *self.stats.write() = NetStats::default();
        self.per_url.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo() -> Arc<dyn Endpoint> {
        Arc::new(|req: &[u8]| req.to_vec())
    }

    #[test]
    fn request_response_round_trip() {
        let net = SimNet::new();
        net.register("starts://s/query", LinkProfile::default(), echo());
        let r = net.request("starts://s/query", b"hello").unwrap();
        assert_eq!(r.bytes, b"hello");
        assert_eq!(r.latency_ms, 50);
    }

    #[test]
    fn unknown_url() {
        let net = SimNet::new();
        assert_eq!(
            net.request("starts://nope", b""),
            Err(NetError::UnknownUrl("starts://nope".to_string()))
        );
    }

    #[test]
    fn latency_and_cost_accounting() {
        let net = SimNet::new();
        net.register(
            "starts://cheap/query",
            LinkProfile {
                latency_ms: 10,
                cost_per_query: 0.0,
            },
            echo(),
        );
        net.register(
            "starts://dialog/query",
            LinkProfile {
                latency_ms: 300,
                cost_per_query: 2.5,
            },
            echo(),
        );
        net.request("starts://cheap/query", b"q1").unwrap();
        net.request("starts://dialog/query", b"q2").unwrap();
        net.request("starts://dialog/query", b"q3").unwrap();
        let s = net.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.total_latency_ms, 10 + 300 + 300);
        assert!((s.total_cost - 5.0).abs() < 1e-9);
        assert_eq!(s.bytes_sent, 6);
        let d = net.url_stats("starts://dialog/query");
        assert_eq!(d.requests, 2);
        assert!((d.total_cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_accounting() {
        let net = SimNet::new();
        net.register("u", LinkProfile::default(), echo());
        net.request("u", b"x").unwrap();
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
        assert_eq!(net.url_stats("u"), NetStats::default());
    }

    #[test]
    fn concurrent_requests() {
        let net = Arc::new(SimNet::new());
        net.register("u", LinkProfile::default(), echo());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let net = Arc::clone(&net);
                scope.spawn(move || {
                    for _ in 0..50 {
                        net.request("u", b"ping").unwrap();
                    }
                });
            }
        });
        assert_eq!(net.stats().requests, 400);
    }

    #[test]
    fn requests_feed_the_metric_registry() {
        let net = SimNet::new();
        net.register(
            "u",
            LinkProfile {
                latency_ms: 40,
                cost_per_query: 1.5,
            },
            echo(),
        );
        net.request("u", b"four").unwrap();
        net.request("u", b"four").unwrap();
        let _ = net.request("ghost", b"");
        let snap = net.registry().snapshot();
        assert_eq!(snap.counter("net.requests", &[("url", "u")]), 2);
        assert_eq!(snap.counter("net.bytes_sent", &[("url", "u")]), 8);
        assert_eq!(snap.counter("net.errors", &[("url", "ghost")]), 1);
        assert!((snap.gauge("net.cost", &[("url", "u")]) - 3.0).abs() < 1e-9);
        let lat = snap.histogram("net.latency_ms", &[("url", "u")]).unwrap();
        assert_eq!((lat.count, lat.min, lat.max), (2, 40, 40));
    }

    #[test]
    fn shared_registry_spans_two_nets() {
        let obs = Arc::new(starts_obs::Registry::new());
        let a = SimNet::with_registry(Arc::clone(&obs));
        let b = SimNet::with_registry(Arc::clone(&obs));
        a.register("u", LinkProfile::default(), echo());
        b.register("u", LinkProfile::default(), echo());
        a.request("u", b"x").unwrap();
        b.request("u", b"y").unwrap();
        assert_eq!(obs.snapshot().counter("net.requests", &[("url", "u")]), 2);
    }

    #[test]
    fn statelessness_by_construction() {
        // The only way to talk to an endpoint is a one-shot request; two
        // identical requests get identical answers.
        let net = SimNet::new();
        net.register("u", LinkProfile::default(), echo());
        let a = net.request("u", b"same").unwrap();
        let b = net.request("u", b"same").unwrap();
        assert_eq!(a, b);
    }
}
