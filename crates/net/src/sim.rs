//! The byte-level transport simulator.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use starts_obs::{Monitor, Registry};

/// A shared cancellation flag for one in-flight request (or a group of
/// them). Cloning shares the flag: a hedged dispatch hands the same
/// token family to primary and backup, and cancels the loser the moment
/// the winner lands.
///
/// Cancellation is cooperative. The transport checks the token while it
/// paces out the simulated round-trip (see [`SimNet::set_pacing`]); a
/// request cancelled mid-flight aborts with [`NetError::Cancelled`]
/// before the endpoint's handler runs. With pacing off (the default)
/// requests complete instantly, so only a token cancelled *before* the
/// call has any effect.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trip the flag: every request carrying a clone of this token
    /// aborts at its next cancellation check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A request handler bound to a URL. Handlers must be stateless with
/// respect to the transport: they see only the request bytes.
pub trait Endpoint: Send + Sync {
    /// Handle one self-contained request.
    fn handle(&self, request: &[u8]) -> Vec<u8>;
}

impl<F> Endpoint for F
where
    F: Fn(&[u8]) -> Vec<u8> + Send + Sync,
{
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// The link profile of an endpoint: §3.3's cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Simulated round-trip latency in milliseconds.
    pub latency_ms: u32,
    /// Monetary cost charged per query (0 for free sources).
    pub cost_per_query: f64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile {
            latency_ms: 50,
            cost_per_query: 0.0,
        }
    }
}

/// One completed exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Response payload.
    pub bytes: Vec<u8>,
    /// Simulated latency incurred.
    pub latency_ms: u32,
    /// Cost charged.
    pub cost: f64,
}

/// Per-exchange accounting, independent of the payload: what one
/// request cost in simulated time, money, and bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Exchange {
    /// Simulated latency incurred.
    pub latency_ms: u32,
    /// Cost charged.
    pub cost: f64,
    /// Request payload size.
    pub bytes_sent: u64,
    /// Response payload size.
    pub bytes_received: u64,
}

impl Exchange {
    /// Accounting for one response to a request of `request_bytes`.
    pub fn of(response: &Response, request_bytes: usize) -> Self {
        Exchange {
            latency_ms: response.latency_ms,
            cost: response.cost,
            bytes_sent: request_bytes as u64,
            bytes_received: response.bytes.len() as u64,
        }
    }
}

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No endpoint is registered at the URL.
    UnknownUrl(String),
    /// The request's [`CancelToken`] was tripped before a response
    /// landed (a hedge raced it and won, or the caller's deadline
    /// expired).
    Cancelled(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownUrl(u) => write!(f, "no endpoint at {u:?}"),
            NetError::Cancelled(u) => write!(f, "request to {u:?} cancelled"),
        }
    }
}

impl std::error::Error for NetError {}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Total requests served.
    pub requests: u64,
    /// Sum of simulated latencies (serialized view; parallel fan-out
    /// latency is the max per wave, which callers compute themselves).
    pub total_latency_ms: u64,
    /// Total cost charged.
    pub total_cost: f64,
    /// Total bytes sent in requests.
    pub bytes_sent: u64,
    /// Total bytes received in responses.
    pub bytes_received: u64,
}

struct Registered {
    profile: LinkProfile,
    endpoint: Arc<dyn Endpoint>,
}

/// The simulated network: a URL → endpoint table with accounting.
#[derive(Default)]
pub struct SimNet {
    endpoints: RwLock<HashMap<String, Registered>>,
    stats: RwLock<NetStats>,
    per_url: RwLock<HashMap<String, NetStats>>,
    obs: Arc<Registry>,
    monitor: RwLock<Arc<Monitor>>,
    /// Real-time pacing: microseconds of wall-clock sleep per simulated
    /// millisecond of link latency. 0 (the default) keeps every request
    /// instant, as the transport always behaved.
    pacing_us_per_ms: AtomicU64,
}

impl SimNet {
    /// An empty network with its own metric registry.
    pub fn new() -> Self {
        SimNet::default()
    }

    /// An empty network recording into a shared registry.
    pub fn with_registry(obs: Arc<Registry>) -> Self {
        SimNet {
            obs,
            ..SimNet::default()
        }
    }

    /// The network's metric registry. Everything wired onto this net
    /// (sources via `wire_source`, metasearchers) records here, so a
    /// test gets isolated accounting per `SimNet`.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The network's monitor: the time-series/alerting layer over this
    /// net's registry. Metasearchers tick it after each search; hosts
    /// serve its state on `<base>/alerts`.
    pub fn monitor(&self) -> Arc<Monitor> {
        Arc::clone(&self.monitor.read())
    }

    /// Replace the monitor (e.g. to inject a deterministic clock or
    /// custom SLOs). Call *before* wiring hosts — `<base>/alerts`
    /// endpoints capture the monitor at wiring time.
    pub fn set_monitor(&self, monitor: Arc<Monitor>) {
        *self.monitor.write() = monitor;
    }

    /// Register (or replace) an endpoint at a URL.
    pub fn register(
        &self,
        url: impl Into<String>,
        profile: LinkProfile,
        endpoint: Arc<dyn Endpoint>,
    ) {
        self.endpoints
            .write()
            .insert(url.into(), Registered { profile, endpoint });
    }

    /// Whether a URL is served.
    pub fn knows(&self, url: &str) -> bool {
        self.endpoints.read().contains_key(url)
    }

    /// Turn on real-time pacing: every request sleeps `us_per_ms`
    /// microseconds of wall-clock time per simulated millisecond of its
    /// link's latency before the endpoint handler runs, checking its
    /// [`CancelToken`] (if any) along the way. This is what makes hedged
    /// requests *race* in real time and cancellation actually abort
    /// work; 0 restores the instant transport.
    pub fn set_pacing(&self, us_per_ms: u64) {
        self.pacing_us_per_ms.store(us_per_ms, Ordering::SeqCst);
    }

    /// The current pacing factor (µs of wall clock per simulated ms).
    pub fn pacing(&self) -> u64 {
        self.pacing_us_per_ms.load(Ordering::SeqCst)
    }

    /// Issue a sessionless request.
    pub fn request(&self, url: &str, body: &[u8]) -> Result<Response, NetError> {
        self.request_cancellable(url, body, None)
    }

    /// Issue a sessionless request that a [`CancelToken`] can abort.
    ///
    /// With pacing on, the simulated round-trip is slept out in slices
    /// and the token is checked between slices: a cancellation lands as
    /// [`NetError::Cancelled`] *before* the endpoint does any work. With
    /// pacing off, only a token tripped before the call aborts it.
    pub fn request_cancellable(
        &self,
        url: &str,
        body: &[u8],
        cancel: Option<&CancelToken>,
    ) -> Result<Response, NetError> {
        // Clone the handler out so long-running handlers do not hold the
        // table lock (requests may fan out from multiple threads).
        let (endpoint, profile) = {
            let table = self.endpoints.read();
            let Some(reg) = table.get(url) else {
                self.obs.counter_with("net.errors", &[("url", url)]).inc();
                return Err(NetError::UnknownUrl(url.to_string()));
            };
            (Arc::clone(&reg.endpoint), reg.profile)
        };
        if self.pace_out(profile.latency_ms, cancel).is_err() {
            self.obs
                .counter_with("net.cancelled", &[("url", url)])
                .inc();
            return Err(NetError::Cancelled(url.to_string()));
        }
        let bytes = endpoint.handle(body);
        let response = Response {
            latency_ms: profile.latency_ms,
            cost: profile.cost_per_query,
            bytes,
        };
        let record = |s: &mut NetStats| {
            s.requests += 1;
            s.total_latency_ms += u64::from(response.latency_ms);
            s.total_cost += response.cost;
            s.bytes_sent += body.len() as u64;
            s.bytes_received += response.bytes.len() as u64;
        };
        record(&mut self.stats.write());
        record(self.per_url.write().entry(url.to_string()).or_default());
        let labels = [("url", url)];
        self.obs.counter_with("net.requests", &labels).inc();
        self.obs
            .counter_with("net.bytes_sent", &labels)
            .add(body.len() as u64);
        self.obs
            .counter_with("net.bytes_received", &labels)
            .add(response.bytes.len() as u64);
        self.obs
            .histogram_with("net.latency_ms", &labels)
            .observe(u64::from(response.latency_ms));
        self.obs
            .histogram_with("net.response_bytes", &labels)
            .observe(response.bytes.len() as u64);
        // §3.3 cost accrual per link: fractional, so a gauge.
        self.obs.gauge_with("net.cost", &labels).add(response.cost);
        Ok(response)
    }

    /// Sleep out a link's simulated latency under the current pacing
    /// factor, in bounded slices so a cancellation lands promptly.
    /// `Err(())` means the token tripped mid-flight.
    fn pace_out(&self, latency_ms: u32, cancel: Option<&CancelToken>) -> Result<(), ()> {
        let check = |c: Option<&CancelToken>| -> Result<(), ()> {
            match c {
                Some(c) if c.is_cancelled() => Err(()),
                _ => Ok(()),
            }
        };
        check(cancel)?;
        let us_per_ms = self.pacing_us_per_ms.load(Ordering::SeqCst);
        if us_per_ms == 0 {
            return Ok(());
        }
        let mut remaining_us = u64::from(latency_ms).saturating_mul(us_per_ms);
        // 200µs slices: fine enough that hedges and deadlines observe
        // cancellation within a fraction of any realistic link latency.
        const SLICE_US: u64 = 200;
        while remaining_us > 0 {
            let slice = remaining_us.min(SLICE_US);
            std::thread::sleep(Duration::from_micros(slice));
            remaining_us -= slice;
            check(cancel)?;
        }
        Ok(())
    }

    /// Global statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.stats.read().clone()
    }

    /// Statistics for one URL.
    pub fn url_stats(&self, url: &str) -> NetStats {
        self.per_url.read().get(url).cloned().unwrap_or_default()
    }

    /// Reset all accounting (between experiment runs).
    pub fn reset_stats(&self) {
        *self.stats.write() = NetStats::default();
        self.per_url.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo() -> Arc<dyn Endpoint> {
        Arc::new(|req: &[u8]| req.to_vec())
    }

    #[test]
    fn request_response_round_trip() {
        let net = SimNet::new();
        net.register("starts://s/query", LinkProfile::default(), echo());
        let r = net.request("starts://s/query", b"hello").unwrap();
        assert_eq!(r.bytes, b"hello");
        assert_eq!(r.latency_ms, 50);
    }

    #[test]
    fn unknown_url() {
        let net = SimNet::new();
        assert_eq!(
            net.request("starts://nope", b""),
            Err(NetError::UnknownUrl("starts://nope".to_string()))
        );
    }

    #[test]
    fn latency_and_cost_accounting() {
        let net = SimNet::new();
        net.register(
            "starts://cheap/query",
            LinkProfile {
                latency_ms: 10,
                cost_per_query: 0.0,
            },
            echo(),
        );
        net.register(
            "starts://dialog/query",
            LinkProfile {
                latency_ms: 300,
                cost_per_query: 2.5,
            },
            echo(),
        );
        net.request("starts://cheap/query", b"q1").unwrap();
        net.request("starts://dialog/query", b"q2").unwrap();
        net.request("starts://dialog/query", b"q3").unwrap();
        let s = net.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.total_latency_ms, 10 + 300 + 300);
        assert!((s.total_cost - 5.0).abs() < 1e-9);
        assert_eq!(s.bytes_sent, 6);
        let d = net.url_stats("starts://dialog/query");
        assert_eq!(d.requests, 2);
        assert!((d.total_cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_accounting() {
        let net = SimNet::new();
        net.register("u", LinkProfile::default(), echo());
        net.request("u", b"x").unwrap();
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
        assert_eq!(net.url_stats("u"), NetStats::default());
    }

    #[test]
    fn concurrent_requests() {
        let net = Arc::new(SimNet::new());
        net.register("u", LinkProfile::default(), echo());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let net = Arc::clone(&net);
                scope.spawn(move || {
                    for _ in 0..50 {
                        net.request("u", b"ping").unwrap();
                    }
                });
            }
        });
        assert_eq!(net.stats().requests, 400);
    }

    #[test]
    fn requests_feed_the_metric_registry() {
        let net = SimNet::new();
        net.register(
            "u",
            LinkProfile {
                latency_ms: 40,
                cost_per_query: 1.5,
            },
            echo(),
        );
        net.request("u", b"four").unwrap();
        net.request("u", b"four").unwrap();
        let _ = net.request("ghost", b"");
        let snap = net.registry().snapshot();
        assert_eq!(snap.counter("net.requests", &[("url", "u")]), 2);
        assert_eq!(snap.counter("net.bytes_sent", &[("url", "u")]), 8);
        assert_eq!(snap.counter("net.errors", &[("url", "ghost")]), 1);
        assert!((snap.gauge("net.cost", &[("url", "u")]) - 3.0).abs() < 1e-9);
        let lat = snap.histogram("net.latency_ms", &[("url", "u")]).unwrap();
        assert_eq!((lat.count, lat.min, lat.max), (2, 40, 40));
    }

    #[test]
    fn shared_registry_spans_two_nets() {
        let obs = Arc::new(starts_obs::Registry::new());
        let a = SimNet::with_registry(Arc::clone(&obs));
        let b = SimNet::with_registry(Arc::clone(&obs));
        a.register("u", LinkProfile::default(), echo());
        b.register("u", LinkProfile::default(), echo());
        a.request("u", b"x").unwrap();
        b.request("u", b"y").unwrap();
        assert_eq!(obs.snapshot().counter("net.requests", &[("url", "u")]), 2);
    }

    #[test]
    fn pre_cancelled_token_aborts_without_handler_work() {
        let net = SimNet::new();
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let h = Arc::clone(&hits);
        net.register(
            "u",
            LinkProfile::default(),
            Arc::new(move |req: &[u8]| {
                h.fetch_add(1, Ordering::SeqCst);
                req.to_vec()
            }),
        );
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            net.request_cancellable("u", b"x", Some(&token)),
            Err(NetError::Cancelled("u".to_string()))
        );
        assert_eq!(hits.load(Ordering::SeqCst), 0, "handler must not run");
        assert_eq!(
            net.registry()
                .snapshot()
                .counter("net.cancelled", &[("url", "u")]),
            1
        );
        // An untripped token passes through.
        let ok = net.request_cancellable("u", b"x", Some(&CancelToken::new()));
        assert!(ok.is_ok());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pacing_makes_cancellation_abort_mid_flight() {
        let net = Arc::new(SimNet::new());
        net.register(
            "slow",
            LinkProfile {
                latency_ms: 10_000, // 10s simulated…
                cost_per_query: 0.0,
            },
            echo(),
        );
        net.set_pacing(1_000); // …which is 10s of wall clock too
        assert_eq!(net.pacing(), 1_000);
        let token = CancelToken::new();
        let cancel_from_outside = token.clone();
        let start = std::time::Instant::now();
        let result = std::thread::scope(|scope| {
            let net = Arc::clone(&net);
            let h = scope.spawn(move || net.request_cancellable("slow", b"x", Some(&token)));
            std::thread::sleep(Duration::from_millis(20));
            cancel_from_outside.cancel();
            h.join().unwrap()
        });
        assert_eq!(result, Err(NetError::Cancelled("slow".to_string())));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cancellation must cut the paced sleep short"
        );
    }

    #[test]
    fn statelessness_by_construction() {
        // The only way to talk to an endpoint is a one-shot request; two
        // identical requests get identical answers.
        let net = SimNet::new();
        net.register("u", LinkProfile::default(), echo());
        let a = net.request("u", b"same").unwrap();
        let b = net.request("u", b"same").unwrap();
        assert_eq!(a, b);
    }
}
