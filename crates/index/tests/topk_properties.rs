//! Property-based tests for the top-k fast path: for random corpora,
//! random ranking expressions (all fuzzy operators, weighted leaves)
//! and every ranking algorithm, the bounded heap pipeline must return
//! exactly the first `k` results of the naive full-sort evaluator —
//! including doc-id tie-breaks.

use proptest::prelude::*;
use starts_index::{BoolNode, Document, Engine, EngineConfig, RankNode, TermSpec};

/// A tiny closed vocabulary so queries actually hit documents — and
/// small enough that identical scores (hence tie-breaks) are common.
const VOCAB: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

fn arb_doc() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..VOCAB.len(), 1..25)
}

fn arb_corpus() -> impl Strategy<Value = Vec<Document>> {
    proptest::collection::vec(arb_doc(), 1..20).prop_map(|docs| {
        docs.into_iter()
            .map(|words| {
                let body: Vec<&str> = words.iter().map(|&w| VOCAB[w]).collect();
                Document::new().field("body-of-text", body.join(" "))
            })
            .collect()
    })
}

/// A weighted term leaf (weights quantized so equal weights — and so
/// score ties — actually occur).
fn arb_leaf() -> impl Strategy<Value = RankNode> {
    (0..VOCAB.len(), 1u32..=4)
        .prop_map(|(w, q)| RankNode::weighted(TermSpec::any(VOCAB[w]), f64::from(q) * 0.25))
}

/// A ranking expression using every operator the engine scores.
fn arb_rank_expr() -> impl Strategy<Value = RankNode> {
    arb_leaf().prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::List),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::Or),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RankNode::AndNot(Box::new(a), Box::new(b))),
            (inner.clone(), inner, 0u32..6, any::<bool>()).prop_map(|(l, r, distance, ordered)| {
                RankNode::Prox {
                    left: Box::new(l),
                    right: Box::new(r),
                    distance,
                    ordered,
                }
            }),
        ]
    })
}

fn arb_ranking_id() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("Acme-1"),
        Just("Vendor-K"),
        Just("Okapi-1"),
        Just("Plain-1"),
    ]
}

fn engine_of(docs: &[Document], ranking_id: &str, fuzzy: bool) -> Engine {
    Engine::build(
        docs,
        EngineConfig {
            ranking_id: ranking_id.to_string(),
            fuzzy_ranking_ops: fuzzy,
            ..EngineConfig::default()
        },
    )
}

proptest! {
    /// The term-at-a-time evaluator ≡ the naive per-document walk, for
    /// every operator shape, algorithm and both operator semantics.
    #[test]
    fn fast_path_equals_naive_walk(
        docs in arb_corpus(),
        expr in arb_rank_expr(),
        ranking_id in arb_ranking_id(),
        fuzzy in any::<bool>(),
    ) {
        let engine = engine_of(&docs, ranking_id, fuzzy);
        prop_assert_eq!(engine.eval_ranking(&expr), engine.eval_ranking_naive(&expr));
    }

    /// Bounded selection ≡ the first `k` of the full sort — including
    /// doc-id order inside equal-score runs.
    #[test]
    fn top_k_is_a_prefix_of_the_full_sort(
        docs in arb_corpus(),
        expr in arb_rank_expr(),
        ranking_id in arb_ranking_id(),
        k in 0usize..25,
    ) {
        let engine = engine_of(&docs, ranking_id, true);
        let full = engine.eval_ranking_naive(&expr);
        let bounded = engine.eval_ranking_top_k(&expr, Some(k));
        prop_assert_eq!(&bounded[..], &full[..k.min(full.len())]);
    }

    /// The filter+ranking fast path truncates exactly like the
    /// unbounded search, for every mode of `search_top_k`.
    #[test]
    fn search_top_k_truncates_search(
        docs in arb_corpus(),
        filter_term in 0..VOCAB.len(),
        expr in arb_rank_expr(),
        ranking_id in arb_ranking_id(),
        k in 0usize..25,
    ) {
        let engine = engine_of(&docs, ranking_id, true);
        let filter = BoolNode::Term(TermSpec::any(VOCAB[filter_term]));
        for (f, r) in [
            (Some(&filter), Some(&expr)),
            (Some(&filter), None),
            (None, Some(&expr)),
        ] {
            let full = engine.search(f, r);
            let bounded = engine.search_top_k(f, r, Some(k));
            prop_assert_eq!(&bounded[..], &full[..k.min(full.len())]);
        }
    }
}
