//! Property-based tests for the engine: Boolean evaluation agrees with a
//! brute-force oracle, result sets are canonical, prox is monotone in
//! distance, and scores respect declared ranges.

use proptest::prelude::*;
use starts_index::{BoolNode, DocId, Document, Engine, EngineConfig, RankNode, TermSpec};
use starts_text::{Analyzer, AnalyzerConfig, StopWordList};

/// A tiny closed vocabulary so queries actually hit documents.
const VOCAB: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

fn arb_doc() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..VOCAB.len(), 1..30)
}

fn arb_corpus() -> impl Strategy<Value = Vec<Document>> {
    proptest::collection::vec(arb_doc(), 1..25).prop_map(|docs| {
        docs.into_iter()
            .map(|words| {
                let body: Vec<&str> = words.iter().map(|&w| VOCAB[w]).collect();
                Document::new().field("body-of-text", body.join(" "))
            })
            .collect()
    })
}

fn arb_term() -> impl Strategy<Value = BoolNode> {
    (0..VOCAB.len()).prop_map(|w| BoolNode::Term(TermSpec::any(VOCAB[w])))
}

fn arb_expr() -> impl Strategy<Value = BoolNode> {
    arb_term().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BoolNode::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BoolNode::or(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| BoolNode::and_not(a, b)),
        ]
    })
}

fn engine_of(docs: &[Document]) -> Engine {
    Engine::build(
        docs,
        EngineConfig {
            analyzer: AnalyzerConfig {
                stop_words: StopWordList::none(),
                ..AnalyzerConfig::default()
            },
            ..EngineConfig::default()
        },
    )
}

/// Brute-force oracle: evaluate the Boolean expression per document by
/// direct containment over the analyzed tokens.
fn oracle(expr: &BoolNode, docs: &[Document]) -> Vec<DocId> {
    let analyzer = Analyzer::new(AnalyzerConfig {
        stop_words: StopWordList::none(),
        ..AnalyzerConfig::default()
    });
    (0..docs.len() as u32)
        .map(DocId)
        .filter(|&id| eval_doc(expr, &docs[id.0 as usize], &analyzer))
        .collect()
}

fn eval_doc(expr: &BoolNode, doc: &Document, analyzer: &Analyzer) -> bool {
    match expr {
        BoolNode::Term(spec) => {
            let body = doc.get("body-of-text").unwrap_or("");
            analyzer
                .analyze(body)
                .iter()
                .any(|t| t.term == analyzer.normalize_term(&spec.term))
        }
        BoolNode::And(a, b) => eval_doc(a, doc, analyzer) && eval_doc(b, doc, analyzer),
        BoolNode::Or(a, b) => eval_doc(a, doc, analyzer) || eval_doc(b, doc, analyzer),
        BoolNode::AndNot(a, b) => eval_doc(a, doc, analyzer) && !eval_doc(b, doc, analyzer),
        BoolNode::Prox { .. } => unreachable!("oracle only covers set operators"),
    }
}

proptest! {
    /// Engine Boolean evaluation ≡ the brute-force oracle.
    #[test]
    fn boolean_eval_matches_oracle(docs in arb_corpus(), expr in arb_expr()) {
        let engine = engine_of(&docs);
        let got = engine.eval_filter(&expr);
        let want = oracle(&expr, &docs);
        prop_assert_eq!(got, want);
    }

    /// Result sets are canonical: strictly sorted (hence deduplicated).
    #[test]
    fn result_sets_canonical(docs in arb_corpus(), expr in arb_expr()) {
        let engine = engine_of(&docs);
        let got = engine.eval_filter(&expr);
        for w in got.windows(2) {
            prop_assert!(w[0] < w[1], "unsorted or duplicated: {got:?}");
        }
    }

    /// prox is monotone in distance, and always a subset of `and`.
    #[test]
    fn prox_monotone_in_distance(
        docs in arb_corpus(),
        l in 0..VOCAB.len(),
        r in 0..VOCAB.len(),
        d in 0u32..10,
    ) {
        let engine = engine_of(&docs);
        let prox = |distance: u32, ordered: bool| {
            engine.eval_filter(&BoolNode::Prox {
                left: TermSpec::any(VOCAB[l]),
                right: TermSpec::any(VOCAB[r]),
                distance,
                ordered,
            })
        };
        let and = engine.eval_filter(&BoolNode::and(
            BoolNode::Term(TermSpec::any(VOCAB[l])),
            BoolNode::Term(TermSpec::any(VOCAB[r])),
        ));
        let near = prox(d, false);
        let far = prox(d + 1, false);
        let is_subset = |a: &[DocId], b: &[DocId]| a.iter().all(|x| b.contains(x));
        prop_assert!(is_subset(&near, &far), "prox not monotone");
        prop_assert!(is_subset(&far, &and), "prox exceeds and");
        // Ordered prox is a subset of unordered prox.
        let ordered = prox(d, true);
        prop_assert!(is_subset(&ordered, &near), "ordered exceeds unordered");
    }

    /// Ranked scores always respect the algorithm's declared ScoreRange.
    #[test]
    fn scores_within_declared_range(
        docs in arb_corpus(),
        terms in proptest::collection::vec(0..VOCAB.len(), 1..4),
        ranking_id in prop_oneof![
            Just("Acme-1"), Just("Vendor-K"), Just("Okapi-1"), Just("Plain-1")
        ],
    ) {
        let engine = Engine::build(
            &docs,
            EngineConfig {
                ranking_id: ranking_id.to_string(),
                ..EngineConfig::default()
            },
        );
        let node = RankNode::List(
            terms.iter().map(|&t| RankNode::term(TermSpec::any(VOCAB[t]))).collect(),
        );
        let range = engine.ranking().score_range();
        for (_, score) in engine.eval_ranking(&node) {
            prop_assert!(
                score >= range.min - 1e-9 && score <= range.max + 1e-9,
                "{ranking_id}: {score} outside {}..{}", range.min, range.max
            );
        }
    }

    /// Ranked results are sorted by descending score.
    #[test]
    fn ranking_sorted_descending(docs in arb_corpus(), t in 0..VOCAB.len()) {
        let engine = engine_of(&docs);
        let ranked = engine.eval_ranking(&RankNode::term(TermSpec::any(VOCAB[t])));
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    /// De Morgan-ish identity usable without `not`:
    /// a and-not (a and-not b) ≡ a and b.
    #[test]
    fn and_not_involution(docs in arb_corpus(), a in 0..VOCAB.len(), b in 0..VOCAB.len()) {
        let engine = engine_of(&docs);
        let ta = || BoolNode::Term(TermSpec::any(VOCAB[a]));
        let tb = || BoolNode::Term(TermSpec::any(VOCAB[b]));
        let left = engine.eval_filter(&BoolNode::and_not(ta(), BoolNode::and_not(ta(), tb())));
        let right = engine.eval_filter(&BoolNode::and(ta(), tb()));
        prop_assert_eq!(left, right);
    }
}
