//! Property-based tests for the block postings codec and the
//! skip-capable cursor: bit-packed FOR encode/decode must round-trip
//! any posting list (including pathological tf runs and huge doc-id
//! gaps), agree stream-for-stream with the per-integer varint reference
//! codec it replaced, decode identically through the dispatched
//! (AVX2-capable) and scalar unpack kernels, survive hostile bytes
//! without panicking, and `next_geq` must land exactly where a linear
//! scan would, under arbitrary interleavings of `next` and `next_geq`.

use proptest::prelude::*;
use starts_index::{BlockCursor, BlockHeader, BlockPostings, BLOCK_DOCS};

/// An arbitrary posting list: strictly increasing doc ids built from
/// arbitrary positive gaps (1 to a whole-block-sized jump), each with an
/// arbitrary term frequency — including tf 0 and near-`u32::MAX` runs
/// the index itself never produces but the codec must not corrupt.
fn arb_postings() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec(
        (
            1u32..3 * BLOCK_DOCS as u32,
            prop_oneof![Just(0u32), 1u32..100, Just(u32::MAX - 1), Just(u32::MAX)],
        ),
        0..600,
    )
    .prop_map(|gaps| {
        let mut doc = 0u32;
        gaps.into_iter()
            .map(|(gap, tf)| {
                doc += gap;
                (doc, tf)
            })
            .collect()
    })
}

/// Edge-case posting lists the index itself rarely produces but the
/// codec must encode exactly: single-posting lists, doc ids at or next
/// to `u32::MAX - 1` (the largest legal id), gaps spanning most of the
/// id space, and `tf = u32::MAX`.
fn arb_extreme_postings() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec(
        (
            prop_oneof![
                Just(1u32),
                2u32..=3,
                Just(1 << 20),
                Just(u32::MAX / 2),
                Just(u32::MAX - 2),
            ],
            prop_oneof![Just(0u32), Just(1u32), Just(u32::MAX - 1), Just(u32::MAX)],
        ),
        1..6,
    )
    .prop_map(|gaps| {
        let mut doc = 0u64;
        let mut out = Vec::new();
        for (gap, tf) in gaps {
            doc += u64::from(gap);
            // Doc ids must stay below the EXHAUSTED sentinel (u32::MAX).
            if doc >= u64::from(u32::MAX) {
                break;
            }
            out.push((doc as u32, tf));
        }
        if out.is_empty() {
            out.push((u32::MAX - 1, u32::MAX));
        }
        out
    })
}

/// The reference codec the block store replaced: per-integer LEB128
/// varints over doc gaps and tfs. It is the ground truth the bit-packed
/// frames are proven equivalent to — both decode back to the same
/// `(doc, tf)` stream on every list.
fn varint_encode(postings: &[(u32, u32)]) -> Vec<u8> {
    fn put(out: &mut Vec<u8>, mut v: u32) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(b);
                break;
            }
            out.push(b | 0x80);
        }
    }
    let mut out = Vec::new();
    let mut prev = 0u32;
    for &(doc, tf) in postings {
        put(&mut out, doc - prev);
        put(&mut out, tf);
        prev = doc;
    }
    out
}

fn varint_decode(src: &[u8], n: usize) -> Vec<(u32, u32)> {
    fn get(src: &[u8], pos: &mut usize) -> u32 {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = src[*pos];
            *pos += 1;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return v as u32;
            }
            shift += 7;
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 0;
    let mut doc = 0u32;
    for i in 0..n {
        let gap = get(src, &mut pos);
        let tf = get(src, &mut pos);
        doc = if i == 0 { gap } else { doc + gap };
        out.push((doc, tf));
    }
    out
}

/// Walk a block list back into `(doc, tf)` pairs through the cursor.
fn decode_via_cursor(list: &BlockPostings) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut cursor = BlockCursor::new(list);
    while !cursor.is_exhausted() {
        out.push((cursor.doc(), cursor.tf()));
        cursor.next();
    }
    out
}

fn arb_header() -> impl Strategy<Value = BlockHeader> {
    (
        any::<u32>(),
        // Bias toward the valid ranges so decode sometimes gets past
        // the header checks and into the data path.
        prop_oneof![1u16..=BLOCK_DOCS as u16, any::<u16>()],
        prop_oneof![0u8..=32, any::<u8>()],
        prop_oneof![0u8..=32, any::<u8>()],
        prop_oneof![0u32..=256, any::<u32>()],
    )
        .prop_map(|(max_doc, count, doc_bits, tf_bits, offset)| BlockHeader {
            max_doc,
            count,
            doc_bits,
            tf_bits,
            offset,
        })
}

/// One cursor operation: a single-step advance or a seek relative to
/// the current doc (0 = a no-op backward/at-current seek, larger =
/// anywhere from within the current block to several blocks ahead).
#[derive(Debug, Clone, Copy)]
enum Op {
    Next,
    NextGeq(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Op::Next),
            (0u32..5 * BLOCK_DOCS as u32).prop_map(Op::NextGeq),
        ],
        0..80,
    )
}

proptest! {
    /// Encode → decode is the identity, block structure included.
    #[test]
    fn codec_round_trips(postings in arb_postings()) {
        let list = BlockPostings::encode(&postings);
        prop_assert_eq!(list.len(), postings.len() as u64);
        prop_assert_eq!(list.n_blocks(), postings.len().div_ceil(BLOCK_DOCS));
        let mut cursor = BlockCursor::new(&list);
        for &(doc, tf) in &postings {
            prop_assert!(!cursor.is_exhausted());
            prop_assert_eq!((cursor.doc(), cursor.tf()), (doc, tf));
            cursor.next();
        }
        prop_assert!(cursor.is_exhausted());
        // Header fence posts are exactly the per-block last doc ids.
        for b in 0..list.n_blocks() {
            let chunk = &postings[b * BLOCK_DOCS..((b + 1) * BLOCK_DOCS).min(postings.len())];
            prop_assert_eq!(list.header(b).max_doc, chunk.last().unwrap().0);
            prop_assert_eq!(usize::from(list.header(b).count), chunk.len());
        }
        // Every posting visited once, no block ever jumped.
        prop_assert_eq!(cursor.visited(), postings.len() as u64);
        prop_assert_eq!(cursor.blocks_skipped(), 0);
    }

    /// Under any interleaving of `next` / `next_geq`, the skipping
    /// cursor tracks a linear-scan reference position exactly, and its
    /// work counters stay consistent (visited ≤ len, each posting
    /// counted at most once).
    #[test]
    fn next_geq_equals_linear_scan(postings in arb_postings(), ops in arb_ops()) {
        let list = BlockPostings::encode(&postings);
        let mut cursor = BlockCursor::new(&list);
        let mut pos = 0usize; // reference: index into `postings`
        for op in ops {
            match op {
                Op::Next => {
                    if pos < postings.len() {
                        pos += 1;
                    }
                    cursor.next();
                }
                Op::NextGeq(delta) => {
                    if pos >= postings.len() {
                        continue;
                    }
                    // Seek targets relative to the current doc so they
                    // land before, at, inside, and past the current
                    // block with roughly equal probability.
                    let target = postings[pos].0.saturating_add(delta);
                    while pos < postings.len() && postings[pos].0 < target {
                        pos += 1;
                    }
                    cursor.next_geq(target);
                }
            }
            match postings.get(pos) {
                Some(&(doc, tf)) => {
                    prop_assert!(!cursor.is_exhausted());
                    prop_assert_eq!((cursor.doc(), cursor.tf()), (doc, tf));
                }
                None => prop_assert!(cursor.is_exhausted()),
            }
        }
        prop_assert!(cursor.visited() <= list.len());
        prop_assert!(cursor.blocks_skipped() as usize <= list.n_blocks());
    }

    /// The bit-packed frames and the varint reference codec are
    /// equivalent: both losslessly round-trip every list, so their
    /// decoded streams are identical.
    #[test]
    fn bitpacked_agrees_with_varint_reference(postings in arb_postings()) {
        let packed = decode_via_cursor(&BlockPostings::encode(&postings));
        let varint = varint_decode(&varint_encode(&postings), postings.len());
        prop_assert_eq!(&packed, &postings);
        prop_assert_eq!(&varint, &postings);
        prop_assert_eq!(packed, varint);
    }

    /// The equivalence holds at the extremes: single-posting lists,
    /// near-`u32::MAX` doc ids and gaps, and `tf = u32::MAX` — all of
    /// which force 32-bit frame widths.
    #[test]
    fn extreme_lists_round_trip_both_codecs(postings in arb_extreme_postings()) {
        let list = BlockPostings::encode(&postings);
        let packed = decode_via_cursor(&list);
        let varint = varint_decode(&varint_encode(&postings), postings.len());
        prop_assert_eq!(&packed, &postings);
        prop_assert_eq!(packed, varint);
        // The strict and lenient decoders agree on well-formed frames.
        for b in 0..list.n_blocks() {
            let (docs, tfs) = list.try_decode_block(b).expect("valid block");
            let lo = b * BLOCK_DOCS;
            let hi = (lo + BLOCK_DOCS).min(postings.len());
            prop_assert_eq!(docs, postings[lo..hi].iter().map(|p| p.0).collect::<Vec<_>>());
            prop_assert_eq!(tfs, postings[lo..hi].iter().map(|p| p.1).collect::<Vec<_>>());
        }
    }

    /// The runtime-dispatched unpack kernel (AVX2 where the CPU has it)
    /// and the scalar word-parallel kernel produce identical lanes on
    /// arbitrary byte streams, at every width.
    #[test]
    fn dispatched_unpack_equals_scalar(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        width in 0u32..=32,
    ) {
        let count = if width == 0 { 200 } else { (bytes.len() * 8) / width as usize };
        let mut src = bytes;
        src.extend_from_slice(&[0u8; 8]); // the codec's tail pad
        let mut dispatched = vec![0u32; count];
        let mut scalar = vec![0u32; count];
        starts_index::blocks::unpack_bits(&src, count, width, &mut dispatched);
        starts_index::blocks::unpack_bits_scalar(&src, count, width, &mut scalar);
        prop_assert_eq!(dispatched, scalar);
    }

    /// Hostile bytes: arbitrary headers over arbitrary data must never
    /// panic the lenient decoder — it returns `None` for anything that
    /// fails validation and decodes only in-bounds frames.
    #[test]
    fn hostile_bytes_never_panic(
        headers in proptest::collection::vec(arb_header(), 0..8),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        len in any::<u64>(),
    ) {
        let list = BlockPostings::from_raw_parts(headers, data, len);
        for b in 0..list.n_blocks() {
            let _ = list.try_decode_block(b);
        }
    }

    /// `block_for` is a pure header lookup: it agrees with where a real
    /// seek lands, and never moves the cursor.
    #[test]
    fn block_for_predicts_the_seek(postings in arb_postings(), target_gap in 0u32..10 * BLOCK_DOCS as u32) {
        prop_assume!(!postings.is_empty());
        let list = BlockPostings::encode(&postings);
        let cursor = BlockCursor::new(&list);
        let target = postings[0].0.saturating_add(target_gap);
        let predicted = cursor.block_for(target);
        prop_assert_eq!(cursor.doc(), postings[0].0, "lookup moved the cursor");
        let mut seeker = BlockCursor::new(&list);
        seeker.next_geq(target);
        match predicted {
            Some(b) => prop_assert_eq!(seeker.block_index(), b),
            None => prop_assert!(seeker.is_exhausted()),
        }
    }
}
