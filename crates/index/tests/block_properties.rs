//! Property-based tests for the block postings codec and the
//! skip-capable cursor: delta+varint encode/decode must round-trip any
//! posting list (including pathological tf runs and huge doc-id gaps),
//! and `next_geq` must land exactly where a linear scan would, under
//! arbitrary interleavings of `next` and `next_geq`.

use proptest::prelude::*;
use starts_index::{BlockCursor, BlockPostings, BLOCK_DOCS};

/// An arbitrary posting list: strictly increasing doc ids built from
/// arbitrary positive gaps (1 to a whole-block-sized jump), each with an
/// arbitrary term frequency — including tf 0 and near-`u32::MAX` runs
/// the index itself never produces but the codec must not corrupt.
fn arb_postings() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec(
        (
            1u32..3 * BLOCK_DOCS as u32,
            prop_oneof![Just(0u32), 1u32..100, Just(u32::MAX - 1), Just(u32::MAX)],
        ),
        0..600,
    )
    .prop_map(|gaps| {
        let mut doc = 0u32;
        gaps.into_iter()
            .map(|(gap, tf)| {
                doc += gap;
                (doc, tf)
            })
            .collect()
    })
}

/// One cursor operation: a single-step advance or a seek relative to
/// the current doc (0 = a no-op backward/at-current seek, larger =
/// anywhere from within the current block to several blocks ahead).
#[derive(Debug, Clone, Copy)]
enum Op {
    Next,
    NextGeq(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Op::Next),
            (0u32..5 * BLOCK_DOCS as u32).prop_map(Op::NextGeq),
        ],
        0..80,
    )
}

proptest! {
    /// Encode → decode is the identity, block structure included.
    #[test]
    fn codec_round_trips(postings in arb_postings()) {
        let list = BlockPostings::encode(&postings);
        prop_assert_eq!(list.len(), postings.len() as u64);
        prop_assert_eq!(list.n_blocks(), postings.len().div_ceil(BLOCK_DOCS));
        let mut cursor = BlockCursor::new(&list);
        for &(doc, tf) in &postings {
            prop_assert!(!cursor.is_exhausted());
            prop_assert_eq!((cursor.doc(), cursor.tf()), (doc, tf));
            cursor.next();
        }
        prop_assert!(cursor.is_exhausted());
        // Header fence posts are exactly the per-block last doc ids.
        for b in 0..list.n_blocks() {
            let chunk = &postings[b * BLOCK_DOCS..((b + 1) * BLOCK_DOCS).min(postings.len())];
            prop_assert_eq!(list.header(b).max_doc, chunk.last().unwrap().0);
            prop_assert_eq!(usize::from(list.header(b).count), chunk.len());
        }
        // Every posting visited once, no block ever jumped.
        prop_assert_eq!(cursor.visited(), postings.len() as u64);
        prop_assert_eq!(cursor.blocks_skipped(), 0);
    }

    /// Under any interleaving of `next` / `next_geq`, the skipping
    /// cursor tracks a linear-scan reference position exactly, and its
    /// work counters stay consistent (visited ≤ len, each posting
    /// counted at most once).
    #[test]
    fn next_geq_equals_linear_scan(postings in arb_postings(), ops in arb_ops()) {
        let list = BlockPostings::encode(&postings);
        let mut cursor = BlockCursor::new(&list);
        let mut pos = 0usize; // reference: index into `postings`
        for op in ops {
            match op {
                Op::Next => {
                    if pos < postings.len() {
                        pos += 1;
                    }
                    cursor.next();
                }
                Op::NextGeq(delta) => {
                    if pos >= postings.len() {
                        continue;
                    }
                    // Seek targets relative to the current doc so they
                    // land before, at, inside, and past the current
                    // block with roughly equal probability.
                    let target = postings[pos].0.saturating_add(delta);
                    while pos < postings.len() && postings[pos].0 < target {
                        pos += 1;
                    }
                    cursor.next_geq(target);
                }
            }
            match postings.get(pos) {
                Some(&(doc, tf)) => {
                    prop_assert!(!cursor.is_exhausted());
                    prop_assert_eq!((cursor.doc(), cursor.tf()), (doc, tf));
                }
                None => prop_assert!(cursor.is_exhausted()),
            }
        }
        prop_assert!(cursor.visited() <= list.len());
        prop_assert!(cursor.blocks_skipped() as usize <= list.n_blocks());
    }

    /// `block_for` is a pure header lookup: it agrees with where a real
    /// seek lands, and never moves the cursor.
    #[test]
    fn block_for_predicts_the_seek(postings in arb_postings(), target_gap in 0u32..10 * BLOCK_DOCS as u32) {
        prop_assume!(!postings.is_empty());
        let list = BlockPostings::encode(&postings);
        let cursor = BlockCursor::new(&list);
        let target = postings[0].0.saturating_add(target_gap);
        let predicted = cursor.block_for(target);
        prop_assert_eq!(cursor.doc(), postings[0].0, "lookup moved the cursor");
        let mut seeker = BlockCursor::new(&list);
        seeker.next_geq(target);
        match predicted {
            Some(b) => prop_assert_eq!(seeker.block_index(), b),
            None => prop_assert!(seeker.is_exhausted()),
        }
    }
}
