//! Property-based tests for dynamic pruning: the Block-Max-WAND top-k
//! path must be *bit-identical* — scores, ordering, and doc-id
//! tie-breaks — to the naive full-sort evaluator and to an engine with
//! pruning disabled, for every ranking algorithm, for flat weighted
//! term lists, for the and/or/weighted/prox operator trees BMW prunes
//! *through* (prox via its positions-ignored over-estimate; survivors
//! still run the exact positional check), and for arbitrary
//! expressions, across shard counts {1, 2, 3, 7} and
//! k ∈ {1, 10, > corpus}.

use proptest::prelude::*;
use starts_index::{
    BoolNode, Document, Engine, EngineConfig, PositionsMode, PruneMode, RankNode, SearchOptions,
    ShardPolicy, ShardedEngine, TermSpec,
};

/// The same tiny closed vocabulary the other property suites use, so
/// queries hit documents and equal scores (hence tie-breaks) are common.
const VOCAB: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

/// Shard counts exercised: 1 (monolithic delegation), 2, 3 (uneven
/// split), 7 (more shards than hits per shard).
const SHARD_COUNTS: &[usize] = &[1, 2, 3, 7];

fn arb_doc() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..VOCAB.len(), 1..25)
}

fn arb_corpus() -> impl Strategy<Value = Vec<Document>> {
    proptest::collection::vec(arb_doc(), 1..20).prop_map(|docs| {
        docs.into_iter()
            .map(|words| {
                let body: Vec<&str> = words.iter().map(|&w| VOCAB[w]).collect();
                Document::new().field("body-of-text", body.join(" "))
            })
            .collect()
    })
}

/// A weighted term leaf (weights quantized so equal weights — and so
/// score ties — actually occur).
fn arb_leaf() -> impl Strategy<Value = RankNode> {
    (0..VOCAB.len(), 1u32..=4)
        .prop_map(|(w, q)| RankNode::weighted(TermSpec::any(VOCAB[w]), f64::from(q) * 0.25))
}

/// A flat weighted `list(...)` of plain term leaves — the classic WAND
/// workload shape, always eligible for the block-max evaluator.
fn arb_flat_list() -> impl Strategy<Value = RankNode> {
    prop_oneof![
        arb_leaf(),
        proptest::collection::vec(arb_leaf(), 1..5).prop_map(RankNode::List),
    ]
}

/// An operator tree of the shapes Block-Max WAND prunes through by
/// propagating per-block bounds bottom-up: and/or/weighted plus
/// term-term `prox`, whose bound is the positions-ignored fuzzy-`and`
/// over-estimate (survivors rerun the exact positional check).
fn arb_bmw_tree() -> impl Strategy<Value = RankNode> {
    arb_leaf().prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::List),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::Or),
            (inner.clone(), inner).prop_map(|(a, b)| RankNode::AndNot(Box::new(a), Box::new(b))),
            (arb_leaf(), arb_leaf(), 0u32..6, any::<bool>()).prop_map(
                |(l, r, distance, ordered)| RankNode::Prox {
                    left: Box::new(l),
                    right: Box::new(r),
                    distance,
                    ordered,
                }
            ),
        ]
    })
}

/// A ranking expression using every operator the engine scores —
/// including `prox` over arbitrary (non-leaf) subtrees, which the
/// block-max evaluator still bounds soundly via the positions-ignored
/// over-estimate before the exact rescore decides the doc.
fn arb_rank_expr() -> impl Strategy<Value = RankNode> {
    arb_leaf().prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::List),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::Or),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RankNode::AndNot(Box::new(a), Box::new(b))),
            (inner.clone(), inner, 0u32..6, any::<bool>()).prop_map(|(l, r, distance, ordered)| {
                RankNode::Prox {
                    left: Box::new(l),
                    right: Box::new(r),
                    distance,
                    ordered,
                }
            }),
        ]
    })
}

fn arb_ranking_id() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("Acme-1"),
        Just("Vendor-K"),
        Just("Okapi-1"),
        Just("Plain-1"),
    ]
}

fn config(ranking_id: &str, prune: PruneMode, shards: usize) -> EngineConfig {
    EngineConfig {
        ranking_id: ranking_id.to_string(),
        fuzzy_ranking_ops: true,
        shards,
        // The properties quantify over physical shard counts — build
        // exactly what the strategy drew, whatever machine runs CI.
        shard_policy: ShardPolicy::Exact,
        prune,
        ..EngineConfig::default()
    }
}

/// The k values the issue calls out: 1 (tight threshold, maximum
/// skipping), 10 (typical page), and one past any corpus size here
/// (heap never fills — pruning must be a silent no-op).
fn limits(n_docs: usize) -> [usize; 3] {
    [1, 10, n_docs + 5]
}

/// The pruner must actually engage — not just fall back to the exact
/// path — on the workload shape it targets. One heavy doc sets a high
/// threshold; the light docs' upper bounds fall strictly below it, so
/// they are skipped without scoring. Deterministic on purpose: a
/// regression that silently disables pruning fails here, not just in
/// the benchmarks.
#[test]
fn pruner_engages_on_skewed_corpus() {
    let mut docs = vec![Document::new().field("body-of-text", "omega omega omega alpha")];
    for _ in 0..9 {
        docs.push(Document::new().field("body-of-text", "alpha"));
    }
    let engine = ShardedEngine::build(&docs, config("Plain-1", PruneMode::Auto, 1));
    let expr = RankNode::List(vec![
        RankNode::term(TermSpec::fielded("body-of-text", "alpha")),
        RankNode::term(TermSpec::fielded("body-of-text", "omega")),
    ]);
    let (hits, _, report) = engine.search_top_k_observed(
        None,
        Some(&expr),
        &SearchOptions {
            limit: Some(1),
            min_score: f64::NEG_INFINITY,
        },
    );
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].doc, starts_index::DocId(0));
    assert!(report.skipped_docs > 0, "pruner never skipped: {report:?}");
    assert!(report.threshold_updates >= 1, "{report:?}");
    assert!(report.candidates >= 10, "{report:?}");
}

/// Block-Max WAND must actually *skip whole blocks without decoding
/// them*, not merely skip documents. Two heavy docs (0 and 650) pin the
/// threshold above everything a lone `alpha` can score; the ~5 blocks
/// of light docs between them are non-competitive, so the `alpha`
/// cursor's `next_geq(650)` must jump straight over them via headers
/// alone. Deterministic: a regression that decodes every block (or
/// disables block skipping) fails here, not just in the benchmarks.
#[test]
fn block_max_wand_skips_blocks() {
    let heavy = "omega omega omega alpha";
    let mut docs = Vec::with_capacity(700);
    for d in 0..700 {
        let body = if d == 0 || d == 650 { heavy } else { "alpha" };
        docs.push(Document::new().field("body-of-text", body));
    }
    let engine = ShardedEngine::build(&docs, config("Plain-1", PruneMode::Auto, 1));
    let expr = RankNode::List(vec![
        RankNode::term(TermSpec::fielded("body-of-text", "alpha")),
        RankNode::term(TermSpec::fielded("body-of-text", "omega")),
    ]);
    let opts = SearchOptions {
        limit: Some(1),
        min_score: f64::NEG_INFINITY,
    };
    let (hits, _, report) = engine.search_top_k_observed(None, Some(&expr), &opts);
    assert_eq!(hits.len(), 1);
    // Docs 0 and 650 tie at (1 + 3) / 2 = 2.0; the smaller doc id wins.
    assert_eq!(hits[0].doc, starts_index::DocId(0));
    // `alpha` spans 6 blocks (ceil(700 / 128)); the seek to doc 650 must
    // leap blocks 1-4 with only header arithmetic.
    assert!(
        report.blocks_skipped >= 4,
        "no block-level skips: {report:?}"
    );
    assert!(report.skipped_docs > 600, "{report:?}");
    assert!(report.candidates >= 700, "{report:?}");
    // Skipping must not have changed the answer.
    let off = ShardedEngine::build(&docs, config("Plain-1", PruneMode::Off, 1));
    let (expect, _, off_report) = off.search_top_k_observed(None, Some(&expr), &opts);
    assert_eq!(hits, expect);
    assert_eq!(off_report.blocks_skipped, 0, "{off_report:?}");
}

/// Block-Max WAND must prune *through* `prox`, not fall back on it:
/// the positions-ignored fuzzy-`and` bound lets the evaluator skip
/// docs holding only one of the two terms, while survivors still run
/// the exact positional check. Same skewed corpus as
/// `block_max_wand_skips_blocks` — docs 0 and 650 contain the adjacent
/// pair, everything else only `alpha`, so once doc 0 sets the
/// threshold every `alpha`-only doc has upper bound
/// `max(min(0, w_alpha), 0) = 0` and is skipped without decoding
/// positions. Deterministic: a regression that demotes `prox` back to
/// the exact scan fails here, not just in the benchmarks.
#[test]
fn bmw_prunes_through_prox() {
    let heavy = "omega alpha filler";
    let mut docs = Vec::with_capacity(700);
    for d in 0..700 {
        let body = if d == 0 || d == 650 { heavy } else { "alpha" };
        docs.push(Document::new().field("body-of-text", body));
    }
    let expr = RankNode::Prox {
        left: Box::new(RankNode::term(TermSpec::fielded("body-of-text", "omega"))),
        right: Box::new(RankNode::term(TermSpec::fielded("body-of-text", "alpha"))),
        distance: 0,
        ordered: true,
    };
    let opts = SearchOptions {
        limit: Some(1),
        min_score: f64::NEG_INFINITY,
    };
    let auto = ShardedEngine::build(&docs, config("Plain-1", PruneMode::Auto, 1));
    let (hits, _, report) = auto.search_top_k_observed(None, Some(&expr), &opts);
    assert_eq!(hits.len(), 1);
    // Docs 0 and 650 tie; the smaller doc id wins.
    assert_eq!(hits[0].doc, starts_index::DocId(0));
    assert!(
        report.skipped_docs > 600,
        "prox tree fell back to the exact scan: {report:?}"
    );
    // Skipping through the over-estimate must not change the answer.
    let off = ShardedEngine::build(&docs, config("Plain-1", PruneMode::Off, 1));
    let (expect, _, _) = off.search_top_k_observed(None, Some(&expr), &opts);
    assert_eq!(hits, expect);
}

proptest! {
    /// Pruned top-k ≡ the first `k` of the naive full sort, on the flat
    /// weighted lists the pruner actually accelerates, for every
    /// ranking algorithm.
    #[test]
    fn pruned_top_k_equals_naive(
        docs in arb_corpus(),
        expr in arb_flat_list(),
        ranking_id in arb_ranking_id(),
    ) {
        let engine = Engine::build(&docs, config(ranking_id, PruneMode::Auto, 1));
        let full = engine.eval_ranking_naive(&expr);
        for k in limits(docs.len()) {
            let bounded = engine.eval_ranking_top_k(&expr, Some(k));
            prop_assert_eq!(&bounded[..], &full[..k.min(full.len())], "k={}", k);
        }
    }

    /// Block-Max WAND over and/or/weighted operator *trees* ≡ the first
    /// `k` of the naive full sort, for every ranking algorithm and
    /// every k regime — the per-block bounds propagated bottom-up
    /// through the tree must never skip a document that belongs in the
    /// answer, and survivors must be rescored in exact tree order.
    #[test]
    fn bmw_tree_equals_naive(
        docs in arb_corpus(),
        expr in arb_bmw_tree(),
        ranking_id in arb_ranking_id(),
    ) {
        let engine = Engine::build(&docs, config(ranking_id, PruneMode::Auto, 1));
        let full = engine.eval_ranking_naive(&expr);
        for k in limits(docs.len()) {
            let bounded = engine.eval_ranking_top_k(&expr, Some(k));
            prop_assert_eq!(&bounded[..], &full[..k.min(full.len())], "k={}", k);
        }
    }

    /// Block-max sharded fan-out on operator trees ≡ the monolithic
    /// engine with pruning off, at every shard count and k regime.
    #[test]
    fn bmw_tree_sharded_equals_unpruned_monolithic(
        docs in arb_corpus(),
        expr in arb_bmw_tree(),
        ranking_id in arb_ranking_id(),
    ) {
        let mono = Engine::build(&docs, config(ranking_id, PruneMode::Off, 1));
        for &shards in SHARD_COUNTS {
            let sharded = ShardedEngine::build(&docs, config(ranking_id, PruneMode::Auto, shards));
            for k in limits(docs.len()) {
                let expect = mono.search_top_k(None, Some(&expr), Some(k));
                let got = sharded.search_top_k(None, Some(&expr), Some(k));
                prop_assert_eq!(got, expect, "shards={} k={}", shards, k);
            }
        }
    }

    /// `PruneMode::Auto` ≡ `PruneMode::Off` on arbitrary operator
    /// trees: expressions the eligibility gate accepts (now including
    /// `prox`, bounded by its positions-ignored over-estimate) must
    /// prune bit-identically, and the ones it still rejects must take
    /// the exact fallback.
    #[test]
    fn prune_auto_equals_prune_off(
        docs in arb_corpus(),
        expr in arb_rank_expr(),
        ranking_id in arb_ranking_id(),
        k in 0usize..25,
    ) {
        let auto = Engine::build(&docs, config(ranking_id, PruneMode::Auto, 1));
        let off = Engine::build(&docs, config(ranking_id, PruneMode::Off, 1));
        prop_assert_eq!(
            auto.eval_ranking_top_k(&expr, Some(k)),
            off.eval_ranking_top_k(&expr, Some(k))
        );
    }

    /// Pruned sharded fan-out (threshold shared across shards) ≡ the
    /// monolithic engine with pruning off, in every query mode, at
    /// every shard count.
    #[test]
    fn pruned_sharded_equals_unpruned_monolithic(
        docs in arb_corpus(),
        filter_term in 0..VOCAB.len(),
        expr in arb_flat_list(),
        ranking_id in arb_ranking_id(),
    ) {
        let mono = Engine::build(&docs, config(ranking_id, PruneMode::Off, 1));
        let filter = BoolNode::Term(TermSpec::any(VOCAB[filter_term]));
        for &shards in SHARD_COUNTS {
            let sharded = ShardedEngine::build(&docs, config(ranking_id, PruneMode::Auto, shards));
            for (f, r) in [
                (Some(&filter), None),
                (None, Some(&expr)),
                (Some(&filter), Some(&expr)),
            ] {
                for k in limits(docs.len()) {
                    let expect = mono.search_top_k(f, r, Some(k));
                    let got = sharded.search_top_k(f, r, Some(k));
                    prop_assert_eq!(
                        got, expect,
                        "shards={} k={} filter={} ranked={}",
                        shards, k, f.is_some(), r.is_some()
                    );
                }
            }
        }
    }

    /// Retiring the positional store must not perturb prox-free
    /// ranking: an engine built with `PositionsMode::None` serves the
    /// classic WAND workload bit-identically to the default engine —
    /// search runs entirely off the block postings either way.
    #[test]
    fn positions_none_matches_all_on_flat_lists(
        docs in arb_corpus(),
        expr in arb_flat_list(),
        ranking_id in arb_ranking_id(),
        k in 1usize..25,
    ) {
        let all = Engine::build(&docs, config(ranking_id, PruneMode::Auto, 1));
        let none = Engine::build(
            &docs,
            EngineConfig {
                positions: PositionsMode::None,
                ..config(ranking_id, PruneMode::Auto, 1)
            },
        );
        prop_assert_eq!(
            all.eval_ranking_top_k(&expr, Some(k)),
            none.eval_ranking_top_k(&expr, Some(k))
        );
    }

    /// Seeding the heap floor from `min_score` never changes the
    /// surviving results: `search_top_k_observed` with a floor ≡ the
    /// plain search post-filtered to `score ≥ min`. Covers the
    /// algorithms where the floor is live (identity finalize) and where
    /// it must be ignored (Vendor-K rescales after selection).
    #[test]
    fn min_score_floor_matches_post_filter(
        docs in arb_corpus(),
        expr in arb_flat_list(),
        ranking_id in arb_ranking_id(),
        min_q in 0u32..8,
        k in 1usize..25,
    ) {
        let min_score = f64::from(min_q) * 0.5;
        for &shards in SHARD_COUNTS {
            let sharded = ShardedEngine::build(&docs, config(ranking_id, PruneMode::Auto, shards));
            let plain = sharded.search_top_k(None, Some(&expr), Some(k));
            let expect: Vec<_> = plain
                .into_iter()
                .filter(|h| h.score.is_some_and(|s| s >= min_score))
                .collect();
            let (got, _, _) = sharded.search_top_k_observed(
                None,
                Some(&expr),
                &SearchOptions { limit: Some(k), min_score },
            );
            let got: Vec<_> = got
                .into_iter()
                .filter(|h| h.score.is_some_and(|s| s >= min_score))
                .collect();
            prop_assert_eq!(got, expect, "shards={} min={}", shards, min_score);
        }
    }
}
