//! Property-based tests for the sharded engine: for random corpora,
//! random ranking expressions and every ranking algorithm, the sharded
//! fan-out + k-way merge must return exactly — bit-identical scores,
//! ordering, and doc-id tie-breaks — what the monolithic engine returns,
//! in every query mode (filter-only, ranking-only, combined) and for
//! shard counts {1, 2, 3, 7}, including `k` larger than any single
//! shard's hit count.

use proptest::prelude::*;
use starts_index::{
    BoolNode, Document, Engine, EngineConfig, RankNode, ShardPolicy, ShardedEngine, TermSpec,
};

/// The same tiny closed vocabulary the top-k properties use, so queries
/// hit documents and equal scores (hence tie-breaks) are common.
const VOCAB: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

/// Shard counts exercised: 1 (monolithic delegation), 2, 3 (uneven
/// split of most corpus sizes), 7 (more shards than hits per shard —
/// many shards end up with zero or one matching doc).
const SHARD_COUNTS: &[usize] = &[1, 2, 3, 7];

fn arb_doc() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..VOCAB.len(), 1..25)
}

fn arb_corpus() -> impl Strategy<Value = Vec<Document>> {
    proptest::collection::vec(arb_doc(), 1..20).prop_map(|docs| {
        docs.into_iter()
            .map(|words| {
                let body: Vec<&str> = words.iter().map(|&w| VOCAB[w]).collect();
                Document::new().field("body-of-text", body.join(" "))
            })
            .collect()
    })
}

/// A weighted term leaf (weights quantized so equal weights — and so
/// score ties — actually occur).
fn arb_leaf() -> impl Strategy<Value = RankNode> {
    (0..VOCAB.len(), 1u32..=4)
        .prop_map(|(w, q)| RankNode::weighted(TermSpec::any(VOCAB[w]), f64::from(q) * 0.25))
}

/// A ranking expression using every operator the engine scores.
fn arb_rank_expr() -> impl Strategy<Value = RankNode> {
    arb_leaf().prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::List),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(RankNode::Or),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RankNode::AndNot(Box::new(a), Box::new(b))),
            (inner.clone(), inner, 0u32..6, any::<bool>()).prop_map(|(l, r, distance, ordered)| {
                RankNode::Prox {
                    left: Box::new(l),
                    right: Box::new(r),
                    distance,
                    ordered,
                }
            }),
        ]
    })
}

fn arb_ranking_id() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("Acme-1"),
        Just("Vendor-K"),
        Just("Okapi-1"),
        Just("Plain-1"),
    ]
}

fn config(ranking_id: &str, fuzzy: bool, shards: usize) -> EngineConfig {
    EngineConfig {
        ranking_id: ranking_id.to_string(),
        fuzzy_ranking_ops: fuzzy,
        shards,
        // The properties quantify over physical shard counts — build
        // exactly what the strategy drew, whatever machine runs CI.
        shard_policy: ShardPolicy::Exact,
        ..EngineConfig::default()
    }
}

proptest! {
    /// Sharded ≡ monolithic for all three query modes, bounded and
    /// unbounded, at every shard count and for every ranking algorithm.
    /// `k` ranges past the corpus size, so it regularly exceeds any
    /// single shard's hit count.
    #[test]
    fn sharded_top_k_equals_monolithic(
        docs in arb_corpus(),
        filter_term in 0..VOCAB.len(),
        expr in arb_rank_expr(),
        ranking_id in arb_ranking_id(),
        fuzzy in any::<bool>(),
        k in 0usize..25,
    ) {
        let mono = Engine::build(&docs, config(ranking_id, fuzzy, 1));
        let filter = BoolNode::Term(TermSpec::any(VOCAB[filter_term]));
        for &shards in SHARD_COUNTS {
            let sharded = ShardedEngine::build(&docs, config(ranking_id, fuzzy, shards));
            for (f, r) in [
                (Some(&filter), None),
                (None, Some(&expr)),
                (Some(&filter), Some(&expr)),
            ] {
                for limit in [Some(k), None] {
                    let expect = mono.search_top_k(f, r, limit);
                    let got = sharded.search_top_k(f, r, limit);
                    prop_assert_eq!(
                        got, expect,
                        "shards={} limit={:?} filter={} ranked={}",
                        shards, limit, f.is_some(), r.is_some()
                    );
                }
            }
        }
    }

    /// Per-document statistics reported in results (`TermStats`) are
    /// identical under sharding: tf is document-local, df and the term
    /// weight's collection inputs come from the global statistics.
    #[test]
    fn sharded_term_stats_equal_monolithic(
        docs in arb_corpus(),
        term in 0..VOCAB.len(),
        ranking_id in arb_ranking_id(),
    ) {
        let mono = Engine::build(&docs, config(ranking_id, true, 1));
        let spec = TermSpec::any(VOCAB[term]);
        for &shards in SHARD_COUNTS {
            let sharded = ShardedEngine::build(&docs, config(ranking_id, true, shards));
            for doc in 0..docs.len() as u32 {
                let doc = starts_index::DocId(doc);
                prop_assert_eq!(
                    sharded.term_stats(doc, &spec),
                    mono.term_stats(doc, &spec),
                    "shards={} doc={:?}", shards, doc
                );
            }
        }
    }
}
