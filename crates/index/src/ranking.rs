//! Pluggable — deliberately heterogeneous — ranking algorithms.
//!
//! §3.2: "the ranking algorithms are usually proprietary to the search
//! engine vendors, and their details are not publicly available … source
//! S1 might report that document d1 has a score of 0.3 for some query,
//! while source S2 might report that document d2 has a score of 1,000 for
//! the same query." STARTS copes by making sources export a
//! `RankingAlgorithmID` and a `ScoreRange` (§4.3.1) plus per-term
//! statistics with every result (§4.2).
//!
//! We implement four algorithms with *incompatible score scales* so the
//! rank-merging problem manifests exactly as described:
//!
//! | id         | family               | score range |
//! |------------|----------------------|-------------|
//! | `Acme-1`   | tf–idf cosine        | `\[0, 1\]`    |
//! | `Vendor-K` | tf–idf, top hit wins | `\[0, 1000\]` (max-normalized) |
//! | `Okapi-1`  | BM25                 | `[0, +inf)` |
//! | `Plain-1`  | raw term frequency   | `[0, +inf)` |

use crate::doc::DocId;

/// The `ScoreRange` metadata attribute: "the minimum and maximum score
/// that a document can get for a query at the source (including -inf and
/// +inf)".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreRange {
    /// Minimum possible score.
    pub min: f64,
    /// Maximum possible score (`f64::INFINITY` for unbounded engines).
    pub max: f64,
}

impl ScoreRange {
    /// `\[0, 1\]`.
    pub fn unit() -> Self {
        ScoreRange { min: 0.0, max: 1.0 }
    }

    /// Whether the range is bounded on both sides.
    pub fn is_bounded(&self) -> bool {
        self.min.is_finite() && self.max.is_finite()
    }
}

/// Statistics available when weighting one term in one document.
#[derive(Debug, Clone, Copy)]
pub struct TermDocStats {
    /// Term frequency in the document (occurrences).
    pub tf: u32,
    /// Document frequency of the term in the collection.
    pub df: u32,
    /// Number of documents in the collection.
    pub n_docs: u32,
    /// Tokens in this document.
    pub doc_tokens: u32,
    /// Mean tokens per document.
    pub avg_tokens: f64,
    /// Precomputed document norm under this algorithm (1.0 if unused).
    pub doc_norm: f64,
}

/// A ranking algorithm: the engine's proprietary scoring.
pub trait RankingAlgorithm: Send + Sync {
    /// The `RankingAlgorithmID` exported in source metadata.
    fn id(&self) -> &'static str;

    /// The `ScoreRange` exported in source metadata.
    fn score_range(&self) -> ScoreRange;

    /// The weight of a term in a document — exported as `Term-weight` in
    /// the per-document `TermStats` of query results (§4.2: "the
    /// normalized tf.idf weight … or whatever other weighing of terms in
    /// documents the search engine might use").
    fn term_weight(&self, st: &TermDocStats) -> f64;

    /// Raw (un-normalized) weight used when accumulating document norms;
    /// defaults to `term_weight` with norm 1.
    fn unnormalized_weight(&self, st: &TermDocStats) -> f64 {
        let mut st = *st;
        st.doc_norm = 1.0;
        self.term_weight(&st)
    }

    /// Whether document norms must be precomputed (cosine-style).
    fn needs_doc_norms(&self) -> bool {
        false
    }

    /// Post-process the complete score list (e.g. rescale so the top
    /// document always gets the vendor's signature score).
    fn finalize(&self, _scores: &mut [(DocId, f64)]) {}

    /// Map a final-score threshold (the `min-doc-score` filter, applied
    /// after [`RankingAlgorithm::finalize`]) to a raw-score floor the
    /// bounded evaluators may seed their selection with: raw scores
    /// below the returned floor can never finalize to `min_score` or
    /// more. Algorithms with an identity `finalize` return the
    /// threshold unchanged; algorithms whose `finalize` rescales by a
    /// result-dependent factor must return `None`, disabling the seed.
    fn raw_score_floor(&self, min_score: f64) -> Option<f64> {
        Some(min_score)
    }
}

/// Resolve a `RankingAlgorithmID` to an implementation. Unknown ids — the
/// common case for a metasearcher facing a new vendor — return `None`.
pub fn ranking_by_id(id: &str) -> Option<Box<dyn RankingAlgorithm>> {
    match id {
        "Acme-1" => Some(Box::new(TfIdfCosine)),
        "Vendor-K" => Some(Box::new(VendorScaled)),
        "Okapi-1" => Some(Box::new(Bm25::default())),
        "Plain-1" => Some(Box::new(RawTf)),
        _ => None,
    }
}

/// `Acme-1`: tf–idf with cosine document normalization; scores in \[0,1\].
#[derive(Debug, Clone, Copy, Default)]
pub struct TfIdfCosine;

fn tfidf_raw(st: &TermDocStats) -> f64 {
    if st.tf == 0 || st.df == 0 || st.n_docs == 0 {
        return 0.0;
    }
    let tf = 1.0 + f64::from(st.tf).ln();
    let idf = (1.0 + f64::from(st.n_docs) / f64::from(st.df)).ln();
    tf * idf
}

impl RankingAlgorithm for TfIdfCosine {
    fn id(&self) -> &'static str {
        "Acme-1"
    }
    fn score_range(&self) -> ScoreRange {
        ScoreRange::unit()
    }
    fn term_weight(&self, st: &TermDocStats) -> f64 {
        let w = tfidf_raw(st);
        if st.doc_norm > 0.0 {
            w / st.doc_norm
        } else {
            w
        }
    }
    fn needs_doc_norms(&self) -> bool {
        true
    }
}

/// `Vendor-K`: the §3.2 example engine — "designed so that the top
/// document for a query always has a score of, say, 1,000". Internally
/// tf–idf cosine; finalize rescales the best hit to exactly 1000.
#[derive(Debug, Clone, Copy, Default)]
pub struct VendorScaled;

impl RankingAlgorithm for VendorScaled {
    fn id(&self) -> &'static str {
        "Vendor-K"
    }
    fn score_range(&self) -> ScoreRange {
        ScoreRange {
            min: 0.0,
            max: 1000.0,
        }
    }
    fn term_weight(&self, st: &TermDocStats) -> f64 {
        TfIdfCosine.term_weight(st)
    }
    fn needs_doc_norms(&self) -> bool {
        true
    }
    fn finalize(&self, scores: &mut [(DocId, f64)]) {
        let max = scores.iter().map(|(_, s)| *s).fold(0.0_f64, f64::max);
        if max > 0.0 {
            let k = 1000.0 / max;
            for (_, s) in scores.iter_mut() {
                *s *= k;
            }
        }
    }
    fn raw_score_floor(&self, _min_score: f64) -> Option<f64> {
        // `finalize` rescales by 1000 / max(raw), unknown until every
        // raw score is in — no raw floor is sound.
        None
    }
}

/// `Okapi-1`: BM25 with the textbook constants; unbounded scores.
#[derive(Debug, Clone, Copy)]
pub struct Bm25 {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization.
    pub b: f64,
}

impl Default for Bm25 {
    fn default() -> Self {
        Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl RankingAlgorithm for Bm25 {
    fn id(&self) -> &'static str {
        "Okapi-1"
    }
    fn score_range(&self) -> ScoreRange {
        ScoreRange {
            min: 0.0,
            max: f64::INFINITY,
        }
    }
    fn term_weight(&self, st: &TermDocStats) -> f64 {
        if st.tf == 0 || st.n_docs == 0 {
            return 0.0;
        }
        let n = f64::from(st.n_docs);
        let df = f64::from(st.df);
        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
        let tf = f64::from(st.tf);
        let dl = f64::from(st.doc_tokens);
        let avg = if st.avg_tokens > 0.0 {
            st.avg_tokens
        } else {
            1.0
        };
        let denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avg);
        idf * tf * (self.k1 + 1.0) / denom
    }
}

/// `Plain-1`: the crudest engine — score is the raw occurrence count.
/// This is also exactly the re-ranking formula the paper's Example 9
/// metasearcher applies ("compute a new score for each document based on
/// … the number of times that the words in the ranking expression appear
/// in the documents").
#[derive(Debug, Clone, Copy, Default)]
pub struct RawTf;

impl RankingAlgorithm for RawTf {
    fn id(&self) -> &'static str {
        "Plain-1"
    }
    fn score_range(&self) -> ScoreRange {
        ScoreRange {
            min: 0.0,
            max: f64::INFINITY,
        }
    }
    fn term_weight(&self, st: &TermDocStats) -> f64 {
        f64::from(st.tf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tf: u32, df: u32, n: u32) -> TermDocStats {
        TermDocStats {
            tf,
            df,
            n_docs: n,
            doc_tokens: 100,
            avg_tokens: 100.0,
            doc_norm: 1.0,
        }
    }

    #[test]
    fn registry() {
        for id in ["Acme-1", "Vendor-K", "Okapi-1", "Plain-1"] {
            let alg = ranking_by_id(id).expect("known id");
            assert_eq!(alg.id(), id);
        }
        assert!(ranking_by_id("Secret-9").is_none());
    }

    #[test]
    fn tfidf_monotone_in_tf_and_rarity() {
        let a = TfIdfCosine;
        assert!(a.term_weight(&stats(5, 10, 1000)) > a.term_weight(&stats(1, 10, 1000)));
        // Rarer terms weigh more (the §3.2 "databases in a CS source"
        // effect).
        assert!(a.term_weight(&stats(1, 2, 1000)) > a.term_weight(&stats(1, 500, 1000)));
        assert_eq!(a.term_weight(&stats(0, 10, 1000)), 0.0);
    }

    #[test]
    fn collection_skew_changes_weights() {
        // The same document gets different weights in different
        // collections — the heart of the rank-merging problem.
        let a = TfIdfCosine;
        let in_cs_source = a.term_weight(&stats(3, 800, 1000)); // common word
        let in_other_source = a.term_weight(&stats(3, 5, 1000)); // rare word
        assert!(in_other_source > 2.0 * in_cs_source);
    }

    #[test]
    fn vendor_finalize_pins_top_at_1000() {
        let v = VendorScaled;
        let mut scores = vec![(DocId(0), 0.2), (DocId(1), 0.5), (DocId(2), 0.1)];
        v.finalize(&mut scores);
        let max = scores.iter().map(|(_, s)| *s).fold(0.0_f64, f64::max);
        assert!((max - 1000.0).abs() < 1e-9);
        // Relative order preserved.
        assert!(scores[1].1 > scores[0].1 && scores[0].1 > scores[2].1);
    }

    #[test]
    fn vendor_finalize_empty_and_zero() {
        let v = VendorScaled;
        let mut empty: Vec<(DocId, f64)> = vec![];
        v.finalize(&mut empty);
        let mut zeros = vec![(DocId(0), 0.0)];
        v.finalize(&mut zeros);
        assert_eq!(zeros[0].1, 0.0);
    }

    #[test]
    fn bm25_saturates_in_tf() {
        let b = Bm25::default();
        let w1 = b.term_weight(&stats(1, 10, 1000));
        let w10 = b.term_weight(&stats(10, 10, 1000));
        let w100 = b.term_weight(&stats(100, 10, 1000));
        assert!(w10 > w1);
        // Saturation: the 10→100 gain is smaller than the 1→10 gain.
        assert!(w100 - w10 < w10 - w1);
    }

    #[test]
    fn bm25_length_normalization() {
        let b = Bm25::default();
        let short = TermDocStats {
            doc_tokens: 50,
            ..stats(5, 10, 1000)
        };
        let long = TermDocStats {
            doc_tokens: 500,
            ..stats(5, 10, 1000)
        };
        assert!(b.term_weight(&short) > b.term_weight(&long));
    }

    #[test]
    fn raw_tf_is_literal() {
        let r = RawTf;
        assert_eq!(r.term_weight(&stats(15, 3, 10)), 15.0);
        assert_eq!(r.term_weight(&stats(0, 3, 10)), 0.0);
    }

    #[test]
    fn score_ranges_differ_across_vendors() {
        // The §3.2 incompatibility: 0.3 at one source, 1000 at another.
        assert!(TfIdfCosine.score_range().is_bounded());
        assert_eq!(VendorScaled.score_range().max, 1000.0);
        assert!(!Bm25::default().score_range().is_bounded());
    }

    #[test]
    fn raw_score_floor_tracks_finalize() {
        // Identity-finalize algorithms pass the threshold through …
        for id in ["Acme-1", "Okapi-1", "Plain-1"] {
            let alg = ranking_by_id(id).expect("known id");
            assert_eq!(alg.raw_score_floor(0.25), Some(0.25), "{id}");
        }
        // … while Vendor-K's result-dependent rescale forbids a seed.
        assert_eq!(VendorScaled.raw_score_floor(0.25), None);
    }

    #[test]
    fn cosine_norm_divides() {
        let a = TfIdfCosine;
        let mut st = stats(4, 10, 1000);
        let unnorm = a.unnormalized_weight(&st);
        st.doc_norm = 2.0;
        assert!((a.term_weight(&st) - unnorm / 2.0).abs() < 1e-12);
    }
}
