//! Pluggable — deliberately heterogeneous — ranking algorithms.
//!
//! §3.2: "the ranking algorithms are usually proprietary to the search
//! engine vendors, and their details are not publicly available … source
//! S1 might report that document d1 has a score of 0.3 for some query,
//! while source S2 might report that document d2 has a score of 1,000 for
//! the same query." STARTS copes by making sources export a
//! `RankingAlgorithmID` and a `ScoreRange` (§4.3.1) plus per-term
//! statistics with every result (§4.2).
//!
//! We implement four algorithms with *incompatible score scales* so the
//! rank-merging problem manifests exactly as described:
//!
//! | id         | family               | score range |
//! |------------|----------------------|-------------|
//! | `Acme-1`   | tf–idf cosine        | `\[0, 1\]`    |
//! | `Vendor-K` | tf–idf, top hit wins | `\[0, 1000\]` (max-normalized) |
//! | `Okapi-1`  | BM25                 | `[0, +inf)` |
//! | `Plain-1`  | raw term frequency   | `[0, +inf)` |

use crate::doc::DocId;

/// The `ScoreRange` metadata attribute: "the minimum and maximum score
/// that a document can get for a query at the source (including -inf and
/// +inf)".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreRange {
    /// Minimum possible score.
    pub min: f64,
    /// Maximum possible score (`f64::INFINITY` for unbounded engines).
    pub max: f64,
}

impl ScoreRange {
    /// `\[0, 1\]`.
    pub fn unit() -> Self {
        ScoreRange { min: 0.0, max: 1.0 }
    }

    /// Whether the range is bounded on both sides.
    pub fn is_bounded(&self) -> bool {
        self.min.is_finite() && self.max.is_finite()
    }
}

/// Statistics available when weighting one term in one document.
#[derive(Debug, Clone, Copy)]
pub struct TermDocStats {
    /// Term frequency in the document (occurrences).
    pub tf: u32,
    /// Document frequency of the term in the collection.
    pub df: u32,
    /// Number of documents in the collection.
    pub n_docs: u32,
    /// Tokens in this document.
    pub doc_tokens: u32,
    /// Mean tokens per document.
    pub avg_tokens: f64,
    /// Precomputed document norm under this algorithm (1.0 if unused).
    pub doc_norm: f64,
}

/// A term weighter with every per-(term, collection) constant already
/// folded — the hot loops' replacement for repeated
/// [`RankingAlgorithm::term_weight`] calls, which pay the idf
/// logarithm and a virtual dispatch on every document. Constructed
/// once per query leaf via [`RankingAlgorithm::prepare`]; for the same
/// statistics, [`PreparedWeight::weight`] returns *bit-identical*
/// results to `term_weight` — the folded constants are computed by the
/// same expressions, and the residual arithmetic keeps the exact
/// operation order (enforced by the pruned-equals-naive property
/// suites, which score the pruned path through prepared weights and
/// the naive path through `term_weight`).
#[derive(Debug, Clone, Copy)]
pub enum PreparedWeight {
    /// The tf–idf cosine family (`Acme-1`, `Vendor-K`): `idf` is
    /// `ln(1 + N/df)`; the per-call work is the tf saturation (skipped
    /// entirely for the overwhelmingly common `tf == 1`, where
    /// `1 + ln 1` is exactly `1.0`) and the cosine norm division.
    TfIdf {
        /// `ln(1 + N/df)`.
        idf: f64,
    },
    /// BM25 (`Okapi-1`): Robertson idf plus the document-length
    /// normalization constants.
    Bm25 {
        /// `ln((N - df + 0.5) / (df + 0.5) + 1)`.
        idf: f64,
        /// Term-frequency saturation `k1`.
        k1: f64,
        /// Length normalization `b`.
        b: f64,
        /// `k1 + 1`, folded.
        k1p1: f64,
        /// Mean tokens per document (1.0 when the collection reports
        /// none — the same fallback `term_weight` applies per call).
        avg: f64,
    },
    /// Raw term frequency (`Plain-1`).
    RawTf,
    /// Degenerate statistics (`df == 0` or `N == 0`): always zero.
    Zero,
}

/// `1 + ln tf` for every small term frequency, filled once by the
/// exact expression the fallback below evaluates — so indexing the
/// table is bit-identical to computing inline, it just skips the
/// logarithm call that otherwise dominates hot-loop scoring. Slot 0
/// holds `-inf` and is never read (`tf == 0` returns early).
static TF_PART: std::sync::LazyLock<[f64; 256]> = std::sync::LazyLock::new(|| {
    let mut table = [0.0_f64; 256];
    for (tf, slot) in table.iter_mut().enumerate() {
        *slot = 1.0 + (tf as f64).ln();
    }
    table
});

impl PreparedWeight {
    /// The weight of a term occurring `tf` times in a document of
    /// `doc_tokens` tokens with precomputed norm `doc_norm` —
    /// bit-identical to the `term_weight` call it replaces.
    #[inline]
    pub fn weight(&self, tf: u32, doc_tokens: u32, doc_norm: f64) -> f64 {
        match *self {
            PreparedWeight::Zero => 0.0,
            PreparedWeight::RawTf => f64::from(tf),
            PreparedWeight::TfIdf { idf } => {
                if tf == 0 {
                    return 0.0;
                }
                let tf_part = if tf == 1 {
                    1.0
                } else if let Some(&t) = TF_PART.get(tf as usize) {
                    t
                } else {
                    1.0 + f64::from(tf).ln()
                };
                let w = tf_part * idf;
                if doc_norm > 0.0 {
                    w / doc_norm
                } else {
                    w
                }
            }
            PreparedWeight::Bm25 {
                idf,
                k1,
                b,
                k1p1,
                avg,
            } => {
                if tf == 0 {
                    return 0.0;
                }
                let tf = f64::from(tf);
                let dl = f64::from(doc_tokens);
                let denom = tf + k1 * (1.0 - b + b * dl / avg);
                idf * tf * k1p1 / denom
            }
        }
    }
}

/// A ranking algorithm: the engine's proprietary scoring.
pub trait RankingAlgorithm: Send + Sync {
    /// The `RankingAlgorithmID` exported in source metadata.
    fn id(&self) -> &'static str;

    /// The `ScoreRange` exported in source metadata.
    fn score_range(&self) -> ScoreRange;

    /// The weight of a term in a document — exported as `Term-weight` in
    /// the per-document `TermStats` of query results (§4.2: "the
    /// normalized tf.idf weight … or whatever other weighing of terms in
    /// documents the search engine might use").
    fn term_weight(&self, st: &TermDocStats) -> f64;

    /// Fold this algorithm's per-(term, collection) constants into a
    /// [`PreparedWeight`] whose [`weight`] is bit-identical to
    /// [`term_weight`] for any `(tf, doc_tokens, doc_norm)`. Returns
    /// `None` (the default) when no folded form exists; callers then
    /// keep calling `term_weight`.
    ///
    /// [`weight`]: PreparedWeight::weight
    /// [`term_weight`]: RankingAlgorithm::term_weight
    fn prepare(&self, _df: u32, _n_docs: u32, _avg_tokens: f64) -> Option<PreparedWeight> {
        None
    }

    /// Raw (un-normalized) weight used when accumulating document norms;
    /// defaults to `term_weight` with norm 1.
    fn unnormalized_weight(&self, st: &TermDocStats) -> f64 {
        let mut st = *st;
        st.doc_norm = 1.0;
        self.term_weight(&st)
    }

    /// Whether document norms must be precomputed (cosine-style).
    fn needs_doc_norms(&self) -> bool {
        false
    }

    /// Post-process the complete score list (e.g. rescale so the top
    /// document always gets the vendor's signature score).
    fn finalize(&self, _scores: &mut [(DocId, f64)]) {}

    /// Map a final-score threshold (the `min-doc-score` filter, applied
    /// after [`RankingAlgorithm::finalize`]) to a raw-score floor the
    /// bounded evaluators may seed their selection with: raw scores
    /// below the returned floor can never finalize to `min_score` or
    /// more. Algorithms with an identity `finalize` return the
    /// threshold unchanged; algorithms whose `finalize` rescales by a
    /// result-dependent factor must return `None`, disabling the seed.
    fn raw_score_floor(&self, min_score: f64) -> Option<f64> {
        Some(min_score)
    }
}

/// Resolve a `RankingAlgorithmID` to an implementation. Unknown ids — the
/// common case for a metasearcher facing a new vendor — return `None`.
pub fn ranking_by_id(id: &str) -> Option<Box<dyn RankingAlgorithm>> {
    match id {
        "Acme-1" => Some(Box::new(TfIdfCosine)),
        "Vendor-K" => Some(Box::new(VendorScaled)),
        "Okapi-1" => Some(Box::new(Bm25::default())),
        "Plain-1" => Some(Box::new(RawTf)),
        _ => None,
    }
}

/// `Acme-1`: tf–idf with cosine document normalization; scores in \[0,1\].
#[derive(Debug, Clone, Copy, Default)]
pub struct TfIdfCosine;

fn tfidf_raw(st: &TermDocStats) -> f64 {
    if st.tf == 0 || st.df == 0 || st.n_docs == 0 {
        return 0.0;
    }
    let tf = 1.0 + f64::from(st.tf).ln();
    let idf = (1.0 + f64::from(st.n_docs) / f64::from(st.df)).ln();
    tf * idf
}

impl RankingAlgorithm for TfIdfCosine {
    fn id(&self) -> &'static str {
        "Acme-1"
    }
    fn score_range(&self) -> ScoreRange {
        ScoreRange::unit()
    }
    fn term_weight(&self, st: &TermDocStats) -> f64 {
        let w = tfidf_raw(st);
        if st.doc_norm > 0.0 {
            w / st.doc_norm
        } else {
            w
        }
    }
    fn prepare(&self, df: u32, n_docs: u32, _avg_tokens: f64) -> Option<PreparedWeight> {
        if df == 0 || n_docs == 0 {
            return Some(PreparedWeight::Zero);
        }
        let idf = (1.0 + f64::from(n_docs) / f64::from(df)).ln();
        Some(PreparedWeight::TfIdf { idf })
    }
    fn needs_doc_norms(&self) -> bool {
        true
    }
}

/// `Vendor-K`: the §3.2 example engine — "designed so that the top
/// document for a query always has a score of, say, 1,000". Internally
/// tf–idf cosine; finalize rescales the best hit to exactly 1000.
#[derive(Debug, Clone, Copy, Default)]
pub struct VendorScaled;

impl RankingAlgorithm for VendorScaled {
    fn id(&self) -> &'static str {
        "Vendor-K"
    }
    fn score_range(&self) -> ScoreRange {
        ScoreRange {
            min: 0.0,
            max: 1000.0,
        }
    }
    fn term_weight(&self, st: &TermDocStats) -> f64 {
        TfIdfCosine.term_weight(st)
    }
    fn prepare(&self, df: u32, n_docs: u32, avg_tokens: f64) -> Option<PreparedWeight> {
        TfIdfCosine.prepare(df, n_docs, avg_tokens)
    }
    fn needs_doc_norms(&self) -> bool {
        true
    }
    fn finalize(&self, scores: &mut [(DocId, f64)]) {
        let max = scores.iter().map(|(_, s)| *s).fold(0.0_f64, f64::max);
        if max > 0.0 {
            let k = 1000.0 / max;
            for (_, s) in scores.iter_mut() {
                *s *= k;
            }
        }
    }
    fn raw_score_floor(&self, _min_score: f64) -> Option<f64> {
        // `finalize` rescales by 1000 / max(raw), unknown until every
        // raw score is in — no raw floor is sound.
        None
    }
}

/// `Okapi-1`: BM25 with the textbook constants; unbounded scores.
#[derive(Debug, Clone, Copy)]
pub struct Bm25 {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization.
    pub b: f64,
}

impl Default for Bm25 {
    fn default() -> Self {
        Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl RankingAlgorithm for Bm25 {
    fn id(&self) -> &'static str {
        "Okapi-1"
    }
    fn score_range(&self) -> ScoreRange {
        ScoreRange {
            min: 0.0,
            max: f64::INFINITY,
        }
    }
    fn term_weight(&self, st: &TermDocStats) -> f64 {
        if st.tf == 0 || st.n_docs == 0 {
            return 0.0;
        }
        let n = f64::from(st.n_docs);
        let df = f64::from(st.df);
        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
        let tf = f64::from(st.tf);
        let dl = f64::from(st.doc_tokens);
        let avg = if st.avg_tokens > 0.0 {
            st.avg_tokens
        } else {
            1.0
        };
        let denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avg);
        idf * tf * (self.k1 + 1.0) / denom
    }
    fn prepare(&self, df: u32, n_docs: u32, avg_tokens: f64) -> Option<PreparedWeight> {
        if n_docs == 0 {
            return Some(PreparedWeight::Zero);
        }
        let n = f64::from(n_docs);
        let dff = f64::from(df);
        Some(PreparedWeight::Bm25 {
            idf: ((n - dff + 0.5) / (dff + 0.5) + 1.0).ln(),
            k1: self.k1,
            b: self.b,
            k1p1: self.k1 + 1.0,
            avg: if avg_tokens > 0.0 { avg_tokens } else { 1.0 },
        })
    }
}

/// `Plain-1`: the crudest engine — score is the raw occurrence count.
/// This is also exactly the re-ranking formula the paper's Example 9
/// metasearcher applies ("compute a new score for each document based on
/// … the number of times that the words in the ranking expression appear
/// in the documents").
#[derive(Debug, Clone, Copy, Default)]
pub struct RawTf;

impl RankingAlgorithm for RawTf {
    fn id(&self) -> &'static str {
        "Plain-1"
    }
    fn score_range(&self) -> ScoreRange {
        ScoreRange {
            min: 0.0,
            max: f64::INFINITY,
        }
    }
    fn term_weight(&self, st: &TermDocStats) -> f64 {
        f64::from(st.tf)
    }
    fn prepare(&self, _df: u32, _n_docs: u32, _avg_tokens: f64) -> Option<PreparedWeight> {
        Some(PreparedWeight::RawTf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tf: u32, df: u32, n: u32) -> TermDocStats {
        TermDocStats {
            tf,
            df,
            n_docs: n,
            doc_tokens: 100,
            avg_tokens: 100.0,
            doc_norm: 1.0,
        }
    }

    #[test]
    fn registry() {
        for id in ["Acme-1", "Vendor-K", "Okapi-1", "Plain-1"] {
            let alg = ranking_by_id(id).expect("known id");
            assert_eq!(alg.id(), id);
        }
        assert!(ranking_by_id("Secret-9").is_none());
    }

    #[test]
    fn tfidf_monotone_in_tf_and_rarity() {
        let a = TfIdfCosine;
        assert!(a.term_weight(&stats(5, 10, 1000)) > a.term_weight(&stats(1, 10, 1000)));
        // Rarer terms weigh more (the §3.2 "databases in a CS source"
        // effect).
        assert!(a.term_weight(&stats(1, 2, 1000)) > a.term_weight(&stats(1, 500, 1000)));
        assert_eq!(a.term_weight(&stats(0, 10, 1000)), 0.0);
    }

    #[test]
    fn collection_skew_changes_weights() {
        // The same document gets different weights in different
        // collections — the heart of the rank-merging problem.
        let a = TfIdfCosine;
        let in_cs_source = a.term_weight(&stats(3, 800, 1000)); // common word
        let in_other_source = a.term_weight(&stats(3, 5, 1000)); // rare word
        assert!(in_other_source > 2.0 * in_cs_source);
    }

    #[test]
    fn vendor_finalize_pins_top_at_1000() {
        let v = VendorScaled;
        let mut scores = vec![(DocId(0), 0.2), (DocId(1), 0.5), (DocId(2), 0.1)];
        v.finalize(&mut scores);
        let max = scores.iter().map(|(_, s)| *s).fold(0.0_f64, f64::max);
        assert!((max - 1000.0).abs() < 1e-9);
        // Relative order preserved.
        assert!(scores[1].1 > scores[0].1 && scores[0].1 > scores[2].1);
    }

    #[test]
    fn vendor_finalize_empty_and_zero() {
        let v = VendorScaled;
        let mut empty: Vec<(DocId, f64)> = vec![];
        v.finalize(&mut empty);
        let mut zeros = vec![(DocId(0), 0.0)];
        v.finalize(&mut zeros);
        assert_eq!(zeros[0].1, 0.0);
    }

    #[test]
    fn bm25_saturates_in_tf() {
        let b = Bm25::default();
        let w1 = b.term_weight(&stats(1, 10, 1000));
        let w10 = b.term_weight(&stats(10, 10, 1000));
        let w100 = b.term_weight(&stats(100, 10, 1000));
        assert!(w10 > w1);
        // Saturation: the 10→100 gain is smaller than the 1→10 gain.
        assert!(w100 - w10 < w10 - w1);
    }

    #[test]
    fn bm25_length_normalization() {
        let b = Bm25::default();
        let short = TermDocStats {
            doc_tokens: 50,
            ..stats(5, 10, 1000)
        };
        let long = TermDocStats {
            doc_tokens: 500,
            ..stats(5, 10, 1000)
        };
        assert!(b.term_weight(&short) > b.term_weight(&long));
    }

    #[test]
    fn raw_tf_is_literal() {
        let r = RawTf;
        assert_eq!(r.term_weight(&stats(15, 3, 10)), 15.0);
        assert_eq!(r.term_weight(&stats(0, 3, 10)), 0.0);
    }

    #[test]
    fn score_ranges_differ_across_vendors() {
        // The §3.2 incompatibility: 0.3 at one source, 1000 at another.
        assert!(TfIdfCosine.score_range().is_bounded());
        assert_eq!(VendorScaled.score_range().max, 1000.0);
        assert!(!Bm25::default().score_range().is_bounded());
    }

    #[test]
    fn raw_score_floor_tracks_finalize() {
        // Identity-finalize algorithms pass the threshold through …
        for id in ["Acme-1", "Okapi-1", "Plain-1"] {
            let alg = ranking_by_id(id).expect("known id");
            assert_eq!(alg.raw_score_floor(0.25), Some(0.25), "{id}");
        }
        // … while Vendor-K's result-dependent rescale forbids a seed.
        assert_eq!(VendorScaled.raw_score_floor(0.25), None);
    }

    #[test]
    fn prepared_weight_is_bit_identical() {
        // Every built-in algorithm folds, and the folded weight matches
        // `term_weight` to the last bit across a grid spanning the tf
        // table, its overflow fallback, zero/degenerate statistics, and
        // both norm branches.
        for id in ["Acme-1", "Vendor-K", "Okapi-1", "Plain-1"] {
            let alg = ranking_by_id(id).expect("known id");
            for n_docs in [0u32, 1, 17, 4800] {
                for df in [0u32, 1, 9, 4800] {
                    for avg_tokens in [0.0, 57.3] {
                        let p = alg
                            .prepare(df, n_docs, avg_tokens)
                            .expect("built-ins always fold");
                        for tf in [0u32, 1, 2, 7, 255, 256, 100_000] {
                            for doc_tokens in [0u32, 25, 500] {
                                for doc_norm in [0.0, 1.0, 2.625] {
                                    let st = TermDocStats {
                                        tf,
                                        df,
                                        n_docs,
                                        doc_tokens,
                                        avg_tokens,
                                        doc_norm,
                                    };
                                    assert_eq!(
                                        alg.term_weight(&st).to_bits(),
                                        p.weight(tf, doc_tokens, doc_norm).to_bits(),
                                        "{id} {st:?}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cosine_norm_divides() {
        let a = TfIdfCosine;
        let mut st = stats(4, 10, 1000);
        let unnorm = a.unnormalized_weight(&st);
        st.doc_norm = 2.0;
        assert!((a.term_weight(&st) - unnorm / 2.0).abs() < 1e-12);
    }
}
