//! The inverted index and its builder.
//!
//! Since the block codec became the primary doc/tf store, a posting
//! list is a [`BlockPostings`] stream (always present, always what
//! search evaluates) plus an optional *positional arena* — a compact
//! `offsets`/`positions` pair consulted only by `prox` and stats
//! reporting. Engines whose queries can never reach `prox` build with
//! [`PositionsMode::None`] and store no positions at all.

use std::collections::{BTreeSet, HashMap};

use starts_text::{Analyzer, LangTag};

use crate::blocks::BlockPostings;
use crate::doc::{DocId, Document};
use crate::schema::{FieldId, Schema, ANY_FIELD};

/// Position gap inserted between separate field instances so that `prox`
/// never matches across a field boundary (§4.1.1's word-distance prox is
/// defined within running text).
const FIELD_GAP: u32 = 100;

/// Interned term identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TermId(pub u32);

/// Whether an index keeps token positions next to its block postings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PositionsMode {
    /// Keep the positional arena for every field (the default): `prox`
    /// filters on real word distances.
    #[default]
    All,
    /// Store no positions. Ranking and Boolean evaluation are
    /// unaffected (they only read the block postings); `prox` degrades
    /// to plain document intersection, the honest capability of a
    /// source without a positional index.
    None,
}

/// The positional arena of one posting list: all position lists
/// back-to-back in one `u32` buffer, fenced by `offsets` (one entry per
/// posting plus a final end fence). Replaces the former per-posting
/// `Vec<u32>` representation at a fraction of the memory.
#[derive(Debug, Clone, Default)]
struct PositionalArena {
    offsets: Vec<u32>,
    positions: Vec<u32>,
}

impl PositionalArena {
    fn slice(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.positions[lo..hi]
    }

    fn bytes(&self) -> u64 {
        ((self.offsets.len() + self.positions.len()) * std::mem::size_of::<u32>()) as u64
    }
}

/// One term's posting list: the block-compressed `(doc, tf)` stream all
/// evaluation runs on, plus the optional positional arena for `prox`.
#[derive(Debug, Clone, Default)]
pub struct PostingsList {
    blocks: BlockPostings,
    positions: Option<PositionalArena>,
}

impl PostingsList {
    /// Number of postings (documents) in the list.
    pub fn len(&self) -> usize {
        self.blocks.len() as usize
    }

    /// Whether the list holds no postings.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block-compressed stream (the store cursors seek over).
    pub fn blocks(&self) -> &BlockPostings {
        &self.blocks
    }

    /// Sum of term frequencies across the list (the content summary's
    /// "total number of postings").
    pub fn total_tf(&self) -> u64 {
        self.blocks.total_tf()
    }

    /// Iterate the `(doc, tf)` pairs in doc order, decoding block by
    /// block.
    pub fn docs_tfs(&self) -> PostingsIter<'_> {
        PostingsIter::new(&self.blocks)
    }

    /// Iterate the doc ids in order.
    pub fn docs(&self) -> impl Iterator<Item = DocId> + '_ {
        self.docs_tfs().map(|(doc, _)| doc)
    }

    /// Locate a document: its posting index and term frequency. Seeks
    /// by block header and decodes only the landing block.
    pub fn find(&self, doc: DocId) -> Option<(usize, u32)> {
        let n = self.blocks.n_blocks();
        if n == 0 {
            return None;
        }
        // Binary search the header fence posts for the landing block.
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.blocks.header(mid).max_doc < doc.0 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let b = lo;
        if b == n {
            return None;
        }
        let mut docs = Vec::new();
        let mut tfs = Vec::new();
        self.blocks.decode_block(b, &mut docs, &mut tfs);
        let i = docs.binary_search(&doc.0).ok()?;
        Some((b * crate::blocks::BLOCK_DOCS + i, tfs[i]))
    }

    /// Term frequency of a document, 0 when absent.
    pub fn tf_of(&self, doc: DocId) -> u32 {
        self.find(doc).map_or(0, |(_, tf)| tf)
    }

    /// Whether this list carries token positions.
    pub fn has_positions(&self) -> bool {
        self.positions.is_some()
    }

    /// Sorted token positions of the `i`-th posting; empty when the
    /// index was built without positions.
    pub fn positions_at(&self, i: usize) -> &[u32] {
        self.positions.as_ref().map_or(&[], |a| a.slice(i))
    }

    /// Bytes held by the positional arena (0 without positions).
    pub fn positional_bytes(&self) -> u64 {
        self.positions.as_ref().map_or(0, PositionalArena::bytes)
    }
}

/// Block-decoding iterator over a posting list's `(doc, tf)` pairs.
#[derive(Debug)]
pub struct PostingsIter<'a> {
    list: &'a BlockPostings,
    block: usize,
    pos: usize,
    docs: Vec<u32>,
    tfs: Vec<u32>,
}

impl<'a> PostingsIter<'a> {
    fn new(list: &'a BlockPostings) -> Self {
        let mut it = PostingsIter {
            list,
            block: 0,
            pos: 0,
            docs: Vec::new(),
            tfs: Vec::new(),
        };
        if list.n_blocks() > 0 {
            list.decode_block(0, &mut it.docs, &mut it.tfs);
        }
        it
    }
}

impl Iterator for PostingsIter<'_> {
    type Item = (DocId, u32);

    fn next(&mut self) -> Option<(DocId, u32)> {
        if self.block >= self.list.n_blocks() {
            return None;
        }
        let out = (DocId(self.docs[self.pos]), self.tfs[self.pos]);
        self.pos += 1;
        if self.pos == self.docs.len() {
            self.block += 1;
            self.pos = 0;
            if self.block < self.list.n_blocks() {
                self.list
                    .decode_block(self.block, &mut self.docs, &mut self.tfs);
            }
        }
        Some(out)
    }
}

/// A stored document: field values plus the statistics STARTS results
/// report (`DocSize`, `DocCount`).
#[derive(Debug, Clone)]
pub(crate) struct StoredDoc {
    pub fields: Vec<(FieldId, String, Option<LangTag>)>,
    /// Number of tokens in the document ("the number of tokens (as
    /// determined by the source)" — `DocCount`).
    pub token_count: u32,
    /// Total byte size of the document text (`DocSize` reports KBytes).
    pub byte_size: u32,
}

/// The recorded term-weight envelope of one `(field, term)` key: the
/// float max/min of the ranking algorithm's `term_weight` across the
/// key's postings.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TermBound {
    /// Float max of the key's term weights.
    pub max: f64,
    /// Float min — pruning demands non-negative weights, so a negative
    /// (or non-finite) envelope disables the bound for its key.
    pub min: f64,
}

/// Per-`(field, term)` extrema of the ranking algorithm's term weights
/// over one index's postings — the build-time sidecar behind the
/// engine's dynamic pruning (see `docs/performance.md`). For a shard of
/// a sharded collection the weights are computed against the *global*
/// collection statistics, so each recorded maximum is the float max of
/// exactly the weight values query-time scoring can produce for that
/// key on this shard; a leaf's upper bound therefore holds without any
/// epsilon.
#[derive(Debug, Default)]
pub struct TermBounds {
    bounds: HashMap<(FieldId, TermId), TermBound>,
    /// Per-block maxima of the same weights, one entry per 128-doc block
    /// of the key's posting list (see [`crate::blocks::BLOCK_DOCS`]) —
    /// the "block-max" side of Block-Max-WAND. Each value is the float
    /// max of the exact weights of its block only, so it is usually far
    /// tighter than the whole-list `max` above.
    block_max: HashMap<(FieldId, TermId), Vec<f64>>,
}

impl TermBounds {
    /// Record the envelope for one key.
    pub(crate) fn insert(&mut self, field: FieldId, term: TermId, bound: TermBound) {
        self.bounds.insert((field, term), bound);
    }

    /// The envelope recorded for a key, if any.
    pub(crate) fn get(&self, field: FieldId, term: TermId) -> Option<TermBound> {
        self.bounds.get(&(field, term)).copied()
    }

    /// Record the per-block weight maxima for one key.
    pub(crate) fn insert_block_max(&mut self, field: FieldId, term: TermId, maxima: Vec<f64>) {
        self.block_max.insert((field, term), maxima);
    }

    /// The per-block weight maxima recorded for a key, if any.
    pub(crate) fn block_maxima(&self, field: FieldId, term: TermId) -> Option<&[f64]> {
        self.block_max.get(&(field, term)).map(Vec::as_slice)
    }
}

/// Memory accounting for an index's posting storage, split by
/// representation so the block codec's compression win — and the
/// positional diet — stay measurable (`Index::postings_footprint`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostingsFootprint {
    /// Number of posting lists (distinct `(field, term)` keys).
    pub lists: u64,
    /// Lists that carry a positional arena (0 under
    /// [`PositionsMode::None`]).
    pub positional_lists: u64,
    /// Total postings across all lists.
    pub postings: u64,
    /// Bytes held by the positional arenas (offsets + positions).
    pub positional_bytes: u64,
    /// Bytes held by the bit-packed block streams, headers included.
    pub block_bytes: u64,
}

impl PostingsFootprint {
    /// Fold another footprint into this one (shard aggregation).
    pub fn merge(&mut self, other: &PostingsFootprint) {
        self.lists += other.lists;
        self.positional_lists += other.positional_lists;
        self.postings += other.postings;
        self.positional_bytes += other.positional_bytes;
        self.block_bytes += other.block_bytes;
    }
}

/// An immutable, fully-built index.
#[derive(Debug)]
pub struct Index {
    schema: Schema,
    analyzer: Analyzer,
    terms: Vec<String>,
    vocab: HashMap<String, TermId>,
    postings: HashMap<(FieldId, TermId), PostingsList>,
    docs: Vec<StoredDoc>,
    total_tokens: u64,
    /// Languages observed per field, for metadata export.
    field_langs: HashMap<FieldId, BTreeSet<LangTag>>,
    positions_stored: bool,
}

/// Build-time accumulation for one posting list: columnar doc/tf plus
/// the flat position stream (empty under [`PositionsMode::None`]).
/// Documents arrive in increasing order and positions in increasing
/// order within a document, so everything is append-only.
#[derive(Debug, Default)]
struct ScratchList {
    docs: Vec<u32>,
    tfs: Vec<u32>,
    positions: Vec<u32>,
}

/// Mutable index construction.
#[derive(Debug)]
pub struct IndexBuilder {
    inner: Index,
    scratch: HashMap<(FieldId, TermId), ScratchList>,
    store_positions: bool,
}

impl IndexBuilder {
    /// Start building with the engine's analyzer (the source's whole text
    /// pipeline: tokenizer, case mode, stemming, stop list).
    pub fn new(analyzer: Analyzer) -> Self {
        IndexBuilder::with_schema(analyzer, Schema::new())
    }

    /// Start building with a pre-interned schema. Shard builders use this
    /// so that every shard of a [`crate::ShardedEngine`] assigns the same
    /// `FieldId` to the same field name, letting per-shard statistics be
    /// merged by id.
    pub fn with_schema(analyzer: Analyzer, schema: Schema) -> Self {
        IndexBuilder {
            inner: Index {
                schema,
                analyzer,
                terms: Vec::new(),
                vocab: HashMap::new(),
                postings: HashMap::new(),
                docs: Vec::new(),
                total_tokens: 0,
                field_langs: HashMap::new(),
                positions_stored: true,
            },
            scratch: HashMap::new(),
            store_positions: true,
        }
    }

    /// Select whether token positions are stored
    /// ([`PositionsMode::All`], the default) or retired entirely
    /// ([`PositionsMode::None`]).
    pub fn positions(mut self, mode: PositionsMode) -> Self {
        self.store_positions = mode == PositionsMode::All;
        self.inner.positions_stored = self.store_positions;
        self
    }

    /// Add a document; returns its id. Every token is indexed under its
    /// field and under the `Any` pseudo-field (with document-global
    /// positions, so unfielded `prox` works).
    pub fn add(&mut self, doc: &Document) -> DocId {
        let idx = &mut self.inner;
        let doc_id = DocId(idx.docs.len() as u32);
        let mut stored = Vec::with_capacity(doc.fields().len());
        let mut token_count: u32 = 0;
        let mut byte_size: u32 = 0;
        // Per-field position bases (repeated fields continue with a gap).
        let mut field_base: HashMap<FieldId, u32> = HashMap::new();
        let mut global_base: u32 = 0;
        for fv in doc.fields() {
            let fid = idx.schema.intern(&fv.name);
            byte_size += fv.text.len() as u32;
            if let Some(lang) = &fv.lang {
                idx.field_langs.entry(fid).or_default().insert(lang.clone());
                idx.field_langs
                    .entry(ANY_FIELD)
                    .or_default()
                    .insert(lang.clone());
            }
            // Borrowed tokens: no per-token String allocation — terms
            // only get copied on a vocabulary miss inside `intern_term`.
            let tokens = idx.analyzer.analyze_borrowed(&fv.text);
            let fbase = *field_base.get(&fid).unwrap_or(&0);
            let mut max_pos = 0u32;
            for (term, position) in &tokens {
                max_pos = max_pos.max(*position);
                token_count += 1;
                let tid = intern_term(&mut idx.vocab, &mut idx.terms, term);
                push_position(
                    &mut self.scratch,
                    (fid, tid),
                    doc_id,
                    fbase + position,
                    self.store_positions,
                );
                push_position(
                    &mut self.scratch,
                    (ANY_FIELD, tid),
                    doc_id,
                    global_base + position,
                    self.store_positions,
                );
            }
            let advance = if tokens.is_empty() { 0 } else { max_pos + 1 };
            field_base.insert(fid, fbase + advance + FIELD_GAP);
            global_base += advance + FIELD_GAP;
            stored.push((fid, fv.text.clone(), fv.lang.clone()));
        }
        idx.total_tokens += u64::from(token_count);
        idx.docs.push(StoredDoc {
            fields: stored,
            token_count,
            byte_size,
        });
        doc_id
    }

    /// Finish building: bit-pack each accumulated list into 128-doc
    /// blocks (the store all evaluation runs on) and freeze the flat
    /// position streams into per-list arenas — or drop them under
    /// [`PositionsMode::None`].
    pub fn build(self) -> Index {
        let mut index = self.inner;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (key, scratch) in self.scratch {
            pairs.clear();
            pairs.extend(
                scratch
                    .docs
                    .iter()
                    .copied()
                    .zip(scratch.tfs.iter().copied()),
            );
            let blocks = BlockPostings::encode(&pairs);
            let positions = self.store_positions.then(|| {
                let mut offsets = Vec::with_capacity(scratch.tfs.len() + 1);
                let mut acc = 0u32;
                offsets.push(0);
                for &tf in &scratch.tfs {
                    acc = acc
                        .checked_add(tf)
                        .expect("position arena longer than the u32 offset space");
                    offsets.push(acc);
                }
                PositionalArena {
                    offsets,
                    positions: scratch.positions,
                }
            });
            index
                .postings
                .insert(key, PostingsList { blocks, positions });
        }
        index
    }
}

fn intern_term(vocab: &mut HashMap<String, TermId>, terms: &mut Vec<String>, term: &str) -> TermId {
    if let Some(&tid) = vocab.get(term) {
        return tid;
    }
    let tid = TermId(terms.len() as u32);
    terms.push(term.to_string());
    vocab.insert(term.to_string(), tid);
    tid
}

fn push_position(
    scratch: &mut HashMap<(FieldId, TermId), ScratchList>,
    key: (FieldId, TermId),
    doc: DocId,
    position: u32,
    store_positions: bool,
) {
    let list = scratch.entry(key).or_default();
    match list.docs.last() {
        Some(&last) if last == doc.0 => *list.tfs.last_mut().unwrap() += 1,
        _ => {
            list.docs.push(doc.0);
            list.tfs.push(1);
        }
    }
    if store_positions {
        list.positions.push(position);
    }
}

impl Index {
    /// The field schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The engine's analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Number of documents (the content summary's `NumDocs`).
    pub fn n_docs(&self) -> u32 {
        self.docs.len() as u32
    }

    /// Total tokens across all documents.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Mean document length in tokens (for BM25-style rankers).
    pub fn avg_doc_tokens(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_tokens as f64 / self.docs.len() as f64
        }
    }

    /// Token count of one document (`DocCount`).
    pub fn doc_token_count(&self, doc: DocId) -> u32 {
        self.docs[doc.0 as usize].token_count
    }

    /// Byte size of one document (`DocSize` is this, reported in KBytes).
    pub fn doc_byte_size(&self, doc: DocId) -> u32 {
        self.docs[doc.0 as usize].byte_size
    }

    /// Stored field values of a document, in insertion order.
    pub fn doc_fields(&self, doc: DocId) -> impl Iterator<Item = (&str, &str, Option<&LangTag>)> {
        self.docs[doc.0 as usize]
            .fields
            .iter()
            .map(|(fid, text, lang)| (self.schema.name(*fid), text.as_str(), lang.as_ref()))
    }

    /// First stored value of the named field for a document.
    pub fn doc_field(&self, doc: DocId, field: FieldId) -> Option<&str> {
        self.docs[doc.0 as usize]
            .fields
            .iter()
            .find(|(fid, _, _)| *fid == field)
            .map(|(_, text, _)| text.as_str())
    }

    /// Whether this index stores token positions ([`PositionsMode`]).
    pub fn has_positions(&self) -> bool {
        self.positions_stored
    }

    /// The posting list for a (field, term) pair. The term must be in
    /// index-normalized form (the caller normalizes via the analyzer).
    pub fn postings(&self, field: FieldId, term: &str) -> Option<&PostingsList> {
        let tid = self.vocab.get(term)?;
        self.postings.get(&(field, *tid))
    }

    /// Document frequency of a term in a field (`Document-frequency`).
    /// Doc ids are `u32`, so a list can never exceed `u32::MAX` entries;
    /// the checked conversion turns a broken invariant into a loud
    /// panic instead of a silent truncation.
    pub fn df(&self, field: FieldId, term: &str) -> u32 {
        self.postings(field, term).map_or(0, |p| {
            u32::try_from(p.len()).expect("posting list longer than the u32 doc-id space")
        })
    }

    /// Total postings (sum of tf over docs) of a term in a field — the
    /// content summary's "total number of postings" statistic.
    pub fn total_postings(&self, field: FieldId, term: &str) -> u64 {
        self.postings(field, term).map_or(0, PostingsList::total_tf)
    }

    /// Iterate the vocabulary of a field: `(term, postings)`.
    pub fn field_vocabulary(
        &self,
        field: FieldId,
    ) -> impl Iterator<Item = (&str, &PostingsList)> + '_ {
        self.postings
            .iter()
            .filter(move |((fid, _), _)| *fid == field)
            .map(|((_, tid), list)| (self.terms[tid.0 as usize].as_str(), list))
    }

    /// Languages observed in a field's values.
    pub fn field_languages(&self, field: FieldId) -> Vec<LangTag> {
        self.field_langs
            .get(&field)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Distinct terms in the index (vocabulary size).
    pub fn vocabulary_size(&self) -> usize {
        self.terms.len()
    }

    /// All document ids.
    pub fn all_docs(&self) -> impl Iterator<Item = DocId> {
        (0..self.docs.len() as u32).map(DocId)
    }

    /// Every `(field, term id, term, postings)` tuple in the index, in
    /// arbitrary order — the raw feed for merging per-shard document
    /// frequencies into global collection statistics and for building
    /// the [`TermBounds`] pruning sidecar.
    pub(crate) fn all_postings(
        &self,
    ) -> impl Iterator<Item = (FieldId, TermId, &str, &PostingsList)> + '_ {
        self.postings
            .iter()
            .map(|((fid, tid), list)| (*fid, *tid, self.terms[tid.0 as usize].as_str(), list))
    }

    /// The interned id of an index-normalized term, if present.
    pub(crate) fn term_id(&self, term: &str) -> Option<TermId> {
        self.vocab.get(term).copied()
    }

    /// The posting list of an interned key, if present.
    pub(crate) fn postings_by_id(&self, field: FieldId, term: TermId) -> Option<&PostingsList> {
        self.postings.get(&(field, term))
    }

    /// Memory held by posting storage, split into the bit-packed block
    /// streams and the positional arenas, so both the codec's
    /// compression ratio and the positional diet are directly
    /// observable.
    pub fn postings_footprint(&self) -> PostingsFootprint {
        let mut fp = PostingsFootprint::default();
        for list in self.postings.values() {
            fp.lists += 1;
            fp.postings += list.len() as u64;
            fp.block_bytes += list.blocks.bytes();
            if list.has_positions() {
                fp.positional_lists += 1;
                fp.positional_bytes += list.positional_bytes();
            }
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_text::{Analyzer, AnalyzerConfig, StopWordList};

    fn plain_analyzer() -> Analyzer {
        Analyzer::new(AnalyzerConfig {
            stop_words: StopWordList::none(),
            ..AnalyzerConfig::default()
        })
    }

    fn small_index() -> Index {
        let mut b = IndexBuilder::new(plain_analyzer());
        b.add(
            &Document::new()
                .field("title", "Distributed Databases")
                .field("body-of-text", "databases for distributed systems"),
        );
        b.add(
            &Document::new()
                .field("title", "Operating Systems")
                .field("body-of-text", "scheduling and paging"),
        );
        b.build()
    }

    #[test]
    fn postings_and_df() {
        let idx = small_index();
        let title = idx.schema().get("title").unwrap();
        let body = idx.schema().get("body-of-text").unwrap();
        assert_eq!(idx.df(title, "databases"), 1);
        assert_eq!(idx.df(body, "databases"), 1);
        assert_eq!(idx.df(ANY_FIELD, "databases"), 1);
        assert_eq!(idx.df(ANY_FIELD, "systems"), 2);
        assert_eq!(idx.df(title, "systems"), 1);
        assert_eq!(idx.df(title, "missing"), 0);
    }

    #[test]
    fn tf_counts_occurrences_across_doc() {
        let idx = small_index();
        // doc 0 contains "databases" twice (title + body) under Any.
        let p = idx.postings(ANY_FIELD, "databases").unwrap();
        assert_eq!(p.len(), 1);
        let pairs: Vec<(DocId, u32)> = p.docs_tfs().collect();
        assert_eq!(pairs, vec![(DocId(0), 2)]);
        assert_eq!(p.tf_of(DocId(0)), 2);
        assert_eq!(p.find(DocId(0)), Some((0, 2)));
        assert_eq!(p.find(DocId(1)), None);
        assert_eq!(idx.total_postings(ANY_FIELD, "databases"), 2);
    }

    #[test]
    fn positions_have_field_gaps() {
        let idx = small_index();
        let p = idx.postings(ANY_FIELD, "databases").unwrap();
        // "databases" is title token 1 and body token 0; body starts
        // after title's 2 tokens + FIELD_GAP.
        assert!(p.has_positions());
        assert_eq!(p.positions_at(0), &[1, 2 + FIELD_GAP]);
    }

    #[test]
    fn positions_mode_none_drops_the_arena() {
        let mut b = IndexBuilder::new(plain_analyzer()).positions(PositionsMode::None);
        b.add(&Document::new().field("body-of-text", "lean lean postings"));
        let idx = b.build();
        assert!(!idx.has_positions());
        let p = idx.postings(ANY_FIELD, "lean").unwrap();
        assert!(!p.has_positions());
        assert_eq!(p.positions_at(0), &[] as &[u32]);
        // Doc/tf data is unaffected by the diet.
        assert_eq!(p.tf_of(DocId(0)), 2);
        assert_eq!(idx.total_postings(ANY_FIELD, "lean"), 2);
        let fp = idx.postings_footprint();
        assert_eq!(fp.positional_lists, 0);
        assert_eq!(fp.positional_bytes, 0);
        assert!(fp.block_bytes > 0);
    }

    #[test]
    fn doc_statistics() {
        let idx = small_index();
        assert_eq!(idx.n_docs(), 2);
        assert_eq!(idx.doc_token_count(DocId(0)), 6);
        assert_eq!(
            idx.doc_byte_size(DocId(0)),
            ("Distributed Databases".len() + "databases for distributed systems".len()) as u32
        );
        // doc 0 has 6 tokens, doc 1 has 5 ("and" etc. are not stopped by
        // the plain analyzer) → mean 5.5.
        assert!((idx.avg_doc_tokens() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn stored_fields_retrievable() {
        let idx = small_index();
        let title = idx.schema().get("title").unwrap();
        assert_eq!(idx.doc_field(DocId(1), title), Some("Operating Systems"));
        assert_eq!(idx.doc_fields(DocId(0)).count(), 2);
    }

    #[test]
    fn vocabulary_iteration() {
        let idx = small_index();
        let title = idx.schema().get("title").unwrap();
        let mut terms: Vec<&str> = idx.field_vocabulary(title).map(|(t, _)| t).collect();
        terms.sort_unstable();
        assert_eq!(
            terms,
            vec!["databases", "distributed", "operating", "systems"]
        );
    }

    #[test]
    fn stop_words_respected_at_index_time() {
        let mut b = IndexBuilder::new(Analyzer::default()); // minimal stops
        b.add(&Document::new().field("body-of-text", "the quick fox"));
        let idx = b.build();
        assert_eq!(idx.df(ANY_FIELD, "the"), 0);
        assert_eq!(idx.df(ANY_FIELD, "quick"), 1);
        // DocCount counts only indexed tokens.
        assert_eq!(idx.doc_token_count(DocId(0)), 2);
    }

    #[test]
    fn repeated_fields_gap_positions() {
        let mut b = IndexBuilder::new(plain_analyzer());
        b.add(
            &Document::new()
                .field("author", "Jeff Ullman")
                .field("author", "Hector Garcia"),
        );
        let idx = b.build();
        let author = idx.schema().get("author").unwrap();
        let p = idx.postings(author, "hector").unwrap();
        // Second author instance starts after 2 tokens + FIELD_GAP.
        assert_eq!(p.positions_at(0), &[2 + FIELD_GAP]);
    }

    #[test]
    fn empty_index() {
        let idx = IndexBuilder::new(plain_analyzer()).build();
        assert_eq!(idx.n_docs(), 0);
        assert_eq!(idx.avg_doc_tokens(), 0.0);
        assert_eq!(idx.vocabulary_size(), 0);
    }

    #[test]
    fn blocks_agree_with_iteration_and_find() {
        let idx = small_index();
        for (field, tid, _, list) in idx.all_postings() {
            assert_eq!(idx.postings_by_id(field, tid).unwrap().len(), list.len());
            let mut cursor = crate::blocks::BlockCursor::new(list.blocks());
            for (doc, tf) in list.docs_tfs() {
                assert_eq!((cursor.doc(), cursor.tf()), (doc.0, tf));
                assert_eq!(list.tf_of(doc), tf);
                cursor.next();
            }
            assert!(cursor.is_exhausted());
        }
    }

    #[test]
    fn footprint_counts_both_representations() {
        let idx = small_index();
        let fp = idx.postings_footprint();
        assert!(fp.lists > 0);
        assert_eq!(fp.positional_lists, fp.lists);
        assert!(fp.postings > 0);
        assert!(fp.positional_bytes > 0);
        assert!(fp.block_bytes > 0);
        let empty = IndexBuilder::new(plain_analyzer()).build();
        assert_eq!(empty.postings_footprint(), PostingsFootprint::default());
    }

    #[test]
    fn field_languages_tracked() {
        let mut b = IndexBuilder::new(plain_analyzer());
        b.add(
            &Document::new()
                .field_lang("title", "algorithm analysis", starts_text::LangTag::en_us())
                .field_lang("title", "algoritmo de datos", starts_text::LangTag::es()),
        );
        let idx = b.build();
        let title = idx.schema().get("title").unwrap();
        let langs = idx.field_languages(title);
        assert_eq!(langs.len(), 2);
    }
}
