//! The positional inverted index and its builder.

use std::collections::{BTreeSet, HashMap};

use starts_text::{Analyzer, LangTag};

use crate::blocks::BlockPostings;
use crate::doc::{DocId, Document};
use crate::schema::{FieldId, Schema, ANY_FIELD};

/// Position gap inserted between separate field instances so that `prox`
/// never matches across a field boundary (§4.1.1's word-distance prox is
/// defined within running text).
const FIELD_GAP: u32 = 100;

/// Interned term identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TermId(pub u32);

/// One document's entry in a posting list, with token positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Sorted token positions of the term within the field.
    pub positions: Vec<u32>,
}

impl Posting {
    /// Term frequency: the number of occurrences (the `Term-frequency`
    /// statistic of §4.2).
    pub fn tf(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// A stored document: field values plus the statistics STARTS results
/// report (`DocSize`, `DocCount`).
#[derive(Debug, Clone)]
pub(crate) struct StoredDoc {
    pub fields: Vec<(FieldId, String, Option<LangTag>)>,
    /// Number of tokens in the document ("the number of tokens (as
    /// determined by the source)" — `DocCount`).
    pub token_count: u32,
    /// Total byte size of the document text (`DocSize` reports KBytes).
    pub byte_size: u32,
}

/// The recorded term-weight envelope of one `(field, term)` key: the
/// float max/min of the ranking algorithm's `term_weight` across the
/// key's postings.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TermBound {
    /// Float max of the key's term weights.
    pub max: f64,
    /// Float min — pruning demands non-negative weights, so a negative
    /// (or non-finite) envelope disables the bound for its key.
    pub min: f64,
}

/// Per-`(field, term)` extrema of the ranking algorithm's term weights
/// over one index's postings — the build-time sidecar behind the
/// engine's dynamic pruning (see `docs/performance.md`). For a shard of
/// a sharded collection the weights are computed against the *global*
/// collection statistics, so each recorded maximum is the float max of
/// exactly the weight values query-time scoring can produce for that
/// key on this shard; a leaf's upper bound therefore holds without any
/// epsilon.
#[derive(Debug, Default)]
pub struct TermBounds {
    bounds: HashMap<(FieldId, TermId), TermBound>,
    /// Per-block maxima of the same weights, one entry per 128-doc block
    /// of the key's posting list (see [`crate::blocks::BLOCK_DOCS`]) —
    /// the "block-max" side of Block-Max-WAND. Each value is the float
    /// max of the exact weights of its block only, so it is usually far
    /// tighter than the whole-list `max` above.
    block_max: HashMap<(FieldId, TermId), Vec<f64>>,
}

impl TermBounds {
    /// Record the envelope for one key.
    pub(crate) fn insert(&mut self, field: FieldId, term: TermId, bound: TermBound) {
        self.bounds.insert((field, term), bound);
    }

    /// The envelope recorded for a key, if any.
    pub(crate) fn get(&self, field: FieldId, term: TermId) -> Option<TermBound> {
        self.bounds.get(&(field, term)).copied()
    }

    /// Record the per-block weight maxima for one key.
    pub(crate) fn insert_block_max(&mut self, field: FieldId, term: TermId, maxima: Vec<f64>) {
        self.block_max.insert((field, term), maxima);
    }

    /// The per-block weight maxima recorded for a key, if any.
    pub(crate) fn block_maxima(&self, field: FieldId, term: TermId) -> Option<&[f64]> {
        self.block_max.get(&(field, term)).map(Vec::as_slice)
    }
}

/// Memory accounting for an index's posting storage, split by
/// representation so the block codec's compression win is measurable
/// (`Index::postings_footprint`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostingsFootprint {
    /// Number of posting lists (distinct `(field, term)` keys).
    pub lists: u64,
    /// Total postings across all lists.
    pub postings: u64,
    /// Bytes held by the uncompressed positional postings (`Posting`
    /// structs plus their position vectors).
    pub positional_bytes: u64,
    /// Bytes held by the block-compressed doc/tf streams, headers
    /// included.
    pub block_bytes: u64,
}

impl PostingsFootprint {
    /// Fold another footprint into this one (shard aggregation).
    pub fn merge(&mut self, other: &PostingsFootprint) {
        self.lists += other.lists;
        self.postings += other.postings;
        self.positional_bytes += other.positional_bytes;
        self.block_bytes += other.block_bytes;
    }
}

/// An immutable, fully-built index.
#[derive(Debug)]
pub struct Index {
    schema: Schema,
    analyzer: Analyzer,
    terms: Vec<String>,
    vocab: HashMap<String, TermId>,
    postings: HashMap<(FieldId, TermId), Vec<Posting>>,
    /// Block-compressed `(doc, tf)` mirror of every posting list, built
    /// once in [`IndexBuilder::build`] — the skippable representation
    /// Block-Max-WAND cursors walk (positions stay in `postings`, which
    /// remains the source of truth for `prox` and stats reporting).
    blocks: HashMap<(FieldId, TermId), BlockPostings>,
    docs: Vec<StoredDoc>,
    total_tokens: u64,
    /// Languages observed per field, for metadata export.
    field_langs: HashMap<FieldId, BTreeSet<LangTag>>,
}

/// Mutable index construction.
#[derive(Debug)]
pub struct IndexBuilder {
    inner: Index,
}

impl IndexBuilder {
    /// Start building with the engine's analyzer (the source's whole text
    /// pipeline: tokenizer, case mode, stemming, stop list).
    pub fn new(analyzer: Analyzer) -> Self {
        IndexBuilder::with_schema(analyzer, Schema::new())
    }

    /// Start building with a pre-interned schema. Shard builders use this
    /// so that every shard of a [`crate::ShardedEngine`] assigns the same
    /// `FieldId` to the same field name, letting per-shard statistics be
    /// merged by id.
    pub fn with_schema(analyzer: Analyzer, schema: Schema) -> Self {
        IndexBuilder {
            inner: Index {
                schema,
                analyzer,
                terms: Vec::new(),
                vocab: HashMap::new(),
                postings: HashMap::new(),
                blocks: HashMap::new(),
                docs: Vec::new(),
                total_tokens: 0,
                field_langs: HashMap::new(),
            },
        }
    }

    /// Add a document; returns its id. Every token is indexed under its
    /// field and under the `Any` pseudo-field (with document-global
    /// positions, so unfielded `prox` works).
    pub fn add(&mut self, doc: &Document) -> DocId {
        let idx = &mut self.inner;
        let doc_id = DocId(idx.docs.len() as u32);
        let mut stored = Vec::with_capacity(doc.fields().len());
        let mut token_count: u32 = 0;
        let mut byte_size: u32 = 0;
        // Per-field position bases (repeated fields continue with a gap).
        let mut field_base: HashMap<FieldId, u32> = HashMap::new();
        let mut global_base: u32 = 0;
        for fv in doc.fields() {
            let fid = idx.schema.intern(&fv.name);
            byte_size += fv.text.len() as u32;
            if let Some(lang) = &fv.lang {
                idx.field_langs.entry(fid).or_default().insert(lang.clone());
                idx.field_langs
                    .entry(ANY_FIELD)
                    .or_default()
                    .insert(lang.clone());
            }
            // Borrowed tokens: no per-token String allocation — terms
            // only get copied on a vocabulary miss inside `intern_term`.
            let tokens = idx.analyzer.analyze_borrowed(&fv.text);
            let fbase = *field_base.get(&fid).unwrap_or(&0);
            let mut max_pos = 0u32;
            for (term, position) in &tokens {
                max_pos = max_pos.max(*position);
                token_count += 1;
                let tid = intern_term(&mut idx.vocab, &mut idx.terms, term);
                push_position(&mut idx.postings, (fid, tid), doc_id, fbase + position);
                push_position(
                    &mut idx.postings,
                    (ANY_FIELD, tid),
                    doc_id,
                    global_base + position,
                );
            }
            let advance = if tokens.is_empty() { 0 } else { max_pos + 1 };
            field_base.insert(fid, fbase + advance + FIELD_GAP);
            global_base += advance + FIELD_GAP;
            stored.push((fid, fv.text.clone(), fv.lang.clone()));
        }
        idx.total_tokens += u64::from(token_count);
        idx.docs.push(StoredDoc {
            fields: stored,
            token_count,
            byte_size,
        });
        doc_id
    }

    /// Finish building: freezes the positional lists and encodes the
    /// block-compressed `(doc, tf)` mirror each one (delta + varint in
    /// 128-doc blocks) that skip-capable cursors walk.
    pub fn build(self) -> Index {
        let mut index = self.inner;
        let mut scratch: Vec<(u32, u32)> = Vec::new();
        for (&key, list) in &index.postings {
            scratch.clear();
            scratch.extend(list.iter().map(|p| (p.doc.0, p.tf())));
            index.blocks.insert(key, BlockPostings::encode(&scratch));
        }
        index
    }
}

fn intern_term(vocab: &mut HashMap<String, TermId>, terms: &mut Vec<String>, term: &str) -> TermId {
    if let Some(&tid) = vocab.get(term) {
        return tid;
    }
    let tid = TermId(terms.len() as u32);
    terms.push(term.to_string());
    vocab.insert(term.to_string(), tid);
    tid
}

fn push_position(
    postings: &mut HashMap<(FieldId, TermId), Vec<Posting>>,
    key: (FieldId, TermId),
    doc: DocId,
    position: u32,
) {
    let list = postings.entry(key).or_default();
    match list.last_mut() {
        Some(last) if last.doc == doc => last.positions.push(position),
        _ => list.push(Posting {
            doc,
            positions: vec![position],
        }),
    }
}

impl Index {
    /// The field schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The engine's analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Number of documents (the content summary's `NumDocs`).
    pub fn n_docs(&self) -> u32 {
        self.docs.len() as u32
    }

    /// Total tokens across all documents.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Mean document length in tokens (for BM25-style rankers).
    pub fn avg_doc_tokens(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_tokens as f64 / self.docs.len() as f64
        }
    }

    /// Token count of one document (`DocCount`).
    pub fn doc_token_count(&self, doc: DocId) -> u32 {
        self.docs[doc.0 as usize].token_count
    }

    /// Byte size of one document (`DocSize` is this, reported in KBytes).
    pub fn doc_byte_size(&self, doc: DocId) -> u32 {
        self.docs[doc.0 as usize].byte_size
    }

    /// Stored field values of a document, in insertion order.
    pub fn doc_fields(&self, doc: DocId) -> impl Iterator<Item = (&str, &str, Option<&LangTag>)> {
        self.docs[doc.0 as usize]
            .fields
            .iter()
            .map(|(fid, text, lang)| (self.schema.name(*fid), text.as_str(), lang.as_ref()))
    }

    /// First stored value of the named field for a document.
    pub fn doc_field(&self, doc: DocId, field: FieldId) -> Option<&str> {
        self.docs[doc.0 as usize]
            .fields
            .iter()
            .find(|(fid, _, _)| *fid == field)
            .map(|(_, text, _)| text.as_str())
    }

    /// The posting list for a (field, term) pair. The term must be in
    /// index-normalized form (the caller normalizes via the analyzer).
    pub fn postings(&self, field: FieldId, term: &str) -> Option<&[Posting]> {
        let tid = self.vocab.get(term)?;
        self.postings.get(&(field, *tid)).map(Vec::as_slice)
    }

    /// Document frequency of a term in a field (`Document-frequency`).
    /// Doc ids are `u32`, so a list can never exceed `u32::MAX` entries;
    /// the checked conversion turns a broken invariant into a loud
    /// panic instead of a silent truncation.
    pub fn df(&self, field: FieldId, term: &str) -> u32 {
        self.postings(field, term).map_or(0, |p| {
            u32::try_from(p.len()).expect("posting list longer than the u32 doc-id space")
        })
    }

    /// Total postings (sum of tf over docs) of a term in a field — the
    /// content summary's "total number of postings" statistic.
    pub fn total_postings(&self, field: FieldId, term: &str) -> u64 {
        self.postings(field, term)
            .map_or(0, |p| p.iter().map(|x| u64::from(x.tf())).sum())
    }

    /// Iterate the vocabulary of a field: `(term, postings)`.
    pub fn field_vocabulary(
        &self,
        field: FieldId,
    ) -> impl Iterator<Item = (&str, &[Posting])> + '_ {
        self.postings
            .iter()
            .filter(move |((fid, _), _)| *fid == field)
            .map(|((_, tid), list)| (self.terms[tid.0 as usize].as_str(), list.as_slice()))
    }

    /// Languages observed in a field's values.
    pub fn field_languages(&self, field: FieldId) -> Vec<LangTag> {
        self.field_langs
            .get(&field)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Distinct terms in the index (vocabulary size).
    pub fn vocabulary_size(&self) -> usize {
        self.terms.len()
    }

    /// All document ids.
    pub fn all_docs(&self) -> impl Iterator<Item = DocId> {
        (0..self.docs.len() as u32).map(DocId)
    }

    /// Every `(field, term id, term, postings)` tuple in the index, in
    /// arbitrary order — the raw feed for merging per-shard document
    /// frequencies into global collection statistics and for building
    /// the [`TermBounds`] pruning sidecar.
    pub(crate) fn all_postings(
        &self,
    ) -> impl Iterator<Item = (FieldId, TermId, &str, &[Posting])> + '_ {
        self.postings.iter().map(|((fid, tid), list)| {
            (
                *fid,
                *tid,
                self.terms[tid.0 as usize].as_str(),
                list.as_slice(),
            )
        })
    }

    /// The interned id of an index-normalized term, if present.
    pub(crate) fn term_id(&self, term: &str) -> Option<TermId> {
        self.vocab.get(term).copied()
    }

    /// The block-compressed mirror of a posting list, if built.
    pub(crate) fn block_postings(&self, field: FieldId, term: TermId) -> Option<&BlockPostings> {
        self.blocks.get(&(field, term))
    }

    /// Memory held by posting storage, split into the uncompressed
    /// positional lists and the block-compressed doc/tf mirror, so the
    /// codec's compression ratio is directly observable.
    pub fn postings_footprint(&self) -> PostingsFootprint {
        let mut fp = PostingsFootprint::default();
        for list in self.postings.values() {
            fp.lists += 1;
            fp.postings += list.len() as u64;
            fp.positional_bytes += (list.len() * std::mem::size_of::<Posting>()) as u64
                + list
                    .iter()
                    .map(|p| (p.positions.len() * std::mem::size_of::<u32>()) as u64)
                    .sum::<u64>();
        }
        for blocks in self.blocks.values() {
            fp.block_bytes += blocks.bytes();
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_text::{Analyzer, AnalyzerConfig, StopWordList};

    fn plain_analyzer() -> Analyzer {
        Analyzer::new(AnalyzerConfig {
            stop_words: StopWordList::none(),
            ..AnalyzerConfig::default()
        })
    }

    fn small_index() -> Index {
        let mut b = IndexBuilder::new(plain_analyzer());
        b.add(
            &Document::new()
                .field("title", "Distributed Databases")
                .field("body-of-text", "databases for distributed systems"),
        );
        b.add(
            &Document::new()
                .field("title", "Operating Systems")
                .field("body-of-text", "scheduling and paging"),
        );
        b.build()
    }

    #[test]
    fn postings_and_df() {
        let idx = small_index();
        let title = idx.schema().get("title").unwrap();
        let body = idx.schema().get("body-of-text").unwrap();
        assert_eq!(idx.df(title, "databases"), 1);
        assert_eq!(idx.df(body, "databases"), 1);
        assert_eq!(idx.df(ANY_FIELD, "databases"), 1);
        assert_eq!(idx.df(ANY_FIELD, "systems"), 2);
        assert_eq!(idx.df(title, "systems"), 1);
        assert_eq!(idx.df(title, "missing"), 0);
    }

    #[test]
    fn tf_counts_occurrences_across_doc() {
        let idx = small_index();
        // doc 0 contains "databases" twice (title + body) under Any.
        let p = idx.postings(ANY_FIELD, "databases").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].doc, DocId(0));
        assert_eq!(p[0].tf(), 2);
        assert_eq!(idx.total_postings(ANY_FIELD, "databases"), 2);
    }

    #[test]
    fn positions_have_field_gaps() {
        let idx = small_index();
        let p = idx.postings(ANY_FIELD, "databases").unwrap();
        // "databases" is title token 1 and body token 0; body starts
        // after title's 2 tokens + FIELD_GAP.
        assert_eq!(p[0].positions, vec![1, 2 + FIELD_GAP]);
    }

    #[test]
    fn doc_statistics() {
        let idx = small_index();
        assert_eq!(idx.n_docs(), 2);
        assert_eq!(idx.doc_token_count(DocId(0)), 6);
        assert_eq!(
            idx.doc_byte_size(DocId(0)),
            ("Distributed Databases".len() + "databases for distributed systems".len()) as u32
        );
        // doc 0 has 6 tokens, doc 1 has 5 ("and" etc. are not stopped by
        // the plain analyzer) → mean 5.5.
        assert!((idx.avg_doc_tokens() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn stored_fields_retrievable() {
        let idx = small_index();
        let title = idx.schema().get("title").unwrap();
        assert_eq!(idx.doc_field(DocId(1), title), Some("Operating Systems"));
        assert_eq!(idx.doc_fields(DocId(0)).count(), 2);
    }

    #[test]
    fn vocabulary_iteration() {
        let idx = small_index();
        let title = idx.schema().get("title").unwrap();
        let mut terms: Vec<&str> = idx.field_vocabulary(title).map(|(t, _)| t).collect();
        terms.sort_unstable();
        assert_eq!(
            terms,
            vec!["databases", "distributed", "operating", "systems"]
        );
    }

    #[test]
    fn stop_words_respected_at_index_time() {
        let mut b = IndexBuilder::new(Analyzer::default()); // minimal stops
        b.add(&Document::new().field("body-of-text", "the quick fox"));
        let idx = b.build();
        assert_eq!(idx.df(ANY_FIELD, "the"), 0);
        assert_eq!(idx.df(ANY_FIELD, "quick"), 1);
        // DocCount counts only indexed tokens.
        assert_eq!(idx.doc_token_count(DocId(0)), 2);
    }

    #[test]
    fn repeated_fields_gap_positions() {
        let mut b = IndexBuilder::new(plain_analyzer());
        b.add(
            &Document::new()
                .field("author", "Jeff Ullman")
                .field("author", "Hector Garcia"),
        );
        let idx = b.build();
        let author = idx.schema().get("author").unwrap();
        let p = idx.postings(author, "hector").unwrap();
        // Second author instance starts after 2 tokens + FIELD_GAP.
        assert_eq!(p[0].positions, vec![2 + FIELD_GAP]);
    }

    #[test]
    fn empty_index() {
        let idx = IndexBuilder::new(plain_analyzer()).build();
        assert_eq!(idx.n_docs(), 0);
        assert_eq!(idx.avg_doc_tokens(), 0.0);
        assert_eq!(idx.vocabulary_size(), 0);
    }

    #[test]
    fn block_mirror_matches_positional_lists() {
        let idx = small_index();
        for (field, tid, _, list) in idx.all_postings() {
            let blocks = idx.block_postings(field, tid).expect("mirror built");
            assert_eq!(blocks.len(), list.len() as u64);
            let mut cursor = crate::blocks::BlockCursor::new(blocks);
            for p in list {
                assert_eq!((cursor.doc(), cursor.tf()), (p.doc.0, p.tf()));
                cursor.next();
            }
            assert!(cursor.is_exhausted());
        }
    }

    #[test]
    fn footprint_counts_both_representations() {
        let idx = small_index();
        let fp = idx.postings_footprint();
        assert!(fp.lists > 0);
        assert!(fp.postings > 0);
        assert!(fp.positional_bytes > 0);
        assert!(fp.block_bytes > 0);
        // Varint doc/tf pairs are far smaller than positional postings.
        assert!(fp.block_bytes < fp.positional_bytes);
        let empty = IndexBuilder::new(plain_analyzer()).build();
        assert_eq!(empty.postings_footprint(), PostingsFootprint::default());
    }

    #[test]
    fn field_languages_tracked() {
        let mut b = IndexBuilder::new(plain_analyzer());
        b.add(
            &Document::new()
                .field_lang("title", "algorithm analysis", starts_text::LangTag::en_us())
                .field_lang("title", "algoritmo de datos", starts_text::LangTag::es()),
        );
        let idx = b.build();
        let title = idx.schema().get("title").unwrap();
        let langs = idx.field_languages(title);
        assert_eq!(langs.len(), 2);
    }
}
