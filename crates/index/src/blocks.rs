//! Fixed-size compressed block postings and the skip-capable cursor —
//! the storage layer behind Block-Max-WAND pruning (see
//! `docs/performance.md` § Block-Max WAND).
//!
//! Every posting list is chunked into blocks of at most [`BLOCK_DOCS`]
//! documents. Within a block, doc ids are delta-encoded against the
//! previous posting (the previous *block's* last doc for the block's
//! first entry) and term frequencies ride along, both as LEB128
//! varints. Each block carries a small uncompressed header — last doc
//! id, posting count, byte offset — so a cursor can decide whether a
//! block can contain a target document, and what the block's best score
//! is, *without decoding it*. That is the whole trick: `next_geq` seeks
//! by header, decodes only the landing block, and counts every block it
//! jumped clean over.
//!
//! Layout of one encoded list (`B` = number of blocks):
//!
//! ```text
//! headers: [ {max_doc, count, offset} ; B ]     (uncompressed, 12 B each)
//! data:    [ block 0 bytes | block 1 bytes | … | block B-1 bytes ]
//! block b: (Δdoc varint, tf varint) × count_b
//!          Δdoc of the first entry is against headers[b-1].max_doc
//!          (0 for block 0), so any block decodes independently.
//! ```
//!
//! Score bounds are *not* stored here — they depend on the ranking
//! algorithm, so the engine computes them next to its [`crate::TermBounds`]
//! sidecar and hands the per-block slice to [`BlockCursor::with_bounds`].

/// Documents per block. 128 keeps headers tiny (one per 128 postings)
/// while making a skipped block worth ~128 avoided score evaluations.
pub const BLOCK_DOCS: usize = 128;

/// The sentinel [`BlockCursor::doc`] returns once a cursor is past its
/// last posting. Doc ids are `Vec` indices (`DocId(u32)`), so a real
/// document can never carry this id.
pub const EXHAUSTED: u32 = u32::MAX;

/// The uncompressed per-block header: everything a cursor may read
/// without decoding the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// The last (largest) doc id in the block.
    pub max_doc: u32,
    /// Postings in the block (`1..=BLOCK_DOCS`).
    pub count: u16,
    /// Byte offset of the block's encoded entries in the data stream.
    pub offset: u32,
}

/// One posting list, block-compressed: per-block headers plus one
/// contiguous varint stream.
#[derive(Debug, Clone, Default)]
pub struct BlockPostings {
    headers: Vec<BlockHeader>,
    data: Vec<u8>,
    len: u64,
}

impl BlockPostings {
    /// Encode a posting list given as `(doc, tf)` pairs with strictly
    /// increasing doc ids below [`EXHAUSTED`].
    ///
    /// # Panics
    /// Panics (debug builds) when doc ids are not strictly increasing.
    pub fn encode(postings: &[(u32, u32)]) -> Self {
        let mut headers = Vec::with_capacity(postings.len().div_ceil(BLOCK_DOCS));
        let mut data = Vec::new();
        let mut prev = 0u32;
        for chunk in postings.chunks(BLOCK_DOCS) {
            let offset = u32::try_from(data.len()).expect("block data exceeds u32 offsets");
            for &(doc, tf) in chunk {
                debug_assert!(
                    doc < EXHAUSTED && (data.is_empty() && doc >= prev || doc > prev),
                    "doc ids must be strictly increasing and below u32::MAX"
                );
                write_varint(&mut data, doc - prev);
                write_varint(&mut data, tf);
                prev = doc;
            }
            headers.push(BlockHeader {
                max_doc: prev,
                count: chunk.len() as u16,
                offset,
            });
        }
        BlockPostings {
            headers,
            data,
            len: postings.len() as u64,
        }
    }

    /// Total postings across all blocks.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the list holds no postings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.headers.len()
    }

    /// The header of block `b`.
    pub fn header(&self, b: usize) -> &BlockHeader {
        &self.headers[b]
    }

    /// Bytes held by this list: the varint stream plus the headers.
    pub fn bytes(&self) -> u64 {
        (self.data.len() + self.headers.len() * std::mem::size_of::<BlockHeader>()) as u64
    }

    /// Decode block `b` into the scratch vectors (cleared first).
    fn decode_block(&self, b: usize, docs: &mut Vec<u32>, tfs: &mut Vec<u32>) {
        docs.clear();
        tfs.clear();
        let h = &self.headers[b];
        let mut pos = h.offset as usize;
        let mut prev = if b == 0 {
            0
        } else {
            self.headers[b - 1].max_doc
        };
        for _ in 0..h.count {
            prev += read_varint(&self.data, &mut pos);
            docs.push(prev);
            tfs.push(read_varint(&self.data, &mut pos));
        }
    }
}

/// A forward-only cursor over a [`BlockPostings`] list with header-level
/// skipping: `next()` steps one posting, `next_geq(d)` seeks to the
/// first posting at or past `d` decoding only the landing block, and
/// `block_max_score()` exposes the current block's score upper bound.
/// The cursor tallies the blocks it jumped without decoding and the
/// postings it actually rested on — the raw feed for the engine's
/// `blocks_skipped` / `skipped_docs` telemetry.
#[derive(Debug)]
pub struct BlockCursor<'a> {
    list: &'a BlockPostings,
    /// Per-block score upper bounds (engine-computed); empty = unknown.
    bounds: &'a [f64],
    /// Current block; `list.n_blocks()` once exhausted.
    block: usize,
    pos: usize,
    docs: Vec<u32>,
    tfs: Vec<u32>,
    blocks_skipped: u64,
    visited: u64,
}

impl<'a> BlockCursor<'a> {
    /// A cursor positioned on the first posting (exhausted immediately
    /// for an empty list), without score bounds.
    pub fn new(list: &'a BlockPostings) -> Self {
        Self::with_bounds(list, &[])
    }

    /// [`BlockCursor::new`] with per-block score upper bounds; `bounds[b]`
    /// must dominate every score contribution a document of block `b`
    /// can make. The engine derives these from the exact `term_weight`
    /// values next to its global [`crate::TermBounds`] envelope.
    pub fn with_bounds(list: &'a BlockPostings, bounds: &'a [f64]) -> Self {
        let mut cursor = BlockCursor {
            list,
            bounds,
            block: 0,
            pos: 0,
            docs: Vec::new(),
            tfs: Vec::new(),
            blocks_skipped: 0,
            visited: 0,
        };
        if cursor.list.n_blocks() > 0 {
            cursor
                .list
                .decode_block(0, &mut cursor.docs, &mut cursor.tfs);
            cursor.visited = 1;
        }
        cursor
    }

    /// The current doc id, or [`EXHAUSTED`] past the end.
    pub fn doc(&self) -> u32 {
        if self.is_exhausted() {
            EXHAUSTED
        } else {
            self.docs[self.pos]
        }
    }

    /// Term frequency of the current posting.
    ///
    /// # Panics
    /// Panics when the cursor is exhausted.
    pub fn tf(&self) -> u32 {
        self.tfs[self.pos]
    }

    /// Whether the cursor is past its last posting.
    pub fn is_exhausted(&self) -> bool {
        self.block >= self.list.n_blocks()
    }

    /// Advance to the next posting.
    pub fn next(&mut self) {
        if self.is_exhausted() {
            return;
        }
        self.pos += 1;
        if self.pos == self.docs.len() {
            self.block += 1;
            self.pos = 0;
            if self.block < self.list.n_blocks() {
                self.list
                    .decode_block(self.block, &mut self.docs, &mut self.tfs);
            }
        }
        if !self.is_exhausted() {
            self.visited += 1;
        }
    }

    /// Seek to the first posting with doc id `>= target`, decoding only
    /// the block it lands in: candidate blocks are located through the
    /// header `max_doc` fence posts, and every block passed clean over
    /// is tallied in [`BlockCursor::blocks_skipped`] without being
    /// decoded. A target at or before the current doc is a no-op.
    pub fn next_geq(&mut self, target: u32) {
        if self.is_exhausted() || target <= self.docs[self.pos] {
            return;
        }
        if target > self.list.header(self.block).max_doc {
            // Header-only seek to the first block that can hold target.
            let rest = &self.list.headers[self.block + 1..];
            let ahead = rest.partition_point(|h| h.max_doc < target);
            self.blocks_skipped += ahead as u64;
            self.block += 1 + ahead;
            self.pos = 0;
            if self.is_exhausted() {
                return;
            }
            self.list
                .decode_block(self.block, &mut self.docs, &mut self.tfs);
        }
        self.pos += self.docs[self.pos..].partition_point(|&d| d < target);
        debug_assert!(
            self.pos < self.docs.len(),
            "header promised a doc >= target"
        );
        self.visited += 1;
    }

    /// Index of the current block.
    pub fn block_index(&self) -> usize {
        self.block
    }

    /// Last doc id of the current block (the header fence post).
    ///
    /// # Panics
    /// Panics when the cursor is exhausted.
    pub fn block_max_doc(&self) -> u32 {
        self.list.header(self.block).max_doc
    }

    /// Score upper bound of the current block; `+inf` when the cursor
    /// was built without bounds (no skipping is then ever justified).
    pub fn block_max_score(&self) -> f64 {
        self.bounds
            .get(self.block)
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// Header-only lookup: the first block at or after the current one
    /// whose `max_doc` reaches `target` — the block a `next_geq(target)`
    /// would land in — or `None` when the list ends before `target`.
    /// Does not move the cursor and decodes nothing.
    pub fn block_for(&self, target: u32) -> Option<usize> {
        if self.is_exhausted() {
            return None;
        }
        if self.list.header(self.block).max_doc >= target {
            return Some(self.block);
        }
        let rest = &self.list.headers[self.block + 1..];
        let ahead = rest.partition_point(|h| h.max_doc < target);
        let b = self.block + 1 + ahead;
        (b < self.list.n_blocks()).then_some(b)
    }

    /// Score upper bound of block `b` (see [`BlockCursor::block_max_score`]).
    pub fn block_max_score_at(&self, b: usize) -> f64 {
        self.bounds.get(b).copied().unwrap_or(f64::INFINITY)
    }

    /// Last doc id of block `b`.
    pub fn block_last_doc(&self, b: usize) -> u32 {
        self.list.header(b).max_doc
    }

    /// Total postings in the underlying list.
    pub fn len(&self) -> u64 {
        self.list.len()
    }

    /// Whether the underlying list is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Blocks jumped over without decoding, so far.
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped
    }

    /// Distinct postings the cursor has rested on, so far. The
    /// difference `len() - visited()` is the number of postings the
    /// cursor never paid a score evaluation for.
    pub fn visited(&self) -> u64 {
        self.visited
    }
}

#[inline]
fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(list: &BlockPostings) -> Vec<(u32, u32)> {
        let mut cursor = BlockCursor::new(list);
        let mut out = Vec::new();
        while !cursor.is_exhausted() {
            out.push((cursor.doc(), cursor.tf()));
            cursor.next();
        }
        out
    }

    #[test]
    fn round_trip_small() {
        let postings = vec![(0, 1), (3, 2), (4, 1), (1000, 70000)];
        let list = BlockPostings::encode(&postings);
        assert_eq!(list.len(), 4);
        assert_eq!(list.n_blocks(), 1);
        assert_eq!(decode_all(&list), postings);
    }

    #[test]
    fn round_trip_multi_block() {
        let postings: Vec<(u32, u32)> = (0..1000).map(|i| (i * 3, i % 7 + 1)).collect();
        let list = BlockPostings::encode(&postings);
        assert_eq!(list.n_blocks(), 1000usize.div_ceil(BLOCK_DOCS));
        assert_eq!(decode_all(&list), postings);
        // Header fence posts partition the doc space.
        assert_eq!(list.header(0).max_doc, (BLOCK_DOCS as u32 - 1) * 3);
        assert_eq!(list.header(list.n_blocks() - 1).max_doc, 999 * 3);
    }

    #[test]
    fn empty_list() {
        let list = BlockPostings::encode(&[]);
        assert!(list.is_empty());
        assert_eq!(list.n_blocks(), 0);
        let cursor = BlockCursor::new(&list);
        assert!(cursor.is_exhausted());
        assert_eq!(cursor.doc(), EXHAUSTED);
    }

    #[test]
    fn next_geq_skips_blocks_without_decoding() {
        let postings: Vec<(u32, u32)> = (0..1000).map(|i| (i, 1)).collect();
        let list = BlockPostings::encode(&postings);
        let mut cursor = BlockCursor::new(&list);
        cursor.next_geq(900);
        assert_eq!(cursor.doc(), 900);
        // Blocks 1..block(900) were passed without decode.
        assert_eq!(cursor.block_index(), 900 / BLOCK_DOCS);
        assert_eq!(cursor.blocks_skipped(), (900 / BLOCK_DOCS - 1) as u64);
        // Only the first and the landing posting were rested on.
        assert_eq!(cursor.visited(), 2);
    }

    #[test]
    fn next_geq_is_monotone_and_clamps() {
        let list = BlockPostings::encode(&[(5, 1), (9, 2), (200, 3)]);
        let mut cursor = BlockCursor::new(&list);
        cursor.next_geq(0); // target before current: no-op
        assert_eq!(cursor.doc(), 5);
        cursor.next_geq(6);
        assert_eq!((cursor.doc(), cursor.tf()), (9, 2));
        cursor.next_geq(9); // at current: no-op
        assert_eq!(cursor.doc(), 9);
        cursor.next_geq(201);
        assert!(cursor.is_exhausted());
        cursor.next(); // past end: stays exhausted
        assert_eq!(cursor.doc(), EXHAUSTED);
    }

    #[test]
    fn block_for_is_a_pure_lookup() {
        let postings: Vec<(u32, u32)> = (0..300).map(|i| (i * 2, 1)).collect();
        let list = BlockPostings::encode(&postings);
        let cursor = BlockCursor::new(&list);
        assert_eq!(cursor.block_for(0), Some(0));
        assert_eq!(cursor.block_for(2 * BLOCK_DOCS as u32), Some(1));
        assert_eq!(cursor.block_for(598), Some(2));
        assert_eq!(cursor.block_for(599), None);
        assert_eq!(cursor.doc(), 0, "lookup must not move the cursor");
        assert_eq!(cursor.blocks_skipped(), 0);
    }

    #[test]
    fn bounds_surface() {
        let postings: Vec<(u32, u32)> = (0..200).map(|i| (i, 1)).collect();
        let list = BlockPostings::encode(&postings);
        let bounds = [0.5, 2.0];
        let mut cursor = BlockCursor::with_bounds(&list, &bounds);
        assert_eq!(cursor.block_max_score(), 0.5);
        cursor.next_geq(BLOCK_DOCS as u32);
        assert_eq!(cursor.block_max_score(), 2.0);
        assert_eq!(cursor.block_max_score_at(0), 0.5);
        let unbounded = BlockCursor::new(&list);
        assert_eq!(unbounded.block_max_score(), f64::INFINITY);
    }

    #[test]
    fn varint_extremes_round_trip() {
        let postings = vec![(0, u32::MAX), (u32::MAX - 1, 1)];
        let list = BlockPostings::encode(&postings);
        assert_eq!(decode_all(&list), postings);
    }

    #[test]
    fn compression_beats_raw_pairs() {
        // Dense doc ids and small tfs: ~2 bytes per posting vs 8 raw.
        let postings: Vec<(u32, u32)> = (0..10_000).map(|i| (i, 1)).collect();
        let list = BlockPostings::encode(&postings);
        assert!(list.bytes() < 8 * list.len() / 2, "bytes={}", list.bytes());
    }
}
