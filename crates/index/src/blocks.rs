//! Fixed-size bit-packed block postings and the skip-capable cursor —
//! the storage layer behind Block-Max-WAND pruning (see
//! `docs/performance.md` § Block codec & memory footprint).
//!
//! Every posting list is chunked into blocks of at most [`BLOCK_DOCS`]
//! documents. Within a block, doc ids are delta-encoded against the
//! previous posting (the previous *block's* last doc for the block's
//! first entry) and stored as **FOR-style bit-packed frames**: the block
//! header records the bit width of the widest doc-gap and the widest
//! term frequency, and every value in the block is packed at exactly
//! that width, LSB-first. Each block carries a small uncompressed
//! header — last doc id, posting count, the two widths, byte offset —
//! so a cursor can decide whether a block can contain a target document,
//! and what the block's best score is, *without decoding it*. `next_geq`
//! seeks by header, decodes only the landing block, and counts every
//! block it jumped clean over.
//!
//! Layout of one encoded list (`B` = number of blocks):
//!
//! ```text
//! headers: [ {max_doc, count, doc_bits, tf_bits, offset} ; B ]   (12 B each)
//! data:    [ block 0 frame | block 1 frame | … | block B-1 frame | pad ]
//! frame b: [ Δdoc × count_b  @ doc_bits ] [ tf × count_b @ tf_bits ]
//!          each section bit-packed LSB-first and padded to a byte
//!          boundary; Δdoc of the first entry is against
//!          headers[b-1].max_doc (0 for block 0), so any block decodes
//!          independently.
//! pad:     8 zero bytes, so the word-parallel decoder may always read
//!          whole u64 words without running off the buffer.
//! ```
//!
//! Decoding is word-parallel: the scalar kernel is monomorphized per
//! width and reads each value with one unaligned `u64` load at a
//! compile-time-constant offset and shift (eight values always realign
//! to a byte boundary, so there is no carried bit-buffer and no
//! per-value byte loop), and on `x86_64` an AVX2 kernel — selected by
//! runtime feature detection, bit-identical to the scalar path —
//! widens whole 32-lane groups at the byte-aligned widths (8/16/32).
//! SSE2-only or non-x86 machines always take the scalar kernel.
//!
//! Score bounds are *not* stored here — they depend on the ranking
//! algorithm, so the engine computes them next to its [`crate::TermBounds`]
//! sidecar and hands the per-block slice to [`BlockCursor::with_bounds`].

/// Documents per block. 128 keeps headers tiny (one per 128 postings)
/// while making a skipped block worth ~128 avoided score evaluations.
pub const BLOCK_DOCS: usize = 128;

/// The sentinel [`BlockCursor::doc`] returns once a cursor is past its
/// last posting. Doc ids are `Vec` indices (`DocId(u32)`), so a real
/// document can never carry this id.
pub const EXHAUSTED: u32 = u32::MAX;

/// Zero bytes appended after the last frame so the u64-word decoder can
/// always load a full word at the tail of the final section.
const PAD_BYTES: usize = 8;

/// The uncompressed per-block header: everything a cursor may read
/// without decoding the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// The last (largest) doc id in the block.
    pub max_doc: u32,
    /// Postings in the block (`1..=BLOCK_DOCS`).
    pub count: u16,
    /// Bit width of the block's packed doc-gap section (`0..=32`).
    pub doc_bits: u8,
    /// Bit width of the block's packed term-frequency section (`0..=32`).
    pub tf_bits: u8,
    /// Byte offset of the block's frame in the data stream.
    pub offset: u32,
}

/// One posting list, block-compressed: per-block headers plus one
/// contiguous stream of bit-packed frames.
#[derive(Debug, Clone, Default)]
pub struct BlockPostings {
    headers: Vec<BlockHeader>,
    data: Vec<u8>,
    len: u64,
    sum_tf: u64,
}

/// Packed byte length of `count` values at `width` bits each.
#[inline]
fn packed_byte_len(count: usize, width: u32) -> usize {
    (count * width as usize).div_ceil(8)
}

/// Bits needed to represent `v` (0 for 0).
#[inline]
fn bits_for(v: u32) -> u32 {
    32 - v.leading_zeros()
}

impl BlockPostings {
    /// Encode a posting list given as `(doc, tf)` pairs with strictly
    /// increasing doc ids below [`EXHAUSTED`].
    ///
    /// # Panics
    /// Panics (debug builds) when doc ids are not strictly increasing.
    pub fn encode(postings: &[(u32, u32)]) -> Self {
        let mut headers = Vec::with_capacity(postings.len().div_ceil(BLOCK_DOCS));
        let mut data = Vec::new();
        let mut prev = 0u32;
        let mut first = true;
        let mut sum_tf = 0u64;
        let mut gaps = [0u32; BLOCK_DOCS];
        let mut tfs = [0u32; BLOCK_DOCS];
        for chunk in postings.chunks(BLOCK_DOCS) {
            let offset = u32::try_from(data.len()).expect("block data exceeds u32 offsets");
            let mut doc_bits = 0u32;
            let mut tf_bits = 0u32;
            for (i, &(doc, tf)) in chunk.iter().enumerate() {
                debug_assert!(
                    doc < EXHAUSTED && (first && doc >= prev || doc > prev),
                    "doc ids must be strictly increasing and below u32::MAX"
                );
                gaps[i] = doc - prev;
                tfs[i] = tf;
                doc_bits = doc_bits.max(bits_for(gaps[i]));
                tf_bits = tf_bits.max(bits_for(tf));
                sum_tf += u64::from(tf);
                prev = doc;
                first = false;
            }
            pack_bits(&mut data, &gaps[..chunk.len()], doc_bits);
            pack_bits(&mut data, &tfs[..chunk.len()], tf_bits);
            headers.push(BlockHeader {
                max_doc: prev,
                count: chunk.len() as u16,
                doc_bits: doc_bits as u8,
                tf_bits: tf_bits as u8,
                offset,
            });
        }
        if !headers.is_empty() {
            data.extend_from_slice(&[0u8; PAD_BYTES]);
        }
        BlockPostings {
            headers,
            data,
            len: postings.len() as u64,
            sum_tf,
        }
    }

    /// Reassemble a list from raw parts *without validation* — the entry
    /// point for hostile-bytes fuzzing of the lenient decoder. A list
    /// built this way must only be decoded through
    /// [`BlockPostings::try_decode_block`], which checks every header
    /// invariant before touching the data.
    pub fn from_raw_parts(headers: Vec<BlockHeader>, data: Vec<u8>, len: u64) -> Self {
        BlockPostings {
            headers,
            data,
            len,
            sum_tf: 0,
        }
    }

    /// Total postings across all blocks.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the list holds no postings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all term frequencies in the list (total postings count in
    /// the content-summary sense).
    pub fn total_tf(&self) -> u64 {
        self.sum_tf
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.headers.len()
    }

    /// The header of block `b`.
    pub fn header(&self, b: usize) -> &BlockHeader {
        &self.headers[b]
    }

    /// Bytes held by this list: the packed frames (incl. the tail pad)
    /// plus the headers.
    pub fn bytes(&self) -> u64 {
        (self.data.len() + self.headers.len() * std::mem::size_of::<BlockHeader>()) as u64
    }

    /// Decode block `b` into the scratch vectors (cleared first).
    /// Trusted fast path: `self` must come from [`BlockPostings::encode`].
    pub(crate) fn decode_block(&self, b: usize, docs: &mut Vec<u32>, tfs: &mut Vec<u32>) {
        self.decode_block_docs(b, docs);
        self.decode_block_tfs(b, tfs);
    }

    /// Decode only block `b`'s doc ids (gap unpack + prefix sum). The
    /// cursor uses this on every landing block and defers
    /// [`BlockPostings::decode_block_tfs`] until a tf is actually read
    /// — blocks that are bounded out never pay for their tf section.
    pub(crate) fn decode_block_docs(&self, b: usize, docs: &mut Vec<u32>) {
        let h = self.headers[b];
        let count = usize::from(h.count);
        docs.clear();
        docs.resize(count, 0);
        unpack_bits(
            &self.data[h.offset as usize..],
            count,
            h.doc_bits.into(),
            docs,
        );
        let mut prev = if b == 0 {
            0
        } else {
            self.headers[b - 1].max_doc
        };
        for d in docs.iter_mut() {
            prev = prev.wrapping_add(*d);
            *d = prev;
        }
    }

    /// Decode only block `b`'s term frequencies.
    pub(crate) fn decode_block_tfs(&self, b: usize, tfs: &mut Vec<u32>) {
        let h = self.headers[b];
        let count = usize::from(h.count);
        tfs.clear();
        tfs.resize(count, 0);
        let base = h.offset as usize + packed_byte_len(count, h.doc_bits.into());
        unpack_bits(&self.data[base..], count, h.tf_bits.into(), tfs);
    }

    /// Lenient decode of block `b`: validates the header against the
    /// data before unpacking and returns `None` instead of panicking on
    /// any malformed input (bad widths, counts, offsets, truncated
    /// data). This is the path fuzzed with hostile bytes.
    pub fn try_decode_block(&self, b: usize) -> Option<(Vec<u32>, Vec<u32>)> {
        let h = *self.headers.get(b)?;
        let count = usize::from(h.count);
        if count == 0 || count > BLOCK_DOCS || h.doc_bits > 32 || h.tf_bits > 32 {
            return None;
        }
        let base = h.offset as usize;
        let doc_bytes = packed_byte_len(count, h.doc_bits.into());
        let tf_bytes = packed_byte_len(count, h.tf_bits.into());
        // The word decoder may overrun a section by up to 7 bytes; the
        // pad requirement keeps every u64 load inside `data`.
        let end = base
            .checked_add(doc_bytes)?
            .checked_add(tf_bytes)?
            .checked_add(PAD_BYTES)?;
        if end > self.data.len() {
            return None;
        }
        let mut docs = vec![0u32; count];
        let mut tfs = vec![0u32; count];
        unpack_bits(&self.data[base..], count, h.doc_bits.into(), &mut docs);
        unpack_bits(
            &self.data[base + doc_bytes..],
            count,
            h.tf_bits.into(),
            &mut tfs,
        );
        let mut prev = if b == 0 {
            0u32
        } else {
            self.headers[b - 1].max_doc
        };
        for d in docs.iter_mut() {
            prev = prev.wrapping_add(*d);
            *d = prev;
        }
        Some((docs, tfs))
    }
}

/// Append `values` to `out`, packed at `width` bits each, LSB-first.
fn pack_bits(out: &mut Vec<u8>, values: &[u32], width: u32) {
    if width == 0 {
        return;
    }
    let mut acc = 0u64;
    let mut have = 0u32;
    for &v in values {
        debug_assert!(width == 32 || v < (1 << width));
        acc |= u64::from(v) << have;
        have += width;
        while have >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            have -= 8;
        }
    }
    if have > 0 {
        out.push(acc as u8);
    }
}

/// Unpack `count` values of `width` bits from the head of `src` into
/// `out`, choosing the best kernel for this machine at runtime: on
/// `x86_64` with AVX2, whole 32-lane groups at byte widths (8/16/32)
/// take the vector kernel; everything else takes the word-parallel
/// scalar kernel. Both kernels are bit-identical by construction and by
/// the `simd_matches_scalar` property test.
///
/// `src` must hold at least `packed_byte_len(count, width) + 8` bytes —
/// the decoder reads whole u64 words and may overrun the packed section
/// by up to 7 bytes.
#[doc(hidden)]
pub fn unpack_bits(src: &[u8], count: usize, width: u32, out: &mut [u32]) {
    assert!(width <= 32 && count <= out.len());
    assert!(src.len() >= packed_byte_len(count, width) + PAD_BYTES);
    #[cfg(target_arch = "x86_64")]
    {
        if matches!(width, 8 | 16 | 32)
            && count >= 32
            && std::arch::is_x86_feature_detected!("avx2")
        {
            let groups = count / 32;
            // Safety: AVX2 presence was just detected; the length
            // assertion above covers every load the kernel performs
            // (groups * 4 * width bytes, all inside the packed section).
            unsafe { unpack_groups_avx2(src, groups, width, out) };
            let done = groups * 32;
            let consumed = groups * 4 * width as usize;
            unpack_bits_scalar(&src[consumed..], count - done, width, &mut out[done..]);
            return;
        }
    }
    unpack_bits_scalar(src, count, width, out);
}

/// The scalar unpacking kernel, word-parallel with no carried state:
/// eight consecutive values at `width` bits always realign to a byte
/// boundary (8·width ≡ 0 mod 8), so the loop is monomorphized per
/// width and every value inside an 8-group is one unaligned `u64` load
/// at a compile-time-constant byte offset, shift and mask — a form the
/// optimizer unrolls and vectorizes freely. Public (hidden) so
/// property tests can pin the dispatched kernel against it. Same `src`
/// length contract as [`unpack_bits`].
#[doc(hidden)]
pub fn unpack_bits_scalar(src: &[u8], count: usize, width: u32, out: &mut [u32]) {
    assert!(width <= 32 && count <= out.len());
    if width == 0 {
        out[..count].fill(0);
        return;
    }
    assert!(src.len() >= packed_byte_len(count, width) + PAD_BYTES);
    macro_rules! dispatch {
        ($($w:literal)*) => {
            match width {
                $($w => unpack_fixed::<$w>(src, count, out),)*
                _ => unreachable!("width checked above"),
            }
        };
    }
    dispatch!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32);
}

/// One value of the packed stream: an unaligned little-endian `u64`
/// load covering bit `bit` onward (at most 7 + 32 = 39 bits needed, so
/// one word always suffices), shifted and masked. The +8 pad in the
/// `src` contract keeps the load in bounds even for the last value.
#[inline(always)]
fn extract<const W: u32>(src: &[u8], bit: usize) -> u32 {
    let mask = if W == 32 { u32::MAX } else { (1u32 << W) - 1 };
    let byte = bit >> 3;
    let word = u64::from_le_bytes(src[byte..byte + 8].try_into().unwrap());
    (word >> (bit & 7)) as u32 & mask
}

/// [`unpack_bits_scalar`] at one compile-time width: full 8-value
/// groups with constant in-group offsets, then a tail loop.
fn unpack_fixed<const W: u32>(src: &[u8], count: usize, out: &mut [u32]) {
    let groups = count / 8;
    let mut base = 0usize;
    for chunk in out[..groups * 8].chunks_exact_mut(8) {
        for (j, o) in chunk.iter_mut().enumerate() {
            *o = extract::<W>(&src[base..], j * W as usize);
        }
        base += W as usize;
    }
    for (i, o) in out[groups * 8..count].iter_mut().enumerate() {
        *o = extract::<W>(src, (groups * 8 + i) * W as usize);
    }
}

/// AVX2 kernel: widen `groups` full 32-lane groups at a byte-aligned
/// width (8, 16 or 32 bits) straight into `out`.
///
/// # Safety
/// Requires AVX2; `src` must hold `groups * 4 * width` readable bytes
/// and `out` at least `groups * 32` slots.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn unpack_groups_avx2(src: &[u8], groups: usize, width: u32, out: &mut [u32]) {
    use std::arch::x86_64::*;
    debug_assert!(matches!(width, 8 | 16 | 32));
    debug_assert!(src.len() >= groups * 4 * width as usize && out.len() >= groups * 32);
    let mut src_p = src.as_ptr();
    let mut out_p = out.as_mut_ptr();
    for _ in 0..groups {
        match width {
            8 => {
                // 32 bytes -> four 8-lane zero-extensions.
                for k in 0..4 {
                    let v = _mm_loadl_epi64(src_p.add(8 * k).cast());
                    _mm256_storeu_si256(out_p.add(8 * k).cast(), _mm256_cvtepu8_epi32(v));
                }
            }
            16 => {
                // 64 bytes -> four 8-lane zero-extensions.
                for k in 0..4 {
                    let v = _mm_loadu_si128(src_p.add(16 * k).cast());
                    _mm256_storeu_si256(out_p.add(8 * k).cast(), _mm256_cvtepu16_epi32(v));
                }
            }
            _ => {
                // width 32: 128 bytes copied through four 256-bit lanes.
                for k in 0..4 {
                    let v = _mm256_loadu_si256(src_p.add(32 * k).cast());
                    _mm256_storeu_si256(out_p.add(8 * k).cast(), v);
                }
            }
        }
        src_p = src_p.add(4 * width as usize);
        out_p = out_p.add(32);
    }
}

/// A forward-only cursor over a [`BlockPostings`] list with header-level
/// skipping: `next()` steps one posting, `next_geq(d)` seeks to the
/// first posting at or past `d` decoding only the landing block, and
/// `block_max_score()` exposes the current block's score upper bound.
/// The cursor tallies the blocks it jumped without decoding and the
/// postings it actually rested on — the raw feed for the engine's
/// `blocks_skipped` / `skipped_docs` telemetry.
#[derive(Debug)]
pub struct BlockCursor<'a> {
    list: &'a BlockPostings,
    /// Per-block score upper bounds (engine-computed); empty = unknown.
    bounds: &'a [f64],
    /// Current block; `list.n_blocks()` once exhausted.
    block: usize,
    pos: usize,
    docs: Vec<u32>,
    tfs: Vec<u32>,
    /// Whether `tfs` holds the current block's frequencies. Doc ids are
    /// decoded on every landing block; the tf section only when
    /// [`BlockCursor::tf`] is first called on it, so blocks that are
    /// bounded out never pay the second unpack.
    tfs_valid: bool,
    blocks_skipped: u64,
    visited: u64,
}

impl<'a> BlockCursor<'a> {
    /// A cursor positioned on the first posting (exhausted immediately
    /// for an empty list), without score bounds.
    pub fn new(list: &'a BlockPostings) -> Self {
        Self::with_bounds(list, &[])
    }

    /// [`BlockCursor::new`] with per-block score upper bounds; `bounds[b]`
    /// must dominate every score contribution a document of block `b`
    /// can make. The engine derives these from the exact `term_weight`
    /// values next to its global [`crate::TermBounds`] envelope.
    pub fn with_bounds(list: &'a BlockPostings, bounds: &'a [f64]) -> Self {
        let mut cursor = BlockCursor {
            list,
            bounds,
            block: 0,
            pos: 0,
            docs: Vec::new(),
            tfs: Vec::new(),
            tfs_valid: false,
            blocks_skipped: 0,
            visited: 0,
        };
        if cursor.list.n_blocks() > 0 {
            cursor.list.decode_block_docs(0, &mut cursor.docs);
            cursor.visited = 1;
        }
        cursor
    }

    /// The current doc id, or [`EXHAUSTED`] past the end.
    pub fn doc(&self) -> u32 {
        if self.is_exhausted() {
            EXHAUSTED
        } else {
            self.docs[self.pos]
        }
    }

    /// Term frequency of the current posting, decoding the block's tf
    /// section on first use.
    ///
    /// # Panics
    /// Panics when the cursor is exhausted.
    pub fn tf(&mut self) -> u32 {
        if !self.tfs_valid {
            self.list.decode_block_tfs(self.block, &mut self.tfs);
            self.tfs_valid = true;
        }
        self.tfs[self.pos]
    }

    /// Whether the cursor is past its last posting.
    pub fn is_exhausted(&self) -> bool {
        self.block >= self.list.n_blocks()
    }

    /// Advance to the next posting.
    pub fn next(&mut self) {
        if self.is_exhausted() {
            return;
        }
        self.pos += 1;
        if self.pos == self.docs.len() {
            self.block += 1;
            self.pos = 0;
            if self.block < self.list.n_blocks() {
                self.list.decode_block_docs(self.block, &mut self.docs);
                self.tfs_valid = false;
            }
        }
        if !self.is_exhausted() {
            self.visited += 1;
        }
    }

    /// Seek to the first posting with doc id `>= target`, decoding only
    /// the block it lands in: candidate blocks are located through the
    /// header `max_doc` fence posts, and every block passed clean over
    /// is tallied in [`BlockCursor::blocks_skipped`] without being
    /// decoded. A target at or before the current doc is a no-op.
    pub fn next_geq(&mut self, target: u32) {
        if self.is_exhausted() || target <= self.docs[self.pos] {
            return;
        }
        if target > self.list.header(self.block).max_doc {
            // Header-only seek to the first block that can hold target.
            let rest = &self.list.headers[self.block + 1..];
            let ahead = rest.partition_point(|h| h.max_doc < target);
            self.blocks_skipped += ahead as u64;
            self.block += 1 + ahead;
            self.pos = 0;
            if self.is_exhausted() {
                return;
            }
            self.list.decode_block_docs(self.block, &mut self.docs);
            self.tfs_valid = false;
        }
        self.pos += self.docs[self.pos..].partition_point(|&d| d < target);
        debug_assert!(
            self.pos < self.docs.len(),
            "header promised a doc >= target"
        );
        self.visited += 1;
    }

    /// Index of the current block.
    pub fn block_index(&self) -> usize {
        self.block
    }

    /// Last doc id of the current block (the header fence post).
    ///
    /// # Panics
    /// Panics when the cursor is exhausted.
    pub fn block_max_doc(&self) -> u32 {
        self.list.header(self.block).max_doc
    }

    /// Score upper bound of the current block; `+inf` when the cursor
    /// was built without bounds (no skipping is then ever justified).
    pub fn block_max_score(&self) -> f64 {
        self.bounds
            .get(self.block)
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// Header-only lookup: the first block at or after the current one
    /// whose `max_doc` reaches `target` — the block a `next_geq(target)`
    /// would land in — or `None` when the list ends before `target`.
    /// Does not move the cursor and decodes nothing.
    pub fn block_for(&self, target: u32) -> Option<usize> {
        if self.is_exhausted() {
            return None;
        }
        if self.list.header(self.block).max_doc >= target {
            return Some(self.block);
        }
        let rest = &self.list.headers[self.block + 1..];
        let ahead = rest.partition_point(|h| h.max_doc < target);
        let b = self.block + 1 + ahead;
        (b < self.list.n_blocks()).then_some(b)
    }

    /// Score upper bound of block `b` (see [`BlockCursor::block_max_score`]).
    pub fn block_max_score_at(&self, b: usize) -> f64 {
        self.bounds.get(b).copied().unwrap_or(f64::INFINITY)
    }

    /// Last doc id of block `b`.
    pub fn block_last_doc(&self, b: usize) -> u32 {
        self.list.header(b).max_doc
    }

    /// Total postings in the underlying list.
    pub fn len(&self) -> u64 {
        self.list.len()
    }

    /// Whether the underlying list is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Blocks jumped over without decoding, so far.
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped
    }

    /// Distinct postings the cursor has rested on, so far. The
    /// difference `len() - visited()` is the number of postings the
    /// cursor never paid a score evaluation for.
    pub fn visited(&self) -> u64 {
        self.visited
    }

    /// The current block's remaining postings, from the cursor's
    /// position to the block's end, as parallel `(docs, tfs)` slices
    /// (entry 0 is the current posting). Decodes the block's tf
    /// section on first use — callers bulk-scoring a run read both
    /// arrays directly instead of paying a `next()`/[`BlockCursor::tf`]
    /// round-trip per posting.
    ///
    /// # Panics
    /// Panics when the cursor is exhausted.
    pub fn remaining_in_block(&mut self) -> (&[u32], &[u32]) {
        if !self.tfs_valid {
            self.list.decode_block_tfs(self.block, &mut self.tfs);
            self.tfs_valid = true;
        }
        (&self.docs[self.pos..], &self.tfs[self.pos..])
    }

    /// Step `m` postings forward within the current block — `m` at most
    /// the length of [`BlockCursor::remaining_in_block`] — with the
    /// same bookkeeping as `m` successive [`BlockCursor::next`] calls:
    /// each posting stepped over counts as visited, and consuming the
    /// whole remainder rolls over into the next block.
    pub fn advance_in_block(&mut self, m: usize) {
        debug_assert!(self.pos + m <= self.docs.len());
        self.pos += m;
        if self.pos == self.docs.len() {
            self.block += 1;
            self.pos = 0;
            if self.block < self.list.n_blocks() {
                self.list.decode_block_docs(self.block, &mut self.docs);
                self.tfs_valid = false;
            }
        }
        self.visited += m as u64;
        if m > 0 && self.is_exhausted() {
            // The last step moved past the end, not onto a posting —
            // exactly as `next()` refuses to count exhaustion.
            self.visited -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(list: &BlockPostings) -> Vec<(u32, u32)> {
        let mut cursor = BlockCursor::new(list);
        let mut out = Vec::new();
        while !cursor.is_exhausted() {
            out.push((cursor.doc(), cursor.tf()));
            cursor.next();
        }
        out
    }

    #[test]
    fn batch_walk_matches_next_walk() {
        let postings: Vec<(u32, u32)> = (0..300u32).map(|i| (i * 3, 1 + (i % 5))).collect();
        let list = BlockPostings::encode(&postings);
        let mut batch = BlockCursor::new(&list);
        let mut from_batch = Vec::new();
        while !batch.is_exhausted() {
            let (docs, tfs) = batch.remaining_in_block();
            let run = docs.len();
            from_batch.extend(docs.iter().copied().zip(tfs.iter().copied()));
            batch.advance_in_block(run);
        }
        assert_eq!(from_batch, postings);
        let mut single = BlockCursor::new(&list);
        while !single.is_exhausted() {
            single.next();
        }
        assert_eq!(batch.visited(), single.visited());
        // A partial advance agrees with the same number of `next()` steps.
        let mut a = BlockCursor::new(&list);
        let mut b = BlockCursor::new(&list);
        a.advance_in_block(2);
        b.next();
        b.next();
        assert_eq!((a.doc(), a.tf()), (b.doc(), b.tf()));
        assert_eq!(a.visited(), b.visited());
    }

    #[test]
    fn round_trip_small() {
        let postings = vec![(0, 1), (3, 2), (4, 1), (1000, 70000)];
        let list = BlockPostings::encode(&postings);
        assert_eq!(list.len(), 4);
        assert_eq!(list.n_blocks(), 1);
        assert_eq!(decode_all(&list), postings);
        assert_eq!(list.total_tf(), 1 + 2 + 1 + 70000);
    }

    #[test]
    fn round_trip_multi_block() {
        let postings: Vec<(u32, u32)> = (0..1000).map(|i| (i * 3, i % 7 + 1)).collect();
        let list = BlockPostings::encode(&postings);
        assert_eq!(list.n_blocks(), 1000usize.div_ceil(BLOCK_DOCS));
        assert_eq!(decode_all(&list), postings);
        // Header fence posts partition the doc space.
        assert_eq!(list.header(0).max_doc, (BLOCK_DOCS as u32 - 1) * 3);
        assert_eq!(list.header(list.n_blocks() - 1).max_doc, 999 * 3);
    }

    #[test]
    fn empty_list() {
        let list = BlockPostings::encode(&[]);
        assert!(list.is_empty());
        assert_eq!(list.n_blocks(), 0);
        let cursor = BlockCursor::new(&list);
        assert!(cursor.is_exhausted());
        assert_eq!(cursor.doc(), EXHAUSTED);
    }

    #[test]
    fn headers_record_frame_widths() {
        // Gaps of 3 need 2 bits; tfs up to 7 need 3 bits.
        let postings: Vec<(u32, u32)> = (0..200).map(|i| (i * 3, i % 7 + 1)).collect();
        let list = BlockPostings::encode(&postings);
        assert_eq!(list.header(0).doc_bits, 2);
        assert_eq!(list.header(0).tf_bits, 3);
        // A lone zero needs zero bits for both sections.
        let tiny = BlockPostings::encode(&[(0, 0)]);
        assert_eq!(tiny.header(0).doc_bits, 0);
        assert_eq!(tiny.header(0).tf_bits, 0);
        assert_eq!(decode_all(&tiny), vec![(0, 0)]);
    }

    #[test]
    fn next_geq_skips_blocks_without_decoding() {
        let postings: Vec<(u32, u32)> = (0..1000).map(|i| (i, 1)).collect();
        let list = BlockPostings::encode(&postings);
        let mut cursor = BlockCursor::new(&list);
        cursor.next_geq(900);
        assert_eq!(cursor.doc(), 900);
        // Blocks 1..block(900) were passed without decode.
        assert_eq!(cursor.block_index(), 900 / BLOCK_DOCS);
        assert_eq!(cursor.blocks_skipped(), (900 / BLOCK_DOCS - 1) as u64);
        // Only the first and the landing posting were rested on.
        assert_eq!(cursor.visited(), 2);
    }

    #[test]
    fn next_geq_is_monotone_and_clamps() {
        let list = BlockPostings::encode(&[(5, 1), (9, 2), (200, 3)]);
        let mut cursor = BlockCursor::new(&list);
        cursor.next_geq(0); // target before current: no-op
        assert_eq!(cursor.doc(), 5);
        cursor.next_geq(6);
        assert_eq!((cursor.doc(), cursor.tf()), (9, 2));
        cursor.next_geq(9); // at current: no-op
        assert_eq!(cursor.doc(), 9);
        cursor.next_geq(201);
        assert!(cursor.is_exhausted());
        cursor.next(); // past end: stays exhausted
        assert_eq!(cursor.doc(), EXHAUSTED);
    }

    #[test]
    fn block_for_is_a_pure_lookup() {
        let postings: Vec<(u32, u32)> = (0..300).map(|i| (i * 2, 1)).collect();
        let list = BlockPostings::encode(&postings);
        let cursor = BlockCursor::new(&list);
        assert_eq!(cursor.block_for(0), Some(0));
        assert_eq!(cursor.block_for(2 * BLOCK_DOCS as u32), Some(1));
        assert_eq!(cursor.block_for(598), Some(2));
        assert_eq!(cursor.block_for(599), None);
        assert_eq!(cursor.doc(), 0, "lookup must not move the cursor");
        assert_eq!(cursor.blocks_skipped(), 0);
    }

    #[test]
    fn bounds_surface() {
        let postings: Vec<(u32, u32)> = (0..200).map(|i| (i, 1)).collect();
        let list = BlockPostings::encode(&postings);
        let bounds = [0.5, 2.0];
        let mut cursor = BlockCursor::with_bounds(&list, &bounds);
        assert_eq!(cursor.block_max_score(), 0.5);
        cursor.next_geq(BLOCK_DOCS as u32);
        assert_eq!(cursor.block_max_score(), 2.0);
        assert_eq!(cursor.block_max_score_at(0), 0.5);
        let unbounded = BlockCursor::new(&list);
        assert_eq!(unbounded.block_max_score(), f64::INFINITY);
    }

    #[test]
    fn extreme_widths_round_trip() {
        // 32-bit gaps and 32-bit tfs in one block.
        let postings = vec![(0, u32::MAX), (u32::MAX - 1, 1)];
        let list = BlockPostings::encode(&postings);
        assert_eq!(list.header(0).doc_bits, 32);
        assert_eq!(list.header(0).tf_bits, 32);
        assert_eq!(decode_all(&list), postings);
    }

    #[test]
    fn dispatched_unpack_matches_scalar() {
        // Exercise every width 0..=32 with >32 values so the AVX2
        // group kernel (when present) covers full groups and the
        // scalar tail.
        for width in 0..=32u32 {
            let mask = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width).wrapping_sub(1)
            };
            let values: Vec<u32> = (0..77u32)
                .map(|i| i.wrapping_mul(0x9e37_79b9).rotate_left(i % 31) & mask)
                .collect();
            let mut packed = Vec::new();
            pack_bits(&mut packed, &values, width);
            packed.extend_from_slice(&[0u8; PAD_BYTES]);
            let mut scalar = vec![0u32; values.len()];
            let mut dispatched = vec![0u32; values.len()];
            unpack_bits_scalar(&packed, values.len(), width, &mut scalar);
            unpack_bits(&packed, values.len(), width, &mut dispatched);
            assert_eq!(scalar, values, "width {width}");
            assert_eq!(dispatched, values, "width {width}");
        }
    }

    #[test]
    fn lenient_decode_rejects_malformed_headers() {
        // Offset far past the data.
        let h = BlockHeader {
            max_doc: 10,
            count: 4,
            doc_bits: 8,
            tf_bits: 8,
            offset: 1000,
        };
        let list = BlockPostings::from_raw_parts(vec![h], vec![0u8; 16], 4);
        assert!(list.try_decode_block(0).is_none());
        // Width out of range.
        let h = BlockHeader {
            max_doc: 10,
            count: 4,
            doc_bits: 64,
            tf_bits: 8,
            offset: 0,
        };
        let list = BlockPostings::from_raw_parts(vec![h], vec![0u8; 64], 4);
        assert!(list.try_decode_block(0).is_none());
        // Count out of range.
        let h = BlockHeader {
            max_doc: 10,
            count: 60_000,
            doc_bits: 1,
            tf_bits: 1,
            offset: 0,
        };
        let list = BlockPostings::from_raw_parts(vec![h], vec![0u8; 64], 4);
        assert!(list.try_decode_block(0).is_none());
        // Missing block.
        assert!(list.try_decode_block(7).is_none());
    }

    #[test]
    fn lenient_decode_agrees_with_cursor_on_valid_lists() {
        let postings: Vec<(u32, u32)> = (0..300).map(|i| (i * 5 + 2, i % 9)).collect();
        let list = BlockPostings::encode(&postings);
        let mut seen = Vec::new();
        for b in 0..list.n_blocks() {
            let (docs, tfs) = list.try_decode_block(b).expect("valid block");
            seen.extend(docs.into_iter().zip(tfs));
        }
        assert_eq!(seen, postings);
    }

    #[test]
    fn compression_beats_raw_pairs() {
        // Dense doc ids and small tfs: ~2 bytes per posting vs 8 raw.
        let postings: Vec<(u32, u32)> = (0..10_000).map(|i| (i, 1)).collect();
        let list = BlockPostings::encode(&postings);
        assert!(list.bytes() < 8 * list.len() / 2, "bytes={}", list.bytes());
    }
}
