//! The sharded engine: parallel index build and parallel query fan-out
//! with an exact per-shard merge.
//!
//! The paper's sources are opaque engines that must still return
//! mergeable ranked results (§3.2). A [`ShardedEngine`] partitions a
//! source's documents into `N` contiguous shards, builds one [`Index`]
//! per shard concurrently, and answers every query by fanning the
//! evaluation out to all shards and combining the per-shard lists with a
//! bounded k-way heap merge ([`crate::topk::merge_ranked`]).
//!
//! The merge is *exact*: every ranking algorithm scores each document
//! identically to the monolithic engine, because global collection
//! statistics ([`CollectionStats`] — document frequencies, document
//! count, average document length, and the doc norms derived from them)
//! are computed once over all shards and broadcast to each. Per-shard
//! evaluation stops short of the ranking algorithm's `finalize`
//! (score-scale) step; the merged global list is finalized exactly once,
//! so even the §3.2 vendor that pins its top hit to 1000 scales off the
//! true global maximum.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use starts_text::{Analyzer, LangTag, Thesaurus};

use crate::boolean::BoolNode;
use crate::doc::{DocId, Document};
use crate::engine::{
    Engine, EngineConfig, Hit, PruneCounters, PruneHooks, PruneReport, RankNode, ShardPolicy,
    TermStat,
};
use crate::index::{Index, IndexBuilder, PostingsFootprint};
use crate::matchspec::TermSpec;
use crate::ranking::RankingAlgorithm;
use crate::schema::{FieldId, Schema};
use crate::topk::{merge_ranked, SharedThreshold};

/// Global collection statistics, computed across all shards and shared
/// (via `Arc`) with each per-shard [`Engine`]. Holding these makes a
/// shard score every local document exactly as the monolithic engine
/// scores it: `df`, `N` and the average document length — every
/// collection-dependent input to a ranking formula — are global.
#[derive(Debug)]
pub struct CollectionStats {
    n_docs: u32,
    total_tokens: u64,
    /// Per-field document frequencies. `BTreeMap` so vocabulary scans
    /// iterate in sorted term order, matching the sorted scan the
    /// monolithic resolver produces.
    df: HashMap<FieldId, BTreeMap<String, u32>>,
}

impl CollectionStats {
    /// Merge per-shard indexes into global statistics. Shards hold
    /// disjoint documents, so document frequencies simply add.
    pub(crate) fn from_indexes(indexes: &[Index]) -> Self {
        let mut n_docs = 0u32;
        let mut total_tokens = 0u64;
        let mut df: HashMap<FieldId, BTreeMap<String, u32>> = HashMap::new();
        for index in indexes {
            n_docs += index.n_docs();
            total_tokens += index.total_tokens();
            for (field, _tid, term, postings) in index.all_postings() {
                *df.entry(field)
                    .or_default()
                    .entry(term.to_string())
                    .or_insert(0) += postings.len() as u32;
            }
        }
        CollectionStats {
            n_docs,
            total_tokens,
            df,
        }
    }

    /// Total documents across all shards.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Total tokens across all shards.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Mean document length in tokens across all shards.
    pub fn avg_doc_tokens(&self) -> f64 {
        if self.n_docs == 0 {
            0.0
        } else {
            self.total_tokens as f64 / f64::from(self.n_docs)
        }
    }

    /// Global document frequency of an index key in a field.
    pub fn df(&self, field: FieldId, term: &str) -> u32 {
        self.df
            .get(&field)
            .and_then(|terms| terms.get(term))
            .copied()
            .unwrap_or(0)
    }

    /// Whether any shard indexed this (field, term) pair.
    pub fn contains(&self, field: FieldId, term: &str) -> bool {
        self.df
            .get(&field)
            .is_some_and(|terms| terms.contains_key(term))
    }

    /// The global vocabulary of a field with each term's document
    /// frequency, in sorted term order.
    pub fn field_terms(&self, field: FieldId) -> impl Iterator<Item = (&str, u32)> + '_ {
        self.df
            .get(&field)
            .into_iter()
            .flat_map(|terms| terms.iter().map(|(t, &df)| (t.as_str(), df)))
    }
}

/// A search engine whose documents are partitioned across `N` shard
/// [`Engine`]s, built and queried in parallel, with results merged
/// exactly (bit-identical scores and ordering) to the monolithic
/// [`Engine`] over the same documents.
///
/// Documents are assigned to shards contiguously: shard `i` holds the
/// global doc-id range `[bases[i], bases[i] + shards[i].n_docs())`, so
/// shard order is global document order and a global id maps to a shard
/// by binary search over the bases.
pub struct ShardedEngine {
    shards: Vec<Engine>,
    /// `bases[i]` = global id of shard `i`'s local document 0.
    bases: Vec<u32>,
    n_docs: u32,
    collection: Option<Arc<CollectionStats>>,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("n_docs", &self.n_docs)
            .field("ranking", &self.ranking().id())
            .finish()
    }
}

/// Corpus-size floor for auto-sharding: an auto-resolved shard should
/// hold at least this many documents before fan-out pays for itself.
/// `BENCH_shard.json` documents the regime this guards against — on
/// small corpora (and on 1-core containers) multi-shard is pure
/// per-query fan-out overhead, so `shards: 0` only splits when both the
/// hardware *and* the corpus justify it. Explicit `shards: N` remains
/// exact (clamped to the document count). The floor is expressed in
/// blocks: a shard below 8 × [`crate::BLOCK_DOCS`] documents rarely
/// spans enough 128-doc blocks per posting list for Block-Max-WAND to
/// skip anything, so splitting it costs fan-out overhead *and* forfeits
/// block-skip opportunity.
pub const MIN_DOCS_PER_AUTO_SHARD: usize = 8 * crate::blocks::BLOCK_DOCS;

fn resolve_shard_count(requested: usize, n_docs: usize, policy: ShardPolicy) -> usize {
    // Machine parallelism capped by corpus size: a 1-core container
    // never fans out, and a tiny corpus never splits just because the
    // machine is wide.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let by_corpus = (n_docs / MIN_DOCS_PER_AUTO_SHARD).max(1);
    let wanted = match (requested, policy) {
        (0, _) => cores.min(by_corpus),
        // Adaptive: an explicit request is an upper bound — querying N
        // shards on a machine that can only run one worker pays N
        // resolve/evaluate/merge passes for zero parallel speedup, and
        // under-floor shards forfeit block-skip opportunity on top.
        (n, ShardPolicy::Adaptive) => n.min(cores).min(by_corpus),
        (n, ShardPolicy::Exact) => n,
    };
    wanted.clamp(1, n_docs.max(1))
}

impl ShardedEngine {
    /// Partition `docs` into `config.shards` shards (0 = available
    /// parallelism), build the per-shard indexes concurrently, compute
    /// global collection statistics, and wrap each shard in an
    /// [`Engine`] carrying those statistics.
    ///
    /// # Panics
    /// Panics if `config.ranking_id` is unknown, as [`Engine::build`]
    /// does.
    pub fn build(docs: &[Document], config: EngineConfig) -> Self {
        let shard_count = resolve_shard_count(config.shards, docs.len(), config.shard_policy);
        if shard_count == 1 {
            // Monolithic: one shard, local statistics (which *are* the
            // global ones), no fan-out overhead on any path.
            let engine = Engine::build(docs, config);
            let n_docs = engine.index().n_docs();
            return ShardedEngine {
                shards: vec![engine],
                bases: vec![0],
                n_docs,
                collection: None,
            };
        }
        // Sequential schema pre-pass: intern field names in first-
        // appearance order — the order the monolithic builder would have
        // used — so every shard shares one FieldId assignment and the
        // per-field statistics can merge by id.
        let mut schema = Schema::new();
        for d in docs {
            for fv in d.fields() {
                schema.intern(&fv.name);
            }
        }
        // Contiguous, balanced partition: the first (n % s) shards get
        // one extra document, and concatenating shards in order yields
        // the monolithic document order.
        let n = docs.len();
        let base_size = n / shard_count;
        let extra = n % shard_count;
        let mut chunks: Vec<&[Document]> = Vec::with_capacity(shard_count);
        let mut start = 0;
        for i in 0..shard_count {
            let len = base_size + usize::from(i < extra);
            chunks.push(&docs[start..start + len]);
            start += len;
        }
        let analyzer_cfg = &config.analyzer;
        let schema_ref = &schema;
        let positions = config.positions;
        let indexes: Vec<Index> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    scope.spawn(move |_| {
                        let mut builder = IndexBuilder::with_schema(
                            Analyzer::new(analyzer_cfg.clone()),
                            schema_ref.clone(),
                        )
                        .positions(positions);
                        for d in *chunk {
                            builder.add(d);
                        }
                        builder.build()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard index build panicked"))
                .collect()
        })
        .expect("shard build scope");
        let collection = Arc::new(CollectionStats::from_indexes(&indexes));
        let mut bases = Vec::with_capacity(shard_count);
        let mut next = 0u32;
        for index in &indexes {
            bases.push(next);
            next += index.n_docs();
        }
        // Engine construction is also parallel: doc-norm computation
        // (needed by the cosine rankers) is the expensive part and only
        // reads the shard-local index plus the shared statistics.
        let config_ref = &config;
        let stats_ref = &collection;
        let shards: Vec<Engine> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = indexes
                .into_iter()
                .map(|index| {
                    scope.spawn(move |_| {
                        Engine::from_index_with_stats(
                            index,
                            config_ref.clone(),
                            Some(Arc::clone(stats_ref)),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard engine build panicked"))
                .collect()
        })
        .expect("shard engine scope");
        ShardedEngine {
            shards,
            bases,
            n_docs: next,
            collection: Some(collection),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines, in global document order. Content-summary
    /// generation iterates these to aggregate per-field term statistics.
    pub fn shards(&self) -> &[Engine] {
        &self.shards
    }

    /// Execute a query across all shards (unbounded).
    pub fn search(&self, filter: Option<&BoolNode>, ranking: Option<&RankNode>) -> Vec<Hit> {
        self.search_top_k(filter, ranking, None)
    }

    /// Execute a query across all shards, keeping the best `limit` hits.
    /// The result is exactly — scores, ordering, doc-id tie-breaks — what
    /// the monolithic [`Engine::search_top_k`] returns over the same
    /// documents.
    pub fn search_top_k(
        &self,
        filter: Option<&BoolNode>,
        ranking: Option<&RankNode>,
        limit: Option<usize>,
    ) -> Vec<Hit> {
        self.search_top_k_timed(filter, ranking, limit).0
    }

    /// [`ShardedEngine::search_top_k`] that also reports each shard's
    /// evaluation latency in microseconds (index-aligned with
    /// [`ShardedEngine::shards`]) for observability.
    pub fn search_top_k_timed(
        &self,
        filter: Option<&BoolNode>,
        ranking: Option<&RankNode>,
        limit: Option<usize>,
    ) -> (Vec<Hit>, Vec<u64>) {
        let (hits, timings, _) = self.search_top_k_observed(
            filter,
            ranking,
            &SearchOptions {
                limit,
                ..SearchOptions::default()
            },
        );
        (hits, timings)
    }

    /// [`ShardedEngine::search_top_k_timed`] with the full pruning
    /// surface: an optional `min-doc-score` floor seed and a
    /// [`PruneReport`] aggregated across shards. When more than one
    /// shard evaluates a ranked query, the shards share one rising
    /// threshold cell — a shard whose heap fills first tightens every
    /// other shard's pruning bound mid-flight. Hits at or above
    /// `opts.min_score` are never dropped; callers still apply their
    /// own final `min-doc-score` retention.
    pub fn search_top_k_observed(
        &self,
        filter: Option<&BoolNode>,
        ranking: Option<&RankNode>,
        opts: &SearchOptions,
    ) -> (Vec<Hit>, Vec<u64>, PruneReport) {
        let limit = opts.limit;
        // Seed the raw-score floor only when the ranking algorithm can
        // soundly translate the post-finalize threshold back to raw
        // scores (the §3.2 max-rescaling vendor cannot).
        let floor = match ranking {
            Some(_) if opts.min_score.is_finite() => self
                .ranking()
                .raw_score_floor(opts.min_score)
                .unwrap_or(f64::NEG_INFINITY),
            _ => f64::NEG_INFINITY,
        };
        let counters = PruneCounters::default();
        if self.shards.len() == 1 {
            let hooks = PruneHooks {
                floor,
                shared: None,
                counters: Some(&counters),
            };
            let start = Instant::now();
            let hits = self.shards[0].search_top_k_hooked(filter, ranking, limit, &hooks);
            return (hits, vec![elapsed_us(start)], counters.report());
        }
        match (filter, ranking) {
            (None, None) => (
                Vec::new(),
                vec![0; self.shards.len()],
                PruneReport::default(),
            ),
            (Some(f), None) => {
                // Filter-only: shard results are sorted local doc sets;
                // offsetting to global ids and concatenating in shard
                // order *is* the globally sorted set.
                let per_shard = self.fan_out(|engine| engine.eval_filter(f));
                let (lists, timings) = split_timed(per_shard);
                let mut docs: Vec<DocId> = Vec::new();
                for (i, list) in lists.into_iter().enumerate() {
                    let base = self.bases[i];
                    docs.extend(list.into_iter().map(|d| DocId(base + d.0)));
                    if let Some(k) = limit {
                        if docs.len() >= k {
                            docs.truncate(k);
                            break;
                        }
                    }
                }
                let hits = docs
                    .into_iter()
                    .map(|doc| Hit { doc, score: None })
                    .collect();
                (hits, timings, PruneReport::default())
            }
            (None, Some(r)) => {
                // Every shard selects raw top-k with the same limit, so
                // a threshold published by one shard — "k local docs at
                // or above θ exist" — is a sound strict-below cutoff
                // for all: the merged global top-k cannot contain a doc
                // scoring strictly below any shard's full heap floor.
                let shared = SharedThreshold::new(floor);
                let per_shard = self.fan_out(|engine| {
                    engine.eval_ranking_top_k_raw(
                        r,
                        limit,
                        &PruneHooks {
                            floor,
                            shared: Some(&shared),
                            counters: Some(&counters),
                        },
                    )
                });
                let (lists, timings) = split_timed(per_shard);
                (
                    self.merge_ranked_hits(lists, limit),
                    timings,
                    counters.report(),
                )
            }
            (Some(f), Some(r)) => {
                let per_shard = self.fan_out(|engine| {
                    engine.eval_filter_ranked_raw(
                        f,
                        r,
                        limit,
                        &PruneHooks {
                            floor,
                            shared: None,
                            counters: Some(&counters),
                        },
                    )
                });
                let (lists, timings) = split_timed(per_shard);
                (
                    self.merge_ranked_hits(lists, limit),
                    timings,
                    counters.report(),
                )
            }
        }
    }

    /// Merge per-shard raw ranked lists (already sorted by score desc,
    /// local doc asc), rebase local doc ids to global ones, apply the
    /// single global `finalize`, and emit hits.
    fn merge_ranked_hits(&self, lists: Vec<Vec<(DocId, f64)>>, limit: Option<usize>) -> Vec<Hit> {
        let rebased: Vec<Vec<(DocId, f64)>> = lists
            .into_iter()
            .enumerate()
            .map(|(i, list)| {
                let base = self.bases[i];
                list.into_iter()
                    .map(|(d, s)| (DocId(base + d.0), s))
                    .collect()
            })
            .collect();
        let mut merged = merge_ranked(rebased, limit);
        self.ranking().finalize(&mut merged);
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged
            .into_iter()
            .map(|(doc, score)| Hit {
                doc,
                score: Some(score),
            })
            .collect()
    }

    /// Run `f` against every shard, returning each shard's result with
    /// its evaluation latency (µs), in shard order.
    ///
    /// Dispatch is adaptive: the effective worker count is the
    /// machine's available parallelism capped by the shard count. With
    /// one worker, per-shard threads buy no overlap and cost scheduling
    /// latency on every query (`BENCH_prune.json`'s 1-core 4-shard rows
    /// paid ~2× for it), so shards evaluate sequentially on the caller
    /// thread — which also lets a rising pruning threshold propagate
    /// shard-to-shard through the shared cell *before* the next shard
    /// starts, not just mid-flight. With fewer workers than shards,
    /// contiguous shard groups share a thread so the machine is never
    /// oversubscribed. Results are bit-identical at every worker count:
    /// the shared threshold only tightens pruning, never changes what
    /// survives it.
    fn fan_out<T, F>(&self, f: F) -> Vec<(T, u64)>
    where
        T: Send,
        F: Fn(&Engine) -> T + Sync,
    {
        let workers = std::thread::available_parallelism()
            .map_or(1, usize::from)
            .min(self.shards.len());
        if workers <= 1 {
            return self
                .shards
                .iter()
                .map(|engine| {
                    let start = Instant::now();
                    let out = f(engine);
                    (out, elapsed_us(start))
                })
                .collect();
        }
        let f = &f;
        let chunk = self.shards.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move |_| {
                        group
                            .iter()
                            .map(|engine| {
                                let start = Instant::now();
                                let out = f(engine);
                                (out, elapsed_us(start))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard query panicked"))
                .collect()
        })
        .expect("shard query scope")
    }

    /// Locate a global doc id: `(shard index, local doc id)`.
    fn locate(&self, doc: DocId) -> (usize, DocId) {
        let shard = match self.bases.binary_search(&doc.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (shard, DocId(doc.0 - self.bases[shard]))
    }

    // ---- monolithic-engine facade (global doc ids) ----

    /// The analyzer (identical across shards).
    pub fn analyzer(&self) -> &Analyzer {
        self.shards[0].index().analyzer()
    }

    /// The field schema (identical across shards — interned by a
    /// sequential pre-pass in first-appearance order).
    pub fn schema(&self) -> &Schema {
        self.shards[0].index().schema()
    }

    /// The ranking algorithm (identical across shards).
    pub fn ranking(&self) -> &dyn RankingAlgorithm {
        self.shards[0].ranking()
    }

    /// The engine's thesaurus.
    pub fn thesaurus(&self) -> &Thesaurus {
        self.shards[0].thesaurus()
    }

    /// Total documents across all shards.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Total tokens across all shards.
    pub fn total_tokens(&self) -> u64 {
        match &self.collection {
            Some(c) => c.total_tokens(),
            None => self.shards[0].index().total_tokens(),
        }
    }

    /// Memory held by the postings representations, summed across all
    /// shards — the bit-packed block postings search runs on, plus any
    /// positional arenas kept for `prox` evaluation.
    pub fn postings_footprint(&self) -> PostingsFootprint {
        let mut total = PostingsFootprint::default();
        for shard in &self.shards {
            total.merge(&shard.index().postings_footprint());
        }
        total
    }

    /// Mean document length in tokens across all shards.
    pub fn avg_doc_tokens(&self) -> f64 {
        match &self.collection {
            Some(c) => c.avg_doc_tokens(),
            None => self.shards[0].index().avg_doc_tokens(),
        }
    }

    /// Token count of one document (`DocCount`).
    pub fn doc_token_count(&self, doc: DocId) -> u32 {
        let (shard, local) = self.locate(doc);
        self.shards[shard].index().doc_token_count(local)
    }

    /// Byte size of one document (`DocSize` is this, in KBytes).
    pub fn doc_byte_size(&self, doc: DocId) -> u32 {
        let (shard, local) = self.locate(doc);
        self.shards[shard].index().doc_byte_size(local)
    }

    /// Stored field values of a document, in insertion order.
    pub fn doc_fields(&self, doc: DocId) -> impl Iterator<Item = (&str, &str, Option<&LangTag>)> {
        let (shard, local) = self.locate(doc);
        self.shards[shard].index().doc_fields(local)
    }

    /// First stored value of the named field for a document.
    pub fn doc_field(&self, doc: DocId, field: FieldId) -> Option<&str> {
        let (shard, local) = self.locate(doc);
        self.shards[shard].index().doc_field(local, field)
    }

    /// The `TermStats` entry for one term in one result document —
    /// identical to the monolithic engine's (tf is document-local, df and
    /// the weight's collection inputs are global).
    pub fn term_stats(&self, doc: DocId, spec: &TermSpec) -> TermStat {
        let (shard, local) = self.locate(doc);
        self.shards[shard].term_stats(local, spec)
    }

    /// Languages observed in a field's values, across all shards
    /// (sorted, deduplicated).
    pub fn field_languages(&self, field: FieldId) -> Vec<LangTag> {
        let mut langs: Vec<LangTag> = self
            .shards
            .iter()
            .flat_map(|e| e.index().field_languages(field))
            .collect();
        langs.sort_unstable();
        langs.dedup();
        langs
    }
}

/// Options for [`ShardedEngine::search_top_k_observed`].
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Keep only the best `limit` hits (`None` = unbounded).
    pub limit: Option<usize>,
    /// The `min-doc-score` answer threshold, on the post-`finalize`
    /// score scale. Finite values seed the ranked selection floor when
    /// the ranking algorithm can map them to raw scores
    /// ([`RankingAlgorithm::raw_score_floor`]); hits at or above the
    /// threshold are never dropped, hits below it may or may not be —
    /// callers still apply the final retention.
    pub min_score: f64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            limit: None,
            min_score: f64::NEG_INFINITY,
        }
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn split_timed<T>(per_shard: Vec<(T, u64)>) -> (Vec<T>, Vec<u64>) {
    per_shard.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Document> {
        (0..10)
            .map(|i| {
                Document::new()
                    .field("title", ["alpha beta", "beta gamma", "gamma delta"][i % 3])
                    .field(
                        "body-of-text",
                        [
                            "alpha systems databases",
                            "distributed beta databases",
                            "gamma scheduling kernels",
                            "delta alpha paging",
                        ][i % 4],
                    )
            })
            .collect()
    }

    fn config(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            // The equality tests need the physical layouts they name,
            // whatever machine CI runs on.
            shard_policy: ShardPolicy::Exact,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn sharded_matches_monolithic_exactly() {
        let docs = corpus();
        let mono = Engine::build(&docs, config(1));
        let ranking = RankNode::term(TermSpec::any("databases"));
        let filter = BoolNode::Term(TermSpec::any("alpha"));
        for shards in [1, 2, 3, 7] {
            let sharded = ShardedEngine::build(&docs, config(shards));
            for limit in [None, Some(0), Some(2), Some(100)] {
                assert_eq!(
                    sharded.search_top_k(None, Some(&ranking), limit),
                    mono.search_top_k(None, Some(&ranking), limit),
                    "ranked, shards={shards} limit={limit:?}"
                );
                assert_eq!(
                    sharded.search_top_k(Some(&filter), None, limit),
                    mono.search_top_k(Some(&filter), None, limit),
                    "filter, shards={shards} limit={limit:?}"
                );
                assert_eq!(
                    sharded.search_top_k(Some(&filter), Some(&ranking), limit),
                    mono.search_top_k(Some(&filter), Some(&ranking), limit),
                    "combined, shards={shards} limit={limit:?}"
                );
            }
        }
    }

    #[test]
    fn collection_stats_are_global() {
        let docs = corpus();
        let mono = Engine::build(&docs, config(1));
        let sharded = ShardedEngine::build(&docs, config(3));
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.n_docs(), mono.index().n_docs());
        assert_eq!(sharded.total_tokens(), mono.index().total_tokens());
        assert_eq!(sharded.avg_doc_tokens(), mono.index().avg_doc_tokens());
        let spec = TermSpec::any("databases");
        for doc in 0..docs.len() as u32 {
            assert_eq!(
                sharded.term_stats(DocId(doc), &spec),
                mono.term_stats(DocId(doc), &spec),
                "doc {doc}"
            );
        }
    }

    #[test]
    fn doc_accessors_use_global_ids() {
        let docs = corpus();
        let mono = Engine::build(&docs, config(1));
        let sharded = ShardedEngine::build(&docs, config(4));
        let title = sharded.schema().get("title").unwrap();
        for doc in 0..docs.len() as u32 {
            let doc = DocId(doc);
            assert_eq!(
                sharded.doc_field(doc, title),
                mono.index().doc_field(doc, title)
            );
            assert_eq!(
                sharded.doc_token_count(doc),
                mono.index().doc_token_count(doc)
            );
            assert_eq!(sharded.doc_byte_size(doc), mono.index().doc_byte_size(doc));
            assert_eq!(
                sharded.doc_fields(doc).count(),
                mono.index().doc_fields(doc).count()
            );
        }
    }

    #[test]
    fn shard_count_resolution() {
        assert_eq!(resolve_shard_count(4, 100, ShardPolicy::Exact), 4);
        assert_eq!(resolve_shard_count(4, 2, ShardPolicy::Exact), 2);
        assert_eq!(resolve_shard_count(1, 100, ShardPolicy::Exact), 1);
        assert_eq!(resolve_shard_count(7, 0, ShardPolicy::Exact), 1);
        assert!(resolve_shard_count(0, 100, ShardPolicy::Exact) >= 1);
    }

    #[test]
    fn adaptive_policy_caps_explicit_requests() {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        // An explicit request never exceeds machine parallelism …
        let big = 64 * MIN_DOCS_PER_AUTO_SHARD;
        assert_eq!(
            resolve_shard_count(4, big, ShardPolicy::Adaptive),
            4.min(cores)
        );
        // … nor the block-span floor: a corpus too small to give every
        // shard several blocks is not split, whatever the machine.
        assert_eq!(resolve_shard_count(4, 100, ShardPolicy::Adaptive), 1);
        assert_eq!(
            resolve_shard_count(4, MIN_DOCS_PER_AUTO_SHARD, ShardPolicy::Adaptive),
            1
        );
        // `1` always means monolithic, and zero docs never splits.
        assert_eq!(resolve_shard_count(1, big, ShardPolicy::Adaptive), 1);
        assert_eq!(resolve_shard_count(7, 0, ShardPolicy::Adaptive), 1);
    }

    #[test]
    fn auto_shard_count_considers_corpus_size_not_just_cores() {
        // Below the per-shard floor, Auto never splits — regardless of
        // how wide the machine is.
        assert_eq!(resolve_shard_count(0, 100, ShardPolicy::Adaptive), 1);
        assert_eq!(
            resolve_shard_count(0, MIN_DOCS_PER_AUTO_SHARD, ShardPolicy::Adaptive),
            1
        );
        assert_eq!(
            resolve_shard_count(0, 2 * MIN_DOCS_PER_AUTO_SHARD - 1, ShardPolicy::Adaptive),
            1
        );
        // Past the floor, Auto is still capped by machine parallelism.
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let big = 64 * MIN_DOCS_PER_AUTO_SHARD;
        assert_eq!(
            resolve_shard_count(0, big, ShardPolicy::Adaptive),
            cores.min(64)
        );
        // Exact-policy counts stay exact even on small corpora: pinning
        // fan-out for the bit-identity property tests is sanctioned.
        assert_eq!(resolve_shard_count(3, 100, ShardPolicy::Exact), 3);
    }

    #[test]
    fn empty_and_tiny_corpora() {
        let sharded = ShardedEngine::build(&[], config(4));
        assert_eq!(sharded.shard_count(), 1);
        assert!(sharded
            .search(None, Some(&RankNode::term(TermSpec::any("x"))))
            .is_empty());
        let one = vec![Document::new().field("title", "solo doc")];
        let sharded = ShardedEngine::build(&one, config(8));
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.n_docs(), 1);
    }

    #[test]
    fn timed_search_reports_per_shard_latencies() {
        let docs = corpus();
        let sharded = ShardedEngine::build(&docs, config(2));
        let ranking = RankNode::term(TermSpec::any("databases"));
        let (hits, timings) = sharded.search_top_k_timed(None, Some(&ranking), Some(5));
        assert!(!hits.is_empty());
        assert_eq!(timings.len(), 2);
    }
}
