//! Term match specifications — the engine-level counterpart of the STARTS
//! modifiers (§4.1.1).
//!
//! A query term like `(title stem "databases")` resolves, inside an
//! engine, to a *set of vocabulary terms* to look up: the stem class of
//! "databases" in the title field. This module defines the specification
//! and the expansion rules; [`crate::engine::Engine`] executes them
//! against an index.

use starts_text::{porter_stem, soundex, CaseMode, Thesaurus};

/// Comparison operators — the `<, <=, =, >=, >, !=` modifiers, which
/// "only make sense for fields like Date/time-last-modified".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=` (the default relation)
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Apply the comparison to an ordering of stored value vs. query value.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ge => ord != Less,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ne => ord != Equal,
        }
    }

    /// The STARTS spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Ne => "!=",
        }
    }
}

/// Value-matching modifiers (the non-comparison STARTS modifiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermMatch {
    /// `Stem`: match any word sharing the query term's Porter stem.
    Stem,
    /// `Phonetic`: match any word with the same Soundex code.
    Phonetic,
    /// `Thesaurus`: match any synonym (per the engine's thesaurus).
    Thesaurus,
    /// `Right-truncation`: the term is a prefix ("data" matches
    /// "databases").
    RightTrunc,
    /// `Left-truncation`: the term is a suffix ("bases" matches
    /// "databases").
    LeftTrunc,
    /// `Case-sensitive`: exact-case match (default is insensitive).
    CaseSensitive,
}

/// A fully specified term to match: a field (None = `Any`), the term
/// text, value-matching modifiers, and an optional comparison operator.
#[derive(Debug, Clone, PartialEq)]
pub struct TermSpec {
    /// Field name; `None` means the `Any` pseudo-field.
    pub field: Option<String>,
    /// The query term text (a single word, or a raw value for
    /// comparisons).
    pub term: String,
    /// Value-matching modifiers, applied together.
    pub matches: Vec<TermMatch>,
    /// Comparison operator; when set (and not `Eq`), matching is done on
    /// stored field values, not on the inverted index.
    pub cmp: Option<CmpOp>,
}

impl TermSpec {
    /// A plain term with no field and no modifiers.
    pub fn any(term: impl Into<String>) -> Self {
        TermSpec {
            field: None,
            term: term.into(),
            matches: Vec::new(),
            cmp: None,
        }
    }

    /// A plain fielded term.
    pub fn fielded(field: impl Into<String>, term: impl Into<String>) -> Self {
        TermSpec {
            field: Some(field.into()),
            term: term.into(),
            matches: Vec::new(),
            cmp: None,
        }
    }

    /// Builder-style: add a modifier.
    pub fn with(mut self, m: TermMatch) -> Self {
        self.matches.push(m);
        self
    }

    /// Builder-style: set a comparison.
    pub fn with_cmp(mut self, op: CmpOp) -> Self {
        self.cmp = Some(op);
        self
    }

    /// Whether this spec carries the given modifier.
    pub fn has(&self, m: TermMatch) -> bool {
        self.matches.contains(&m)
    }

    /// Whether matching needs a vocabulary scan (any modifier other than a
    /// plain, engine-canonical lookup).
    pub fn needs_scan(&self, engine_stems: bool, engine_case: CaseMode) -> bool {
        for m in &self.matches {
            match m {
                // If the engine stems its index, a stem query is a direct
                // lookup of the stemmed term.
                TermMatch::Stem if engine_stems => {}
                // Case-sensitive on a case-sensitive index is a direct
                // lookup.
                TermMatch::CaseSensitive if engine_case == CaseMode::Sensitive => {}
                // Thesaurus expands to a bounded set of direct lookups.
                TermMatch::Thesaurus => {}
                _ => return true,
            }
        }
        // Default matching is case-INsensitive; on a case-sensitive index
        // that requires a scan unless the CaseSensitive modifier is given.
        engine_case == CaseMode::Sensitive && !self.has(TermMatch::CaseSensitive)
    }

    /// The predicate this spec induces over *vocabulary terms* (already in
    /// the engine's index-normalized form). `query_norm` is the query term
    /// normalized the same way the engine normalizes index terms, except
    /// case-folding is controlled by the modifiers.
    pub fn vocab_predicate<'a>(
        &'a self,
        thesaurus: &'a Thesaurus,
    ) -> impl Fn(&str, &str) -> bool + 'a {
        // (query_term, vocab_term) -> matches?
        move |query: &str, vocab: &str| {
            let case = if self.has(TermMatch::CaseSensitive) {
                CaseMode::Sensitive
            } else {
                CaseMode::Insensitive
            };
            let mut any_special = false;
            for m in &self.matches {
                match m {
                    TermMatch::Stem => {
                        any_special = true;
                        if case.eq(&porter_stem(query), &porter_stem(vocab)) {
                            return true;
                        }
                    }
                    TermMatch::Phonetic => {
                        any_special = true;
                        if soundex(query).is_some() && soundex(query) == soundex(vocab) {
                            return true;
                        }
                    }
                    TermMatch::Thesaurus => {
                        any_special = true;
                        if thesaurus.synonyms(query, vocab) {
                            return true;
                        }
                    }
                    TermMatch::RightTrunc => {
                        any_special = true;
                        let ok = match case {
                            CaseMode::Sensitive => vocab.starts_with(query),
                            CaseMode::Insensitive => {
                                vocab.len() >= query.len()
                                    && vocab.is_char_boundary(query.len())
                                    && case.eq(&vocab[..query.len()], query)
                            }
                        };
                        if ok {
                            return true;
                        }
                    }
                    TermMatch::LeftTrunc => {
                        any_special = true;
                        let ok = vocab.len() >= query.len()
                            && vocab.is_char_boundary(vocab.len() - query.len())
                            && case.eq(&vocab[vocab.len() - query.len()..], query);
                        if ok {
                            return true;
                        }
                    }
                    TermMatch::CaseSensitive => {}
                }
            }
            if any_special {
                false
            } else {
                case.eq(query, vocab)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.test(Less));
        assert!(!CmpOp::Lt.test(Equal));
        assert!(CmpOp::Le.test(Equal));
        assert!(CmpOp::Eq.test(Equal));
        assert!(CmpOp::Ne.test(Greater));
        assert!(CmpOp::Ge.test(Greater));
        assert!(CmpOp::Gt.test(Greater));
        assert!(!CmpOp::Gt.test(Equal));
        assert_eq!(CmpOp::Ge.as_str(), ">=");
    }

    #[test]
    fn date_comparison_use_case() {
        // (date-last-modified > "1996-08-01") from §4.1.1: ISO dates
        // compare correctly as strings.
        let stored = "1996-09-15";
        let query = "1996-08-01";
        assert!(CmpOp::Gt.test(stored.cmp(query)));
        assert!(!CmpOp::Gt.test("1996-07-01".cmp(query)));
    }

    #[test]
    fn stem_predicate() {
        let spec = TermSpec::fielded("title", "databases").with(TermMatch::Stem);
        let th = Thesaurus::empty();
        let p = spec.vocab_predicate(&th);
        assert!(p("databases", "database"));
        assert!(p("databases", "databases"));
        assert!(!p("databases", "datum"));
    }

    #[test]
    fn phonetic_predicate() {
        let spec = TermSpec::fielded("author", "ullman").with(TermMatch::Phonetic);
        let th = Thesaurus::empty();
        let p = spec.vocab_predicate(&th);
        assert!(p("ullman", "ulman"));
        assert!(!p("ullman", "garcia"));
    }

    #[test]
    fn truncation_predicates() {
        let th = Thesaurus::empty();
        let right = TermSpec::any("data").with(TermMatch::RightTrunc);
        let p = right.vocab_predicate(&th);
        assert!(p("data", "databases"));
        assert!(p("data", "data"));
        assert!(!p("data", "metadata"));

        let left = TermSpec::any("bases").with(TermMatch::LeftTrunc);
        let p = left.vocab_predicate(&th);
        assert!(p("bases", "databases"));
        assert!(!p("bases", "basement"));
    }

    #[test]
    fn case_sensitivity_interacts_with_truncation() {
        let th = Thesaurus::empty();
        let spec = TermSpec::any("Data")
            .with(TermMatch::RightTrunc)
            .with(TermMatch::CaseSensitive);
        let p = spec.vocab_predicate(&th);
        assert!(p("Data", "Databases"));
        assert!(!p("Data", "databases"));
    }

    #[test]
    fn plain_match_is_case_insensitive_by_default() {
        let th = Thesaurus::empty();
        let spec = TermSpec::any("The");
        let p = spec.vocab_predicate(&th);
        assert!(p("The", "the"));
        let strict = TermSpec::any("The").with(TermMatch::CaseSensitive);
        let p = strict.vocab_predicate(&th);
        assert!(!p("The", "the"));
        assert!(p("The", "The"));
    }

    #[test]
    fn thesaurus_predicate() {
        let th = Thesaurus::computer_science();
        let spec = TermSpec::any("database").with(TermMatch::Thesaurus);
        let p = spec.vocab_predicate(&th);
        assert!(p("database", "dbms"));
        assert!(!p("database", "systems"));
    }

    #[test]
    fn multiple_modifiers_are_a_union() {
        // Stem OR Phonetic: either route matches.
        let th = Thesaurus::empty();
        let spec = TermSpec::any("databases")
            .with(TermMatch::Stem)
            .with(TermMatch::Phonetic);
        let p = spec.vocab_predicate(&th);
        assert!(p("databases", "database")); // via stem
    }

    #[test]
    fn needs_scan_logic() {
        let plain = TermSpec::any("x");
        assert!(!plain.needs_scan(false, CaseMode::Insensitive));
        // Case-sensitive index + default (insensitive) query → scan.
        assert!(plain.needs_scan(false, CaseMode::Sensitive));
        // Stem query on a stemming engine → direct lookup.
        let stem = TermSpec::any("x").with(TermMatch::Stem);
        assert!(!stem.needs_scan(true, CaseMode::Insensitive));
        assert!(stem.needs_scan(false, CaseMode::Insensitive));
        // Thesaurus is bounded lookups, never a scan.
        let th = TermSpec::any("x").with(TermMatch::Thesaurus);
        assert!(!th.needs_scan(false, CaseMode::Insensitive));
    }
}
