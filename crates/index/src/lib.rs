#![warn(missing_docs)]

//! A fielded, positional inverted-index search engine — the substrate
//! STARTS assumes under every *source*.
//!
//! The paper's metasearch problems exist because every vendor's engine is
//! different: different query models (Boolean vs. vector-space, §3.1),
//! secret and mutually incomparable ranking algorithms (§3.2), different
//! tokenizers, stemmers and stop lists. This crate therefore implements a
//! complete small search engine whose every axis of behaviour is
//! configurable, so a fleet of deliberately *heterogeneous* engines can be
//! instantiated:
//!
//! * fielded documents with per-field language tags (`title`, `author`,
//!   `body-of-text`, … — the engine is schema-agnostic; the STARTS field
//!   semantics live in `starts-source`),
//! * a block-compressed inverted index with an optional positional
//!   store (term positions feed the `prox` operator of §4.1.1; engines
//!   whose queries never consult positions drop the store entirely),
//! * Boolean evaluation: `and`, `or`, `and-not`, `prox[d,order]`,
//! * vector-space evaluation with *pluggable ranking algorithms*
//!   ([`ranking`]): tf–idf cosine (`Acme-1`), a vendor-scaled ranker whose
//!   top hit always scores 1000 (`Vendor-K`, the paper's §3.2 example), a
//!   BM25-style ranker (`Okapi-1`) and a raw-tf ranker (`Plain-1`),
//! * term-match expansion for the STARTS modifiers: stemming, Soundex,
//!   truncation, case sensitivity, comparison operators ([`matchspec`]),
//! * the per-document statistics STARTS results must carry: term
//!   frequency, term weight, document frequency, document size and token
//!   count (§4.2, Example 8).

pub mod blocks;
pub mod boolean;
pub mod doc;
pub mod engine;
pub mod index;
pub mod matchspec;
pub mod ranking;
pub mod schema;
pub mod sharded;
pub mod topk;

pub use blocks::{BlockCursor, BlockHeader, BlockPostings, BLOCK_DOCS};
pub use boolean::BoolNode;
pub use doc::{DocId, Document, FieldValue};
pub use engine::{
    Engine, EngineConfig, Hit, PruneMode, PruneReport, RankNode, ShardPolicy, TermStat,
};
pub use index::{
    Index, IndexBuilder, PositionsMode, PostingsFootprint, PostingsIter, PostingsList, TermBounds,
};
pub use matchspec::{CmpOp, TermMatch, TermSpec};
pub use ranking::{ranking_by_id, RankingAlgorithm, ScoreRange};
pub use schema::{FieldId, Schema, ANY_FIELD};
pub use sharded::{CollectionStats, SearchOptions, ShardedEngine};
pub use topk::{merge_ranked, SharedThreshold, TopK};
