//! The search engine: Boolean and vector-space evaluation over an index,
//! under one (proprietary) ranking algorithm.
//!
//! One `Engine` models one vendor's product. Its observable behaviour —
//! which query constructs work, how scores are scaled, what the actual
//! executed query was — is what the STARTS source layer
//! (`starts-source`) wraps and exports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use starts_text::{Analyzer, AnalyzerConfig, Thesaurus};

use crate::blocks::{BlockCursor, BlockPostings, BLOCK_DOCS};
use crate::boolean::{difference, intersect, prox_match, union, BoolNode};
use crate::doc::{DocId, Document};
use crate::index::{
    Index, IndexBuilder, PositionsMode, PostingsIter, PostingsList, TermBound, TermBounds,
};
use crate::matchspec::{CmpOp, TermSpec};
use crate::ranking::{PreparedWeight, RankingAlgorithm, TermDocStats};
use crate::schema::{FieldId, ANY_FIELD};
use crate::sharded::CollectionStats;
use crate::topk::{kway_union, SharedThreshold, TopK};

/// A ranking-expression tree at the engine level. Leaves carry the
/// query-assigned weight (§4.1.1: "Each term in a ranking expression may
/// have an associated weight (a number between 0 and 1)").
#[derive(Debug, Clone, PartialEq)]
pub enum RankNode {
    /// A weighted term.
    Term {
        /// What to match.
        spec: TermSpec,
        /// Query weight in `[0, 1]` (1.0 when unspecified).
        weight: f64,
    },
    /// The `list` operator: "simply groups together a set of terms".
    List(Vec<RankNode>),
    /// Fuzzy `and` (Example 4 interprets it as `min`).
    And(Vec<RankNode>),
    /// Fuzzy `or` (`max`).
    Or(Vec<RankNode>),
    /// Fuzzy `and-not`: positive score attenuated by the negative one.
    AndNot(Box<RankNode>, Box<RankNode>),
    /// Proximity in a ranking expression: scored like `and`, zeroed when
    /// the proximity condition fails.
    Prox {
        /// Left term.
        left: Box<RankNode>,
        /// Right term (both must be `Term` leaves for the positional
        /// check; other shapes degrade to fuzzy `and`).
        right: Box<RankNode>,
        /// Max words between.
        distance: u32,
        /// Order matters.
        ordered: bool,
    },
}

impl RankNode {
    /// A weight-1 term leaf.
    pub fn term(spec: TermSpec) -> Self {
        RankNode::Term { spec, weight: 1.0 }
    }

    /// A weighted term leaf.
    pub fn weighted(spec: TermSpec, weight: f64) -> Self {
        RankNode::Term { spec, weight }
    }

    /// All term specs in the tree.
    pub fn terms(&self) -> Vec<&TermSpec> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a TermSpec>) {
        match self {
            RankNode::Term { spec, .. } => out.push(spec),
            RankNode::List(c) | RankNode::And(c) | RankNode::Or(c) => {
                for n in c {
                    n.collect(out);
                }
            }
            RankNode::AndNot(a, b) => {
                a.collect(out);
                b.collect(out);
            }
            RankNode::Prox { left, right, .. } => {
                left.collect(out);
                right.collect(out);
            }
        }
    }

    /// Flatten to a plain `list` of the leaves — the degradation the
    /// paper allows: "a source might choose to simply ignore the
    /// Boolean-like operators … and process a ranking expression like
    /// `("distributed" and "databases")` as if it were
    /// `list("distributed" "databases")`". `and-not` right-hand sides are
    /// dropped (they are not "desired" terms).
    pub fn flatten_to_list(&self) -> RankNode {
        let mut leaves = Vec::new();
        self.flatten_into(&mut leaves);
        RankNode::List(leaves)
    }

    fn flatten_into(&self, out: &mut Vec<RankNode>) {
        match self {
            RankNode::Term { .. } => out.push(self.clone()),
            RankNode::List(c) | RankNode::And(c) | RankNode::Or(c) => {
                for n in c {
                    n.flatten_into(out);
                }
            }
            RankNode::AndNot(a, _) => a.flatten_into(out),
            RankNode::Prox { left, right, .. } => {
                left.flatten_into(out);
                right.flatten_into(out);
            }
        }
    }
}

/// One search hit. `score` is `None` for filter-only queries (the result
/// is a set, not a rank — the Boolean model of §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The matching document.
    pub doc: DocId,
    /// The engine's raw score (`RawScore` in results), if ranked.
    pub score: Option<f64>,
}

/// Per-term, per-document statistics — one line of the `TermStats`
/// result attribute (§4.2): term frequency, the engine's term weight, and
/// the collection document frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct TermStat {
    /// `Term-frequency`: occurrences of the term in the document.
    pub tf: u32,
    /// `Term-weight`: the engine-assigned weight.
    pub weight: f64,
    /// `Document-frequency`: documents in the source containing the term.
    pub df: u32,
}

/// Dynamic-pruning mode for the ranked top-k path.
///
/// Under [`PruneMode::Auto`] the engine records a [`TermBounds`] sidecar
/// (whole-list *and* per-block weight maxima) at build time and runs
/// bounded top-k queries through the Block-Max-WAND evaluator: postings
/// whose score upper bound provably cannot enter the bounded result are
/// never visited, and whole 128-doc blocks are jumped without being
/// decoded. Returned hits stay bit-identical to the unpruned evaluation
/// (scores, order, and tie-breaks; enforced by
/// `crates/index/tests/prune_properties.rs`). [`PruneMode::Off`] is
/// the escape hatch: no sidecar, no skipping, exactly the pre-pruning
/// code path — diff a query against `Off` to diagnose any suspected
/// exactness regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneMode {
    /// Build term bounds and skip provably non-competitive documents.
    #[default]
    Auto,
    /// Never skip: every candidate is scored.
    Off,
}

/// Engine configuration: the vendor's whole observable personality.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The text pipeline (tokenizer, case, stemming, stop words).
    pub analyzer: AnalyzerConfig,
    /// `RankingAlgorithmID` to use (see [`crate::ranking::ranking_by_id`]).
    pub ranking_id: String,
    /// Whether Boolean-like operators in ranking expressions get a fuzzy
    /// interpretation (`true`) or are ignored and flattened to `list`
    /// (`false`) — both behaviours are sanctioned by §4.1.1.
    pub fuzzy_ranking_ops: bool,
    /// The engine's thesaurus (for the `Thesaurus` modifier).
    pub thesaurus: Thesaurus,
    /// Shard count for [`crate::ShardedEngine`]: how many partitions the
    /// document set is split into for parallel index build and query
    /// fan-out. `0` (the default) resolves adaptively — the machine's
    /// available parallelism capped by corpus size (at least
    /// [`crate::sharded::MIN_DOCS_PER_AUTO_SHARD`] documents per shard),
    /// so 1-core containers and small corpora never pay fan-out
    /// overhead; `1` reproduces the monolithic single-threaded
    /// behaviour; explicit `N ≥ 1` is an upper bound under the default
    /// [`ShardPolicy::Adaptive`] and honoured exactly under
    /// [`ShardPolicy::Exact`] (always clamped to the document count).
    /// Results are bit-identical at every setting — global collection
    /// statistics are broadcast to each shard. Ignored by the plain
    /// [`Engine`] constructors.
    pub shards: usize,
    /// How literally [`EngineConfig::shards`] is honoured (see
    /// [`ShardPolicy`]).
    pub shard_policy: ShardPolicy,
    /// Dynamic pruning of the ranked top-k path (see [`PruneMode`]).
    pub prune: PruneMode,
    /// Whether the index keeps the positional store (see
    /// [`PositionsMode`]). Vendors whose query surface never consults
    /// positions — no `prox` operator reachable — set
    /// [`PositionsMode::None`] and serve search exclusively from the
    /// block-compressed postings, dropping the positional arena
    /// entirely; `prox` then degrades to plain intersection (a
    /// degradation §4.1.1 sanctions for unsupported features).
    pub positions: PositionsMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            analyzer: AnalyzerConfig::default(),
            ranking_id: "Acme-1".to_string(),
            fuzzy_ranking_ops: true,
            thesaurus: Thesaurus::empty(),
            shards: 0,
            shard_policy: ShardPolicy::Adaptive,
            prune: PruneMode::Auto,
            positions: PositionsMode::All,
        }
    }
}

/// How literally [`EngineConfig::shards`] is honoured by
/// [`crate::ShardedEngine::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// An explicit shard count is an *upper bound*: the effective count
    /// is additionally capped by the machine's available parallelism
    /// and by the block-span floor
    /// ([`crate::sharded::MIN_DOCS_PER_AUTO_SHARD`] documents per
    /// shard), so a 1-core container stops paying query fan-out for
    /// parallelism it does not have, and shards never shrink below the
    /// size where Block-Max skipping still has whole blocks to skip.
    /// Results stay bit-identical at every effective count, so the
    /// only observable difference is speed.
    #[default]
    Adaptive,
    /// The requested count is built exactly (clamped only to the
    /// document count) — for tests and benchmarks that must construct a
    /// specific physical layout regardless of the machine they run on.
    Exact,
}

/// A complete, queryable engine.
pub struct Engine {
    index: Index,
    ranking: Box<dyn RankingAlgorithm>,
    fuzzy_ranking_ops: bool,
    thesaurus: Thesaurus,
    doc_norms: Vec<f64>,
    /// Present when this engine is one shard of a [`crate::ShardedEngine`]:
    /// global statistics (df, N, average length) that replace the local
    /// index's, so each shard scores exactly as the monolithic engine
    /// would.
    collection: Option<Arc<CollectionStats>>,
    prune: PruneMode,
    /// The dynamic-pruning sidecar (present iff `prune` is `Auto`):
    /// per-(field, term) extrema of the exact term weights scoring can
    /// produce on this engine's documents.
    bounds: Option<TermBounds>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n_docs", &self.index.n_docs())
            .field("ranking", &self.ranking.id())
            .field("fuzzy_ranking_ops", &self.fuzzy_ranking_ops)
            .finish()
    }
}

impl Engine {
    /// Index `docs` and build an engine per `config`.
    ///
    /// # Panics
    /// Panics if `config.ranking_id` is unknown — engines are constructed
    /// by the test/bench harness with known vendors.
    pub fn build(docs: &[Document], config: EngineConfig) -> Self {
        let mut builder =
            IndexBuilder::new(Analyzer::new(config.analyzer.clone())).positions(config.positions);
        for d in docs {
            builder.add(d);
        }
        Self::from_index(builder.build(), config)
    }

    /// Wrap an already-built index.
    pub fn from_index(index: Index, config: EngineConfig) -> Self {
        Self::from_index_with_stats(index, config, None)
    }

    /// Wrap an index that is one shard of a sharded collection: every
    /// statistic a ranking algorithm consumes (df, N, average document
    /// length, and the doc norms derived from them) comes from the global
    /// `collection` instead of the local shard.
    pub(crate) fn from_index_with_stats(
        index: Index,
        config: EngineConfig,
        collection: Option<Arc<CollectionStats>>,
    ) -> Self {
        let ranking = crate::ranking::ranking_by_id(&config.ranking_id)
            .unwrap_or_else(|| panic!("unknown RankingAlgorithmID {:?}", config.ranking_id));
        let doc_norms = if ranking.needs_doc_norms() {
            compute_doc_norms(&index, ranking.as_ref(), collection.as_deref())
        } else {
            vec![1.0; index.n_docs() as usize]
        };
        let bounds = match config.prune {
            PruneMode::Auto => Some(compute_term_bounds(
                &index,
                ranking.as_ref(),
                collection.as_deref(),
                &doc_norms,
            )),
            PruneMode::Off => None,
        };
        Engine {
            index,
            ranking,
            fuzzy_ranking_ops: config.fuzzy_ranking_ops,
            thesaurus: config.thesaurus,
            doc_norms,
            collection,
            prune: config.prune,
            bounds,
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &Index {
        &self.index
    }

    /// The ranking algorithm.
    pub fn ranking(&self) -> &dyn RankingAlgorithm {
        self.ranking.as_ref()
    }

    /// The engine's thesaurus.
    pub fn thesaurus(&self) -> &Thesaurus {
        &self.thesaurus
    }

    /// Whether ranking-expression Boolean operators are fuzzy-interpreted.
    pub fn fuzzy_ranking_ops(&self) -> bool {
        self.fuzzy_ranking_ops
    }

    /// Execute a query: an optional filter expression, an optional
    /// ranking expression (§4.1.1: "a query need not contain a filter
    /// expression … similarly, a query need not contain a ranking
    /// expression").
    ///
    /// * filter only → the matching set, unscored, in doc order;
    /// * ranking only → all docs with positive scores, ranked;
    /// * both → the filter set, ranked by the ranking expression (docs
    ///   scoring 0 stay in the set — the filter decides membership);
    /// * neither → empty.
    pub fn search(&self, filter: Option<&BoolNode>, ranking: Option<&RankNode>) -> Vec<Hit> {
        self.search_top_k(filter, ranking, None)
    }

    /// [`Engine::search`] with an optional result bound — the engine end
    /// of the `MaxNumberDocuments` fast path. With `limit: Some(k)` the
    /// engine selects the best `k` hits through a bounded heap instead
    /// of materializing and sorting the full result; the returned hits
    /// are exactly the first `k` the unbounded call would have produced.
    pub fn search_top_k(
        &self,
        filter: Option<&BoolNode>,
        ranking: Option<&RankNode>,
        limit: Option<usize>,
    ) -> Vec<Hit> {
        self.search_top_k_hooked(filter, ranking, limit, &PruneHooks::NONE)
    }

    /// [`Engine::search_top_k`] with the query-scoped pruning context: a
    /// raw-score floor seeded from `min-doc-score`, the cross-shard
    /// shared threshold, and the telemetry counters.
    pub(crate) fn search_top_k_hooked(
        &self,
        filter: Option<&BoolNode>,
        ranking: Option<&RankNode>,
        limit: Option<usize>,
        hooks: &PruneHooks<'_>,
    ) -> Vec<Hit> {
        match (filter, ranking) {
            (None, None) => Vec::new(),
            (Some(f), None) => {
                let mut docs = self.eval_filter(f);
                if let Some(k) = limit {
                    docs.truncate(k);
                }
                docs.into_iter()
                    .map(|doc| Hit { doc, score: None })
                    .collect()
            }
            (None, Some(r)) => {
                let mut scores = self.eval_ranking_top_k_raw(r, limit, hooks);
                self.ranking.finalize(&mut scores);
                scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                scores
                    .into_iter()
                    .map(|(doc, score)| Hit {
                        doc,
                        score: Some(score),
                    })
                    .collect()
            }
            (Some(f), Some(r)) => {
                let mut scores = self.eval_filter_ranked_raw(f, r, limit, hooks);
                // As in `eval_ranking_top_k`: `finalize` rescales
                // monotonically, so selecting on raw scores first and
                // finalizing the selected slice equals finalizing the
                // whole filter set then truncating.
                self.ranking.finalize(&mut scores);
                scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                scores
                    .into_iter()
                    .map(|(doc, score)| Hit {
                        doc,
                        score: Some(score),
                    })
                    .collect()
            }
        }
    }

    /// The combined filter+ranking evaluation up to (but not including)
    /// `finalize`: score only the filter set — the filter decides
    /// membership, so there is no reason to evaluate the ranking
    /// expression over its own (often much larger) candidate set.
    /// Zero-scoring docs stay in. Returns raw scores sorted by (score
    /// desc, doc asc), at most `limit` of them. Shards combine these raw
    /// lists before the single global `finalize`.
    pub(crate) fn eval_filter_ranked_raw(
        &self,
        filter: &BoolNode,
        ranking: &RankNode,
        limit: Option<usize>,
        hooks: &PruneHooks<'_>,
    ) -> Vec<(DocId, f64)> {
        let set = self.eval_filter(filter);
        let slots = self.score_set(ranking, &set);
        match limit {
            Some(k) => {
                // The floor seeds the heap: docs below `min-doc-score`
                // are never held, so the heap threshold starts tight.
                let mut top = TopK::with_floor(k, hooks.floor);
                for (doc, score) in set.into_iter().zip(slots) {
                    top.push(doc, score);
                }
                top.into_sorted_vec()
            }
            None => {
                let mut scores: Vec<(DocId, f64)> = set.into_iter().zip(slots).collect();
                scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                scores
            }
        }
    }

    /// Evaluate a Boolean filter expression to a sorted doc-id set.
    pub fn eval_filter(&self, node: &BoolNode) -> Vec<DocId> {
        match node {
            BoolNode::Term(spec) => self.eval_term(spec),
            BoolNode::And(a, b) => intersect(&self.eval_filter(a), &self.eval_filter(b)),
            BoolNode::Or(a, b) => union(&self.eval_filter(a), &self.eval_filter(b)),
            BoolNode::AndNot(a, b) => difference(&self.eval_filter(a), &self.eval_filter(b)),
            BoolNode::Prox {
                left,
                right,
                distance,
                ordered,
            } => self.eval_prox(left, right, *distance, *ordered),
        }
    }

    /// Evaluate a ranking expression: positive-scoring docs, best first.
    pub fn eval_ranking(&self, node: &RankNode) -> Vec<(DocId, f64)> {
        self.eval_ranking_top_k(node, None)
    }

    /// Evaluate a ranking expression term-at-a-time, optionally bounded.
    ///
    /// Each leaf's vocabulary keys and posting lists are resolved exactly
    /// once, the candidate set is built by one k-way merge over all
    /// posting lists, and scores are combined per document through a
    /// slot vector walked once per tree node. With `limit: Some(k)` the
    /// best `k` documents are selected by a bounded heap; the result is
    /// exactly the first `k` entries of the unbounded evaluation.
    pub fn eval_ranking_top_k(&self, node: &RankNode, limit: Option<usize>) -> Vec<(DocId, f64)> {
        let mut scores = self.eval_ranking_top_k_raw(node, limit, &PruneHooks::NONE);
        // `finalize` rescales monotonically (the §3.2 vendor pins its
        // top hit to 1000); the global maximum is always inside the top
        // k, so finalizing the selected slice equals finalizing
        // everything then truncating.
        self.ranking.finalize(&mut scores);
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scores
    }

    /// [`Engine::eval_ranking_top_k`] stopping short of `finalize`: the
    /// best `limit` positive raw scores, sorted by (score desc, doc asc).
    /// The sharded fan-out merges these per-shard lists and applies the
    /// single global `finalize` afterwards.
    pub(crate) fn eval_ranking_top_k_raw(
        &self,
        node: &RankNode,
        limit: Option<usize>,
        hooks: &PruneHooks<'_>,
    ) -> Vec<(DocId, f64)> {
        let effective;
        let node = if self.fuzzy_ranking_ops {
            node
        } else {
            effective = node.flatten_to_list();
            &effective
        };
        let mut leaves = Vec::new();
        self.resolve_leaves(node, &mut leaves);
        if let Some(k) = limit {
            if self.prune == PruneMode::Auto && bmw_eligible(node, &leaves) {
                return self.eval_ranking_bmw(node, &leaves, k, hooks);
            }
        }
        let candidates = candidate_docs(&leaves);
        if let Some(c) = hooks.counters {
            c.candidates
                .fetch_add(candidates.len() as u64, Ordering::Relaxed);
        }
        let mut cursor = 0;
        let mut tf_scratch = Vec::new();
        let slots = self.score_tree(node, &candidates, &leaves, &mut cursor, &mut tf_scratch);
        match limit {
            Some(k) => {
                let mut top = TopK::with_floor(k, hooks.floor);
                for (&doc, &score) in candidates.iter().zip(&slots) {
                    if score > 0.0 {
                        top.push(doc, score);
                    }
                }
                top.into_sorted_vec()
            }
            None => {
                let mut scores: Vec<(DocId, f64)> = candidates
                    .into_iter()
                    .zip(slots)
                    .filter(|(_, s)| *s > 0.0)
                    .collect();
                scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                scores
            }
        }
    }

    /// The Block-Max-WAND evaluator (see `docs/performance.md` § Block-Max
    /// WAND): skip-capable block cursors, WAND pivot selection against the
    /// running threshold θ, and per-block score bounds propagated through
    /// the whole operator tree. Bit-identical to the unpruned path by
    /// construction:
    ///
    /// * a document (or block of documents) is skipped only when its tree
    ///   score upper bound is strictly below θ — and θ is either the
    ///   seeded raw-score floor (the floored heap rejects such docs
    ///   anyway), the local heap floor once the heap holds `k` entries (a
    ///   doc strictly below it can never displace an entry: ties break
    ///   toward the smaller doc ids already held), or another shard's
    ///   published heap floor (then `k` strictly better docs exist
    ///   elsewhere in the collection);
    /// * the tree bound is computed by [`bmw_tree_bound`], which runs the
    ///   *same* float expression in the *same* accumulation order as the
    ///   exact evaluator with each leaf value replaced by a dominating
    ///   leaf bound — every operator involved (`+`, `×` by a value in
    ///   `[0, 1]`, `/` by a shared positive denominator, `min`, `max`) is
    ///   monotone under IEEE round-to-nearest, so the bound dominates the
    ///   exact score *bit-wise*, with no epsilon slack at all (tighter
    ///   than the earlier flat-list pruner, which needed `(n+3)·ε` of
    ///   headroom for its reordered suffix sums);
    /// * survivors are scored by [`bmw_tree_exact`], whose per-leaf
    ///   values and tree arithmetic mirror `score_tree` exactly.
    ///
    /// Skips never cross a block boundary the bound argument does not
    /// cover: a jump target is capped by every active leaf's covering
    /// block's last doc + 1, so each skipped doc's contributions are
    /// bounded by exactly the per-block maxima that were consulted.
    fn eval_ranking_bmw(
        &self,
        node: &RankNode,
        leaves: &[LeafCtx<'_>],
        k: usize,
        hooks: &PruneHooks<'_>,
    ) -> Vec<(DocId, f64)> {
        let n = leaves.len();
        let mut cursors: Vec<Option<BlockCursor<'_>>> = leaves
            .iter()
            .map(|l| match l.blocks {
                Some(b) if !b.is_empty() => Some(BlockCursor::with_bounds(b, l.block_max)),
                _ => None,
            })
            .collect();
        let total_postings: u64 = cursors
            .iter()
            .map(|c| c.as_ref().map_or(0, |c| c.len()))
            .sum();
        let mut top = TopK::with_floor(k, hooks.floor);
        let mut theta = top.threshold();
        let mut threshold_updates = 0u64;
        let mut ub = vec![0.0_f64; n];
        let mut vals = vec![0.0_f64; n];
        // Survivor scoring dominates BMW wall time, so fold each leaf's
        // per-(term, collection) ranking constants once up front instead
        // of recomputing them (two `ln` calls and a virtual dispatch)
        // for every surviving posting.
        let prepared: Vec<Option<PreparedWeight>> =
            leaves.iter().map(|l| self.prepare_leaf(l.df)).collect();
        // The overwhelmingly common query shape is a flat weighted list
        // of term leaves. Its tree walk — add each child slot in order,
        // divide by the constant denominator — is a plain loop, so run
        // that loop directly and skip the recursion. The accumulation
        // order is identical, so bounds and exact scores stay bit-equal
        // to the general walk.
        let flat_den: Option<f64> = match node {
            RankNode::List(children)
                if children.iter().all(|c| matches!(c, RankNode::Term { .. })) =>
            {
                let mut den = 0.0_f64;
                for c in children {
                    den += leaf_weight(c);
                }
                Some(den)
            }
            _ => None,
        };
        fn flat_list_eval(slots: &[f64], den: f64) -> f64 {
            let mut num = 0.0_f64;
            for &v in slots {
                num += v;
            }
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        }
        let tree_bound = |slots: &[f64]| -> f64 {
            match flat_den {
                Some(den) => flat_list_eval(slots, den),
                None => {
                    let mut cur = 0;
                    bmw_tree_bound(node, slots, &mut cur)
                }
            }
        };
        // One positional-check doc set per `prox` node, computed once
        // for the whole query (exactly as `score_tree` computes it) and
        // consumed by `bmw_tree_exact` in depth-first order.
        let prox_sets: Vec<Option<Vec<DocId>>> = {
            let mut sets = Vec::new();
            self.collect_prox_sets(node, &mut sets);
            sets
        };
        let tree_exact = |slots: &[f64], doc: DocId| -> f64 {
            match flat_den {
                Some(den) => flat_list_eval(slots, den),
                None => {
                    let mut cur = 0;
                    let mut pcur = 0;
                    bmw_tree_exact(node, slots, &mut cur, doc, &prox_sets, &mut pcur)
                }
            }
        };
        // Frontier cache: `docs[i]` mirrors `cursors[i].doc()` (exhausted
        // and absent cursors pin at `u32::MAX`), so ordering and the
        // prefix walk never touch the cursors themselves. `order` keeps
        // every leaf index sorted by its frontier doc — exhausted
        // cursors sink to the tail — and is repaired by insertion after
        // each advance instead of being rebuilt per iteration: only the
        // just-advanced prefix is ever out of place.
        let mut docs: Vec<u32> = cursors
            .iter()
            .map(|c| c.as_ref().map_or(u32::MAX, BlockCursor::doc))
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| docs[i]);
        loop {
            if let Some(shared) = hooks.shared {
                let global = shared.get();
                if global > theta {
                    theta = global;
                }
            }
            if order.is_empty() || docs[order[0]] == u32::MAX {
                break;
            }

            // --- WAND pivot selection -----------------------------------
            // Walk prefixes of the doc-sorted cursors, one equal-doc group
            // at a time. A doc `d` can only draw contributions from
            // cursors currently at or before `d`, so the tree bound over
            // prefix leaves (at their whole-list bounds) dominates every
            // doc before the *next* group. The bound must be evaluated at
            // every prefix: `and` (min) makes it non-monotone in the
            // active set, so a low bound here says nothing about the
            // next, larger prefix.
            let mut pivot: Option<(usize, u32)> = None; // (prefix end, doc)
            if theta == f64::NEG_INFINITY {
                // Nothing can be skipped yet: the first group is the pivot.
                let d = docs[order[0]];
                let end = order.iter().take_while(|&&i| docs[i] == d).count();
                pivot = Some((end, d));
            } else {
                for s in ub.iter_mut() {
                    *s = 0.0;
                }
                let mut j = 0;
                while j < n && docs[order[j]] != u32::MAX {
                    let d = docs[order[j]];
                    while j < n && docs[order[j]] == d {
                        ub[order[j]] = leaves[order[j]].bound;
                        j += 1;
                    }
                    // Skip on *strictly below* only: a bound equal to θ
                    // may be a tie, and ties are never skipped. Spelled
                    // via `partial_cmp` so an incomparable (NaN) bound
                    // also refuses to skip.
                    if tree_bound(&ub).partial_cmp(&theta) != Some(std::cmp::Ordering::Less) {
                        pivot = Some((j, d));
                        break;
                    }
                }
            }
            let Some((prefix_end, pivot_doc)) = pivot else {
                break; // no prefix can reach θ: nothing left can compete
            };
            let next_doc = order.get(prefix_end).map_or(u32::MAX, |&i| docs[i]);

            if docs[order[0]] == pivot_doc {
                if prefix_end == 1 {
                    if let Some(den) = flat_den {
                        // Sole-owner run: every doc from the pivot up to
                        // the next cursor's frontier sits on this one
                        // list, and the flat-list score of such a doc is
                        // its single slot over the constant denominator.
                        // Score the whole run in bulk straight off the
                        // decoded block arrays — block bounds still
                        // prune, but pivot selection re-runs once per
                        // run instead of once per document.
                        let i = order[0];
                        let c = cursors[i].as_mut().expect("live cursor");
                        self.bmw_flat_run(
                            leaves[i].weight,
                            leaves[i].df,
                            prepared[i].as_ref(),
                            den,
                            next_doc,
                            c,
                            &mut top,
                            &mut theta,
                            &mut threshold_updates,
                            hooks.shared,
                        );
                        docs[i] = c.doc();
                        repair_frontier_order(&mut order, &docs);
                        continue;
                    }
                }
                // Aligned: every prefix cursor sits on the pivot. Check
                // the *current* blocks' score bounds.
                for s in ub.iter_mut() {
                    *s = 0.0;
                }
                for &i in &order[..prefix_end] {
                    let c = cursors[i].as_ref().expect("live cursor");
                    ub[i] = (leaves[i].weight * c.block_max_score()).max(0.0);
                }
                if tree_bound(&ub) < theta {
                    // Shallow advance: everything up to the earliest
                    // current-block boundary (or the next cursor's doc)
                    // is covered by the bounds just consulted.
                    let mut jump = next_doc;
                    for &i in &order[..prefix_end] {
                        let c = cursors[i].as_ref().expect("live cursor");
                        jump = jump.min(c.block_max_doc().saturating_add(1));
                    }
                    for &i in &order[..prefix_end] {
                        let c = cursors[i].as_mut().expect("live cursor");
                        c.next_geq(jump);
                        docs[i] = c.doc();
                    }
                    repair_frontier_order(&mut order, &docs);
                    continue;
                }
                // Survivor: exact score with the unpruned arithmetic.
                for s in vals.iter_mut() {
                    *s = 0.0;
                }
                let doc = DocId(pivot_doc);
                for &i in &order[..prefix_end] {
                    let tf = cursors[i].as_mut().expect("live cursor").tf();
                    if tf > 0 {
                        vals[i] = leaves[i].weight
                            * self.weigh_leaf(prepared[i].as_ref(), doc, tf, leaves[i].df);
                    }
                }
                let score = tree_exact(&vals, doc);
                if score > 0.0 {
                    top.push(doc, score);
                    let floor = top.threshold();
                    if floor > theta {
                        theta = floor;
                        threshold_updates += 1;
                        if let Some(shared) = hooks.shared {
                            shared.raise(floor);
                        }
                    }
                }
                for &i in &order[..prefix_end] {
                    let c = cursors[i].as_mut().expect("live cursor");
                    c.next();
                    docs[i] = c.doc();
                }
                repair_frontier_order(&mut order, &docs);
            } else {
                // Laggards sit before the pivot: a header-only lookup of
                // the blocks that *would* cover it, no decoding.
                for s in ub.iter_mut() {
                    *s = 0.0;
                }
                for &i in &order[..prefix_end] {
                    let c = cursors[i].as_ref().expect("live cursor");
                    ub[i] = match c.block_for(pivot_doc) {
                        Some(b) => (leaves[i].weight * c.block_max_score_at(b)).max(0.0),
                        // List ends before the pivot: contributes nothing
                        // to any doc from the pivot on.
                        None => 0.0,
                    };
                }
                if tree_bound(&ub) < theta {
                    let mut jump = next_doc;
                    for &i in &order[..prefix_end] {
                        let c = cursors[i].as_ref().expect("live cursor");
                        if let Some(b) = c.block_for(pivot_doc) {
                            jump = jump.min(c.block_last_doc(b).saturating_add(1));
                        }
                    }
                    for &i in &order[..prefix_end] {
                        let c = cursors[i].as_mut().expect("live cursor");
                        c.next_geq(jump);
                        docs[i] = c.doc();
                    }
                } else {
                    // Competitive: align the laggards onto the pivot and
                    // re-run selection from the new frontier.
                    for &i in &order[..prefix_end] {
                        let c = cursors[i].as_mut().expect("live cursor");
                        if c.doc() < pivot_doc {
                            c.next_geq(pivot_doc);
                            docs[i] = c.doc();
                        }
                    }
                }
                repair_frontier_order(&mut order, &docs);
            }
        }
        if let Some(c) = hooks.counters {
            let visited: u64 = cursors.iter().flatten().map(BlockCursor::visited).sum();
            let blocks_skipped: u64 = cursors
                .iter()
                .flatten()
                .map(BlockCursor::blocks_skipped)
                .sum();
            // BMW accounting is postings-grained: `candidates` is every
            // posting entering evaluation, and a "skipped doc" is a
            // posting the cursors never rested on — each one an avoided
            // `term_weight` computation. The unpruned fallback keeps the
            // older union-of-candidates granularity.
            c.candidates.fetch_add(total_postings, Ordering::Relaxed);
            c.skipped_docs
                .fetch_add(total_postings - visited, Ordering::Relaxed);
            c.skipped_leaves
                .fetch_add(total_postings - visited, Ordering::Relaxed);
            c.blocks_skipped
                .fetch_add(blocks_skipped, Ordering::Relaxed);
            c.threshold_updates
                .fetch_add(threshold_updates, Ordering::Relaxed);
        }
        top.into_sorted_vec()
    }

    /// Bulk-score a sole-owner run for the flat-list Block-Max loop:
    /// every doc from the cursor's position up to `stop` (exclusive)
    /// appears on no other frontier, so its flat-list score is its one
    /// slot over the constant denominator `den` — computed here
    /// straight off the decoded block arrays, with the identical
    /// arithmetic the slot-array walk performs (adding a value to a
    /// row of zero slots and dividing is exact, so scores stay
    /// bit-equal). Blocks whose score bound stays strictly under θ are
    /// hopped without touching their tf section, exactly as the
    /// per-document loop shallow-advances; offering a sub-θ doc to the
    /// selector is a no-op, so bulk-scoring past a mid-block θ rise
    /// cannot change the result either.
    #[allow(clippy::too_many_arguments)]
    fn bmw_flat_run(
        &self,
        leaf_weight: f64,
        df: u32,
        prepared: Option<&PreparedWeight>,
        den: f64,
        stop: u32,
        c: &mut BlockCursor<'_>,
        top: &mut TopK,
        theta: &mut f64,
        threshold_updates: &mut u64,
        shared: Option<&SharedThreshold>,
    ) {
        while c.doc() < stop {
            let block_ub = (leaf_weight * c.block_max_score()).max(0.0);
            let bound = if den > 0.0 { block_ub / den } else { 0.0 };
            if bound.partial_cmp(theta) == Some(std::cmp::Ordering::Less) {
                // Bounded out: hop to the block's end (or to `stop`)
                // without decoding the tf section.
                c.next_geq(stop.min(c.block_max_doc().saturating_add(1)));
                continue;
            }
            let (bdocs, btfs) = c.remaining_in_block();
            let run = bdocs.partition_point(|&d| d < stop);
            for (&d, &tf) in bdocs[..run].iter().zip(btfs) {
                if tf == 0 {
                    continue;
                }
                let doc = DocId(d);
                let v = leaf_weight * self.weigh_leaf(prepared, doc, tf, df);
                let score = if den > 0.0 { v / den } else { 0.0 };
                if score > 0.0 {
                    top.push(doc, score);
                    let floor = top.threshold();
                    if floor > *theta {
                        *theta = floor;
                        *threshold_updates += 1;
                        if let Some(shared) = shared {
                            shared.raise(floor);
                        }
                    }
                }
            }
            c.advance_in_block(run);
        }
    }

    /// The pre-fast-path evaluator: per-document recursive tree walk over
    /// a candidate set built by repeated two-way unions, followed by a
    /// full sort. Kept as the reference implementation — the property
    /// tests compare the fast path against it, and `x14_hotpath` uses it
    /// as the baseline the top-k pipeline is measured against.
    pub fn eval_ranking_naive(&self, node: &RankNode) -> Vec<(DocId, f64)> {
        let effective;
        let node = if self.fuzzy_ranking_ops {
            node
        } else {
            effective = node.flatten_to_list();
            &effective
        };
        // Candidate docs: any doc matching any leaf term.
        let mut candidates: Vec<DocId> = Vec::new();
        for spec in node.terms() {
            candidates = union(&candidates, &self.eval_term(spec));
        }
        let mut scores: Vec<(DocId, f64)> = candidates
            .into_iter()
            .map(|doc| (doc, self.score_node(node, doc)))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        self.ranking.finalize(&mut scores);
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scores
    }

    /// The `TermStats` entry for one term of the ranking expression in
    /// one result document (§4.2).
    pub fn term_stats(&self, doc: DocId, spec: &TermSpec) -> TermStat {
        let Some(field) = self.resolve_field(spec) else {
            return TermStat {
                tf: 0,
                weight: 0.0,
                df: 0,
            };
        };
        let keys = self.resolve_keys(field, spec);
        let (tf, df) = self.tf_df(doc, field, &keys);
        let weight = self.ranking.term_weight(&self.stats_for(doc, tf, df));
        TermStat { tf, weight, df }
    }

    // ---- internals ----

    fn resolve_field(&self, spec: &TermSpec) -> Option<FieldId> {
        match &spec.field {
            None => Some(ANY_FIELD),
            Some(name) if name.eq_ignore_ascii_case("any") => Some(ANY_FIELD),
            Some(name) => self.index.schema().get(name),
        }
    }

    /// Resolve a spec to the set of index-vocabulary terms it matches.
    /// When this engine is a shard, resolution runs against the *global*
    /// vocabulary: a key another shard indexed still contributes its
    /// (global) document frequency to this shard's scoring.
    fn resolve_keys(&self, field: FieldId, spec: &TermSpec) -> Vec<String> {
        let cfg = self.index.analyzer().config();
        if spec.needs_scan(cfg.stem, cfg.case) {
            let pred = spec.vocab_predicate(&self.thesaurus);
            // When the engine stems its index, compare against stems of
            // the query term too (normalize first).
            let query = &spec.term;
            let mut keys: Vec<String> = match &self.collection {
                Some(c) => c
                    .field_terms(field)
                    .filter(|(vocab, _)| pred(query, vocab))
                    .map(|(vocab, _)| vocab.to_string())
                    .collect(),
                None => self
                    .index
                    .field_vocabulary(field)
                    .filter(|(vocab, _)| pred(query, vocab))
                    .map(|(vocab, _)| vocab.to_string())
                    .collect(),
            };
            keys.sort_unstable();
            keys
        } else if spec.has(crate::matchspec::TermMatch::Thesaurus) {
            let mut keys: Vec<String> = self
                .thesaurus
                .expand(&spec.term)
                .into_iter()
                .map(|w| self.index.analyzer().normalize_term(&w))
                .filter(|w| self.has_term(field, w))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            keys
        } else {
            let key = self.index.analyzer().normalize_term(&spec.term);
            if self.has_term(field, &key) {
                vec![key]
            } else {
                Vec::new()
            }
        }
    }

    /// Whether the (field, term) pair exists anywhere in the collection —
    /// globally when this engine is a shard, else locally.
    fn has_term(&self, field: FieldId, term: &str) -> bool {
        match &self.collection {
            Some(c) => c.contains(field, term),
            None => self.index.postings(field, term).is_some(),
        }
    }

    /// Document frequency of an index key — global when sharded.
    fn df_of(&self, field: FieldId, key: &str) -> u32 {
        match &self.collection {
            Some(c) => c.df(field, key),
            None => self.index.df(field, key),
        }
    }

    /// Docs matching a term spec (sorted).
    fn eval_term(&self, spec: &TermSpec) -> Vec<DocId> {
        // Comparison modifiers match on stored field values, not the
        // inverted index (dates and the like).
        if let Some(op) = spec.cmp {
            return self.eval_cmp(spec, op);
        }
        let Some(field) = self.resolve_field(spec) else {
            return Vec::new();
        };
        let mut docs: Vec<DocId> = Vec::new();
        for key in self.resolve_keys(field, spec) {
            if let Some(postings) = self.index.postings(field, &key) {
                let ids: Vec<DocId> = postings.docs().collect();
                docs = union(&docs, &ids);
            }
        }
        docs
    }

    fn eval_cmp(&self, spec: &TermSpec, op: CmpOp) -> Vec<DocId> {
        let Some(field) = self.resolve_field(spec) else {
            return Vec::new();
        };
        if field == ANY_FIELD {
            // Comparisons need a concrete field; `Any` makes no sense.
            return Vec::new();
        }
        let query = spec.term.trim();
        self.index
            .all_docs()
            .filter(|&doc| {
                self.index
                    .doc_field(doc, field)
                    .is_some_and(|stored| op.test(stored.trim().cmp(query)))
            })
            .collect()
    }

    fn eval_prox(
        &self,
        left: &TermSpec,
        right: &TermSpec,
        distance: u32,
        ordered: bool,
    ) -> Vec<DocId> {
        let (Some(lf), Some(rf)) = (self.resolve_field(left), self.resolve_field(right)) else {
            return Vec::new();
        };
        let lkeys = self.resolve_keys(lf, left);
        let rkeys = self.resolve_keys(rf, right);
        let ldocs = self.docs_of_keys(lf, &lkeys);
        let rdocs = self.docs_of_keys(rf, &rkeys);
        let both = intersect(&ldocs, &rdocs);
        if !self.index.has_positions() {
            // Built with [`PositionsMode::None`]: no positional store
            // exists, so proximity degrades to plain co-occurrence —
            // the §4.1.1-sanctioned relaxation for unsupported features.
            return both;
        }
        both.into_iter()
            .filter(|&doc| {
                let lpos = self.positions_of(doc, lf, &lkeys);
                let rpos = self.positions_of(doc, rf, &rkeys);
                prox_match(&lpos, &rpos, distance, ordered)
            })
            .collect()
    }

    fn docs_of_keys(&self, field: FieldId, keys: &[String]) -> Vec<DocId> {
        let mut docs = Vec::new();
        for key in keys {
            if let Some(postings) = self.index.postings(field, key) {
                let ids: Vec<DocId> = postings.docs().collect();
                docs = union(&docs, &ids);
            }
        }
        docs
    }

    fn positions_of(&self, doc: DocId, field: FieldId, keys: &[String]) -> Vec<u32> {
        let mut pos = Vec::new();
        for key in keys {
            if let Some(postings) = self.index.postings(field, key) {
                if let Some((i, _)) = postings.find(doc) {
                    pos.extend_from_slice(postings.positions_at(i));
                }
            }
        }
        pos.sort_unstable();
        pos
    }

    fn tf_df(&self, doc: DocId, field: FieldId, keys: &[String]) -> (u32, u32) {
        let mut tf = 0;
        let mut df = 0;
        for key in keys {
            df = df.max(self.df_of(field, key));
            if let Some(postings) = self.index.postings(field, key) {
                tf += postings.tf_of(doc);
            }
        }
        (tf, df)
    }

    /// The (document count, mean document length) pair every
    /// [`TermDocStats`] carries: the calibrated collection-wide view
    /// when one is installed, this index's own otherwise.
    fn collection_counts(&self) -> (u32, f64) {
        match &self.collection {
            Some(c) => (c.n_docs(), c.avg_doc_tokens()),
            None => (self.index.n_docs(), self.index.avg_doc_tokens()),
        }
    }

    /// Fold the per-(term, collection) constants of the ranking
    /// algorithm for a leaf with document frequency `df`, or `None`
    /// when the algorithm doesn't support folding and scoring must go
    /// through [`RankingAlgorithm::term_weight`].
    fn prepare_leaf(&self, df: u32) -> Option<PreparedWeight> {
        let (n_docs, avg_tokens) = self.collection_counts();
        self.ranking.prepare(df, n_docs, avg_tokens)
    }

    /// One leaf's term weight for one document: the folded-constant
    /// fast path when `prepared` is available, the generic
    /// [`RankingAlgorithm::term_weight`] otherwise. The two are
    /// bit-identical by construction (see [`PreparedWeight`]).
    #[inline]
    fn weigh_leaf(&self, prepared: Option<&PreparedWeight>, doc: DocId, tf: u32, df: u32) -> f64 {
        match prepared {
            Some(p) => p.weight(
                tf,
                self.index.doc_token_count(doc),
                self.doc_norms[doc.0 as usize],
            ),
            None => self.ranking.term_weight(&self.stats_for(doc, tf, df)),
        }
    }

    fn stats_for(&self, doc: DocId, tf: u32, df: u32) -> TermDocStats {
        let (n_docs, avg_tokens) = self.collection_counts();
        TermDocStats {
            tf,
            df,
            n_docs,
            doc_tokens: self.index.doc_token_count(doc),
            avg_tokens,
            doc_norm: self.doc_norms[doc.0 as usize],
        }
    }

    /// Resolve every leaf of a ranking tree once: vocabulary keys to
    /// posting-list slices (plus the comparison-matched doc set for
    /// `cmp` leaves), in the same depth-first order [`RankNode::terms`]
    /// visits them.
    fn resolve_leaves<'a>(&'a self, node: &RankNode, out: &mut Vec<LeafCtx<'a>>) {
        match node {
            RankNode::Term { spec, weight } => {
                let mut ctx = LeafCtx {
                    weight: *weight,
                    df: 0,
                    postings: Vec::new(),
                    cmp_docs: None,
                    bound: f64::INFINITY,
                    blocks: None,
                    block_max: &[],
                };
                // Track the resolved-key shape for the pruning bound: a
                // finite bound needs exactly one vocabulary key, because
                // multi-key leaves sum tf across keys and take the max
                // df — neither of which the per-key envelope covers.
                let mut n_keys = 0usize;
                let mut single = None;
                if let Some(field) = self.resolve_field(spec) {
                    for key in self.resolve_keys(field, spec) {
                        n_keys += 1;
                        ctx.df = ctx.df.max(self.df_of(field, &key));
                        if let Some(postings) = self.index.postings(field, &key) {
                            ctx.postings.push(postings);
                        }
                        single = (n_keys == 1).then_some((field, key));
                    }
                }
                // Comparison leaves match on stored field values; their
                // candidate docs come from the comparison, while scoring
                // still goes through the postings (as the tree walk did).
                if spec.cmp.is_some() {
                    ctx.cmp_docs = Some(self.eval_term(spec));
                }
                ctx.bound = self.leaf_bound(&ctx, single.as_ref());
                // A finite bound over non-empty postings implies a
                // single key (see `leaf_bound`); wire up the key's
                // block postings and per-block weight maxima so
                // Block-Max-WAND can skip through this leaf.
                if ctx.bound.is_finite() && !ctx.postings.is_empty() {
                    if let Some((field, key)) = &single {
                        if let Some(tid) = self.index.term_id(key) {
                            ctx.blocks = self
                                .index
                                .postings_by_id(*field, tid)
                                .map(PostingsList::blocks);
                            if let Some(bm) = self
                                .bounds
                                .as_ref()
                                .and_then(|b| b.block_maxima(*field, tid))
                            {
                                ctx.block_max = bm;
                            }
                        }
                    }
                }
                out.push(ctx);
            }
            RankNode::List(c) | RankNode::And(c) | RankNode::Or(c) => {
                for n in c {
                    self.resolve_leaves(n, out);
                }
            }
            RankNode::AndNot(a, b) => {
                self.resolve_leaves(a, out);
                self.resolve_leaves(b, out);
            }
            RankNode::Prox { left, right, .. } => {
                self.resolve_leaves(left, out);
                self.resolve_leaves(right, out);
            }
        }
    }

    /// The largest contribution `leaf` can make to any local document's
    /// score slot, as a float — `+inf` (no sound finite bound, pruning
    /// disabled for the query) for comparison leaves, negative or
    /// non-finite query weights, multi-key resolutions, or a key whose
    /// recorded weight envelope is negative or non-finite. A leaf with
    /// no local postings contributes exactly 0 on this engine.
    fn leaf_bound(&self, leaf: &LeafCtx<'_>, single: Option<&(FieldId, String)>) -> f64 {
        let Some(bounds) = &self.bounds else {
            return f64::INFINITY; // prune == Off: never consulted
        };
        if leaf.cmp_docs.is_some() || !leaf.weight.is_finite() || leaf.weight < 0.0 {
            return f64::INFINITY;
        }
        if leaf.postings.is_empty() {
            return 0.0;
        }
        let Some((field, key)) = single else {
            return f64::INFINITY;
        };
        match self
            .index
            .term_id(key)
            .and_then(|tid| bounds.get(*field, tid))
        {
            Some(b) if b.min >= 0.0 && b.max.is_finite() => (leaf.weight * b.max).max(0.0),
            _ => f64::INFINITY,
        }
    }

    /// Term-at-a-time scores of one leaf over the sorted candidate
    /// list: accumulate term frequencies by merge-joining each posting
    /// list against the candidates (reusing `tf_scratch` across leaves),
    /// then weight each nonzero slot.
    fn leaf_slots(
        &self,
        leaf: &LeafCtx<'_>,
        candidates: &[DocId],
        tf_scratch: &mut Vec<u32>,
    ) -> Vec<f64> {
        tf_scratch.clear();
        tf_scratch.resize(candidates.len(), 0);
        for postings in &leaf.postings {
            let mut ci = 0;
            for (doc, tf) in postings.docs_tfs() {
                while ci < candidates.len() && candidates[ci] < doc {
                    ci += 1;
                }
                if ci == candidates.len() {
                    break;
                }
                if candidates[ci] == doc {
                    tf_scratch[ci] += tf;
                }
            }
        }
        let prepared = self.prepare_leaf(leaf.df);
        candidates
            .iter()
            .zip(tf_scratch.iter())
            .map(|(&doc, &tf)| {
                if tf == 0 {
                    0.0
                } else {
                    leaf.weight * self.weigh_leaf(prepared.as_ref(), doc, tf, leaf.df)
                }
            })
            .collect()
    }

    /// Evaluate a ranking tree over the whole candidate list at once,
    /// one slot per candidate, consuming resolved leaves in tree order.
    /// Per-slot arithmetic mirrors the per-document walk exactly, so the
    /// two evaluators agree bit-for-bit.
    fn score_tree(
        &self,
        node: &RankNode,
        candidates: &[DocId],
        leaves: &[LeafCtx<'_>],
        cursor: &mut usize,
        tf_scratch: &mut Vec<u32>,
    ) -> Vec<f64> {
        match node {
            RankNode::Term { .. } => {
                let leaf = &leaves[*cursor];
                *cursor += 1;
                self.leaf_slots(leaf, candidates, tf_scratch)
            }
            RankNode::List(children) => {
                let mut num = vec![0.0; candidates.len()];
                let mut den = 0.0;
                for c in children {
                    let child = self.score_tree(c, candidates, leaves, cursor, tf_scratch);
                    for (n, s) in num.iter_mut().zip(child) {
                        *n += s;
                    }
                    den += leaf_weight(c);
                }
                if den > 0.0 {
                    for n in num.iter_mut() {
                        *n /= den;
                    }
                    num
                } else {
                    vec![0.0; candidates.len()]
                }
            }
            RankNode::And(children) => {
                if children.is_empty() {
                    return vec![0.0; candidates.len()];
                }
                let mut acc = vec![f64::INFINITY; candidates.len()];
                for c in children {
                    let child = self.score_tree(c, candidates, leaves, cursor, tf_scratch);
                    for (a, s) in acc.iter_mut().zip(child) {
                        *a = f64::min(*a, s);
                    }
                }
                for a in acc.iter_mut() {
                    *a = f64::max(*a, 0.0);
                }
                acc
            }
            RankNode::Or(children) => {
                let mut acc = vec![0.0_f64; candidates.len()];
                for c in children {
                    let child = self.score_tree(c, candidates, leaves, cursor, tf_scratch);
                    for (a, s) in acc.iter_mut().zip(child) {
                        *a = f64::max(*a, s);
                    }
                }
                acc
            }
            RankNode::AndNot(a, b) => {
                let mut pos = self.score_tree(a, candidates, leaves, cursor, tf_scratch);
                let neg = self.score_tree(b, candidates, leaves, cursor, tf_scratch);
                for (p, n) in pos.iter_mut().zip(neg) {
                    *p *= 1.0 - n.clamp(0.0, 1.0);
                }
                pos
            }
            RankNode::Prox {
                left,
                right,
                distance,
                ordered,
            } => {
                let l = self.score_tree(left, candidates, leaves, cursor, tf_scratch);
                let r = self.score_tree(right, candidates, leaves, cursor, tf_scratch);
                // Positional check only when both sides are term leaves —
                // and then computed once for the whole query, not per doc.
                let prox_docs = match (left.as_ref(), right.as_ref()) {
                    (RankNode::Term { spec: ls, .. }, RankNode::Term { spec: rs, .. }) => {
                        Some(self.eval_prox(ls, rs, *distance, *ordered))
                    }
                    _ => None,
                };
                candidates
                    .iter()
                    .zip(l.into_iter().zip(r))
                    .map(|(doc, (ls, rs))| {
                        let base = ls.min(rs);
                        if base <= 0.0 {
                            return 0.0;
                        }
                        match &prox_docs {
                            Some(set) if set.binary_search(doc).is_err() => 0.0,
                            _ => base,
                        }
                    })
                    .collect()
            }
        }
    }

    /// Score a ranking expression over an externally-chosen, sorted doc
    /// set (the filter set of a combined query) — zero-score docs stay.
    fn score_set(&self, node: &RankNode, docs: &[DocId]) -> Vec<f64> {
        let effective;
        let node = if self.fuzzy_ranking_ops {
            node
        } else {
            effective = node.flatten_to_list();
            &effective
        };
        let mut leaves = Vec::new();
        self.resolve_leaves(node, &mut leaves);
        let mut cursor = 0;
        let mut tf_scratch = Vec::new();
        self.score_tree(node, docs, &leaves, &mut cursor, &mut tf_scratch)
    }

    /// Fuzzy evaluation of a ranking node for one document.
    fn score_node(&self, node: &RankNode, doc: DocId) -> f64 {
        match node {
            RankNode::Term { spec, weight } => {
                let Some(field) = self.resolve_field(spec) else {
                    return 0.0;
                };
                let keys = self.resolve_keys(field, spec);
                let (tf, df) = self.tf_df(doc, field, &keys);
                if tf == 0 {
                    return 0.0;
                }
                weight * self.ranking.term_weight(&self.stats_for(doc, tf, df))
            }
            RankNode::List(children) => {
                // Weighted mean, per Example 4's 0.5·0.3 + 0.5·0.8 = 0.55
                // reading: leaf weights are relative importances.
                let mut num = 0.0;
                let mut den = 0.0;
                for c in children {
                    let w = leaf_weight(c);
                    // Leaf scores already include their weight; divide by
                    // the weight sum to make `list` a weighted average.
                    num += self.score_node(c, doc);
                    den += w;
                }
                if den > 0.0 {
                    num / den
                } else {
                    0.0
                }
            }
            RankNode::And(children) => {
                if children.is_empty() {
                    0.0
                } else {
                    children
                        .iter()
                        .map(|c| self.score_node(c, doc))
                        .fold(f64::INFINITY, f64::min)
                        .max(0.0)
                }
            }
            RankNode::Or(children) => children
                .iter()
                .map(|c| self.score_node(c, doc))
                .fold(0.0, f64::max),
            RankNode::AndNot(a, b) => {
                let pos = self.score_node(a, doc);
                let neg = self.score_node(b, doc).clamp(0.0, 1.0);
                pos * (1.0 - neg)
            }
            RankNode::Prox {
                left,
                right,
                distance,
                ordered,
            } => {
                let base = self.score_node(left, doc).min(self.score_node(right, doc));
                if base <= 0.0 {
                    return 0.0;
                }
                // Positional check only when both sides are term leaves.
                if let (RankNode::Term { spec: l, .. }, RankNode::Term { spec: r, .. }) =
                    (left.as_ref(), right.as_ref())
                {
                    let ok = self
                        .eval_prox(l, r, *distance, *ordered)
                        .binary_search(&doc)
                        .is_ok();
                    if ok {
                        base
                    } else {
                        0.0
                    }
                } else {
                    base
                }
            }
        }
    }

    /// Collect the positional-check doc set of every `prox` node in the
    /// tree, children-first depth-first — the order `bmw_tree_exact`
    /// consumes them. `Some` (possibly empty) when both children are
    /// term leaves, `None` when the node degrades to fuzzy `and` —
    /// mirroring `score_tree`'s per-node decision exactly.
    fn collect_prox_sets(&self, node: &RankNode, out: &mut Vec<Option<Vec<DocId>>>) {
        match node {
            RankNode::Term { .. } => {}
            RankNode::List(c) | RankNode::And(c) | RankNode::Or(c) => {
                for n in c {
                    self.collect_prox_sets(n, out);
                }
            }
            RankNode::AndNot(a, b) => {
                self.collect_prox_sets(a, out);
                self.collect_prox_sets(b, out);
            }
            RankNode::Prox {
                left,
                right,
                distance,
                ordered,
            } => {
                self.collect_prox_sets(left, out);
                self.collect_prox_sets(right, out);
                out.push(match (left.as_ref(), right.as_ref()) {
                    (RankNode::Term { spec: ls, .. }, RankNode::Term { spec: rs, .. }) => {
                        Some(self.eval_prox(ls, rs, *distance, *ordered))
                    }
                    _ => None,
                });
            }
        }
    }
}

/// Per-leaf query-time state, resolved exactly once per query: the
/// query weight, the collection document frequency, the posting-list
/// slice of every matched vocabulary key, and (for comparison leaves)
/// the comparison-matched doc set.
struct LeafCtx<'a> {
    weight: f64,
    df: u32,
    postings: Vec<&'a PostingsList>,
    cmp_docs: Option<Vec<DocId>>,
    /// Upper bound (weight folded in) on this leaf's contribution to
    /// any local document's score slot; `+inf` when no sound finite
    /// bound exists — then the whole query falls back to the exact
    /// unpruned path.
    bound: f64,
    /// Block postings of the leaf's single resolved key (set only when
    /// `bound` is finite and postings exist) — what the Block-Max-WAND
    /// cursor walks.
    blocks: Option<&'a BlockPostings>,
    /// Per-block maxima of the key's exact term weights (query weight
    /// *not* folded in — applied at use), aligned with `blocks`.
    block_max: &'a [f64],
}

/// Aggregate pruning telemetry for one query evaluation (summed across
/// every shard of a [`crate::ShardedEngine`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Work entering ranked evaluation: on the Block-Max-WAND path the
    /// total postings across all query leaves, on the unpruned fallback
    /// the candidate documents of the k-way union.
    pub candidates: u64,
    /// Work skipped without computing an exact score: postings the BMW
    /// cursors never rested on (each one an avoided `term_weight`
    /// computation), or candidate docs skipped on legacy paths.
    pub skipped_docs: u64,
    /// Mirror of `skipped_docs` on the BMW path (one leaf probe avoided
    /// per unvisited posting).
    pub skipped_leaves: u64,
    /// Whole 128-doc blocks the cursors jumped over without decoding.
    pub blocks_skipped: u64,
    /// Times a heap-floor rise tightened the pruning threshold.
    pub threshold_updates: u64,
}

impl PruneReport {
    /// Fold another report into this one (aggregation across queries or
    /// shards).
    pub fn merge(&mut self, other: &PruneReport) {
        self.candidates += other.candidates;
        self.skipped_docs += other.skipped_docs;
        self.skipped_leaves += other.skipped_leaves;
        self.blocks_skipped += other.blocks_skipped;
        self.threshold_updates += other.threshold_updates;
    }
}

/// Shared atomic tallies behind a [`PruneReport`] — written once per
/// shard evaluation, snapshotted once per query.
#[derive(Debug, Default)]
pub(crate) struct PruneCounters {
    pub(crate) candidates: AtomicU64,
    pub(crate) skipped_docs: AtomicU64,
    pub(crate) skipped_leaves: AtomicU64,
    pub(crate) blocks_skipped: AtomicU64,
    pub(crate) threshold_updates: AtomicU64,
}

impl PruneCounters {
    /// Snapshot the tallies.
    pub(crate) fn report(&self) -> PruneReport {
        PruneReport {
            candidates: self.candidates.load(Ordering::Relaxed),
            skipped_docs: self.skipped_docs.load(Ordering::Relaxed),
            skipped_leaves: self.skipped_leaves.load(Ordering::Relaxed),
            blocks_skipped: self.blocks_skipped.load(Ordering::Relaxed),
            threshold_updates: self.threshold_updates.load(Ordering::Relaxed),
        }
    }
}

/// Query-scoped pruning context threaded through the raw evaluators: a
/// raw-score floor (seeded from `min-doc-score` when the ranking
/// algorithm allows it), the cross-shard shared threshold cell, and the
/// telemetry counters.
#[derive(Clone, Copy)]
pub(crate) struct PruneHooks<'a> {
    pub(crate) floor: f64,
    pub(crate) shared: Option<&'a SharedThreshold>,
    pub(crate) counters: Option<&'a PruneCounters>,
}

impl PruneHooks<'_> {
    /// No floor, no sharing, no counting — the behaviour of the public
    /// unhooked entry points.
    pub(crate) const NONE: PruneHooks<'static> = PruneHooks {
        floor: f64::NEG_INFINITY,
        shared: None,
        counters: None,
    };
}

/// Decide whether `node` (already flattened when the engine ignores
/// fuzzy operators) has the shape the Block-Max-WAND evaluator handles:
/// any tree of `term`/`list`/`and`/`or`/`and-not`/`prox`, every leaf
/// carrying a finite whole-list bound and, when it has postings, block
/// postings with one recorded maximum per block. `prox` prunes through
/// its positions-ignored over-estimate (the fuzzy-`and` bound — the
/// positional predicate only ever *zeroes* a score, so ignoring it
/// dominates); survivors still run the exact positional check. Any
/// other shape falls back to the exact unpruned path, where pruning is
/// a documented no-op.
fn bmw_eligible(node: &RankNode, leaves: &[LeafCtx<'_>]) -> bool {
    fn shape_ok(node: &RankNode) -> bool {
        match node {
            RankNode::Term { .. } => true,
            RankNode::List(c) | RankNode::And(c) | RankNode::Or(c) => c.iter().all(shape_ok),
            RankNode::AndNot(a, b) => shape_ok(a) && shape_ok(b),
            RankNode::Prox { left, right, .. } => shape_ok(left) && shape_ok(right),
        }
    }
    shape_ok(node)
        && !leaves.is_empty()
        && leaves.iter().all(|l| {
            l.bound.is_finite()
                && (l.postings.is_empty()
                    || matches!(l.blocks, Some(b) if b.n_blocks() == l.block_max.len()))
        })
}

/// Restore the Block-Max WAND frontier `order` (leaf indices keyed by
/// their current doc in `docs`) to ascending doc order. Insertion
/// sort: each advance moves only the already-adjacent prefix cursors
/// forward, so the array is always nearly sorted and the repair is a
/// handful of compares instead of a rebuild.
fn repair_frontier_order(order: &mut [usize], docs: &[u32]) {
    for i in 1..order.len() {
        let mut j = i;
        while j > 0 && docs[order[j - 1]] > docs[order[j]] {
            order.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Leaf count of a subtree — how many [`LeafCtx`] slots it consumes.
fn n_leaves(node: &RankNode) -> usize {
    match node {
        RankNode::Term { .. } => 1,
        RankNode::List(c) | RankNode::And(c) | RankNode::Or(c) => c.iter().map(n_leaves).sum(),
        RankNode::AndNot(a, b) => n_leaves(a) + n_leaves(b),
        RankNode::Prox { left, right, .. } => n_leaves(left) + n_leaves(right),
    }
}

/// Score upper bound of a ranking tree given per-leaf upper bounds,
/// consuming `ub` slots in the depth-first order `resolve_leaves` emits.
///
/// This is `score_tree`'s arithmetic verbatim — same expression, same
/// accumulation order — applied to leaf *bounds* instead of leaf values.
/// Because each leaf bound dominates its exact value as a float, and
/// every operator here (`+` of non-negatives, `/` by the identical
/// positive denominator, `min`, `max`) is monotone under IEEE
/// round-to-nearest, the result dominates the exact tree score bit-wise
/// with no epsilon slack.
fn bmw_tree_bound(node: &RankNode, ub: &[f64], cursor: &mut usize) -> f64 {
    match node {
        RankNode::Term { .. } => {
            let v = ub[*cursor];
            *cursor += 1;
            v
        }
        RankNode::List(children) => {
            let mut num = 0.0_f64;
            let mut den = 0.0_f64;
            for c in children {
                num += bmw_tree_bound(c, ub, cursor);
                den += leaf_weight(c);
            }
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        }
        RankNode::And(children) => {
            if children.is_empty() {
                return 0.0;
            }
            let mut acc = f64::INFINITY;
            for c in children {
                acc = f64::min(acc, bmw_tree_bound(c, ub, cursor));
            }
            f64::max(acc, 0.0)
        }
        RankNode::Or(children) => {
            let mut acc = 0.0_f64;
            for c in children {
                acc = f64::max(acc, bmw_tree_bound(c, ub, cursor));
            }
            acc
        }
        RankNode::AndNot(a, b) => {
            let pos = bmw_tree_bound(a, ub, cursor);
            // The negative side only attenuates: the exact evaluator
            // multiplies by `1 - neg.clamp(0, 1)` ∈ [0, 1] and subtree
            // scores are non-negative, so `pos` alone is a sound bound.
            // Its leaf slots must still be consumed to stay aligned.
            *cursor += n_leaves(b);
            pos
        }
        RankNode::Prox { left, right, .. } => {
            // Positions-ignored over-estimate: the exact score is the
            // fuzzy-`and` base when the positional predicate passes and
            // 0 when it fails (or the base is non-positive), so
            // `max(min(l, r), 0)` dominates it — `min`/`max` are
            // monotone under IEEE semantics, keeping the bound bit-wise
            // sound with no epsilon.
            let l = bmw_tree_bound(left, ub, cursor);
            let r = bmw_tree_bound(right, ub, cursor);
            f64::max(f64::min(l, r), 0.0)
        }
    }
}

/// Exact score of a ranking tree given per-leaf values, consuming
/// `vals` slots in the depth-first order `resolve_leaves` emits. The
/// scalar mirror of `score_tree`'s per-slot arithmetic (same
/// expressions, same accumulation order), so Block-Max-WAND survivors
/// score bit-identically to the unpruned path. `prox_sets` holds one
/// entry per `prox` node in the same depth-first (children-first)
/// order, precomputed once per query — `Some(docs)` when both children
/// are term leaves (the positional check applies), `None` otherwise
/// (degrades to fuzzy `and`, exactly as `score_tree` does).
fn bmw_tree_exact(
    node: &RankNode,
    vals: &[f64],
    cursor: &mut usize,
    doc: DocId,
    prox_sets: &[Option<Vec<DocId>>],
    prox_cursor: &mut usize,
) -> f64 {
    match node {
        RankNode::Term { .. } => {
            let v = vals[*cursor];
            *cursor += 1;
            v
        }
        RankNode::List(children) => {
            let mut num = 0.0_f64;
            let mut den = 0.0_f64;
            for c in children {
                num += bmw_tree_exact(c, vals, cursor, doc, prox_sets, prox_cursor);
                den += leaf_weight(c);
            }
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        }
        RankNode::And(children) => {
            if children.is_empty() {
                return 0.0;
            }
            let mut acc = f64::INFINITY;
            for c in children {
                acc = f64::min(
                    acc,
                    bmw_tree_exact(c, vals, cursor, doc, prox_sets, prox_cursor),
                );
            }
            f64::max(acc, 0.0)
        }
        RankNode::Or(children) => {
            let mut acc = 0.0_f64;
            for c in children {
                acc = f64::max(
                    acc,
                    bmw_tree_exact(c, vals, cursor, doc, prox_sets, prox_cursor),
                );
            }
            acc
        }
        RankNode::AndNot(a, b) => {
            let pos = bmw_tree_exact(a, vals, cursor, doc, prox_sets, prox_cursor);
            let neg = bmw_tree_exact(b, vals, cursor, doc, prox_sets, prox_cursor);
            pos * (1.0 - neg.clamp(0.0, 1.0))
        }
        RankNode::Prox { left, right, .. } => {
            let l = bmw_tree_exact(left, vals, cursor, doc, prox_sets, prox_cursor);
            let r = bmw_tree_exact(right, vals, cursor, doc, prox_sets, prox_cursor);
            let set = &prox_sets[*prox_cursor];
            *prox_cursor += 1;
            let base = l.min(r);
            if base <= 0.0 {
                return 0.0;
            }
            match set {
                Some(s) if s.binary_search(&doc).is_err() => 0.0,
                _ => base,
            }
        }
    }
}

/// Record, per (field, term) key, the float max/min of the exact term
/// weights query-time scoring can produce for that key: the same
/// `term_weight` over the same [`TermDocStats`] (global df/N/avg when
/// sharded, this engine's doc norms) the evaluators compute. Because
/// each recorded max is a float max over identical float values, a
/// leaf's upper bound holds exactly — no epsilon at the leaf level.
fn compute_term_bounds(
    index: &Index,
    ranking: &dyn RankingAlgorithm,
    collection: Option<&CollectionStats>,
    doc_norms: &[f64],
) -> TermBounds {
    let (n_docs, avg_tokens) = match collection {
        Some(c) => (c.n_docs(), c.avg_doc_tokens()),
        None => (index.n_docs(), index.avg_doc_tokens()),
    };
    let mut out = TermBounds::default();
    for (field, tid, term, postings) in index.all_postings() {
        let df = match collection {
            Some(c) => c.df(field, term),
            None => postings.len() as u32,
        };
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        // Per-block maxima ride along in the same pass, chunked exactly
        // as `BlockPostings::encode` chunks the list (every block full
        // except the last), so maxima line up one-to-one with the
        // blocks the BMW cursors walk.
        let mut block_max = Vec::with_capacity(postings.len().div_ceil(BLOCK_DOCS));
        let mut bmax = f64::NEG_INFINITY;
        let mut in_block = 0usize;
        for (doc, tf) in postings.docs_tfs() {
            let st = TermDocStats {
                tf,
                df,
                n_docs,
                doc_tokens: index.doc_token_count(doc),
                avg_tokens,
                doc_norm: doc_norms[doc.0 as usize],
            };
            let w = ranking.term_weight(&st);
            // `total_cmp` extrema: a NaN weight poisons the envelope
            // (it sorts above +inf / below -inf), correctly disabling
            // pruning for the key.
            if w.total_cmp(&max).is_gt() {
                max = w;
            }
            if w.total_cmp(&min).is_lt() {
                min = w;
            }
            if w.total_cmp(&bmax).is_gt() {
                bmax = w;
            }
            in_block += 1;
            if in_block == BLOCK_DOCS {
                block_max.push(bmax);
                bmax = f64::NEG_INFINITY;
                in_block = 0;
            }
        }
        if in_block > 0 {
            block_max.push(bmax);
        }
        out.insert(field, tid, TermBound { max, min });
        out.insert_block_max(field, tid, block_max);
    }
    out
}

/// One sorted doc-id stream feeding the candidate merge: either a
/// block-decoding posting iterator or an owned doc set (comparison
/// leaves).
enum DocStream<'a> {
    Postings(PostingsIter<'a>),
    Ids(std::slice::Iter<'a, DocId>),
}

impl Iterator for DocStream<'_> {
    type Item = DocId;

    fn next(&mut self) -> Option<DocId> {
        match self {
            DocStream::Postings(it) => it.next().map(|(doc, _)| doc),
            DocStream::Ids(it) => it.next().copied(),
        }
    }
}

/// The candidate set of a ranking expression — any doc matching any
/// leaf — built by a single k-way merge over all posting lists.
fn candidate_docs(leaves: &[LeafCtx<'_>]) -> Vec<DocId> {
    let mut streams = Vec::new();
    for leaf in leaves {
        match &leaf.cmp_docs {
            Some(ids) => streams.push(DocStream::Ids(ids.iter())),
            None => {
                for postings in &leaf.postings {
                    streams.push(DocStream::Postings(postings.docs_tfs()));
                }
            }
        }
    }
    kway_union(streams)
}

fn leaf_weight(node: &RankNode) -> f64 {
    match node {
        RankNode::Term { weight, .. } => *weight,
        _ => 1.0,
    }
}

fn compute_doc_norms(
    index: &Index,
    ranking: &dyn RankingAlgorithm,
    collection: Option<&CollectionStats>,
) -> Vec<f64> {
    let mut sq = vec![0.0_f64; index.n_docs() as usize];
    let (n_docs, avg) = match collection {
        Some(c) => (c.n_docs(), c.avg_doc_tokens()),
        None => (index.n_docs(), index.avg_doc_tokens()),
    };
    // Accumulate in sorted term order: each document then sums its
    // squared term weights in the same sequence whether the index is
    // monolithic or one shard of many, making the floating-point norms
    // (and thus every downstream score) bit-identical across shardings.
    let mut vocab: Vec<(&str, &PostingsList)> = index.field_vocabulary(ANY_FIELD).collect();
    vocab.sort_unstable_by(|a, b| a.0.cmp(b.0));
    for (term, postings) in vocab {
        let df = match collection {
            Some(c) => c.df(ANY_FIELD, term),
            None => postings.len() as u32,
        };
        for (doc, tf) in postings.docs_tfs() {
            let st = TermDocStats {
                tf,
                df,
                n_docs,
                doc_tokens: index.doc_token_count(doc),
                avg_tokens: avg,
                doc_norm: 1.0,
            };
            let w = ranking.unnormalized_weight(&st);
            sq[doc.0 as usize] += w * w;
        }
    }
    sq.into_iter().map(f64::sqrt).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchspec::TermMatch;
    use starts_text::StopWordList;
    use std::collections::HashMap;

    fn corpus() -> Vec<Document> {
        vec![
            // doc 0
            Document::new()
                .field("title", "Deductive and Object-Oriented Database Systems")
                .field("author", "Jeffrey D. Ullman")
                .field(
                    "body-of-text",
                    "A comparison of distributed databases and deductive databases systems",
                )
                .field("date-last-modified", "1996-03-31")
                .field("linkage", "http://example.org/dood.ps"),
            // doc 1
            Document::new()
                .field("title", "Database Research Achievements")
                .field("author", "Avi Silberschatz Mike Stonebraker Jeff Ullman")
                .field(
                    "body-of-text",
                    "Research achievements and opportunities for databases into the next century",
                )
                .field("date-last-modified", "1996-09-15")
                .field("linkage", "http://example.org/lagunita.ps"),
            // doc 2
            Document::new()
                .field("title", "Operating Systems Scheduling")
                .field("author", "Andrew Tanenbaum")
                .field(
                    "body-of-text",
                    "Scheduling and paging for distributed operating systems kernels",
                )
                .field("date-last-modified", "1995-01-20")
                .field("linkage", "http://example.org/os.ps"),
        ]
    }

    fn engine() -> Engine {
        Engine::build(
            &corpus(),
            EngineConfig {
                analyzer: AnalyzerConfig {
                    stop_words: StopWordList::english_minimal(),
                    ..AnalyzerConfig::default()
                },
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn boolean_and() {
        let e = engine();
        // (author "Ullman") and (title "database"-ish)
        let q = BoolNode::and(
            BoolNode::Term(TermSpec::fielded("author", "Ullman")),
            BoolNode::Term(TermSpec::fielded("title", "database")),
        );
        // Both Ullman docs have "database" in their titles.
        assert_eq!(e.eval_filter(&q), vec![DocId(0), DocId(1)]);
    }

    #[test]
    fn boolean_or_and_not() {
        let e = engine();
        let distributed = BoolNode::Term(TermSpec::any("distributed"));
        let databases = BoolNode::Term(TermSpec::any("databases"));
        let or = BoolNode::or(distributed.clone(), databases.clone());
        assert_eq!(e.eval_filter(&or), vec![DocId(0), DocId(1), DocId(2)]);
        let and_not = BoolNode::and_not(distributed, databases);
        assert_eq!(e.eval_filter(&and_not), vec![DocId(2)]);
    }

    #[test]
    fn prox_ordered() {
        let e = engine();
        // "distributed databases" adjacent in doc 0's body.
        let q = BoolNode::Prox {
            left: TermSpec::any("distributed"),
            right: TermSpec::any("databases"),
            distance: 0,
            ordered: true,
        };
        assert_eq!(e.eval_filter(&q), vec![DocId(0)]);
        // Reverse order matches nothing at distance 0.
        let q = BoolNode::Prox {
            left: TermSpec::any("databases"),
            right: TermSpec::any("distributed"),
            distance: 0,
            ordered: true,
        };
        assert!(e.eval_filter(&q).is_empty());
    }

    #[test]
    fn stem_modifier_via_scan() {
        let e = engine();
        // Engine does not stem its index, so `stem` triggers a vocabulary
        // scan: "databases" should match title word "database".
        let q = BoolNode::Term(TermSpec::fielded("title", "databases").with(TermMatch::Stem));
        let docs = e.eval_filter(&q);
        assert_eq!(docs, vec![DocId(0), DocId(1)]);
    }

    #[test]
    fn phonetic_modifier() {
        let mut docs = corpus();
        docs.push(Document::new().field("author", "Jeffrey Ulman")); // misspelled
        let e = Engine::build(&docs, EngineConfig::default());
        let q = BoolNode::Term(TermSpec::fielded("author", "Ullman").with(TermMatch::Phonetic));
        let found = e.eval_filter(&q);
        assert!(found.contains(&DocId(3)));
        assert!(found.contains(&DocId(0)));
    }

    #[test]
    fn date_comparison() {
        let e = engine();
        // (date-last-modified > "1996-08-01") — the §4.1.1 example.
        let q = BoolNode::Term(
            TermSpec::fielded("date-last-modified", "1996-08-01").with_cmp(CmpOp::Gt),
        );
        assert_eq!(e.eval_filter(&q), vec![DocId(1)]);
        let q = BoolNode::Term(
            TermSpec::fielded("date-last-modified", "1996-03-31").with_cmp(CmpOp::Le),
        );
        assert_eq!(e.eval_filter(&q), vec![DocId(0), DocId(2)]);
    }

    #[test]
    fn ranking_orders_by_relevance() {
        let e = engine();
        let r = RankNode::List(vec![
            RankNode::term(TermSpec::fielded("body-of-text", "databases")),
            RankNode::term(TermSpec::fielded("body-of-text", "distributed")),
        ]);
        let ranked = e.eval_ranking(&r);
        assert!(!ranked.is_empty());
        // doc 0 mentions both terms (databases twice) — it must lead.
        assert_eq!(ranked[0].0, DocId(0));
        // Scores bounded by Acme-1's [0,1] range.
        for (_, s) in &ranked {
            assert!(*s >= 0.0 && *s <= 1.0 + 1e-9, "score {s} out of range");
        }
    }

    #[test]
    fn fuzzy_and_is_min_like() {
        let e = engine();
        let and = RankNode::And(vec![
            RankNode::term(TermSpec::any("distributed")),
            RankNode::term(TermSpec::any("databases")),
        ]);
        let or = RankNode::Or(vec![
            RankNode::term(TermSpec::any("distributed")),
            RankNode::term(TermSpec::any("databases")),
        ]);
        let and_scores: HashMap<DocId, f64> = e.eval_ranking(&and).into_iter().collect();
        let or_scores: HashMap<DocId, f64> = e.eval_ranking(&or).into_iter().collect();
        // For any doc scored by both, and-score <= or-score.
        for (doc, s_and) in &and_scores {
            let s_or = or_scores.get(doc).copied().unwrap_or(0.0);
            assert!(*s_and <= s_or + 1e-12);
        }
        // Doc 2 has "distributed" but not "databases": and-score 0 (absent),
        // or-score positive.
        assert!(!and_scores.contains_key(&DocId(2)));
        assert!(or_scores.contains_key(&DocId(2)));
    }

    #[test]
    fn non_fuzzy_engine_flattens_to_list() {
        let docs = corpus();
        let e = Engine::build(
            &docs,
            EngineConfig {
                fuzzy_ranking_ops: false,
                ..EngineConfig::default()
            },
        );
        let and = RankNode::And(vec![
            RankNode::term(TermSpec::any("distributed")),
            RankNode::term(TermSpec::any("databases")),
        ]);
        let list = RankNode::List(vec![
            RankNode::term(TermSpec::any("distributed")),
            RankNode::term(TermSpec::any("databases")),
        ]);
        assert_eq!(e.eval_ranking(&and), e.eval_ranking(&list));
        // On this engine doc 2 (only "distributed") DOES score for `and`.
        assert!(e.eval_ranking(&and).iter().any(|(d, _)| *d == DocId(2)));
    }

    #[test]
    fn weighted_list_prefers_weighted_term() {
        let e = engine();
        // Example 5: list(("distributed" 0.7) ("databases" 0.3)).
        let favor_distributed = RankNode::List(vec![
            RankNode::weighted(TermSpec::any("distributed"), 0.9),
            RankNode::weighted(TermSpec::any("databases"), 0.1),
        ]);
        let favor_databases = RankNode::List(vec![
            RankNode::weighted(TermSpec::any("distributed"), 0.1),
            RankNode::weighted(TermSpec::any("databases"), 0.9),
        ]);
        let d: HashMap<DocId, f64> = e.eval_ranking(&favor_distributed).into_iter().collect();
        let b: HashMap<DocId, f64> = e.eval_ranking(&favor_databases).into_iter().collect();
        // Doc 2 (distributed only) scores better under the first query.
        assert!(d[&DocId(2)] > b.get(&DocId(2)).copied().unwrap_or(0.0));
    }

    #[test]
    fn filter_plus_ranking_keeps_filter_membership() {
        let e = engine();
        let filter = BoolNode::Term(TermSpec::fielded("author", "Ullman"));
        let ranking = RankNode::term(TermSpec::any("scheduling"));
        let hits = e.search(Some(&filter), Some(&ranking));
        // Both Ullman docs stay in the result even though neither mentions
        // scheduling (score 0) — the filter decides membership.
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.score == Some(0.0)));
    }

    #[test]
    fn search_modes() {
        let e = engine();
        assert!(e.search(None, None).is_empty());
        let f = BoolNode::Term(TermSpec::any("systems"));
        let set = e.search(Some(&f), None);
        assert!(set.iter().all(|h| h.score.is_none()));
        let r = RankNode::term(TermSpec::any("systems"));
        let ranked = e.search(None, Some(&r));
        assert!(ranked.iter().all(|h| h.score.is_some()));
        // Ranked results are sorted descending.
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn vendor_engine_scores_to_1000() {
        let e = Engine::build(
            &corpus(),
            EngineConfig {
                ranking_id: "Vendor-K".to_string(),
                ..EngineConfig::default()
            },
        );
        let r = RankNode::term(TermSpec::any("databases"));
        let ranked = e.eval_ranking(&r);
        assert!((ranked[0].1 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn term_stats_match_paper_shape() {
        let e = engine();
        let spec = TermSpec::fielded("body-of-text", "databases");
        let st = e.term_stats(DocId(0), &spec);
        assert_eq!(st.tf, 2); // "databases" twice in doc 0's body
        assert_eq!(st.df, 2); // docs 0 and 1 contain it in body
        assert!(st.weight > 0.0);
        let none = e.term_stats(DocId(2), &spec);
        assert_eq!(none.tf, 0);
    }

    #[test]
    fn unknown_field_matches_nothing() {
        let e = engine();
        let q = BoolNode::Term(TermSpec::fielded("abstract", "databases"));
        assert!(e.eval_filter(&q).is_empty());
        let st = e.term_stats(DocId(0), &TermSpec::fielded("abstract", "databases"));
        assert_eq!(st.df, 0);
    }

    #[test]
    fn stemming_engine_direct_lookup() {
        let e = Engine::build(
            &corpus(),
            EngineConfig {
                analyzer: AnalyzerConfig {
                    stem: true,
                    ..AnalyzerConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        // Plain query "database" matches docs containing "databases" —
        // the engine stems everything.
        let q = BoolNode::Term(TermSpec::any("database"));
        let docs = e.eval_filter(&q);
        assert!(docs.contains(&DocId(0)) && docs.contains(&DocId(1)));
    }

    #[test]
    fn thesaurus_modifier() {
        let e = Engine::build(
            &corpus(),
            EngineConfig {
                thesaurus: starts_text::Thesaurus::computer_science(),
                ..EngineConfig::default()
            },
        );
        // "dbms" expands to database/databases via the thesaurus.
        let q = BoolNode::Term(TermSpec::any("dbms").with(TermMatch::Thesaurus));
        let docs = e.eval_filter(&q);
        assert!(docs.contains(&DocId(0)));
        assert!(docs.contains(&DocId(1)));
    }

    #[test]
    fn truncation_modifiers() {
        let e = engine();
        let right = BoolNode::Term(TermSpec::any("schedul").with(TermMatch::RightTrunc));
        assert_eq!(e.eval_filter(&right), vec![DocId(2)]);
        let left = BoolNode::Term(TermSpec::any("bases").with(TermMatch::LeftTrunc));
        let docs = e.eval_filter(&left);
        assert!(docs.contains(&DocId(0)));
    }

    #[test]
    fn fast_path_agrees_with_naive_walk() {
        let e = engine();
        let exprs = vec![
            RankNode::List(vec![
                RankNode::weighted(TermSpec::any("distributed"), 0.7),
                RankNode::weighted(TermSpec::any("databases"), 0.3),
            ]),
            RankNode::And(vec![
                RankNode::term(TermSpec::any("distributed")),
                RankNode::term(TermSpec::any("systems")),
            ]),
            RankNode::Or(vec![
                RankNode::term(TermSpec::any("scheduling")),
                RankNode::term(TermSpec::any("databases")),
            ]),
            RankNode::AndNot(
                Box::new(RankNode::term(TermSpec::any("systems"))),
                Box::new(RankNode::term(TermSpec::any("paging"))),
            ),
            RankNode::Prox {
                left: Box::new(RankNode::term(TermSpec::any("distributed"))),
                right: Box::new(RankNode::term(TermSpec::any("databases"))),
                distance: 0,
                ordered: true,
            },
        ];
        for expr in &exprs {
            let naive = e.eval_ranking_naive(expr);
            assert_eq!(e.eval_ranking(expr), naive, "{expr:?}");
            for k in 0..=naive.len() + 1 {
                let bounded = e.eval_ranking_top_k(expr, Some(k));
                assert_eq!(bounded, naive[..k.min(naive.len())], "{expr:?} k={k}");
            }
        }
    }

    #[test]
    fn search_top_k_truncates_every_mode() {
        let e = engine();
        let f = BoolNode::Term(TermSpec::any("systems"));
        let r = RankNode::term(TermSpec::any("databases"));
        for (filter, ranking) in [(Some(&f), None), (None, Some(&r)), (Some(&f), Some(&r))] {
            let full = e.search(filter, ranking);
            for k in 0..=full.len() + 1 {
                let bounded = e.search_top_k(filter, ranking, Some(k));
                assert_eq!(bounded, full[..k.min(full.len())], "k={k}");
            }
        }
    }

    #[test]
    fn cmp_leaves_keep_their_candidates_on_the_fast_path() {
        let e = engine();
        // A comparison leaf inside a ranking expression: candidates come
        // from the stored-value comparison, not the inverted index.
        let expr = RankNode::List(vec![
            RankNode::term(TermSpec::any("databases")),
            RankNode::term(
                TermSpec::fielded("date-last-modified", "1996-01-01").with_cmp(CmpOp::Gt),
            ),
        ]);
        assert_eq!(e.eval_ranking(&expr), e.eval_ranking_naive(&expr));
    }

    #[test]
    fn empty_engine_is_sane() {
        let e = Engine::build(&[], EngineConfig::default());
        assert!(e
            .eval_filter(&BoolNode::Term(TermSpec::any("anything")))
            .is_empty());
        assert!(e
            .eval_ranking(&RankNode::term(TermSpec::any("anything")))
            .is_empty());
    }
}
