//! Boolean filter evaluation: `and`, `or`, `and-not`, `prox`.
//!
//! §4.1.1: "If a source supports filter expressions, it must support all
//! these operators." Note there is deliberately **no** `not` operator —
//! "all queries always have a 'positive' component" — so the engine only
//! implements the binary `and-not`. The proximity operator is the
//! simplified compromise the workshop settled on: "unidirectional word
//! distance" (Example 3: `(t1 prox[3,T] t2)` means t1 followed by t2 with
//! at most three words in between; `T` makes order matter).

use crate::doc::DocId;
use crate::matchspec::TermSpec;

/// A Boolean filter-expression tree at the engine level.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolNode {
    /// A single term match.
    Term(TermSpec),
    /// Both sides must match.
    And(Box<BoolNode>, Box<BoolNode>),
    /// Either side matches.
    Or(Box<BoolNode>, Box<BoolNode>),
    /// Left matches and right does not.
    AndNot(Box<BoolNode>, Box<BoolNode>),
    /// The two terms co-occur within `distance` intervening words.
    /// `ordered` = the paper's `T` flag: left must precede right.
    Prox {
        /// Left term.
        left: TermSpec,
        /// Right term.
        right: TermSpec,
        /// Maximum number of words *between* the two terms.
        distance: u32,
        /// Whether left must appear before right.
        ordered: bool,
    },
}

impl BoolNode {
    /// Convenience constructor: `a and b`.
    pub fn and(a: BoolNode, b: BoolNode) -> Self {
        BoolNode::And(Box::new(a), Box::new(b))
    }
    /// Convenience constructor: `a or b`.
    pub fn or(a: BoolNode, b: BoolNode) -> Self {
        BoolNode::Or(Box::new(a), Box::new(b))
    }
    /// Convenience constructor: `a and-not b`.
    pub fn and_not(a: BoolNode, b: BoolNode) -> Self {
        BoolNode::AndNot(Box::new(a), Box::new(b))
    }

    /// All term specs in the tree (for capability checks and statistics).
    pub fn terms(&self) -> Vec<&TermSpec> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a TermSpec>) {
        match self {
            BoolNode::Term(t) => out.push(t),
            BoolNode::And(a, b) | BoolNode::Or(a, b) | BoolNode::AndNot(a, b) => {
                a.collect_terms(out);
                b.collect_terms(out);
            }
            BoolNode::Prox { left, right, .. } => {
                out.push(left);
                out.push(right);
            }
        }
    }
}

/// Intersect two sorted doc-id lists.
pub(crate) fn intersect(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Union two sorted doc-id lists.
pub(crate) fn union(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `a \ b` over sorted doc-id lists.
pub(crate) fn difference(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &d in a {
        while j < b.len() && b[j] < d {
            j += 1;
        }
        if j >= b.len() || b[j] != d {
            out.push(d);
        }
    }
    out
}

/// Whether two sorted position lists satisfy the prox condition:
/// some pair has at most `distance` words between the occurrences, with
/// left-before-right when `ordered`.
pub(crate) fn prox_match(left: &[u32], right: &[u32], distance: u32, ordered: bool) -> bool {
    // Positions are word indices; "at most d words in between" means
    // |p_r - p_l| - 1 <= d, i.e. |p_r - p_l| <= d + 1 (and p_r != p_l).
    let max_gap = u64::from(distance) + 1;
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let (l, r) = (u64::from(left[i]), u64::from(right[j]));
        if l == r {
            // Same position can only happen for the same token; not a
            // pair of distinct words.
            i += 1;
            continue;
        }
        if l < r {
            if r - l <= max_gap {
                return true;
            }
            i += 1;
        } else {
            if !ordered && l - r <= max_gap {
                return true;
            }
            j += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<DocId> {
        v.iter().map(|&x| DocId(x)).collect()
    }

    #[test]
    fn set_operations() {
        let a = ids(&[1, 3, 5, 7]);
        let b = ids(&[3, 4, 5, 8]);
        assert_eq!(intersect(&a, &b), ids(&[3, 5]));
        assert_eq!(union(&a, &b), ids(&[1, 3, 4, 5, 7, 8]));
        assert_eq!(difference(&a, &b), ids(&[1, 7]));
        assert_eq!(difference(&b, &a), ids(&[4, 8]));
    }

    #[test]
    fn set_operations_edge_cases() {
        let a = ids(&[1, 2]);
        let empty: Vec<DocId> = vec![];
        assert_eq!(intersect(&a, &empty), empty);
        assert_eq!(union(&a, &empty), a);
        assert_eq!(difference(&a, &empty), a);
        assert_eq!(difference(&empty, &a), empty);
        assert_eq!(intersect(&a, &a), a);
        assert_eq!(union(&a, &a), a);
        assert!(difference(&a, &a).is_empty());
    }

    #[test]
    fn prox_example_3_semantics() {
        // (t1 prox[3,T] t2): t1 followed by t2, at most 3 words between.
        assert!(prox_match(&[0], &[4], 3, true)); // 3 words between
        assert!(!prox_match(&[0], &[5], 3, true)); // 4 words between
        assert!(prox_match(&[0], &[1], 3, true)); // adjacent
        assert!(!prox_match(&[4], &[0], 3, true)); // wrong order
        assert!(prox_match(&[4], &[0], 3, false)); // unordered ok
    }

    #[test]
    fn prox_scans_all_pairs() {
        // Early left positions fail but a later one succeeds.
        assert!(prox_match(&[0, 50], &[54], 3, true));
        assert!(!prox_match(&[0, 50], &[100], 3, true));
        // Multiple rights.
        assert!(prox_match(&[10], &[2, 12], 1, true));
    }

    #[test]
    fn prox_distance_zero_means_adjacent() {
        assert!(prox_match(&[0], &[1], 0, true));
        assert!(!prox_match(&[0], &[2], 0, true));
    }

    #[test]
    fn terms_collection() {
        let n = BoolNode::and(
            BoolNode::Term(TermSpec::fielded("author", "Ullman")),
            BoolNode::Prox {
                left: TermSpec::any("distributed"),
                right: TermSpec::any("databases"),
                distance: 3,
                ordered: true,
            },
        );
        let terms = n.terms();
        assert_eq!(terms.len(), 3);
        assert_eq!(terms[0].term, "Ullman");
        assert_eq!(terms[2].term, "databases");
    }
}
