//! The document model: flat, fielded text documents.
//!
//! Section 3 of the paper: "A source is a collection of text documents …
//! We assume that documents are 'flat', in the sense that we do not, for
//! example, allow any nesting of documents. We do not consider non-textual
//! documents or data either." A document is therefore just an ordered list
//! of named text fields, each optionally tagged with its RFC 1766
//! language (the paper's Source-1 holds `en-US` and `es` documents).

use starts_text::LangTag;

/// Identifier of a document inside one source's index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// One named field of a document.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldValue {
    /// Field name, e.g. `title`, `author`, `body-of-text`, `linkage`.
    pub name: String,
    /// The field's text.
    pub text: String,
    /// Language of the text, if known.
    pub lang: Option<LangTag>,
}

/// A flat document: an ordered list of fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    fields: Vec<FieldValue>,
}

impl Document {
    /// An empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// Builder-style: add a field with no language tag.
    pub fn field(mut self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.fields.push(FieldValue {
            name: name.into(),
            text: text.into(),
            lang: None,
        });
        self
    }

    /// Builder-style: add a language-tagged field.
    pub fn field_lang(
        mut self,
        name: impl Into<String>,
        text: impl Into<String>,
        lang: LangTag,
    ) -> Self {
        self.fields.push(FieldValue {
            name: name.into(),
            text: text.into(),
            lang: Some(lang),
        });
        self
    }

    /// The fields in order.
    pub fn fields(&self) -> &[FieldValue] {
        &self.fields
    }

    /// First value of the named field (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|f| f.name.eq_ignore_ascii_case(name))
            .map(|f| f.text.as_str())
    }

    /// Total byte size of all field text — the basis of the `DocSize`
    /// statistic (reported in KBytes per §4.2).
    pub fn byte_size(&self) -> usize {
        self.fields.iter().map(|f| f.text.len()).sum()
    }

    /// Whether the document has any fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let d = Document::new()
            .field("title", "Database Research")
            .field("author", "Jeffrey D. Ullman")
            .field_lang("body-of-text", "datos distribuidos", LangTag::es());
        assert_eq!(d.get("Title"), Some("Database Research"));
        assert_eq!(d.get("AUTHOR"), Some("Jeffrey D. Ullman"));
        assert_eq!(d.get("missing"), None);
        assert_eq!(d.fields().len(), 3);
        assert_eq!(d.fields()[2].lang, Some(LangTag::es()));
    }

    #[test]
    fn byte_size_sums_fields() {
        let d = Document::new().field("a", "12345").field("b", "123");
        assert_eq!(d.byte_size(), 8);
    }

    #[test]
    fn repeated_fields_first_wins_on_get() {
        let d = Document::new()
            .field("author", "First Author")
            .field("author", "Second Author");
        assert_eq!(d.get("author"), Some("First Author"));
        assert_eq!(d.fields().len(), 2);
    }
}
