//! Field schema: interning of field names.
//!
//! The engine is agnostic about field semantics; STARTS' Basic-1 field set
//! (Title, Author, Body-of-text, …) is applied by `starts-source`. Field
//! names are case-insensitive, matching the protocol's attribute
//! conventions. Field id 0 is reserved for the pseudo-field **Any**
//! (§4.1.1: "If no field is specified, `Any` is assumed"): every token is
//! additionally indexed under `Any`, which makes unfielded queries a plain
//! postings lookup.

use std::collections::HashMap;

/// Interned field identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u16);

/// The pseudo-field every token is indexed under.
pub const ANY_FIELD: FieldId = FieldId(0);

/// A field-name interner. Names are folded to lowercase for identity.
#[derive(Debug, Clone)]
pub struct Schema {
    names: Vec<String>,
    by_name: HashMap<String, FieldId>,
}

impl Default for Schema {
    fn default() -> Self {
        let mut s = Schema {
            names: Vec::new(),
            by_name: HashMap::new(),
        };
        let any = s.intern("any");
        debug_assert_eq!(any, ANY_FIELD);
        s
    }
}

impl Schema {
    /// A fresh schema containing only `Any`.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Intern a field name, returning its id (existing or new).
    pub fn intern(&mut self, name: &str) -> FieldId {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        let id = FieldId(
            u16::try_from(self.names.len()).expect("more than 65k fields is not a text schema"),
        );
        self.names.push(key.clone());
        self.by_name.insert(key, id);
        id
    }

    /// Look up an existing field by name.
    pub fn get(&self, name: &str) -> Option<FieldId> {
        if let Some(&id) = self.by_name.get(name) {
            return Some(id);
        }
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// The canonical (lowercase) name of a field.
    pub fn name(&self, id: FieldId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned fields (including `Any`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: `Any` is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All field ids except `Any`.
    pub fn concrete_fields(&self) -> impl Iterator<Item = FieldId> + '_ {
        (1..self.names.len()).map(|i| FieldId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_is_field_zero() {
        let s = Schema::new();
        assert_eq!(s.get("any"), Some(ANY_FIELD));
        assert_eq!(s.get("Any"), Some(ANY_FIELD));
        assert_eq!(s.name(ANY_FIELD), "any");
    }

    #[test]
    fn interning_is_idempotent_and_case_insensitive() {
        let mut s = Schema::new();
        let a = s.intern("Title");
        let b = s.intern("title");
        let c = s.intern("TITLE");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn distinct_fields_get_distinct_ids() {
        let mut s = Schema::new();
        let t = s.intern("title");
        let a = s.intern("author");
        assert_ne!(t, a);
        assert_eq!(s.get("author"), Some(a));
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn concrete_fields_excludes_any() {
        let mut s = Schema::new();
        s.intern("title");
        s.intern("author");
        let ids: Vec<_> = s.concrete_fields().collect();
        assert_eq!(ids.len(), 2);
        assert!(!ids.contains(&ANY_FIELD));
    }
}
