//! Bounded top-k selection and k-way doc-id merging — the building
//! blocks of the query fast path.
//!
//! `AnswerSpec.max_documents` caps every STARTS result list, yet the
//! naive evaluator scored and fully sorted every candidate before
//! truncating. This module provides the two primitives that let the
//! engine do only `O(n log k)` work instead:
//!
//! * [`TopK`] — a bounded min-heap that keeps the best `k`
//!   `(doc, score)` pairs under the engine's result order (score
//!   descending via [`f64::total_cmp`], doc id ascending on ties);
//! * `kway_union` (crate-private) — a single heap-driven merge of many sorted doc-id
//!   streams into one sorted, deduplicated candidate list, replacing
//!   the quadratic repeated two-way `union`.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::atomic::AtomicU64;

use crate::doc::DocId;

/// A scored document inside the selector. Ordered so that "greater"
/// means "better placed in the result list": higher score first, lower
/// doc id on ties. `f64::total_cmp` makes the order total (NaN cannot
/// poison it).
#[derive(Debug, Clone, Copy)]
struct Entry {
    score: f64,
    doc: DocId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.doc.cmp(&self.doc))
    }
}

/// A bounded top-k selector: push any number of `(doc, score)` pairs,
/// keep only the best `k` under (score descending, doc id ascending).
///
/// ```
/// use starts_index::topk::TopK;
/// use starts_index::DocId;
///
/// let mut top = TopK::new(2);
/// for (doc, score) in [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.9)] {
///     top.push(DocId(doc), score);
/// }
/// // Best two, ties broken by doc id.
/// assert_eq!(top.into_sorted_vec(), vec![(DocId(1), 0.9), (DocId(3), 0.9)]);
/// ```
#[derive(Debug)]
pub struct TopK {
    k: usize,
    floor: f64,
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TopK {
    /// An empty selector keeping at most `k` entries.
    pub fn new(k: usize) -> Self {
        TopK::with_floor(k, f64::NEG_INFINITY)
    }

    /// A selector that additionally rejects every score strictly below
    /// `floor` (under [`f64::total_cmp`]), even while fewer than `k`
    /// entries are held — how a `min-doc-score` answer threshold seeds
    /// the selection before the heap fills.
    pub fn with_floor(k: usize, floor: f64) -> Self {
        TopK {
            k,
            floor,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer one scored document.
    pub fn push(&mut self, doc: DocId, score: f64) {
        if self.k == 0 || score.total_cmp(&self.floor) == Ordering::Less {
            return;
        }
        let entry = Entry { score, doc };
        if self.heap.len() < self.k {
            self.heap.push(Reverse(entry));
        } else if let Some(worst) = self.heap.peek() {
            if entry > worst.0 {
                self.heap.pop();
                self.heap.push(Reverse(entry));
            }
        }
    }

    /// The current selection threshold: any future offer scoring
    /// *strictly* below it cannot enter the result (an equal score may
    /// still win its doc-id tie-break). The heap-floor score once `k`
    /// entries are held, else the score floor (`-inf` without one);
    /// `+inf` for `k = 0`, which accepts nothing. This is the θ the
    /// Block-Max-WAND evaluator prunes against: blocks whose score
    /// upper bound falls strictly below it are skipped undecoded.
    pub fn threshold(&self) -> f64 {
        if self.k == 0 {
            f64::INFINITY
        } else if self.heap.len() == self.k {
            self.heap.peek().map_or(self.floor, |worst| worst.0.score)
        } else {
            self.floor
        }
    }

    /// The kept entries, best first — exactly the first `min(k, n)`
    /// elements a full sort of all pushed pairs would have produced.
    pub fn into_sorted_vec(self) -> Vec<(DocId, f64)> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|Reverse(e)| (e.doc, e.score))
            .collect()
    }
}

/// A monotonically rising score threshold shared across concurrently
/// searching shards: an `AtomicU64` holding `f64` bits. Each shard
/// publishes its heap floor as it rises; any shard's Block-Max-WAND
/// loop may then skip a document — or a whole posting block — whose
/// score upper bound is *strictly* below the cell's value, because `k`
/// strictly better documents already exist somewhere in the
/// collection. Only values that compare greater under
/// plain `f64` ordering land in the cell (NaN never does), so the
/// threshold can only tighten.
#[derive(Debug)]
pub struct SharedThreshold(AtomicU64);

impl SharedThreshold {
    /// A cell starting at `initial` (use `f64::NEG_INFINITY` for "no
    /// threshold yet").
    pub fn new(initial: f64) -> Self {
        SharedThreshold(AtomicU64::new(initial.to_bits()))
    }

    /// The current threshold.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Raise the threshold to `value` if it is strictly higher; lower,
    /// equal, or NaN values leave the cell untouched.
    pub fn raise(&self, value: f64) {
        use std::sync::atomic::Ordering::Relaxed;
        let mut cur = self.0.load(Relaxed);
        while value > f64::from_bits(cur) {
            match self
                .0
                .compare_exchange_weak(cur, value.to_bits(), Relaxed, Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Merge per-shard ranked lists — each already sorted by (score
/// descending via [`f64::total_cmp`], doc id ascending) — into one list
/// under the same order, keeping at most `limit` entries when bounded.
///
/// This is the exact-merge step of the sharded fan-out: a bounded k-way
/// heap merge over the list heads, `O(total log s)` for `s` lists, that
/// reproduces precisely the prefix a global sort of the concatenation
/// would have produced.
pub fn merge_ranked(lists: Vec<Vec<(DocId, f64)>>, limit: Option<usize>) -> Vec<(DocId, f64)> {
    let mut lists = lists;
    if lists.len() == 1 {
        let mut only = lists.pop().expect("one list");
        if let Some(k) = limit {
            only.truncate(k);
        }
        return only;
    }
    let total: usize = lists.iter().map(Vec::len).sum();
    let cap = limit.map_or(total, |k| k.min(total));
    let mut heads: Vec<std::vec::IntoIter<(DocId, f64)>> =
        lists.into_iter().map(Vec::into_iter).collect();
    // Max-heap on (Entry, list): pops best-placed entry first; the list
    // index tie-break is unreachable because doc ids are globally unique.
    let mut heap: BinaryHeap<(Entry, usize)> = BinaryHeap::with_capacity(heads.len());
    for (i, stream) in heads.iter_mut().enumerate() {
        if let Some((doc, score)) = stream.next() {
            heap.push((Entry { score, doc }, i));
        }
    }
    let mut out = Vec::with_capacity(cap);
    while out.len() < cap {
        let Some((entry, i)) = heap.pop() else { break };
        out.push((entry.doc, entry.score));
        if let Some((doc, score)) = heads[i].next() {
            heap.push((Entry { score, doc }, i));
        }
    }
    out
}

/// Merge any number of sorted (ascending) doc-id streams into one
/// sorted, deduplicated vector — the candidate set of a ranking
/// expression, built in one pass over all posting lists.
pub(crate) fn kway_union<I>(streams: Vec<I>) -> Vec<DocId>
where
    I: Iterator<Item = DocId>,
{
    let mut streams = streams;
    if streams.len() == 1 {
        let mut out: Vec<DocId> = streams.pop().expect("one stream").collect();
        out.dedup();
        return out;
    }
    let mut heap: BinaryHeap<Reverse<(DocId, usize)>> = BinaryHeap::with_capacity(streams.len());
    for (i, s) in streams.iter_mut().enumerate() {
        if let Some(doc) = s.next() {
            heap.push(Reverse((doc, i)));
        }
    }
    let mut out: Vec<DocId> = Vec::new();
    while let Some(Reverse((doc, i))) = heap.pop() {
        if out.last() != Some(&doc) {
            out.push(doc);
        }
        if let Some(next) = streams[i].next() {
            heap.push(Reverse((next, i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_sort(pairs: &[(u32, f64)], k: usize) -> Vec<(DocId, f64)> {
        let mut v: Vec<(DocId, f64)> = pairs.iter().map(|&(d, s)| (DocId(d), s)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn top_k_matches_full_sort() {
        let pairs = [
            (4, 0.5),
            (1, 0.9),
            (7, 0.5),
            (0, 0.1),
            (3, 0.9),
            (9, 0.0),
            (2, 0.5),
        ];
        for k in 0..=pairs.len() + 1 {
            let mut top = TopK::new(k);
            for &(d, s) in &pairs {
                top.push(DocId(d), s);
            }
            assert_eq!(top.into_sorted_vec(), full_sort(&pairs, k), "k={k}");
        }
    }

    #[test]
    fn top_k_is_total_on_nan() {
        let mut top = TopK::new(2);
        top.push(DocId(0), f64::NAN);
        top.push(DocId(1), 1.0);
        top.push(DocId(2), 2.0);
        // total_cmp sorts positive NaN above every number.
        let kept = top.into_sorted_vec();
        assert_eq!(kept[0].0, DocId(0));
        assert_eq!(kept[1].0, DocId(2));
    }

    #[test]
    fn merge_ranked_matches_global_sort() {
        let a = vec![(DocId(1), 0.9), (DocId(0), 0.5), (DocId(2), 0.5)];
        let b = vec![(DocId(4), 0.9), (DocId(3), 0.7)];
        let c: Vec<(DocId, f64)> = Vec::new();
        let all: Vec<(DocId, f64)> = a.iter().chain(&b).chain(&c).copied().collect();
        for k in 0..=all.len() + 1 {
            let merged = merge_ranked(vec![a.clone(), b.clone(), c.clone()], Some(k));
            let mut expect = all.clone();
            expect.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
            expect.truncate(k);
            assert_eq!(merged, expect, "k={k}");
        }
        let unbounded = merge_ranked(vec![a.clone(), b.clone()], None);
        assert_eq!(unbounded.len(), 5);
        assert_eq!(unbounded[0], (DocId(1), 0.9));
        assert_eq!(unbounded[1], (DocId(4), 0.9));
    }

    #[test]
    fn merge_ranked_single_list_truncates() {
        let a = vec![(DocId(0), 0.9), (DocId(1), 0.1)];
        assert_eq!(
            merge_ranked(vec![a.clone()], Some(1)),
            vec![(DocId(0), 0.9)]
        );
        assert_eq!(merge_ranked(vec![a.clone()], None), a);
        assert!(merge_ranked(Vec::new(), Some(3)).is_empty());
    }

    #[test]
    fn kway_union_merges_and_dedups() {
        let a = vec![DocId(0), DocId(2), DocId(4)];
        let b = vec![DocId(1), DocId(2), DocId(5)];
        let c = vec![DocId(2), DocId(4)];
        let merged = kway_union(vec![a.into_iter(), b.into_iter(), c.into_iter()]);
        assert_eq!(
            merged,
            vec![DocId(0), DocId(1), DocId(2), DocId(4), DocId(5)]
        );
    }

    #[test]
    fn kway_union_edge_cases() {
        assert!(kway_union(Vec::<std::vec::IntoIter<DocId>>::new()).is_empty());
        let single = vec![DocId(3), DocId(3), DocId(7)];
        assert_eq!(
            kway_union(vec![single.into_iter()]),
            vec![DocId(3), DocId(7)]
        );
    }
}
