//! The sample database and sample queries (§4.2).
//!
//! "We are asking sources to at least provide the query results for a
//! given sample document collection and a given set of queries as part
//! of their metadata. … the metasearchers would treat each source as a
//! 'black box' that receives queries and produces document ranks …
//! metasearchers might be able to draw some conclusions on how to
//! calibrate the query results."
//!
//! The sample collection is fixed and public; every source runs the
//! fixed sample queries over it *with its own engine personality* and
//! publishes the results. A metasearcher comparing two sources' sample
//! results on identical documents learns how their score scales relate
//! (experiment X10).

use starts_index::Document;
use starts_proto::query::{parse_ranking, AnswerSpec};
use starts_proto::{Field, Query, QueryResults};

use crate::config::SourceConfig;
use crate::source::Source;

/// The standard sample collection: a small, diverse, fixed document set.
/// Designed so that sample queries produce graded relevance (different
/// tf/df patterns) rather than ties.
pub fn sample_collection() -> Vec<Document> {
    vec![
        Document::new()
            .field("title", "Distributed Database Systems Survey")
            .field("author", "Sample Author One")
            .field(
                "body-of-text",
                "distributed databases replicate data across sites and process \
                 distributed queries with two phase commit",
            )
            .field("linkage", "sample://doc-1"),
        Document::new()
            .field("title", "Information Retrieval Evaluation")
            .field("author", "Sample Author Two")
            .field(
                "body-of-text",
                "retrieval systems rank documents by relevance and evaluation \
                 uses precision and recall measures",
            )
            .field("linkage", "sample://doc-2"),
        Document::new()
            .field("title", "Query Processing in Database Engines")
            .field("author", "Sample Author Three")
            .field(
                "body-of-text",
                "query optimization chooses plans for database queries and \
                 indexes accelerate query processing",
            )
            .field("linkage", "sample://doc-3"),
        Document::new()
            .field("title", "Networking Protocols Overview")
            .field("author", "Sample Author Four")
            .field(
                "body-of-text",
                "protocols define message formats and distributed network \
                 services depend on routing",
            )
            .field("linkage", "sample://doc-4"),
        Document::new()
            .field("title", "Compilers and Interpreters")
            .field("author", "Sample Author Five")
            .field(
                "body-of-text",
                "compilers translate programs and interpreters execute them \
                 directly with dynamic dispatch",
            )
            .field("linkage", "sample://doc-5"),
        Document::new()
            .field("title", "Database Transaction Recovery")
            .field("author", "Sample Author Six")
            .field(
                "body-of-text",
                "transactions guarantee atomicity and databases recover with \
                 logs after failures of databases",
            )
            .field("linkage", "sample://doc-6"),
    ]
}

/// The standard sample queries: single-term, multi-term and weighted
/// ranking expressions over the sample collection.
pub fn sample_queries() -> Vec<Query> {
    let mk = |ranking: &str| Query {
        ranking: Some(parse_ranking(ranking).unwrap()),
        answer: AnswerSpec {
            fields: vec![Field::Title],
            ..AnswerSpec::default()
        },
        ..Query::default()
    };
    vec![
        mk(r#"list((body-of-text "databases"))"#),
        mk(r#"list((body-of-text "distributed") (body-of-text "databases"))"#),
        mk(r#"list((body-of-text "query") (body-of-text "retrieval"))"#),
        mk(r#"list(("protocols" 0.8) ("databases" 0.2))"#),
    ]
}

/// Run the sample queries over the sample collection under `config`'s
/// engine personality — the content a source serves at its
/// `SampleDatabaseResults` URL.
pub fn sample_results(config: &SourceConfig) -> Vec<(Query, QueryResults)> {
    let sample_source = Source::build(
        SourceConfig {
            id: config.id.clone(),
            name: config.name.clone(),
            base_url: config.base_url.clone(),
            ..SourceConfig {
                engine: config.engine.clone(),
                ..SourceConfig::new(&config.id)
            }
        },
        &sample_collection(),
    );
    sample_queries()
        .into_iter()
        .map(|q| {
            let r = sample_source.execute(&q);
            (q, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_collection_is_fixed_and_diverse() {
        let docs = sample_collection();
        assert_eq!(docs.len(), 6);
        // Every doc has the core fields.
        for d in &docs {
            assert!(d.get("title").is_some());
            assert!(d.get("linkage").is_some());
            assert!(d.get("body-of-text").is_some());
        }
    }

    #[test]
    fn sample_results_reflect_personality() {
        // Two sources with different ranking algorithms produce different
        // score scales over the SAME sample data — the §3.2 phenomenon,
        // now observable through the sample results.
        let acme = SourceConfig::new("Acme");
        let mut vendor = SourceConfig::new("Vendor");
        vendor.engine.ranking_id = "Vendor-K".to_string();
        let acme_results = sample_results(&acme);
        let vendor_results = sample_results(&vendor);
        assert_eq!(acme_results.len(), vendor_results.len());
        let acme_top = acme_results[0].1.documents[0].raw_score.unwrap();
        let vendor_top = vendor_results[0].1.documents[0].raw_score.unwrap();
        assert!(acme_top <= 1.0);
        assert!((vendor_top - 1000.0).abs() < 1e-9);
        // But both rank the same documents (same data, related formulas).
        assert_eq!(
            acme_results[0].1.documents[0].linkage(),
            vendor_results[0].1.documents[0].linkage()
        );
    }

    #[test]
    fn every_sample_query_has_results() {
        let results = sample_results(&SourceConfig::new("S"));
        assert_eq!(results.len(), 4);
        for (q, r) in &results {
            assert!(q.ranking.is_some());
            assert!(!r.documents.is_empty(), "no results for {q:?}");
        }
    }
}
