//! Query rewriting: from the query a client *sent* to the query the
//! source *actually executes*.
//!
//! §4.2: "sources are not required to support all of the features of the
//! query language … a source might decide to ignore certain parts of a
//! query that it receives … each source returns the query that it
//! actually processed together with the query results" (Example 7). The
//! same mechanism covers stop words: Example 8's Source-1 "eliminated the
//! term `(body-of-text "distributed")` from the ranking expression.
//! Presumably, the word 'distributed' is a stop word at Source-1."
//!
//! The rewrite policy, applied deterministically:
//!
//! 1. If the source does not support the query part at all
//!    (`QueryPartsSupported`), the whole expression is dropped.
//! 2. A term whose **field** is unsupported is dropped.
//! 3. An unsupported **modifier** is removed from its term (the term
//!    itself survives: the source "may freely interpret" terms).
//! 4. An illegal field–modifier **combination** keeps the field and
//!    drops the offending modifiers.
//! 5. A term whose word is a **stop word** at the source is dropped when
//!    the query (or the engine, if it cannot disable elimination) calls
//!    for stop-word removal.
//! 6. A term in a **language** the source does not hold is dropped.
//! 7. Operators heal around dropped terms: `a and ∅ → a`,
//!    `∅ or b → b`, `a and-not ∅ → a`, `∅ and-not b → ∅`,
//!    `prox(∅, r) → r`.

use starts_proto::metadata::SourceMetadata;
use starts_proto::query::{FilterExpr, QTerm, RankExpr, WeightedTerm};
use starts_proto::{Modifier, Query};
use starts_text::LangTag;

/// The outcome of rewriting one query against one source's capabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Rewritten {
    /// The filter the source will execute (`ActualFilterExpression`).
    pub filter: Option<FilterExpr>,
    /// The ranking expression the source will execute
    /// (`ActualRankingExpression`).
    pub ranking: Option<RankExpr>,
}

/// Context for term-level decisions.
pub(crate) struct RewriteCtx<'a> {
    pub metadata: &'a SourceMetadata,
    /// Whether stop words are eliminated from the query.
    pub drop_stop_words: bool,
    /// The source's stop-word test.
    pub is_stop_word: &'a dyn Fn(&str) -> bool,
    /// Default language of unqualified l-strings.
    pub default_language: LangTag,
}

impl RewriteCtx<'_> {
    /// Rewrite a term: `None` = dropped entirely.
    fn term(&self, t: &QTerm) -> Option<QTerm> {
        // Language check: a source holding only en-US cannot evaluate an
        // `es` term. Unqualified terms use the query default; sources
        // with no declared languages accept everything.
        if !self.metadata.source_languages.is_empty() {
            let lang = t.value.lang_or(&self.default_language);
            let held = self
                .metadata
                .source_languages
                .iter()
                .any(|sl| lang.matches(sl) || sl.matches(lang));
            if !held {
                return None;
            }
        }
        // Field support.
        let field = t.effective_field();
        if !self.metadata.supports_field(&field) {
            return None;
        }
        // Stop-word elimination.
        if self.drop_stop_words && (self.is_stop_word)(&t.value.text) {
            return None;
        }
        // Modifier support, then combination legality.
        let supported: Vec<Modifier> = t
            .modifiers
            .iter()
            .filter(|m| self.metadata.supports_modifier(m))
            .cloned()
            .collect();
        let legal: Vec<Modifier> = if self.metadata.combination_legal(&field, &supported) {
            supported
        } else {
            // Keep only modifiers individually legal with the field.
            supported
                .into_iter()
                .filter(|m| {
                    self.metadata
                        .combination_legal(&field, std::slice::from_ref(m))
                })
                .collect()
        };
        Some(QTerm {
            field: t.field.clone(),
            modifiers: legal,
            value: t.value.clone(),
        })
    }

    fn filter(&self, e: &FilterExpr) -> Option<FilterExpr> {
        match e {
            FilterExpr::Term(t) => self.term(t).map(FilterExpr::Term),
            FilterExpr::And(a, b) => heal2(self.filter(a), self.filter(b), FilterExpr::and, true),
            FilterExpr::Or(a, b) => heal2(self.filter(a), self.filter(b), FilterExpr::or, true),
            FilterExpr::AndNot(a, b) => match (self.filter(a), self.filter(b)) {
                (Some(a), Some(b)) => Some(FilterExpr::and_not(a, b)),
                // Without the positive side, there is no query.
                (None, _) => None,
                (Some(a), None) => Some(a),
            },
            FilterExpr::Prox(l, spec, r) => match (self.term(l), self.term(r)) {
                (Some(l), Some(r)) => Some(FilterExpr::Prox(l, *spec, r)),
                (Some(t), None) | (None, Some(t)) => Some(FilterExpr::Term(t)),
                (None, None) => None,
            },
        }
    }

    fn weighted(&self, t: &WeightedTerm) -> Option<WeightedTerm> {
        self.term(&t.term).map(|term| WeightedTerm {
            term,
            weight: t.weight,
        })
    }

    fn ranking(&self, e: &RankExpr) -> Option<RankExpr> {
        match e {
            RankExpr::Term(t) => self.weighted(t).map(RankExpr::Term),
            RankExpr::List(items) => {
                let kept: Vec<RankExpr> = items.iter().filter_map(|i| self.ranking(i)).collect();
                if kept.is_empty() {
                    None
                } else if kept.len() == 1 {
                    Some(kept.into_iter().next().expect("len checked"))
                } else {
                    Some(RankExpr::List(kept))
                }
            }
            RankExpr::And(a, b) => heal2(
                self.ranking(a),
                self.ranking(b),
                |a, b| RankExpr::And(Box::new(a), Box::new(b)),
                true,
            ),
            RankExpr::Or(a, b) => heal2(
                self.ranking(a),
                self.ranking(b),
                |a, b| RankExpr::Or(Box::new(a), Box::new(b)),
                true,
            ),
            RankExpr::AndNot(a, b) => match (self.ranking(a), self.ranking(b)) {
                (Some(a), Some(b)) => Some(RankExpr::AndNot(Box::new(a), Box::new(b))),
                (None, _) => None,
                (Some(a), None) => Some(a),
            },
            RankExpr::Prox(l, spec, r) => match (self.weighted(l), self.weighted(r)) {
                (Some(l), Some(r)) => Some(RankExpr::Prox(l, *spec, r)),
                (Some(t), None) | (None, Some(t)) => Some(RankExpr::Term(t)),
                (None, None) => None,
            },
        }
    }
}

fn heal2<T>(a: Option<T>, b: Option<T>, combine: impl FnOnce(T, T) -> T, heal: bool) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(combine(a, b)),
        (Some(x), None) | (None, Some(x)) if heal => Some(x),
        _ => None,
    }
}

/// Rewrite a query against a source's declared capabilities.
///
/// `is_stop_word` is the source's own stop list (the engine's), and
/// `can_disable_stop_words` its `TurnOffStopWords` capability.
pub fn rewrite_query(
    query: &Query,
    metadata: &SourceMetadata,
    is_stop_word: &dyn Fn(&str) -> bool,
    can_disable_stop_words: bool,
) -> Rewritten {
    let drop_stop_words = if can_disable_stop_words {
        query.drop_stop_words
    } else {
        true
    };
    let ctx = RewriteCtx {
        metadata,
        drop_stop_words,
        is_stop_word,
        default_language: query.default_language.clone(),
    };
    let filter = if metadata.query_parts_supported.supports_filter() {
        query.filter.as_ref().and_then(|f| ctx.filter(f))
    } else {
        None
    };
    let ranking = if metadata.query_parts_supported.supports_ranking() {
        query.ranking.as_ref().and_then(|r| ctx.ranking(r))
    } else {
        None
    };
    Rewritten { filter, ranking }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_proto::attrs::CmpOp;
    use starts_proto::metadata::QueryParts;
    use starts_proto::query::{parse_filter, parse_ranking, print_filter, print_ranking};
    use starts_proto::Field;

    fn meta() -> SourceMetadata {
        SourceMetadata {
            source_id: "S".to_string(),
            fields_supported: vec![(Field::Author, vec![]), (Field::BodyOfText, vec![])],
            modifiers_supported: vec![(Modifier::Stem, vec![]), (Modifier::Cmp(CmpOp::Eq), vec![])],
            ..SourceMetadata::default()
        }
    }

    fn no_stops(_: &str) -> bool {
        false
    }

    fn rewrite(q: &Query, m: &SourceMetadata) -> Rewritten {
        rewrite_query(q, m, &no_stops, true)
    }

    #[test]
    fn example7_source_without_ranking_drops_it() {
        let q = Query {
            filter: Some(
                parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap(),
            ),
            ranking: Some(
                parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#)
                    .unwrap(),
            ),
            ..Query::default()
        };
        let m = SourceMetadata {
            query_parts_supported: QueryParts::Filter,
            ..meta()
        };
        let r = rewrite(&q, &m);
        assert!(r.ranking.is_none());
        assert_eq!(
            print_filter(&r.filter.unwrap()),
            r#"((author "Ullman") and (title stem "databases"))"#
        );
    }

    #[test]
    fn example8_stop_word_removed_from_ranking() {
        // At Source-1 "distributed" is a stop word: the actual ranking
        // expression becomes (body-of-text "databases").
        let q = Query {
            ranking: Some(
                parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#)
                    .unwrap(),
            ),
            drop_stop_words: true,
            ..Query::default()
        };
        let stop = |w: &str| w == "distributed";
        let r = rewrite_query(&q, &meta(), &stop, true);
        assert_eq!(
            print_ranking(&r.ranking.unwrap()),
            r#"(body-of-text "databases")"#
        );
    }

    #[test]
    fn stop_words_kept_when_disabled_and_supported() {
        let q = Query {
            ranking: Some(parse_ranking(r#"list("the" "who")"#).unwrap()),
            drop_stop_words: false,
            ..Query::default()
        };
        let stop = |w: &str| w == "the" || w == "who";
        // Source honours TurnOffStopWords.
        let r = rewrite_query(&q, &meta(), &stop, true);
        assert!(r.ranking.is_some());
        // Source that cannot disable elimination drops both terms.
        let r = rewrite_query(&q, &meta(), &stop, false);
        assert!(r.ranking.is_none());
    }

    #[test]
    fn unsupported_field_drops_term_and_heals_and() {
        // `abstract` is not supported; the AND heals to the author term.
        let q = Query::filter_only(
            parse_filter(r#"((author "Ullman") and (abstract "databases"))"#).unwrap(),
        );
        let r = rewrite(&q, &meta());
        assert_eq!(print_filter(&r.filter.unwrap()), r#"(author "Ullman")"#);
    }

    #[test]
    fn unsupported_modifier_stripped_from_term() {
        // Phonetic is not supported: the term survives without it.
        let q = Query::filter_only(parse_filter(r#"(author phonetic "Ullman")"#).unwrap());
        let r = rewrite(&q, &meta());
        assert_eq!(print_filter(&r.filter.unwrap()), r#"(author "Ullman")"#);
    }

    #[test]
    fn illegal_combination_strips_modifier() {
        use starts_proto::metadata::FieldModCombo;
        // stem is only legal on body-of-text, not author.
        let m = SourceMetadata {
            field_modifier_combinations: vec![FieldModCombo {
                field: Field::BodyOfText,
                modifiers: vec![Modifier::Stem],
            }],
            ..meta()
        };
        let q = Query::filter_only(parse_filter(r#"(author stem "Ullman")"#).unwrap());
        let r = rewrite(&q, &m);
        assert_eq!(print_filter(&r.filter.unwrap()), r#"(author "Ullman")"#);
        // On body-of-text the modifier is kept.
        let q = Query::filter_only(parse_filter(r#"(body-of-text stem "databases")"#).unwrap());
        let r = rewrite(&q, &m);
        assert_eq!(
            print_filter(&r.filter.unwrap()),
            r#"(body-of-text stem "databases")"#
        );
    }

    #[test]
    fn and_not_healing_rules() {
        // Positive side dropped → whole expression gone.
        let q =
            Query::filter_only(parse_filter(r#"((abstract "x") and-not (author "y"))"#).unwrap());
        assert_eq!(rewrite(&q, &meta()).filter, None);
        // Negative side dropped → positive side alone.
        let q =
            Query::filter_only(parse_filter(r#"((author "x") and-not (abstract "y"))"#).unwrap());
        assert_eq!(
            print_filter(&rewrite(&q, &meta()).filter.unwrap()),
            r#"(author "x")"#
        );
    }

    #[test]
    fn prox_degrades_to_surviving_term() {
        let q =
            Query::filter_only(parse_filter(r#"((author "x") prox[2,T] (abstract "y"))"#).unwrap());
        assert_eq!(
            print_filter(&rewrite(&q, &meta()).filter.unwrap()),
            r#"(author "x")"#
        );
    }

    #[test]
    fn language_mismatch_drops_term() {
        let m = SourceMetadata {
            source_languages: vec![LangTag::en_us()],
            ..meta()
        };
        let q = Query::filter_only(
            parse_filter(r#"((author "Ullman") or (author [es "datos"]))"#).unwrap(),
        );
        let r = rewrite(&q, &m);
        assert_eq!(print_filter(&r.filter.unwrap()), r#"(author "Ullman")"#);
        // A bilingual source keeps both.
        let m2 = SourceMetadata {
            source_languages: vec![LangTag::en_us(), LangTag::es()],
            ..meta()
        };
        let r = rewrite(&q, &m2);
        assert!(matches!(r.filter, Some(FilterExpr::Or(_, _))));
    }

    #[test]
    fn singleton_list_collapses() {
        let q = Query {
            ranking: Some(parse_ranking(r#"list((abstract "x") (author "y"))"#).unwrap()),
            ..Query::default()
        };
        let r = rewrite(&q, &meta());
        assert_eq!(print_ranking(&r.ranking.unwrap()), r#"(author "y")"#);
    }

    #[test]
    fn required_fields_always_pass() {
        let q = Query::filter_only(
            parse_filter(r#"((title "x") and (date-last-modified > "1996-01-01"))"#).unwrap(),
        );
        let r = rewrite(&q, &meta());
        // Title passes (required); the > modifier is Cmp, supported.
        let printed = print_filter(&r.filter.unwrap());
        assert!(printed.contains("title"), "{printed}");
        assert!(printed.contains('>'), "{printed}");
    }

    #[test]
    fn everything_unsupported_yields_empty_query() {
        let m = SourceMetadata {
            query_parts_supported: QueryParts::Ranking,
            ..meta()
        };
        let q = Query::filter_only(parse_filter(r#"(title "x")"#).unwrap());
        let r = rewrite(&q, &m);
        assert!(r.filter.is_none() && r.ranking.is_none());
    }
}
