//! Resources: groups of sources with cross-source query fan-out and
//! duplicate elimination (§3, Figure 1; §4.3.3, Example 12).
//!
//! "To query multiple sources within the same resource, the metasearcher
//! issues the query to one of the sources at the resource, specifying
//! the other 'local' sources where to also evaluate the query. This way,
//! the resource can eliminate duplicate documents from the query result,
//! for example, which would be difficult for the metasearcher to do if
//! it queried all of the sources independently."

use std::collections::HashMap;

use starts_proto::{Query, QueryResults, Resource, ResultDocument};

use crate::source::Source;

/// A resource hosting several sources (e.g. the paper's Dialog example).
pub struct ResourceHost {
    sources: Vec<Source>,
}

impl ResourceHost {
    /// Group sources into a resource.
    pub fn new(sources: Vec<Source>) -> Self {
        ResourceHost { sources }
    }

    /// The sources.
    pub fn sources(&self) -> &[Source] {
        &self.sources
    }

    /// Find a member source by id.
    pub fn source(&self, id: &str) -> Option<&Source> {
        self.sources.iter().find(|s| s.id() == id)
    }

    /// The exported `@SResource` descriptor: source ids and metadata
    /// URLs (Example 12).
    pub fn descriptor(&self) -> Resource {
        Resource::new(self.sources.iter().map(|s| {
            (
                s.id().to_string(),
                format!("{}/metadata", s.config().base_url),
            )
        }))
    }

    /// Execute a query submitted to member `entry_id`, fanning out to the
    /// query's `AdditionalSources` that are members of this resource, and
    /// eliminating duplicates (by Linkage URL) from the merged result.
    ///
    /// Returns `None` if `entry_id` is not a member.
    pub fn execute_at(&self, entry_id: &str, query: &Query) -> Option<QueryResults> {
        self.execute_at_traced(entry_id, query, None)
    }

    /// [`ResourceHost::execute_at`] with observability: member
    /// executions record phase timings and rewrite counters, and the
    /// resource-level duplicate elimination bumps
    /// `resource.duplicates_merged`.
    pub fn execute_at_traced(
        &self,
        entry_id: &str,
        query: &Query,
        obs: Option<&starts_obs::Registry>,
    ) -> Option<QueryResults> {
        let entry = self.source(entry_id)?;
        let mut participating: Vec<&Source> = vec![entry];
        for extra in &query.additional_sources {
            if extra != entry_id {
                if let Some(s) = self.source(extra) {
                    participating.push(s);
                }
            }
        }
        let mut merged = QueryResults {
            sources: participating.iter().map(|s| s.id().to_string()).collect(),
            actual_filter: None,
            actual_ranking: None,
            documents: Vec::new(),
            trace: query.trace.clone(),
            profile: None,
        };
        // Deduplicate by linkage; documents without a linkage cannot be
        // identified across sources and pass through unmerged.
        let mut by_linkage: HashMap<String, usize> = HashMap::new();
        let mut duplicates = 0u64;
        for source in &participating {
            let result = source.execute_traced(query, obs);
            if source.id() == entry_id {
                // The entry source's actual query stands for the result
                // (members share the resource's conventions).
                merged.actual_filter = result.actual_filter.clone();
                merged.actual_ranking = result.actual_ranking.clone();
            }
            for doc in result.documents {
                match doc.linkage().map(str::to_string) {
                    Some(url) => match by_linkage.get(&url) {
                        Some(&i) => {
                            duplicates += 1;
                            merge_duplicate(&mut merged.documents[i], doc);
                        }
                        None => {
                            by_linkage.insert(url, merged.documents.len());
                            merged.documents.push(doc);
                        }
                    },
                    None => merged.documents.push(doc),
                }
            }
        }
        // Re-sort the merged list by raw score (descending; unscored
        // documents last) and re-apply the result cap.
        merged.documents.sort_by(|a, b| {
            b.raw_score
                .partial_cmp(&a.raw_score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        merged.documents.truncate(query.answer.max_documents);
        if let (Some(reg), true) = (obs, duplicates > 0) {
            reg.counter_with("resource.duplicates_merged", &[("entry", entry_id)])
                .add(duplicates);
        }
        Some(merged)
    }
}

/// Fold a duplicate into the kept document: union the source lists, keep
/// the higher raw score and the richer statistics.
fn merge_duplicate(kept: &mut ResultDocument, dup: ResultDocument) {
    for s in dup.sources {
        if !kept.sources.contains(&s) {
            kept.sources.push(s);
        }
    }
    if dup.raw_score > kept.raw_score {
        kept.raw_score = dup.raw_score;
    }
    if kept.term_stats.is_empty() {
        kept.term_stats = dup.term_stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SourceConfig;
    use starts_index::Document;
    use starts_proto::query::parse_ranking;
    use starts_proto::AnswerSpec;

    fn doc(title: &str, body: &str, url: &str) -> Document {
        Document::new()
            .field("title", title)
            .field("body-of-text", body)
            .field("linkage", url)
    }

    fn resource() -> ResourceHost {
        // Source-1 and Source-2 share one document (the duplicate), like
        // overlapping collections inside Dialog.
        let s1 = Source::build(
            SourceConfig::new("Source-1"),
            &[
                doc("Shared Paper", "databases for everyone", "http://x/shared"),
                doc("Only One", "databases here too", "http://x/one"),
            ],
        );
        let s2 = Source::build(
            SourceConfig::new("Source-2"),
            &[
                doc("Shared Paper", "databases for everyone", "http://x/shared"),
                doc("Only Two", "databases elsewhere", "http://x/two"),
            ],
        );
        ResourceHost::new(vec![s1, s2])
    }

    fn query_with_additional(additional: &[&str]) -> Query {
        Query {
            ranking: Some(parse_ranking(r#"list((body-of-text "databases"))"#).unwrap()),
            additional_sources: additional.iter().map(|s| s.to_string()).collect(),
            answer: AnswerSpec::default(),
            ..Query::default()
        }
    }

    #[test]
    fn descriptor_lists_members() {
        let r = resource();
        let d = r.descriptor();
        let ids: Vec<&str> = d.source_ids().collect();
        assert_eq!(ids, vec!["Source-1", "Source-2"]);
        assert_eq!(
            d.metadata_url("Source-1"),
            Some("starts://source-1/metadata")
        );
    }

    #[test]
    fn single_source_query() {
        let r = resource();
        let result = r
            .execute_at("Source-1", &query_with_additional(&[]))
            .unwrap();
        assert_eq!(result.sources, vec!["Source-1".to_string()]);
        assert_eq!(result.documents.len(), 2);
    }

    #[test]
    fn figure1_fan_out_with_duplicate_elimination() {
        let r = resource();
        let result = r
            .execute_at("Source-1", &query_with_additional(&["Source-2"]))
            .unwrap();
        assert_eq!(
            result.sources,
            vec!["Source-1".to_string(), "Source-2".to_string()]
        );
        // 2 + 2 documents, one shared → 3 after dedup.
        assert_eq!(result.documents.len(), 3);
        let shared = result
            .documents
            .iter()
            .find(|d| d.linkage() == Some("http://x/shared"))
            .unwrap();
        assert_eq!(shared.sources.len(), 2, "duplicate must list both sources");
    }

    #[test]
    fn unknown_entry_source() {
        let r = resource();
        assert!(r
            .execute_at("Source-9", &query_with_additional(&[]))
            .is_none());
    }

    #[test]
    fn unknown_additional_sources_are_ignored() {
        let r = resource();
        let result = r
            .execute_at("Source-1", &query_with_additional(&["Nope", "Source-2"]))
            .unwrap();
        assert_eq!(result.sources.len(), 2);
    }

    #[test]
    fn merged_results_respect_max_documents() {
        let r = resource();
        let mut q = query_with_additional(&["Source-2"]);
        q.answer.max_documents = 2;
        let result = r.execute_at("Source-1", &q).unwrap();
        assert_eq!(result.documents.len(), 2);
        // Sorted by score descending.
        assert!(result.documents[0].raw_score >= result.documents[1].raw_score);
    }
}
