//! Per-source configuration: the declared capabilities plus the engine
//! personality behind them.

use starts_index::EngineConfig;
use starts_proto::metadata::{FieldModCombo, QueryParts};
use starts_proto::{Field, Modifier};
use starts_text::LangTag;

/// Everything that defines one source's observable identity.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// The source id (e.g. `Source-1`).
    pub id: String,
    /// Human-readable name (`source-name` metadata).
    pub name: String,
    /// The engine personality: tokenizer, case mode, stemming, stop
    /// words, ranking algorithm, fuzzy-op behaviour, thesaurus.
    pub engine: EngineConfig,
    /// Optional Basic-1 fields the source supports for querying, beyond
    /// the required ones (Title, Date/time-last-modified, Any, Linkage).
    pub supported_fields: Vec<Field>,
    /// Modifiers the source supports.
    pub supported_modifiers: Vec<Modifier>,
    /// Legal field–modifier combinations; empty = any supported field
    /// with any supported modifier.
    pub field_modifier_combinations: Vec<FieldModCombo>,
    /// Which query parts the source accepts (`R`, `F` or `RF`).
    pub query_parts: QueryParts,
    /// Languages of the source's documents.
    pub languages: Vec<LangTag>,
    /// Base URL for the source's endpoints (query, summary, sample).
    pub base_url: String,
    /// Whether the exported content summary qualifies words with their
    /// field ("if possible … accompanied by their corresponding field
    /// information").
    pub summary_fields_qualified: bool,
    /// Cap on exported summary terms per section (0 = unlimited). Real
    /// sources truncated their summaries; the compression experiment
    /// (X9) sweeps this.
    pub summary_max_terms: usize,
}

impl SourceConfig {
    /// A source with the given id and an otherwise default personality
    /// (Acme-1 cosine ranking, alnum tokenizer, minimal English stops,
    /// everything Basic-1 supported).
    pub fn new(id: impl Into<String>) -> Self {
        let id = id.into();
        SourceConfig {
            name: id.clone(),
            base_url: format!("starts://{}", id.to_ascii_lowercase()),
            id,
            engine: EngineConfig::default(),
            supported_fields: vec![Field::Author, Field::BodyOfText, Field::Languages],
            supported_modifiers: vec![
                Modifier::Cmp(starts_proto::attrs::CmpOp::Eq),
                Modifier::Stem,
                Modifier::Phonetic,
                Modifier::RightTruncation,
                Modifier::LeftTruncation,
            ],
            field_modifier_combinations: Vec::new(),
            query_parts: QueryParts::Both,
            languages: vec![LangTag::en_us()],
            summary_fields_qualified: true,
            summary_max_terms: 0,
        }
    }

    /// URL where queries are submitted (`linkage` metadata).
    pub fn query_url(&self) -> String {
        format!("{}/query", self.base_url)
    }

    /// URL of the content summary (`content-summary-linkage`).
    pub fn summary_url(&self) -> String {
        format!("{}/content-summary", self.base_url)
    }

    /// URL of the sample-database results (`SampleDatabaseResults`).
    pub fn sample_url(&self) -> String {
        format!("{}/sample-results", self.base_url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_permissive() {
        let c = SourceConfig::new("Source-1");
        assert_eq!(c.id, "Source-1");
        assert!(c.query_parts.supports_filter());
        assert!(c.query_parts.supports_ranking());
        assert!(c.supported_fields.contains(&Field::Author));
        assert_eq!(c.query_url(), "starts://source-1/query");
        assert_eq!(c.summary_url(), "starts://source-1/content-summary");
        assert_eq!(c.sample_url(), "starts://source-1/sample-results");
    }
}
