//! A fleet of deliberately heterogeneous vendor personalities.
//!
//! The STARTS effort involved Fulcrum, Infoseek, PLS, Verity, WAIS,
//! Microsoft Network, Excite, and others — engines with different query
//! models, tokenizers, stop lists and secret rankers. These constructors
//! simulate that diversity: each returns a [`SourceConfig`] whose every
//! capability axis differs from the others, so that metasearch
//! experiments face the real interoperability problem of §3.
//!
//! | vendor       | ranking    | query parts | tokenizer | stems | stops          | case | fuzzy ops |
//! |--------------|------------|-------------|-----------|-------|----------------|------|-----------|
//! | `acme`       | Acme-1     | RF          | Acme-1    | no    | minimal (off ok)| fold | yes      |
//! | `bolt`       | Vendor-K   | RF          | Acme-2    | no    | aggressive (forced) | fold | no  |
//! | `okapi`      | Okapi-1    | RF          | Plain-1   | yes   | none           | fold | yes       |
//! | `glimpse`    | —          | F only      | Acme-1    | no    | none           | keep | —         |
//! | `rankonly`   | Plain-1    | R only      | Acme-1    | no    | minimal        | fold | no        |

use starts_index::{EngineConfig, PositionsMode, PruneMode, ShardPolicy};
use starts_proto::attrs::CmpOp;
use starts_proto::metadata::QueryParts;
use starts_proto::{Field, Modifier};
use starts_text::{AnalyzerConfig, CaseMode, StopWordList, Thesaurus, TokenizerKind};

use crate::config::SourceConfig;

fn all_optional_fields() -> Vec<Field> {
    vec![
        Field::Author,
        Field::BodyOfText,
        Field::Languages,
        Field::LinkageType,
        Field::CrossReferenceLinkage,
    ]
}

/// `Acme`: the well-behaved reference vendor. Cosine tf–idf in `[0,1]`,
/// standard tokenizer, minimal stop list that can be turned off, full
/// Basic-1 modifier support, fuzzy ranking operators.
pub fn acme(id: &str) -> SourceConfig {
    let mut c = SourceConfig::new(id);
    c.engine = EngineConfig {
        analyzer: AnalyzerConfig {
            tokenizer: TokenizerKind::AlnumRuns,
            case: CaseMode::Insensitive,
            stem: false,
            stop_words: StopWordList::english_minimal(),
            can_disable_stop_words: true,
        },
        ranking_id: "Acme-1".to_string(),
        fuzzy_ranking_ops: true,
        thesaurus: Thesaurus::empty(),
        shards: 0,
        prune: PruneMode::Auto,
        positions: PositionsMode::All,
        shard_policy: ShardPolicy::Adaptive,
    };
    c.supported_fields = all_optional_fields();
    c.supported_modifiers = vec![
        Modifier::Cmp(CmpOp::Eq),
        Modifier::Stem,
        Modifier::Phonetic,
        Modifier::RightTruncation,
        Modifier::LeftTruncation,
    ];
    c
}

/// `Bolt`: the web-scale vendor whose "top document always has a score
/// of 1,000" (§3.2). Aggressive stop list it cannot disable, joiner
/// tokenizer ("Z39.50" is one token), ignores Boolean-like ranking
/// operators (flattens to `list`), supports almost no modifiers.
pub fn bolt(id: &str) -> SourceConfig {
    let mut c = SourceConfig::new(id);
    c.engine = EngineConfig {
        analyzer: AnalyzerConfig {
            tokenizer: TokenizerKind::WordJoiners,
            case: CaseMode::Insensitive,
            stem: false,
            stop_words: StopWordList::english_aggressive(),
            can_disable_stop_words: false,
        },
        ranking_id: "Vendor-K".to_string(),
        fuzzy_ranking_ops: false,
        thesaurus: Thesaurus::empty(),
        shards: 0,
        prune: PruneMode::Auto,
        positions: PositionsMode::All,
        shard_policy: ShardPolicy::Adaptive,
    };
    c.supported_fields = vec![Field::Author, Field::BodyOfText];
    c.supported_modifiers = vec![Modifier::RightTruncation];
    c
}

/// `Okapi`: the research-grade vendor. BM25 (unbounded scores), stems
/// its whole index, whitespace tokenizer, no stop words, ships a CS
/// thesaurus, supports every Basic-1 modifier.
pub fn okapi(id: &str) -> SourceConfig {
    let mut c = SourceConfig::new(id);
    c.engine = EngineConfig {
        analyzer: AnalyzerConfig {
            tokenizer: TokenizerKind::Whitespace,
            case: CaseMode::Insensitive,
            stem: true,
            stop_words: StopWordList::none(),
            can_disable_stop_words: true,
        },
        ranking_id: "Okapi-1".to_string(),
        fuzzy_ranking_ops: true,
        thesaurus: Thesaurus::computer_science(),
        shards: 0,
        prune: PruneMode::Auto,
        positions: PositionsMode::All,
        shard_policy: ShardPolicy::Adaptive,
    };
    c.supported_fields = all_optional_fields();
    // Okapi is the research engine: it also honours the two STARTS-new
    // fields — relevance feedback (Document-text) and native-query
    // pass-through (Free-form-text, in PQF).
    c.supported_fields.push(Field::DocumentText);
    c.supported_fields.push(Field::FreeFormText);
    c.supported_modifiers = vec![
        Modifier::Cmp(CmpOp::Eq),
        Modifier::Stem,
        Modifier::Phonetic,
        Modifier::Thesaurus,
        Modifier::RightTruncation,
        Modifier::LeftTruncation,
        Modifier::CaseSensitive,
    ];
    c
}

/// `Glimpse`: the paper's example of a pure Boolean engine ("Glimpse
/// only supports filter expressions"). Case-preserving index, supports
/// comparisons and truncation, no ranking at all.
pub fn glimpse(id: &str) -> SourceConfig {
    let mut c = SourceConfig::new(id);
    c.engine = EngineConfig {
        analyzer: AnalyzerConfig {
            tokenizer: TokenizerKind::AlnumRuns,
            case: CaseMode::Sensitive,
            stem: false,
            stop_words: StopWordList::none(),
            can_disable_stop_words: true,
        },
        // Never used (filter-only), but the engine requires one.
        ranking_id: "Plain-1".to_string(),
        fuzzy_ranking_ops: false,
        thesaurus: Thesaurus::empty(),
        shards: 0,
        prune: PruneMode::Auto,
        positions: PositionsMode::All,
        shard_policy: ShardPolicy::Adaptive,
    };
    c.query_parts = QueryParts::Filter;
    c.supported_fields = all_optional_fields();
    c.supported_modifiers = vec![
        Modifier::Cmp(CmpOp::Eq),
        Modifier::CaseSensitive,
        Modifier::RightTruncation,
        Modifier::LeftTruncation,
    ];
    c
}

/// `RankOnly`: a consumer search site that accepts only flat ranked
/// queries and scores by raw term frequency (unbounded integers).
pub fn rankonly(id: &str) -> SourceConfig {
    let mut c = SourceConfig::new(id);
    c.engine = EngineConfig {
        analyzer: AnalyzerConfig {
            tokenizer: TokenizerKind::AlnumRuns,
            case: CaseMode::Insensitive,
            stem: false,
            stop_words: StopWordList::english_minimal(),
            can_disable_stop_words: true,
        },
        ranking_id: "Plain-1".to_string(),
        fuzzy_ranking_ops: false,
        thesaurus: Thesaurus::empty(),
        shards: 0,
        prune: PruneMode::Auto,
        // Ranking-only and flattens operators to `list`: no `prox` ever
        // consults positions, so the positional store is dropped and
        // search runs entirely off the block postings.
        positions: PositionsMode::None,
        shard_policy: ShardPolicy::Adaptive,
    };
    c.query_parts = QueryParts::Ranking;
    c.supported_fields = vec![Field::BodyOfText];
    c.supported_modifiers = vec![];
    c
}

/// The whole fleet, ids `Acme-Src`, `Bolt-Src`, `Okapi-Src`,
/// `Glimpse-Src`, `RankOnly-Src`.
pub fn fleet() -> Vec<SourceConfig> {
    vec![
        acme("Acme-Src"),
        bolt("Bolt-Src"),
        okapi("Okapi-Src"),
        glimpse("Glimpse-Src"),
        rankonly("RankOnly-Src"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use starts_index::Document;
    use starts_proto::query::{parse_filter, parse_ranking};
    use starts_proto::Query;

    fn docs() -> Vec<Document> {
        vec![
            Document::new()
                .field("title", "Distributed Databases")
                .field("author", "Ullman")
                .field("body-of-text", "distributed databases and Z39.50 systems")
                .field("linkage", "http://x/1"),
            Document::new()
                .field("title", "The Who Anthology")
                .field("author", "Townshend")
                .field("body-of-text", "the who rock band history")
                .field("linkage", "http://x/2"),
        ]
    }

    #[test]
    fn fleet_is_heterogeneous() {
        let fleet = fleet();
        assert_eq!(fleet.len(), 5);
        let sources: Vec<Source> = fleet
            .into_iter()
            .map(|c| Source::build(c, &docs()))
            .collect();
        // All distinct ranking ids among ranking-capable sources.
        let mut ids: Vec<&str> = sources
            .iter()
            .filter(|s| s.metadata().query_parts_supported.supports_ranking())
            .map(|s| s.metadata().ranking_algorithm_id.as_str())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert!(ids.len() >= 3, "rankers not diverse: {ids:?}");
        // Score ranges genuinely differ (the §3.2 problem).
        let ranges: Vec<(f64, f64)> = sources.iter().map(|s| s.metadata().score_range).collect();
        assert!(ranges.contains(&(0.0, 1.0)));
        assert!(ranges.contains(&(0.0, 1000.0)));
        assert!(ranges.iter().any(|(_, max)| max.is_infinite()));
    }

    #[test]
    fn glimpse_ignores_ranking() {
        let s = Source::build(glimpse("G"), &docs());
        let q = Query {
            filter: Some(parse_filter(r#"(author "Ullman")"#).unwrap()),
            ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
            ..Query::default()
        };
        let r = s.execute(&q);
        assert!(r.actual_ranking.is_none(), "Glimpse must drop ranking");
        assert!(r.actual_filter.is_some());
        assert_eq!(r.documents.len(), 1);
        assert_eq!(r.documents[0].raw_score, None);
    }

    #[test]
    fn bolt_cannot_keep_stop_words() {
        let s = Source::build(bolt("B"), &docs());
        let q = Query {
            ranking: Some(parse_ranking(r#"list("the" "who")"#).unwrap()),
            drop_stop_words: false, // client asks to keep them
            ..Query::default()
        };
        let r = s.execute(&q);
        // Bolt's aggressive list can't be disabled: both words vanish,
        // and the actual query says so.
        assert!(r.actual_ranking.is_none());
        assert!(r.documents.is_empty());
    }

    #[test]
    fn acme_can_keep_stop_words() {
        let s = Source::build(acme("A"), &docs());
        let q = Query {
            ranking: Some(parse_ranking(r#"list("the" "who")"#).unwrap()),
            drop_stop_words: false,
            ..Query::default()
        };
        let r = s.execute(&q);
        // Acme honours TurnOffStopWords: the query keeps both terms and
        // the actual query reports them…
        let kept = r.actual_ranking.as_ref().unwrap().terms();
        assert_eq!(kept.len(), 2);
        // …but both words were stop words at INDEX time too, so no
        // document can match. Exactly the §3.1 "The Who" trap: knowing
        // the source's stop-word behaviour is what saves the
        // metasearcher from misreading this empty result.
        assert!(r.documents.is_empty());
    }

    #[test]
    fn tokenizer_disagreement_on_z3950() {
        // The §4.3.1 example: is "Z39.50" one token?
        let acme_src = Source::build(acme("A"), &docs());
        let bolt_src = Source::build(bolt("B"), &docs());
        let q = Query {
            ranking: Some(parse_ranking(r#"list((body-of-text "Z39.50"))"#).unwrap()),
            ..Query::default()
        };
        // Bolt (WordJoiners) keeps "Z39.50" whole and finds it.
        let r = bolt_src.execute(&q);
        assert_eq!(r.documents.len(), 1);
        // Acme (AlnumRuns) split it at index time into "z39"/"50"; the
        // query term "Z39.50" normalizes to "z39.50" and misses.
        let r = acme_src.execute(&q);
        assert!(r.documents.is_empty());
    }

    #[test]
    fn okapi_stems_transparently() {
        let s = Source::build(okapi("O"), &docs());
        let q = Query {
            ranking: Some(parse_ranking(r#"list((body-of-text "database"))"#).unwrap()),
            ..Query::default()
        };
        let r = s.execute(&q);
        assert_eq!(r.documents.len(), 1, "stemming engine matches plural");
    }

    #[test]
    fn rankonly_drops_filters() {
        let s = Source::build(rankonly("R"), &docs());
        let q = Query {
            filter: Some(parse_filter(r#"(author "Ullman")"#).unwrap()),
            ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
            ..Query::default()
        };
        let r = s.execute(&q);
        assert!(r.actual_filter.is_none());
        assert!(r.actual_ranking.is_some());
        // Plain-1 scores are raw term frequencies: "databases" appears
        // twice in doc 1 (title + body, the unfielded term searches Any).
        assert_eq!(r.documents[0].raw_score, Some(2.0));
    }
}
