//! Query execution at one source: rewrite → translate → search → answer
//! specification → result construction (§4.1.2, §4.2).

use std::time::Instant;

use starts_index::{DocId, Hit, SearchOptions};
use starts_obs::Registry;
use starts_proto::query::{SortKey, SortOrder};
use starts_proto::{
    Field, Query, QueryProfile, QueryResults, ResultDocument, StageCost, TermStatsEntry,
};

use crate::extensions::{translate_filter_ext, translate_ranking_ext};
use crate::rewrite::{rewrite_query, Rewritten};
use crate::source::Source;
use crate::translate::translate_term;

/// Execute `query` at `source`.
pub fn execute(source: &Source, query: &Query) -> QueryResults {
    execute_traced(source, query, None)
}

/// Execute `query` at `source`, recording phase timings (`rewrite` →
/// `translate` → `execute` spans under `source.execute`) and
/// rewrite-downgrade counters into `obs` when given.
///
/// When the query carries a trace context (the `XTraceContext`
/// extension attribute, §4.3), the `source.execute` span parents under
/// the metasearcher's dispatching span and is tagged with the query id,
/// so both sides of the wire stitch into one trace tree — and the
/// context is echoed back on the results, together with an
/// `XQueryProfile` extension attribute breaking the host-side cost into
/// rewrite/translate/execute stages (per-shard search latencies and
/// prune counters included). Untraced queries get neither attribute, so
/// their encodings stay byte-identical to the paper's examples.
pub fn execute_traced(source: &Source, query: &Query, obs: Option<&Registry>) -> QueryResults {
    // Spans record durations only when dropped, so the wire-visible
    // profile keeps its own explicit clock. All offsets are relative to
    // `t0`, the host-side root.
    let profiling = query.trace.is_some();
    let t0 = Instant::now();
    let elapsed_us = |t0: Instant| t0.elapsed().as_micros() as u64;
    let _root = obs.map(|reg| {
        reg.counter_with("source.queries", &[("source", source.id())])
            .inc();
        match &query.trace {
            Some(ctx) => reg.span_under(
                "source.execute",
                &starts_obs::SpanHandle {
                    path: ctx.parent_path.clone(),
                    id: ctx.parent_span_id,
                },
                vec![
                    ("source", source.id().to_string()),
                    ("trace", ctx.query_id.clone()),
                ],
            ),
            None => reg.span_with("source.execute", vec![("source", source.id().to_string())]),
        }
    });
    let engine = source.engine();
    let analyzer = engine.analyzer();
    let is_stop = |w: &str| analyzer.is_stop_word(w);

    // Phase 1: rewrite against the source's declared capabilities.
    let rewrite_start = elapsed_us(t0);
    let rewritten = {
        let _span = obs.map(|reg| reg.span("rewrite"));
        rewrite_query(
            query,
            source.metadata(),
            &is_stop,
            analyzer.config().can_disable_stop_words,
        )
    };
    let rewrite_end = elapsed_us(t0);
    if let Some(reg) = obs {
        count_downgrades(reg, source.id(), query, &rewritten);
    }

    // Phase 2: translate the actual query into the engine's IR.
    let translate_start = elapsed_us(t0);
    let (filter_ir, ranking_ir) = {
        let _span = obs.map(|reg| reg.span("translate"));
        (
            rewritten
                .filter
                .as_ref()
                .map(|f| translate_filter_ext(f, analyzer)),
            rewritten
                .ranking
                .as_ref()
                .map(|r| translate_ranking_ext(r, analyzer)),
        )
    };
    let translate_end = elapsed_us(t0);

    // Phase 3: execute — search, answer specification, result objects.
    let execute_start = elapsed_us(t0);
    let _span = obs.map(|reg| reg.span("execute"));
    let limit = fast_path_limit(&query.answer, ranking_ir.is_some());
    if let Some(reg) = obs {
        reg.counter(if limit.is_some() {
            "engine.topk.bounded"
        } else {
            "engine.topk.full"
        })
        .inc();
    }
    let search_start = elapsed_us(t0);
    let (mut hits, shard_latencies, prune) = {
        // The fan-out span only appears when there is an actual fan-out;
        // a single-shard engine searches inline and the span would be
        // noise. It nests under the `execute` phase span automatically.
        let _fanout = obs.and_then(|reg| {
            (engine.shard_count() > 1).then(|| {
                reg.span_with(
                    "engine.shard.fanout",
                    vec![
                        ("source", source.id().to_string()),
                        ("shards", engine.shard_count().to_string()),
                    ],
                )
            })
        });
        engine.search_top_k_observed(
            filter_ir.as_ref(),
            ranking_ir.as_ref(),
            &SearchOptions {
                limit,
                min_score: query.answer.min_doc_score,
            },
        )
    };
    let search_end = elapsed_us(t0);
    if let Some(reg) = obs {
        let shards = engine.shard_count().to_string();
        reg.counter_with(
            "engine.shard.searches",
            &[("source", source.id()), ("shards", &shards)],
        )
        .inc();
        for &us in &shard_latencies {
            reg.histogram_with("engine.shard.latency_us", &[("source", source.id())])
                .observe(us);
        }
        // Dynamic-pruning effectiveness (§ docs/performance.md): how many
        // candidate docs the bound check discarded without scoring. The
        // counters register even when zero so dashboards see the series.
        let labels = [("source", source.id())];
        reg.counter_with("engine.prune.skipped_docs", &labels)
            .add(prune.skipped_docs);
        reg.counter_with("engine.prune.skipped_leaves", &labels)
            .add(prune.skipped_leaves);
        reg.counter_with("engine.prune.threshold_updates", &labels)
            .add(prune.threshold_updates);
        reg.counter_with("engine.prune.blocks_skipped", &labels)
            .add(prune.blocks_skipped);
        if prune.candidates > 0 {
            reg.gauge_with("engine.prune.fraction", &labels)
                .set(prune.skipped_docs as f64 / prune.candidates as f64);
        }
        // Resident postings memory: the bit-packed block postings every
        // evaluator runs on, and the positional arenas kept only where
        // `prox` needs them (zero for positions-free vendors). Static
        // per index build, but exported per query so dashboards track
        // it without a registration hook.
        let footprint = engine.postings_footprint();
        reg.gauge_with("engine.postings.positional_bytes", &labels)
            .set(footprint.positional_bytes as f64);
        reg.gauge_with("engine.postings.block_bytes", &labels)
            .set(footprint.block_bytes as f64);
    }

    // Answer specification: minimum score …
    if query.answer.min_doc_score.is_finite() {
        hits.retain(|h| match h.score {
            Some(s) => s >= query.answer.min_doc_score,
            None => true, // unscored (filter-only) results are kept
        });
    }
    // … sort order …
    sort_hits(source, &mut hits, &query.answer.sort_by);
    // … and result-set cap.
    hits.truncate(query.answer.max_documents);

    // Build the per-document result objects.
    let ranking_terms: Vec<_> = rewritten
        .ranking
        .as_ref()
        .map(|r| r.terms().into_iter().cloned().collect())
        .unwrap_or_default();
    let documents: Vec<ResultDocument> = hits
        .iter()
        .map(|h| build_document(source, h, query, &ranking_terms))
        .collect();
    if let Some(reg) = obs {
        reg.histogram_with("source.results", &[("source", source.id())])
            .observe(documents.len() as u64);
    }

    let profile = profiling.then(|| {
        // The per-shard search windows: shards run in parallel, so each
        // child starts at the search call and lasts its own measured
        // latency (each ≤ the call's wall-clock, so nesting holds).
        let mut search = StageCost::new("search", search_start, search_end - search_start)
            .with_meta("shards", engine.shard_count());
        search.children = shard_latencies
            .iter()
            .enumerate()
            .map(|(i, &us)| {
                StageCost::new(
                    format!("shard-{i}"),
                    search_start,
                    us.min(search_end - search_start),
                )
            })
            .collect();
        let execute_end = elapsed_us(t0);
        let mut execute = StageCost::new("execute", execute_start, execute_end - execute_start)
            .with_meta("candidates", prune.candidates)
            .with_meta("skipped_docs", prune.skipped_docs)
            .with_meta("skipped_leaves", prune.skipped_leaves)
            .with_meta("blocks_skipped", prune.blocks_skipped)
            .with_meta("results", documents.len());
        execute.children = vec![search];
        let total = elapsed_us(t0);
        QueryProfile {
            query_id: query
                .trace
                .as_ref()
                .map(|ctx| ctx.query_id.clone())
                .unwrap_or_default(),
            root: StageCost {
                name: "source.execute".to_string(),
                start_us: 0,
                duration_us: total,
                meta: vec![("source".to_string(), source.id().to_string())],
                children: vec![
                    StageCost::new("rewrite", rewrite_start, rewrite_end - rewrite_start),
                    StageCost::new(
                        "translate",
                        translate_start,
                        translate_end - translate_start,
                    ),
                    execute,
                ],
            },
        }
    });

    QueryResults {
        sources: vec![source.id().to_string()],
        actual_filter: rewritten.filter,
        actual_ranking: rewritten.ranking,
        documents,
        trace: query.trace.clone(),
        profile,
    }
}

/// Whether the engine may bound its search to the best
/// `MaxNumberDocuments` hits instead of materializing everything.
///
/// The bound is sound exactly when the truncation the answer spec will
/// apply afterwards keeps the *first* k hits of the engine's own order:
/// the query must be ranked, ask for the default sort (score
/// descending), and actually carry a cap. `MinDocumentScore` does not
/// disqualify the fast path — in descending order the above-threshold
/// docs form a prefix, so filtering commutes with truncation.
fn fast_path_limit(answer: &starts_proto::AnswerSpec, ranked: bool) -> Option<usize> {
    let default_sort = answer.sort_by.as_slice() == [SortKey::score_descending()];
    (ranked && default_sort && answer.max_documents != usize::MAX).then_some(answer.max_documents)
}

/// Count §4.2 downgrades: a query part the rewrite changed
/// (`source.rewrite.downgrades`) or removed outright
/// (`source.rewrite.drops`), labeled by source and part.
fn count_downgrades(reg: &Registry, source_id: &str, query: &Query, rewritten: &Rewritten) {
    let parts = [
        (
            "filter",
            query.filter.is_some(),
            rewritten.filter.is_none(),
            { rewritten.filter != query.filter },
        ),
        (
            "ranking",
            query.ranking.is_some(),
            rewritten.ranking.is_none(),
            rewritten.ranking != query.ranking,
        ),
    ];
    for (part, asked, gone, changed) in parts {
        if !asked {
            continue;
        }
        if changed {
            reg.counter_with(
                "source.rewrite.downgrades",
                &[("source", source_id), ("part", part)],
            )
            .inc();
        }
        if gone {
            reg.counter_with(
                "source.rewrite.drops",
                &[("source", source_id), ("part", part)],
            )
            .inc();
        }
    }
}

fn sort_hits(source: &Source, hits: &mut [Hit], sort_by: &[SortKey]) {
    let engine = source.engine();
    hits.sort_by(|a, b| {
        for key in sort_by {
            let ord = match &key.field {
                // Score key: descending, under a total order (None sorts
                // last; NaN cannot destabilize the comparison).
                None => match (&b.score, &a.score) {
                    (Some(x), Some(y)) => x.total_cmp(y),
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (None, None) => std::cmp::Ordering::Equal,
                },
                Some(f) => {
                    let fid = engine.schema().get(f.name());
                    let (va, vb) = match fid {
                        Some(fid) => (
                            engine.doc_field(a.doc, fid).unwrap_or(""),
                            engine.doc_field(b.doc, fid).unwrap_or(""),
                        ),
                        None => ("", ""),
                    };
                    va.cmp(vb)
                }
            };
            let ord = match (key.order, key.field.is_some()) {
                // Score keys already compare descending; field keys
                // compare ascending. Flip per the requested order.
                (SortOrder::Descending, true) => ord.reverse(),
                (SortOrder::Ascending, false) => ord.reverse(),
                _ => ord,
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.doc.cmp(&b.doc)
    });
}

fn build_document(
    source: &Source,
    hit: &Hit,
    query: &Query,
    ranking_terms: &[starts_proto::WeightedTerm],
) -> ResultDocument {
    let engine = source.engine();
    // Linkage is always returned (§4.1.2), then the requested fields.
    let mut fields: Vec<(Field, String)> = Vec::with_capacity(1 + query.answer.fields.len());
    push_field(engine, hit.doc, &Field::Linkage, &mut fields);
    for f in &query.answer.fields {
        if f != &Field::Linkage {
            push_field(engine, hit.doc, f, &mut fields);
        }
    }
    let term_stats = ranking_terms
        .iter()
        .map(|wt| {
            let stat = source
                .engine()
                .term_stats(hit.doc, &translate_term(&wt.term));
            TermStatsEntry {
                term: wt.term.clone(),
                term_frequency: stat.tf,
                term_weight: stat.weight,
                document_frequency: stat.df,
            }
        })
        .collect();
    ResultDocument {
        raw_score: hit.score,
        sources: vec![source.id().to_string()],
        fields,
        term_stats,
        doc_size_kb: engine.doc_byte_size(hit.doc).div_ceil(1024),
        doc_count: u64::from(engine.doc_token_count(hit.doc)),
    }
}

fn push_field(
    engine: &starts_index::ShardedEngine,
    doc: DocId,
    field: &Field,
    out: &mut Vec<(Field, String)>,
) {
    if let Some(fid) = engine.schema().get(field.name()) {
        if let Some(value) = engine.doc_field(doc, fid) {
            out.push((field.clone(), value.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SourceConfig;
    use starts_index::Document;
    use starts_proto::query::{parse_filter, parse_ranking, print_filter, print_ranking};
    use starts_proto::AnswerSpec;

    fn corpus() -> Vec<Document> {
        vec![
            Document::new()
                .field("title", "Deductive and Object-Oriented Database Systems")
                .field("author", "Jeffrey D. Ullman")
                .field(
                    "body-of-text",
                    "databases databases databases distributed comparison",
                )
                .field("date-last-modified", "1996-03-31")
                .field("linkage", "http://example.org/dood.ps"),
            Document::new()
                .field("title", "Database Research Achievements")
                .field("author", "Silberschatz Stonebraker Ullman")
                .field("body-of-text", "databases research directions")
                .field("date-last-modified", "1996-09-15")
                .field("linkage", "http://example.org/lagunita.ps"),
            Document::new()
                .field("title", "Compiler Construction")
                .field("author", "Alfred Aho")
                .field("body-of-text", "parsing lexing and code generation")
                .field("date-last-modified", "1995-05-05")
                .field("linkage", "http://example.org/dragon.ps"),
        ]
    }

    fn source() -> Source {
        Source::build(SourceConfig::new("Source-1"), &corpus())
    }

    fn query(filter: &str, ranking: &str) -> Query {
        Query {
            filter: (!filter.is_empty()).then(|| parse_filter(filter).unwrap()),
            ranking: (!ranking.is_empty()).then(|| parse_ranking(ranking).unwrap()),
            answer: AnswerSpec {
                fields: vec![Field::Title, Field::Author],
                ..AnswerSpec::default()
            },
            ..Query::default()
        }
    }

    #[test]
    fn end_to_end_filter_and_ranking() {
        let s = source();
        let q = query(
            r#"(author "Ullman")"#,
            r#"list((body-of-text "databases") (body-of-text "distributed"))"#,
        );
        let r = s.execute(&q);
        assert_eq!(r.sources, vec!["Source-1".to_string()]);
        assert_eq!(r.documents.len(), 2);
        // Doc 0 mentions both ranking words, repeatedly — it leads.
        assert_eq!(r.documents[0].linkage(), Some("http://example.org/dood.ps"));
        assert!(r.documents[0].raw_score.unwrap() >= r.documents[1].raw_score.unwrap());
        // Echoed actual query.
        assert_eq!(
            print_filter(r.actual_filter.as_ref().unwrap()),
            r#"(author "Ullman")"#
        );
    }

    #[test]
    fn answer_fields_returned_with_linkage_first() {
        let s = source();
        let q = query(r#"(author "Aho")"#, "");
        let r = s.execute(&q);
        assert_eq!(r.documents.len(), 1);
        let d = &r.documents[0];
        assert_eq!(d.fields[0].0, Field::Linkage);
        assert_eq!(d.field(&Field::Title), Some("Compiler Construction"));
        assert_eq!(d.field(&Field::Author), Some("Alfred Aho"));
        // Filter-only: no scores (the Boolean model).
        assert_eq!(d.raw_score, None);
    }

    #[test]
    fn term_stats_present_for_ranked_queries() {
        let s = source();
        let q = query("", r#"list((body-of-text "databases"))"#);
        let r = s.execute(&q);
        let top = &r.documents[0];
        assert_eq!(top.term_stats.len(), 1);
        let st = &top.term_stats[0];
        assert_eq!(st.term.value.text, "databases");
        assert_eq!(st.term_frequency, 3); // "databases" ×3 in doc 0 body
        assert_eq!(st.document_frequency, 2);
        assert!(st.term_weight > 0.0);
        assert!(top.doc_count > 0);
    }

    #[test]
    fn min_score_and_max_documents() {
        let s = source();
        let mut q = query("", r#"list((body-of-text "databases"))"#);
        q.answer.max_documents = 1;
        let r = s.execute(&q);
        assert_eq!(r.documents.len(), 1);
        let mut q = query("", r#"list((body-of-text "databases"))"#);
        q.answer.min_doc_score = 2.0; // above Acme-1's maximum
        let r = s.execute(&q);
        assert!(r.documents.is_empty());
    }

    #[test]
    fn bounded_execution_matches_full_and_is_counted() {
        let s = source();
        let full = s.execute(&query("", r#"list((body-of-text "databases"))"#));
        let mut q = query("", r#"list((body-of-text "databases"))"#);
        q.answer.max_documents = 1;
        let reg = Registry::default();
        let bounded = execute_traced(&s, &q, Some(&reg));
        assert_eq!(bounded.documents.len(), 1);
        assert_eq!(bounded.documents[0], full.documents[0]);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("engine.topk.bounded", &[]), 1);
        assert_eq!(snap.counter("engine.topk.full", &[]), 0);
        // A non-default sort order opts out of the bounded path.
        let mut q = query("", r#"list((body-of-text "databases"))"#);
        q.answer.max_documents = 1;
        q.answer.sort_by = vec![SortKey {
            field: Some(Field::Title),
            order: SortOrder::Ascending,
        }];
        execute_traced(&s, &q, Some(&reg));
        assert_eq!(reg.snapshot().counter("engine.topk.full", &[]), 1);
    }

    #[test]
    fn date_filter() {
        let s = source();
        let q = query(r#"(date-last-modified > "1996-08-01")"#, "");
        let r = s.execute(&q);
        assert_eq!(r.documents.len(), 1);
        assert_eq!(
            r.documents[0].linkage(),
            Some("http://example.org/lagunita.ps")
        );
    }

    #[test]
    fn sort_by_title_ascending() {
        let s = source();
        let mut q = query(r#"("databases")"#, "");
        q.answer.sort_by = vec![SortKey {
            field: Some(Field::Title),
            order: SortOrder::Ascending,
        }];
        let r = s.execute(&q);
        let titles: Vec<&str> = r
            .documents
            .iter()
            .map(|d| d.field(&Field::Title).unwrap())
            .collect();
        let mut sorted = titles.clone();
        sorted.sort_unstable();
        assert_eq!(titles, sorted);
    }

    #[test]
    fn stop_word_terms_eliminated_and_reported() {
        // "and" is a stop word for the default analyzer: a ranking
        // expression containing it comes back without it.
        let s = source();
        let q = query("", r#"list("and" (body-of-text "databases"))"#);
        let r = s.execute(&q);
        assert_eq!(
            print_ranking(r.actual_ranking.as_ref().unwrap()),
            r#"(body-of-text "databases")"#
        );
    }

    #[test]
    fn empty_query_returns_empty_results() {
        let s = source();
        let q = Query::default();
        let r = s.execute(&q);
        assert!(r.documents.is_empty());
        assert!(r.actual_filter.is_none());
        assert!(r.actual_ranking.is_none());
    }

    #[test]
    fn soif_stream_of_real_results_round_trips() {
        let s = source();
        let q = query(
            r#"(author "Ullman")"#,
            r#"list((body-of-text "databases"))"#,
        );
        let r = s.execute(&q);
        let bytes = r.to_soif_stream();
        let back = QueryResults::from_soif_stream(&bytes).unwrap();
        assert_eq!(back, r);
    }
}
