#![warn(missing_docs)]

//! `starts-source` — STARTS-conformant document sources and resources.
//!
//! A *source* is "a collection of text documents … with an associated
//! search engine that accepts queries from clients and produces results"
//! (§3). This crate wraps a [`starts_index::Engine`] behind the STARTS
//! protocol:
//!
//! * **capability enforcement** — each source declares which optional
//!   fields, modifiers and query parts it supports; queries are rewritten
//!   to the subset the source can execute, and the *actual query* is
//!   returned with the results (§4.2, Example 7);
//! * **result construction** — raw scores, `TermStats` (term frequency,
//!   term weight, document frequency), `DocSize`/`DocCount` per §4.2;
//! * **metadata export** — the `@SMetaAttributes` object, assembled from
//!   the engine's true configuration (stop list, tokenizer ids, ranking
//!   algorithm id, score range) (§4.3.1);
//! * **content-summary export** — automatically generated word/statistics
//!   lists, "orders of magnitude smaller than the original contents"
//!   (§4.3.2);
//! * **sample-database results** — query results over a fixed sample
//!   collection, the §4.2 black-box calibration hook;
//! * **resources** — groups of sources reachable through one member, with
//!   duplicate elimination (§3, Figure 1).
//!
//! [`vendors`] instantiates a fleet of deliberately heterogeneous source
//! personalities standing in for the paper's participating vendors.

pub mod config;
pub mod execute;
pub mod extensions;
pub mod resource;
pub mod rewrite;
pub mod sample;
pub mod source;
pub mod summary_gen;
pub mod translate;
pub mod vendors;

pub use config::SourceConfig;
pub use resource::ResourceHost;
pub use source::Source;
