//! The [`Source`] type: one STARTS-conformant document source.

use starts_index::{Document, ShardedEngine};
use starts_proto::metadata::SourceMetadata;
use starts_proto::summary::ContentSummary;
use starts_proto::{Query, QueryResults};

use crate::config::SourceConfig;

/// A queryable STARTS source: an engine plus its declared capabilities.
///
/// ```
/// use starts_index::Document;
/// use starts_proto::{query::parse_ranking, Query};
/// use starts_source::{Source, SourceConfig};
///
/// let docs = vec![Document::new()
///     .field("title", "Distributed Databases")
///     .field("body-of-text", "replication of databases across sites")
///     .field("linkage", "http://example.org/1")];
/// let source = Source::build(SourceConfig::new("Demo"), &docs);
///
/// // The source exports metadata (§4.3.1)…
/// assert_eq!(source.metadata().ranking_algorithm_id, "Acme-1");
/// // …a content summary (§4.3.2)…
/// assert_eq!(source.content_summary().df(Some("body-of-text"), "databases"), 1);
/// // …and executes STARTS queries, reporting the actual query (§4.2).
/// let query = Query {
///     ranking: Some(parse_ranking(r#"list((body-of-text "databases"))"#).unwrap()),
///     ..Query::default()
/// };
/// let results = source.execute(&query);
/// assert_eq!(results.documents.len(), 1);
/// assert!(results.actual_ranking.is_some());
/// ```
pub struct Source {
    config: SourceConfig,
    engine: ShardedEngine,
    /// Metadata is immutable once built; assemble it eagerly.
    metadata: SourceMetadata,
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Source")
            .field("id", &self.config.id)
            .field("n_docs", &self.engine.n_docs())
            .finish()
    }
}

impl Source {
    /// Index `docs` under the configured engine personality. The index
    /// is built in parallel across `config.engine.shards` shards
    /// (default: available parallelism); results are bit-identical at
    /// any shard count.
    pub fn build(config: SourceConfig, docs: &[Document]) -> Self {
        let engine = ShardedEngine::build(docs, config.engine.clone());
        let metadata = assemble_metadata(&config, &engine);
        Source {
            config,
            engine,
            metadata,
        }
    }

    /// The source id.
    pub fn id(&self) -> &str {
        &self.config.id
    }

    /// The configuration.
    pub fn config(&self) -> &SourceConfig {
        &self.config
    }

    /// The engine (test and experiment access; a protocol client never
    /// touches this).
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Number of documents.
    pub fn num_docs(&self) -> u32 {
        self.engine.n_docs()
    }

    /// The exported `@SMetaAttributes` metadata (§4.3.1).
    pub fn metadata(&self) -> &SourceMetadata {
        &self.metadata
    }

    /// The exported `@SContentSummary` (§4.3.2).
    pub fn content_summary(&self) -> ContentSummary {
        crate::summary_gen::generate(self)
    }

    /// Execute a query, returning results with the *actual query*
    /// executed (§4.2).
    pub fn execute(&self, query: &Query) -> QueryResults {
        crate::execute::execute(self, query)
    }

    /// [`Source::execute`] with observability: phase timings and
    /// rewrite-downgrade counters go into `obs` when given.
    pub fn execute_traced(
        &self,
        query: &Query,
        obs: Option<&starts_obs::Registry>,
    ) -> QueryResults {
        crate::execute::execute_traced(self, query, obs)
    }

    /// The source's `SampleDatabaseResults`: results of the standard
    /// sample queries over the standard sample collection, as *this
    /// source's engine personality* would produce them (§4.2).
    pub fn sample_results(&self) -> Vec<(Query, QueryResults)> {
        crate::sample::sample_results(&self.config)
    }
}

fn assemble_metadata(config: &SourceConfig, engine: &ShardedEngine) -> SourceMetadata {
    let analyzer_cfg = engine.analyzer().config();
    let fields_supported = config
        .supported_fields
        .iter()
        .map(|f| {
            let langs = engine
                .schema()
                .get(f.name())
                .map(|fid| engine.field_languages(fid))
                .unwrap_or_default();
            (f.clone(), langs)
        })
        .collect();
    let range = engine.ranking().score_range();
    SourceMetadata {
        source_id: config.id.clone(),
        fields_supported,
        modifiers_supported: config
            .supported_modifiers
            .iter()
            .map(|m| (m.clone(), Vec::new()))
            .collect(),
        field_modifier_combinations: config.field_modifier_combinations.clone(),
        query_parts_supported: config.query_parts,
        score_range: (range.min, range.max),
        ranking_algorithm_id: engine.ranking().id().to_string(),
        tokenizer_id_list: config
            .languages
            .iter()
            .map(|lang| (analyzer_cfg.tokenizer.id().to_string(), lang.clone()))
            .collect(),
        sample_database_results: config.sample_url(),
        stop_word_list: analyzer_cfg.stop_words.export(),
        turn_off_stop_words: analyzer_cfg.can_disable_stop_words,
        source_languages: config.languages.clone(),
        source_name: config.name.clone(),
        linkage: config.query_url(),
        content_summary_linkage: config.summary_url(),
        date_changed: None,
        date_expires: None,
        abstract_text: None,
        access_constraints: None,
        contact: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_proto::conformance::is_conformant;

    fn docs() -> Vec<Document> {
        vec![
            Document::new()
                .field("title", "Distributed Database Systems")
                .field("author", "Jeffrey Ullman")
                .field("body-of-text", "distributed databases and query processing")
                .field("linkage", "http://example.org/1"),
            Document::new()
                .field("title", "Operating Systems")
                .field("author", "Andrew Tanenbaum")
                .field("body-of-text", "processes scheduling and memory paging")
                .field("linkage", "http://example.org/2"),
        ]
    }

    #[test]
    fn metadata_reflects_engine_truthfully() {
        let s = Source::build(SourceConfig::new("Source-1"), &docs());
        let m = s.metadata();
        assert_eq!(m.source_id, "Source-1");
        assert_eq!(m.ranking_algorithm_id, "Acme-1");
        assert_eq!(m.score_range, (0.0, 1.0));
        assert_eq!(m.tokenizer_id_list[0].0, "Acme-1");
        assert!(m.turn_off_stop_words);
        // The exported stop list is the engine's actual list.
        assert!(m.stop_word_list.contains(&"the".to_string()));
        assert_eq!(m.linkage, "starts://source-1/query");
    }

    #[test]
    fn default_source_is_protocol_conformant() {
        let s = Source::build(SourceConfig::new("Source-1"), &docs());
        assert!(is_conformant(s.metadata()));
    }

    #[test]
    fn empty_source_builds() {
        let s = Source::build(SourceConfig::new("Empty"), &[]);
        assert_eq!(s.num_docs(), 0);
        assert!(is_conformant(s.metadata()));
    }
}
