//! The two "new" Basic-1 fields in action (§4.1.1):
//!
//! * **`Document-text`** — "provides a way to pass documents to the
//!   sources as part of the queries, which could be useful to do
//!   relevance feedback. Relevance feedback allows users to request
//!   documents that are similar to a document that was found useful."
//!   A supporting source treats the term's l-string as a whole document:
//!   it analyzes it with its own pipeline, keeps the most frequent
//!   informative words, and matches those.
//!
//! * **`Free-form-text`** — "provides a way to pass to the sources
//!   queries that are not expressed in our query language … so that
//!   informed metasearchers could use the sources' richer native query
//!   languages." Our sources' native language is Z39.50 PQF (they are,
//!   after all, the kind of engines ZDSR targeted): a supporting source
//!   parses the l-string as PQF and splices the resulting expression in.

use starts_index::{BoolNode, RankNode, TermSpec};
use starts_proto::query::{FilterExpr, QTerm, RankExpr};
use starts_proto::Field;
use starts_text::Analyzer;

use crate::translate::{translate_filter, translate_ranking};

/// Maximum number of feedback terms extracted from a passed document.
pub const MAX_FEEDBACK_TERMS: usize = 8;

/// Extract the representative terms of a passed document: analyze with
/// the source's own pipeline (stop words eliminated), count occurrences,
/// keep the most frequent [`MAX_FEEDBACK_TERMS`] distinct words (ties
/// broken alphabetically for determinism).
pub fn feedback_terms(analyzer: &Analyzer, document_text: &str) -> Vec<String> {
    let mut counts: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    for token in analyzer.analyze(document_text) {
        *counts.entry(token.term).or_insert(0) += 1;
    }
    let mut terms: Vec<(String, u32)> = counts.into_iter().collect();
    terms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    terms.truncate(MAX_FEEDBACK_TERMS);
    terms.into_iter().map(|(t, _)| t).collect()
}

/// Is this term a `Document-text` term?
fn is_document_text(t: &QTerm) -> bool {
    t.effective_field() == Field::DocumentText
}

/// Is this term a `Free-form-text` term?
fn is_free_form(t: &QTerm) -> bool {
    t.effective_field() == Field::FreeFormText
}

/// Translate a (rewritten) filter expression to engine IR, honouring the
/// extension fields. `Document-text` terms become a disjunction of the
/// document's representative words; `Free-form-text` terms are parsed as
/// PQF and spliced. Unparseable free-form content matches nothing (the
/// protocol has no error channel).
pub fn translate_filter_ext(e: &FilterExpr, analyzer: &Analyzer) -> BoolNode {
    match e {
        FilterExpr::Term(t) if is_document_text(t) => {
            or_of_terms(&feedback_terms(analyzer, &t.value.text))
        }
        FilterExpr::Term(t) if is_free_form(t) => match starts_zdsr::from_pqf(&t.value.text) {
            Ok(native) => translate_filter_ext(&native, analyzer),
            Err(_) => impossible(),
        },
        FilterExpr::Term(_) => translate_filter(e),
        FilterExpr::And(a, b) => BoolNode::and(
            translate_filter_ext(a, analyzer),
            translate_filter_ext(b, analyzer),
        ),
        FilterExpr::Or(a, b) => BoolNode::or(
            translate_filter_ext(a, analyzer),
            translate_filter_ext(b, analyzer),
        ),
        FilterExpr::AndNot(a, b) => BoolNode::and_not(
            translate_filter_ext(a, analyzer),
            translate_filter_ext(b, analyzer),
        ),
        FilterExpr::Prox(..) => translate_filter(e),
    }
}

/// Translate a (rewritten) ranking expression, honouring the extension
/// fields: a `Document-text` term becomes a `list` of the document's
/// representative words (the classic Rocchio-style expansion);
/// `Free-form-text` becomes the fuzzy interpretation of the parsed
/// native query.
pub fn translate_ranking_ext(e: &RankExpr, analyzer: &Analyzer) -> RankNode {
    match e {
        RankExpr::Term(wt) if is_document_text(&wt.term) => {
            let weight = wt.effective_weight();
            RankNode::List(
                feedback_terms(analyzer, &wt.term.value.text)
                    .into_iter()
                    .map(|term| RankNode::Term {
                        spec: TermSpec::any(term),
                        weight,
                    })
                    .collect(),
            )
        }
        RankExpr::Term(wt) if is_free_form(&wt.term) => {
            match starts_zdsr::from_pqf(&wt.term.value.text) {
                // Fuzzy-interpret the native Boolean query as a ranking
                // expression (the engine's Example 4 semantics).
                Ok(native) => bool_to_rank(&translate_filter_ext(&native, analyzer)),
                Err(_) => RankNode::List(Vec::new()),
            }
        }
        RankExpr::Term(_) => translate_ranking(e),
        RankExpr::List(items) => RankNode::List(
            items
                .iter()
                .map(|i| translate_ranking_ext(i, analyzer))
                .collect(),
        ),
        RankExpr::And(a, b) => RankNode::And(vec![
            translate_ranking_ext(a, analyzer),
            translate_ranking_ext(b, analyzer),
        ]),
        RankExpr::Or(a, b) => RankNode::Or(vec![
            translate_ranking_ext(a, analyzer),
            translate_ranking_ext(b, analyzer),
        ]),
        RankExpr::AndNot(a, b) => RankNode::AndNot(
            Box::new(translate_ranking_ext(a, analyzer)),
            Box::new(translate_ranking_ext(b, analyzer)),
        ),
        RankExpr::Prox(..) => translate_ranking(e),
    }
}

fn or_of_terms(terms: &[String]) -> BoolNode {
    let mut iter = terms
        .iter()
        .map(|t| BoolNode::Term(TermSpec::any(t.clone())));
    match iter.next() {
        Some(first) => iter.fold(first, BoolNode::or),
        None => impossible(),
    }
}

/// A node that matches nothing (the empty-term spec hits no vocabulary
/// entry).
fn impossible() -> BoolNode {
    BoolNode::Term(TermSpec::any(""))
}

/// Fuzzy reinterpretation of a Boolean IR node as a ranking node.
fn bool_to_rank(node: &BoolNode) -> RankNode {
    match node {
        BoolNode::Term(spec) => RankNode::Term {
            spec: spec.clone(),
            weight: 1.0,
        },
        BoolNode::And(a, b) => RankNode::And(vec![bool_to_rank(a), bool_to_rank(b)]),
        BoolNode::Or(a, b) => RankNode::Or(vec![bool_to_rank(a), bool_to_rank(b)]),
        BoolNode::AndNot(a, b) => {
            RankNode::AndNot(Box::new(bool_to_rank(a)), Box::new(bool_to_rank(b)))
        }
        BoolNode::Prox {
            left,
            right,
            distance,
            ordered,
        } => RankNode::Prox {
            left: Box::new(RankNode::Term {
                spec: left.clone(),
                weight: 1.0,
            }),
            right: Box::new(RankNode::Term {
                spec: right.clone(),
                weight: 1.0,
            }),
            distance: *distance,
            ordered: *ordered,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_text::{Analyzer, AnalyzerConfig};

    #[test]
    fn feedback_extracts_frequent_informative_words() {
        let analyzer = Analyzer::new(AnalyzerConfig::default()); // minimal stops
        let text = "the databases of databases are databases and replication \
                    replication with indexing";
        let terms = feedback_terms(&analyzer, text);
        assert_eq!(terms[0], "databases"); // tf 3
        assert_eq!(terms[1], "replication"); // tf 2
        assert!(terms.contains(&"indexing".to_string()));
        assert!(!terms.contains(&"the".to_string()), "stop words excluded");
    }

    #[test]
    fn feedback_caps_term_count() {
        let analyzer = Analyzer::new(AnalyzerConfig::default());
        let text = (0..40)
            .map(|i| format!("word{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        assert_eq!(feedback_terms(&analyzer, &text).len(), MAX_FEEDBACK_TERMS);
    }

    #[test]
    fn feedback_deterministic_on_ties() {
        let analyzer = Analyzer::new(AnalyzerConfig::default());
        let a = feedback_terms(&analyzer, "zeta alpha beta gamma");
        let b = feedback_terms(&analyzer, "zeta alpha beta gamma");
        assert_eq!(a, b);
        // Alphabetical among equal-frequency terms.
        assert_eq!(a, vec!["alpha", "beta", "gamma", "zeta"]);
    }

    #[test]
    fn free_form_pqf_parses_and_translates() {
        use starts_proto::query::parse_filter;
        let analyzer = Analyzer::new(AnalyzerConfig::default());
        let f =
            parse_filter(r#"(free-form-text "@and @attr 1=4 alpha @attr 1=1003 beta")"#).unwrap();
        let ir = translate_filter_ext(&f, &analyzer);
        let BoolNode::And(l, _) = ir else {
            panic!("expected the PQF @and to be spliced, got {ir:?}")
        };
        let BoolNode::Term(spec) = *l else { panic!() };
        assert_eq!(spec.field.as_deref(), Some("title"));
        assert_eq!(spec.term, "alpha");
    }

    #[test]
    fn malformed_free_form_matches_nothing() {
        use starts_proto::query::parse_filter;
        let analyzer = Analyzer::new(AnalyzerConfig::default());
        let f = parse_filter(r#"(free-form-text "this is not pqf @@@")"#).unwrap();
        // No panic, no error channel: a node that cannot match.
        let ir = translate_filter_ext(&f, &analyzer);
        assert!(matches!(ir, BoolNode::Term(_)));
    }
}
